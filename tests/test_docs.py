"""Documentation health: required pages exist, intra-repo links resolve,
and the commands the README documents reference real entry points."""

import re
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parents[1]
sys.path.insert(0, str(REPO_ROOT / "tools"))

from check_links import check_all, doc_files  # noqa: E402


def test_required_docs_exist():
    for name in ("README.md", "docs/ARCHITECTURE.md", "docs/BENCHMARKS.md"):
        assert (REPO_ROOT / name).exists(), f"missing documentation page {name}"


def test_no_broken_intra_repo_links():
    assert check_all() == []


def test_docs_cover_readme_and_docs_dir():
    names = {str(p.relative_to(REPO_ROOT)) for p in doc_files()}
    assert "README.md" in names
    assert "docs/ARCHITECTURE.md" in names and "docs/BENCHMARKS.md" in names


def test_readme_documents_backend_flags():
    readme = (REPO_ROOT / "README.md").read_text()
    assert "--backend process --workers 4" in readme
    assert "REPRO_BACKEND" in readme


def test_readme_file_references_exist():
    """Every `path`-style reference to tracked files/dirs must resolve."""
    readme = (REPO_ROOT / "README.md").read_text()
    for ref in re.findall(r"`((?:src|docs|examples|benchmarks|tests)/[\w./]*)`", readme):
        assert (REPO_ROOT / ref).exists(), f"README references missing path {ref}"
