"""Documentation health: required pages exist, intra-repo links resolve,
the commands the README documents reference real entry points, the public
API meets the docstring-coverage gate, and the plan renderings quoted in
``docs/OPTIMIZER.md`` match the pretty-printer's output verbatim."""

import re
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parents[1]
sys.path.insert(0, str(REPO_ROOT / "tools"))

from check_docstrings import check_all as check_docstrings  # noqa: E402
from check_links import check_all, doc_files  # noqa: E402


def test_required_docs_exist():
    for name in (
        "README.md",
        "docs/API.md",
        "docs/ARCHITECTURE.md",
        "docs/BENCHMARKS.md",
        "docs/LANGUAGE.md",
        "docs/OPTIMIZER.md",
    ):
        assert (REPO_ROOT / name).exists(), f"missing documentation page {name}"


def test_no_broken_intra_repo_links():
    assert check_all() == []


def test_docs_cover_readme_and_docs_dir():
    names = {str(p.relative_to(REPO_ROOT)) for p in doc_files()}
    assert "README.md" in names
    assert "docs/ARCHITECTURE.md" in names and "docs/BENCHMARKS.md" in names


def test_readme_documents_backend_flags():
    readme = (REPO_ROOT / "README.md").read_text()
    assert "--backend process --workers 4" in readme
    assert "REPRO_BACKEND" in readme


def test_readme_file_references_exist():
    """Every `path`-style reference to tracked files/dirs must resolve."""
    readme = (REPO_ROOT / "README.md").read_text()
    for ref in re.findall(r"`((?:src|docs|examples|benchmarks|tests)/[\w./]*)`", readme):
        assert (REPO_ROOT / ref).exists(), f"README references missing path {ref}"


def test_readme_documents_optimizer_flags():
    readme = (REPO_ROOT / "README.md").read_text()
    assert "--optimize" in readme and "--show-plan" in readme
    assert "REPRO_OPTIMIZE" in readme
    assert "docs/OPTIMIZER.md" in readme


def test_optimizer_doc_linked_from_architecture_and_benchmarks():
    assert "OPTIMIZER.md" in (REPO_ROOT / "docs/ARCHITECTURE.md").read_text()
    assert "OPTIMIZER.md" in (REPO_ROOT / "docs/BENCHMARKS.md").read_text()
    optimizer_doc = (REPO_ROOT / "docs/OPTIMIZER.md").read_text()
    for rule in (
        "fuse-selections",
        "pushdown-projection",
        "pushdown-rename",
        "pushdown-join",
        "pushdown-nesting",
        "reorder-join",
        "prune-columns",
    ):
        assert rule in optimizer_doc, f"rule {rule} missing from the catalog"


def test_quickstart_docstring_is_verbatim_runnable():
    """The package docstring's quickstart blocks must execute as written
    (they drift silently as the API evolves otherwise)."""
    import textwrap

    sys.path.insert(0, str(REPO_ROOT / "src"))
    import repro

    blocks = re.findall(r"::\n\n((?:    .*\n|\n)+)", repro.__doc__)
    assert len(blocks) >= 2, "expected the library and service quickstart blocks"
    namespace = {}
    for block in blocks:
        exec(textwrap.dedent(block), namespace)  # noqa: S102 - doc under test
    assert namespace["result"].explanations, "quickstart found no explanations"
    assert namespace["response"].explanation_sets()


def test_api_doc_covers_wire_format_and_endpoints():
    api_doc = (REPO_ROOT / "docs/API.md").read_text()
    for needle in (
        "/v1/explain",
        "/v1/query",
        "/v1/scenarios",
        "/v1/health",
        "curl",
        "ExplanationService",
        "Client",
        '"format": 2',
        "Compatibility policy",
        "python -m repro serve",
    ):
        assert needle in api_doc, f"docs/API.md is missing {needle!r}"


def test_api_doc_linked_from_readme_and_architecture():
    assert "docs/API.md" in (REPO_ROOT / "README.md").read_text()
    assert "API.md" in (REPO_ROOT / "docs/ARCHITECTURE.md").read_text()


def test_readme_documents_serve():
    readme = (REPO_ROOT / "README.md").read_text()
    assert "python -m repro serve" in readme


def test_public_api_docstring_coverage():
    """The docstring gate (also a CI docs-job step) must be clean."""
    assert check_docstrings() == []


def test_optimizer_doc_plan_renderings_are_verbatim():
    """The before/after plans quoted in docs/OPTIMIZER.md are regenerated
    here and compared verbatim against the pretty-printer's output."""
    sys.path.insert(0, str(REPO_ROOT / "src"))
    from repro.engine.optimizer import optimize_query
    from repro.scenarios import get_scenario

    optimizer_doc = (REPO_ROOT / "docs/OPTIMIZER.md").read_text()
    for name in ("Q3", "T2"):
        question = get_scenario(name).question(scale=60)
        rendered = optimize_query(question.query, question.db).describe()
        assert rendered in optimizer_doc, (
            f"docs/OPTIMIZER.md is stale for {name}: regenerate the fenced "
            "block with optimize_query(question.query, question.db).describe()"
        )


def test_language_doc_linked_from_readme_architecture_and_api():
    assert "docs/LANGUAGE.md" in (REPO_ROOT / "README.md").read_text()
    assert "LANGUAGE.md" in (REPO_ROOT / "docs/ARCHITECTURE.md").read_text()
    assert "LANGUAGE.md" in (REPO_ROOT / "docs/API.md").read_text()


def test_language_doc_covers_grammar_and_repl():
    language_doc = (REPO_ROOT / "docs/LANGUAGE.md").read_text()
    for needle in (
        "```ebnf",
        "whynot",
        "with alternatives",
        "\\scenarios",
        "python -m repro repl",
        "--query-file",
        "fuzz --text",
        "tools/gen_golden_queries.py",
    ):
        assert needle in language_doc, f"docs/LANGUAGE.md is missing {needle!r}"


def test_language_doc_rq_examples_compile_and_run():
    """Every ```rq block in docs/LANGUAGE.md must compile — and when it
    declares its database (``-- db: NAME``), evaluate — as written."""
    sys.path.insert(0, str(REPO_ROOT / "src"))
    from repro.lang import compile_program
    from repro.scenarios import get_scenario

    language_doc = (REPO_ROOT / "docs/LANGUAGE.md").read_text()
    blocks = re.findall(r"```rq\n(.*?)```", language_doc, flags=re.DOTALL)
    assert blocks, "docs/LANGUAGE.md has no ```rq example blocks"
    for block in blocks:
        header = block.splitlines()[0]
        database = None
        if header.startswith("-- db:"):
            scenario = get_scenario(header.split(":", 1)[1].strip())
            database = scenario.make_db(scenario.default_scale)
        lowered = compile_program(block, database=database)
        if database is not None:
            lowered.query.evaluate(database)


def test_language_doc_c3_walkthrough_matches_golden():
    """The worked example is the C3 golden file — it must not drift."""
    language_doc = (REPO_ROOT / "docs/LANGUAGE.md").read_text()
    golden = (REPO_ROOT / "queries" / "C3.rq").read_text()
    body = golden.split("\n\n", 1)[1].strip()  # drop the header comment
    assert body in language_doc, (
        "the C3 walkthrough in docs/LANGUAGE.md no longer matches "
        "queries/C3.rq — update the doc after regenerating goldens"
    )
