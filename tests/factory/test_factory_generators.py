"""Factory generator determinism, validity and invariant tests.

Locks down the :mod:`repro.factory` contract:

* **determinism** — same ``(SF, seed)`` → byte-identical wire document;
  different seeds change content but never row counts;
* **invariants** — every cardinality prediction of
  ``tpch_invariants``/``social_invariants`` matches the materialized data
  at several scale factors, including the exact ``|Q(D)|``;
* **validity** — generated questions pass Definition-5 validation, the
  databases obey the canonical-NaN value model, and the planted gold
  explanation is found by RP at every tested SF;
* **registration** — the bundles are registered as ``generated`` scenarios
  with SF semantics (``default_scale=1``).
"""

import json
import math

import pytest

from repro.factory import DEFAULT_SEEDS, FAMILIES, FAMILY_SCENARIOS, make_bundle
from repro.nested.values import NAN, Bag, Tup
from repro.scenarios import SCENARIOS, get_scenario, run_scenario
from repro.wire import database_from_json, database_to_json


def wire_bytes(db) -> str:
    return json.dumps(database_to_json(db), sort_keys=True, ensure_ascii=True)


@pytest.mark.parametrize("family", sorted(FAMILIES))
def test_same_sf_and_seed_is_byte_identical(family):
    a = make_bundle(family, 2)
    b = make_bundle(family, 2)
    assert wire_bytes(a.database) == wire_bytes(b.database)


@pytest.mark.parametrize("family", sorted(FAMILIES))
def test_different_seed_changes_content_but_not_counts(family):
    base = make_bundle(family, 2)
    other = make_bundle(family, 2, seed=DEFAULT_SEEDS[family] + 1)
    assert wire_bytes(base.database) != wire_bytes(other.database)
    for table in base.database.tables():
        assert base.database.size(table) == other.database.size(table)
    # Qualification is index arithmetic, so |Q(D)| is seed-independent too.
    assert other.check() == base.check()


@pytest.mark.parametrize("family", sorted(FAMILIES))
@pytest.mark.parametrize("sf", [1, 2, 5])
def test_invariants_hold_at_scale(family, sf):
    bundle = make_bundle(family, sf)
    observed = bundle.check()
    assert observed == bundle.invariants
    assert observed["result_rows"] > 0, "the planted story needs surviving rows"


@pytest.mark.parametrize("family", sorted(FAMILIES))
def test_row_counts_scale_linearly(family):
    small, large = make_bundle(family, 1), make_bundle(family, 4)
    for table in small.database.tables():
        assert large.database.size(table) >= small.database.size(table)
    # The dominant table grows ~linearly in SF (fixed planted rows aside).
    biggest = max(small.database.tables(), key=small.database.size)
    ratio = large.database.size(biggest) / small.database.size(biggest)
    assert 3.0 < ratio < 5.0


@pytest.mark.parametrize("family", sorted(FAMILIES))
@pytest.mark.parametrize("sf", [1, 3])
def test_questions_are_well_posed(family, sf):
    bundle = make_bundle(family, sf)
    bundle.question().validate()  # Definition 5: raises IllPosedQuestion if not


def _walk(value):
    yield value
    if isinstance(value, Tup):
        for v in value.values():
            yield from _walk(v)
    elif isinstance(value, Bag):
        for v in value.distinct():
            yield from _walk(v)


@pytest.mark.parametrize("family", sorted(FAMILIES))
def test_value_model_invariants(family):
    """No raw floats that are NaN — only the canonical NAN object — and no
    raw container types that bypass Tup/Bag."""
    bundle = make_bundle(family, 1)
    for table in bundle.database.tables():
        for row in bundle.database.relation(table).distinct():
            for value in _walk(row):
                assert not isinstance(value, (list, dict, set))
                if isinstance(value, float) and math.isnan(value):
                    assert value is NAN


@pytest.mark.parametrize("family", sorted(FAMILIES))
@pytest.mark.parametrize("sf", [1, 2])
def test_wire_roundtrip_preserves_database(family, sf):
    bundle = make_bundle(family, sf)
    decoded = database_from_json(
        json.loads(json.dumps(database_to_json(bundle.database)))
    )
    assert decoded.tables() == bundle.database.tables()
    for table in bundle.database.tables():
        assert decoded.relation(table) == bundle.database.relation(table)
    assert len(bundle.query.evaluate(decoded)) == bundle.invariants["result_rows"]


@pytest.mark.parametrize("family", sorted(FAMILIES))
def test_bundles_are_registered_scenarios(family):
    scenario = get_scenario(FAMILY_SCENARIOS[family])
    assert scenario.generated is True
    assert scenario.default_scale == 1
    assert scenario.gold is not None


def test_hand_built_scenarios_are_not_generated():
    assert all(
        not s.generated for n, s in SCENARIOS.items() if n not in ("GenTPCH", "GenSocial")
    )


@pytest.mark.parametrize("family", sorted(FAMILIES))
@pytest.mark.parametrize("sf", [1, 2])
def test_rp_finds_gold_at_scale(family, sf):
    run = run_scenario(FAMILY_SCENARIOS[family], scale=sf, with_baselines=False)
    assert run.gold_position() == 1
