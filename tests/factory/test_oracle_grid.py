"""Generated scenarios through the fuzz oracle's executor grid.

The satellite requirement: factory corpora must survive the differential
oracle exactly like hand-built scenarios — ``Query.evaluate`` vs the
partitioned executor across serial×process backends, row×columnar engines
and 1/3/7 partitions, plus the explanation differential on the why-not
question.  Any divergence is a real engine bug, not a flaky benchmark.
"""

import pytest

from repro.factory import FAMILIES, make_bundle
from repro.fuzz.oracle import check_case


@pytest.mark.parametrize("family", sorted(FAMILIES))
def test_generated_scenario_survives_executor_grid(family):
    bundle = make_bundle(family, 1)
    report = check_case(
        bundle.database,
        bundle.query,
        question=bundle.question(),
        partitions=(1, 3, 7),
        backends=("serial", "process"),
        engines=("row", "columnar"),
        workers=2,
    )
    assert report.ok, [d.describe() for d in report.divergences]
