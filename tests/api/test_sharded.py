"""Sharded serving: routing, coalescing and concurrency correctness.

The load-bearing guarantee: a sharded server (real worker *processes*
behind a threading front end) returns byte-identical explanation payloads
to in-process ``explain()`` for every scenario, under concurrent mixed
load.  Timings are the single non-deterministic result field (the same
convention the golden-response fixture uses), so byte comparisons strip
them and nothing else.

Fault injection (worker crash, saturation, timeouts) lives in
``test_sharded_faults.py``.
"""

import json
import threading
from concurrent.futures import ThreadPoolExecutor

import pytest

from repro.api import (
    ApiError,
    Client,
    ExplainOptions,
    ExplainRequest,
    ExplanationService,
    ShardedConfig,
    routing_key,
)
from repro.api.sharded import make_sharded_server
from repro.wire import serving_stats_from_json


def _request_doc(scenario, scale, options=None, name=""):
    return ExplainRequest(
        scenario=scenario, scale=scale, options=options or ExplainOptions(), name=name
    ).to_json()


def _canonical_result(document):
    """The response's result payload as canonical bytes, timings stripped."""
    result = dict(document["result"])
    result["timings"] = {}
    return json.dumps(result, sort_keys=True, ensure_ascii=True)


@pytest.fixture(scope="module")
def sharded_server():
    server = make_sharded_server(ShardedConfig(processes=2, cache_size=32))
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    yield server
    server.shutdown()
    server.server_close()
    server.dispatcher.close()


@pytest.fixture(scope="module")
def sharded_client(sharded_server):
    host, port = sharded_server.server_address[:2]
    return Client(f"http://{host}:{port}")


class TestRoutingKey:
    """Identical requests must always land on the same worker: the key is a
    pure function of the request's semantic content."""

    def test_identical_documents_agree(self):
        a = _request_doc("Q1", 20)
        b = _request_doc("Q1", 20)
        assert a is not b
        assert routing_key(a) == routing_key(b)

    def test_key_is_deterministic_across_calls(self):
        doc = _request_doc("Q4", 40)
        assert routing_key(doc) == routing_key(json.loads(json.dumps(doc)))

    def test_display_name_is_ignored(self):
        assert routing_key(_request_doc("Q1", 20, name="a")) == routing_key(
            _request_doc("Q1", 20, name="b")
        )

    @pytest.mark.parametrize(
        "options",
        [
            ExplainOptions(backend="process", workers=2),
            ExplainOptions(optimize=True),
            ExplainOptions(engine="columnar"),
            ExplainOptions(partitions=7),
        ],
    )
    def test_execution_knobs_do_not_split_explain_routing(self, options):
        # The engine's equivalence guarantees make explanations independent
        # of these knobs; splitting them would waste per-worker cache space.
        assert routing_key(_request_doc("Q1", 20, options)) == routing_key(
            _request_doc("Q1", 20)
        )

    def test_semantic_knobs_split_routing(self):
        assert routing_key(
            _request_doc("Q1", 20, ExplainOptions(max_sas=7))
        ) != routing_key(_request_doc("Q1", 20))

    def test_scale_splits_routing(self):
        assert routing_key(_request_doc("Q1", 20)) != routing_key(_request_doc("Q1", 21))

    def test_query_documents_keep_execution_options(self, running_query, person_db):
        # Query responses expose execution metrics, so execution knobs are
        # visible payload differences and must not coalesce.
        from repro.wire import database_to_json, query_to_json

        def doc(partitions):
            return {
                "format": 2,
                "kind": "query-request",
                "query": query_to_json(running_query),
                "database": database_to_json(person_db),
                "options": ExplainOptions(partitions=partitions).to_json(),
            }

        assert routing_key(doc(3)) != routing_key(doc(7))
        assert routing_key(doc(3)) == routing_key(doc(3))


class TestShardedConfig:
    @pytest.mark.parametrize("kwargs", [
        {"processes": 0},
        {"processes": -1},
        {"queue_depth": 0},
        {"cache_size": -1},
        {"request_timeout": 0},
    ])
    def test_invalid_knobs_rejected(self, kwargs):
        with pytest.raises(ValueError):
            ShardedConfig(**kwargs)


MIX = [("Q1", 20), ("Q4", 20), ("T2", 20), ("Q1", 30)]


class TestConcurrencyCorrectness:
    """N threads × mixed scenarios: every served payload byte-equal to the
    in-process service answer."""

    def test_mixed_concurrent_load_is_byte_identical(self, sharded_client):
        local = ExplanationService(cache_size=32)
        expected = {
            (scenario, scale): _canonical_result(
                local.explain(ExplainRequest(scenario=scenario, scale=scale)).to_json()
            )
            for scenario, scale in MIX
        }

        def fire(i):
            scenario, scale = MIX[i % len(MIX)]
            response = sharded_client.explain(scenario=scenario, scale=scale)
            return (scenario, scale), _canonical_result(response.raw)

        with ThreadPoolExecutor(max_workers=12) as pool:
            outcomes = list(pool.map(fire, range(36)))
        assert len(outcomes) == 36
        for key, payload in outcomes:
            assert payload == expected[key], f"served {key} diverged from in-process"

    def test_repeat_requests_hit_the_same_worker_cache(self, sharded_client):
        cold = sharded_client.explain(scenario="Q6", scale=20)
        warm = sharded_client.explain(scenario="Q6", scale=20)
        # A cache hit is only possible if routing pinned both requests to
        # the same worker process — this *is* the locality guarantee.
        assert not cold.cached and warm.cached
        assert _canonical_result(warm.raw) == _canonical_result(cold.raw)

    def test_query_endpoint_round_trip(self, sharded_client, person_db, running_query):
        bag, metrics = sharded_client.query(
            running_query, person_db, ExplainOptions(partitions=3)
        )
        assert bag == running_query.evaluate(person_db)
        assert metrics.operators


class TestCoalescing:
    def test_identical_concurrent_requests_coalesce(self, sharded_client):
        # A cold, deliberately slow request (unique to this test so the
        # module-scoped server cannot already have it cached) fired from
        # many threads at once: duplicates must attach to the in-flight
        # leader instead of recomputing.
        before, _ = serving_stats_from_json(sharded_client._request("GET", "/stats"))
        barrier = threading.Barrier(6)

        def fire(_):
            barrier.wait(timeout=30)
            return _canonical_result(
                sharded_client.explain(scenario="Q3", scale=220).raw
            )

        with ThreadPoolExecutor(max_workers=6) as pool:
            payloads = set(pool.map(fire, range(6)))
        after, _ = serving_stats_from_json(sharded_client._request("GET", "/stats"))
        assert len(payloads) == 1  # coalesced followers got the leader's bytes
        assert after["coalesced"] > before["coalesced"]

    def test_coalesced_requests_count_as_requests(self, sharded_client):
        serving, _ = serving_stats_from_json(sharded_client._request("GET", "/stats"))
        assert serving["requests"] >= serving["completed"] + serving["coalesced"]


class TestObservability:
    def test_health_reports_workers(self, sharded_client):
        health = sharded_client.health()
        assert health["status"] == "ok"
        assert health["processes"] == 2
        assert len(health["workers"]) == 2
        for worker in health["workers"]:
            assert worker["alive"]
            assert isinstance(worker["pid"], int)
        assert set(health["cache"]) == {"hits", "misses", "size"}

    def test_stats_payload_decodes_and_aggregates(self, sharded_client):
        sharded_client.explain(scenario="Q1", scale=20)
        serving, workers = serving_stats_from_json(
            sharded_client._request("GET", "/stats")
        )
        assert serving["mode"] == "sharded"
        assert serving["processes"] == 2
        assert serving["completed"] >= 1
        assert serving["qps"] > 0
        assert serving["latency_ms"]["p50_ms"] is not None
        assert serving["cache"]["hit_rate"] is not None
        assert len(workers) == 2
        assert sum(w["served"] for w in workers) >= serving["completed"]
        for worker in workers:
            assert set(worker["cache"]) == {"hits", "misses", "size"}
            assert worker["inflight"] == 0  # quiescent at probe time

    def test_scenarios_listing_matches_single_process(self, sharded_client):
        names = {s["name"] for s in sharded_client.scenarios()}
        assert {"Q1", "Q10", "T2"} <= names


class TestErrorMapping:
    def test_unknown_route_404(self, sharded_client):
        with pytest.raises(ApiError) as excinfo:
            sharded_client._request("GET", "/nope")
        assert excinfo.value.status == 404

    def test_wrong_method_405(self, sharded_client):
        with pytest.raises(ApiError) as excinfo:
            sharded_client._request("GET", "/explain")
        assert excinfo.value.status == 405
        with pytest.raises(ApiError) as excinfo:
            sharded_client._request("POST", "/stats", {"format": 2})
        assert excinfo.value.status == 405

    def test_unknown_scenario_400(self, sharded_client):
        with pytest.raises(ApiError) as excinfo:
            sharded_client.explain(scenario="Q999")
        assert excinfo.value.status == 400
        assert "unknown scenario" in str(excinfo.value)

    def test_client_error_does_not_kill_worker(self, sharded_client):
        with pytest.raises(ApiError):
            sharded_client.explain(scenario="Q999")
        health = sharded_client.health()
        assert health["status"] == "ok"
        assert all(w["restarts"] == 0 for w in health["workers"])
