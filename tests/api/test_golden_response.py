"""Pinned golden ``ExplainResponse`` wire document.

``golden_explain_response.json`` is the exact wire response for
``ExplainRequest(scenario="Q1", scale=20, optimize=False)`` from a fresh
service (timings emptied — they are the only non-deterministic field).  Any
diff here means the wire format changed: either revert the accidental
break, or — for a deliberate, policy-compliant change — regenerate the
fixture and document the change in ``docs/API.md``.

Regenerate with::

    PYTHONPATH=src python - <<'EOF'
    import json
    from repro.api import ExplainOptions, ExplainRequest, ExplanationService
    response = ExplanationService().explain(
        ExplainRequest(scenario="Q1", scale=20, options=ExplainOptions(optimize=False))
    )
    document = response.to_json()
    document["result"]["timings"] = {}
    with open("tests/api/golden_explain_response.json", "w") as fh:
        json.dump(document, fh, ensure_ascii=True, indent=1, sort_keys=True)
        fh.write("\n")
    EOF
"""

import json
from pathlib import Path

from repro.api import ExplainOptions, ExplainRequest, ExplanationService

GOLDEN = Path(__file__).parent / "golden_explain_response.json"


def test_explain_response_matches_golden_fixture():
    response = ExplanationService().explain(
        ExplainRequest(scenario="Q1", scale=20, options=ExplainOptions(optimize=False))
    )
    document = response.to_json()
    document["result"]["timings"] = {}
    golden = json.loads(GOLDEN.read_text())
    assert json.dumps(document, sort_keys=True) == json.dumps(golden, sort_keys=True)


def test_golden_fixture_is_wire_version_2():
    golden = json.loads(GOLDEN.read_text())
    assert golden["format"] == 2
    assert golden["kind"] == "explain-response"
    assert golden["result"]["explanations"], "fixture must pin real explanations"
