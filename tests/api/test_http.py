"""HTTP front end: endpoints, error mapping, client round-trips.

Boots a real :class:`~repro.api.http.ApiServer` on an ephemeral port in a
background thread and talks to it through :class:`repro.api.Client` — the
same path a non-Python caller takes, minus the process boundary (the CI
``api`` job covers the subprocess variant via ``tools/api_smoke.py``).
"""

import json
import threading
import urllib.error
import urllib.request

import pytest

from repro.api import ApiError, Client, ExplainOptions, ExplainRequest, ExplanationService
from repro.api.http import make_server
from repro.scenarios import get_scenario
from repro.whynot.explain import explain


@pytest.fixture(scope="module")
def server():
    server = make_server(ExplanationService(cache_size=8))
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    yield server
    server.shutdown()
    server.server_close()
    server.service.close()


@pytest.fixture(scope="module")
def client(server):
    host, port = server.server_address[:2]
    return Client(f"http://{host}:{port}")


def _post_raw(server, path, body: bytes, content_type="application/json"):
    host, port = server.server_address[:2]
    request = urllib.request.Request(
        f"http://{host}:{port}{path}",
        data=body,
        headers={"Content-Type": content_type},
        method="POST",
    )
    try:
        with urllib.request.urlopen(request, timeout=30) as response:
            return response.status, json.loads(response.read())
    except urllib.error.HTTPError as exc:
        return exc.code, json.loads(exc.read())


class TestHealthAndScenarios:
    def test_health(self, client):
        health = client.health()
        assert health["status"] == "ok"
        assert health["wire_format"] == 2
        assert set(health["cache"]) == {"hits", "misses", "size"}

    def test_scenarios(self, client):
        names = {s["name"] for s in client.scenarios()}
        assert {"Q1", "Q10", "T2"} <= names


class TestExplainEndpoint:
    def test_scenario_shorthand_matches_in_process(self, client):
        scenario = get_scenario("Q1")
        direct = explain(scenario.question(20), alternatives=scenario.alternatives)
        response = client.explain(scenario="Q1", scale=20)
        assert response.explanation_sets() == [
            frozenset(e.labels) for e in direct.explanations
        ]
        assert response.n_sas == direct.n_sas

    def test_repeat_is_served_from_cache(self, client):
        cold = client.explain(scenario="Q4", scale=20)
        warm = client.explain(scenario="Q4", scale=20)
        assert not cold.cached and warm.cached
        assert warm.cache["hits"] >= cold.cache["hits"] + 1
        assert warm.explanation_sets() == cold.explanation_sets()

    def test_inline_database_request(self, client, running_question):
        direct = explain(running_question)
        response = client.explain(
            ExplainRequest(
                query=running_question.query,
                nip=running_question.nip,
                database=running_question.db,
            )
        )
        assert response.explanation_sets() == [
            frozenset(e.labels) for e in direct.explanations
        ]


class TestQueryEndpoint:
    def test_query_round_trip(self, client, person_db, running_query):
        bag, metrics = client.query(
            running_query, person_db, ExplainOptions(partitions=3)
        )
        assert bag == running_query.evaluate(person_db)
        assert metrics.operators  # per-operator counters came back


class TestErrorMapping:
    def test_unknown_route_404(self, client):
        with pytest.raises(ApiError) as excinfo:
            client._request("GET", "/nope")
        assert excinfo.value.status == 404

    def test_wrong_method_405(self, client):
        with pytest.raises(ApiError) as excinfo:
            client._request("GET", "/explain")
        assert excinfo.value.status == 405

    def test_invalid_json_400(self, server):
        status, payload = _post_raw(server, "/v1/explain", b"{not json")
        assert status == 400
        assert payload["error"]["type"] == "ValueError"

    def test_unknown_scenario_400(self, client):
        with pytest.raises(ApiError) as excinfo:
            client.explain(scenario="Q999")
        assert excinfo.value.status == 400
        assert "unknown scenario" in str(excinfo.value)

    def test_unsupported_wire_version_400(self, server):
        status, payload = _post_raw(
            server, "/v1/explain", json.dumps({"format": 99}).encode()
        )
        assert status == 400
        assert "unsupported wire format" in payload["error"]["message"]

    def test_empty_body_400(self, server):
        status, payload = _post_raw(server, "/v1/explain", b"")
        assert status == 400
