"""Single-process serving edges: cache boundary, body limits, client retries.

These close the gaps the happy-path suite (``test_http.py``) leaves open:
LRU eviction observed *through* the HTTP layer at the exact ``--cache-size``
boundary, the request-body guardrails (oversized, non-object JSON), and the
:class:`repro.api.Client` retry/timeout contract exercised against stub
servers with scripted failure behaviour.
"""

import json
import socket
import threading
import urllib.error
import urllib.request
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer

import pytest

from repro.api import ApiError, Client, ExplanationService
from repro.api.http import make_server


@pytest.fixture
def boot_api():
    """Boot a real API server with per-test knobs; torn down afterwards."""
    servers = []

    def boot(**kwargs):
        server = make_server(**kwargs)
        thread = threading.Thread(target=server.serve_forever, daemon=True)
        thread.start()
        servers.append(server)
        host, port = server.server_address[:2]
        return server, Client(f"http://{host}:{port}", timeout=60)

    yield boot
    for server in servers:
        server.shutdown()
        server.server_close()
        server.service.close()


def _post_raw(server, path, body: bytes):
    host, port = server.server_address[:2]
    request = urllib.request.Request(
        f"http://{host}:{port}{path}",
        data=body,
        headers={"Content-Type": "application/json"},
        method="POST",
    )
    try:
        with urllib.request.urlopen(request, timeout=30) as response:
            return response.status, json.loads(response.read())
    except urllib.error.HTTPError as exc:
        return exc.code, json.loads(exc.read())


class TestCacheBoundary:
    """Eviction at exactly ``--cache-size`` entries, observed over HTTP."""

    def test_eviction_at_cache_size_boundary(self, boot_api):
        server, client = boot_api(service=ExplanationService(cache_size=2))
        for scale in (20, 21, 22):  # third insert evicts the oldest (20)
            assert not client.explain(scenario="Q1", scale=scale).cached
        assert client.health()["cache"]["size"] == 2
        evicted = client.explain(scenario="Q1", scale=20)
        assert not evicted.cached, "entry beyond the boundary must be recomputed"
        assert evicted.cache["size"] == 2  # still bounded after re-insert

    def test_recency_not_insertion_order_decides_eviction(self, boot_api):
        server, client = boot_api(service=ExplanationService(cache_size=2))
        client.explain(scenario="Q1", scale=20)
        client.explain(scenario="Q1", scale=21)
        client.explain(scenario="Q1", scale=20)  # refresh 20 → 21 is now LRU
        client.explain(scenario="Q1", scale=22)  # evicts 21, not 20
        assert client.explain(scenario="Q1", scale=20).cached
        assert not client.explain(scenario="Q1", scale=21).cached


class TestBodyGuardrails:
    def test_oversized_body_is_400_not_read(self, boot_api):
        server, client = boot_api(max_body_bytes=64)
        status, document = _post_raw(
            server, "/v1/explain", b'{"pad": "' + b"x" * 200 + b'"}'
        )
        assert status == 400
        assert "exceeds 64 bytes" in document["error"]["message"]

    def test_non_object_json_body_is_400(self, boot_api):
        server, _ = boot_api()
        for body in (b"[1, 2, 3]", b'"scenario"', b"42"):
            status, document = _post_raw(server, "/v1/explain", body)
            assert status == 400, f"body {body!r} must be a client error"
            assert "JSON object" in document["error"]["message"]

    def test_small_valid_request_fits_under_a_tight_limit(self, boot_api):
        # The cap must not reject legitimate scenario-shorthand requests.
        server, client = boot_api(max_body_bytes=4096)
        assert client.explain(scenario="Q1", scale=20).explanation_sets()


class _ScriptedHandler(BaseHTTPRequestHandler):
    """Replays the server's scripted (status, headers) per request."""

    def log_message(self, format, *args):  # noqa: A002 - stdlib signature
        pass

    def do_GET(self):  # noqa: N802 - stdlib naming
        self.server.calls += 1
        if self.server.calls <= self.server.failures:
            status, headers = self.server.failure
            body = json.dumps(
                {"error": {"type": "Overloaded", "message": "scripted"}}
            ).encode("ascii")
        else:
            status, headers = 200, {}
            body = json.dumps({"status": "ok"}).encode("ascii")
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        for name, value in headers.items():
            self.send_header(name, value)
        self.end_headers()
        self.wfile.write(body)


@pytest.fixture
def scripted_server():
    servers = []

    def boot(failures, failure=(503, {"Retry-After": "0"})):
        server = ThreadingHTTPServer(("127.0.0.1", 0), _ScriptedHandler)
        server.calls = 0
        server.failures = failures
        server.failure = failure
        thread = threading.Thread(target=server.serve_forever, daemon=True)
        thread.start()
        servers.append(server)
        host, port = server.server_address[:2]
        return server, f"http://{host}:{port}"

    yield boot
    for server in servers:
        server.shutdown()
        server.server_close()


class TestClientRetries:
    def test_retries_ride_out_503_with_retry_after(self, scripted_server):
        server, url = scripted_server(failures=2)
        client = Client(url, timeout=10, retries=3, retry_backoff=0.01)
        assert client.health()["status"] == "ok"
        assert client.last_attempts == 3
        assert server.calls == 3

    def test_retries_exhausted_raises_the_503(self, scripted_server):
        server, url = scripted_server(failures=99)
        client = Client(url, timeout=10, retries=2, retry_backoff=0.01)
        with pytest.raises(ApiError) as excinfo:
            client.health()
        assert excinfo.value.status == 503
        assert client.last_attempts == 3

    def test_4xx_and_500_are_never_retried(self, scripted_server):
        for status in (400, 404, 500):
            server, url = scripted_server(failures=99, failure=(status, {}))
            client = Client(url, timeout=10, retries=5, retry_backoff=0.01)
            with pytest.raises(ApiError) as excinfo:
                client.health()
            assert excinfo.value.status == status
            assert client.last_attempts == 1, f"{status} must not be retried"
            assert server.calls == 1

    def test_transport_failure_is_retried_then_raised(self):
        # Bind-then-close guarantees a dead port: every attempt is refused.
        probe = socket.socket()
        probe.bind(("127.0.0.1", 0))
        port = probe.getsockname()[1]
        probe.close()
        client = Client(
            f"http://127.0.0.1:{port}", timeout=5, retries=2, retry_backoff=0.01
        )
        with pytest.raises(urllib.error.URLError):
            client.health()
        assert client.last_attempts == 3

    def test_zero_retries_is_the_default_single_shot(self, scripted_server):
        server, url = scripted_server(failures=1)
        client = Client(url, timeout=10)
        with pytest.raises(ApiError):
            client.health()
        assert client.last_attempts == 1


class TestClientTimeout:
    def test_read_timeout_surfaces_as_transport_error(self):
        # A socket that accepts connections but never answers: the client's
        # read deadline must fire instead of hanging the caller.
        listener = socket.socket()
        listener.bind(("127.0.0.1", 0))
        listener.listen(1)
        port = listener.getsockname()[1]
        try:
            client = Client(f"http://127.0.0.1:{port}", timeout=0.3)
            with pytest.raises((urllib.error.URLError, TimeoutError)):
                client.health()
        finally:
            listener.close()
