"""Sharded serving under faults: worker crashes, saturation, timeouts.

The contract being proven: a request sent to a sharded server either
*completes* with the correct payload or *fails with a clean 503* (JSON
error body + ``Retry-After``) — it never hangs and never yields partial
JSON.  Killing a worker process mid-load must leave the front end healthy:
the worker is respawned, subsequent requests succeed, and only the
in-flight requests of the dead worker are shed.
"""

import os
import signal
import threading
import time
from concurrent.futures import ThreadPoolExecutor

import pytest

from repro.api import ApiError, Client, ExplainOptions, ShardedConfig
from repro.api.sharded import make_sharded_server
from repro.wire import serving_stats_from_json


@pytest.fixture
def boot_server():
    """Boot a sharded server with per-test knobs; torn down afterwards."""
    servers = []

    def boot(**kwargs):
        server = make_sharded_server(ShardedConfig(**kwargs))
        thread = threading.Thread(target=server.serve_forever, daemon=True)
        thread.start()
        servers.append(server)
        host, port = server.server_address[:2]
        return server, Client(f"http://{host}:{port}", timeout=60)

    yield boot
    for server in servers:
        server.shutdown()
        server.server_close()
        server.dispatcher.close()


def _wait_until(predicate, timeout=15.0, interval=0.05):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return True
        time.sleep(interval)
    return False


class TestWorkerCrash:
    def test_killed_worker_is_respawned(self, boot_server):
        server, client = boot_server(processes=2, cache_size=8)
        health = client.health()
        victim = health["workers"][0]["pid"]
        os.kill(victim, signal.SIGKILL)

        def respawned():
            h = client.health()
            return (
                h["status"] == "ok"
                and h["workers"][0]["restarts"] == 1
                and h["workers"][0]["pid"] != victim
                and h["workers"][0]["alive"]
            )

        assert _wait_until(respawned), "front end did not respawn the dead worker"
        # The fresh worker serves correctly (its cache restarted empty).
        response = client.explain(scenario="Q1", scale=20)
        assert response.explanation_sets()

    def test_crash_mid_load_completes_or_clean_503(self, boot_server):
        # One worker so every request lands on the victim process.  Distinct
        # max_sas values make the burst non-coalescible, so several requests
        # are genuinely in flight when the kill lands.
        server, client = boot_server(processes=1, queue_depth=32, cache_size=8)
        host, port = server.server_address[:2]
        victim = client.health()["workers"][0]["pid"]

        def fire(i):
            worker_client = Client(f"http://{host}:{port}", timeout=60)
            try:
                response = worker_client.explain(
                    scenario="Q1",
                    scale=300,
                    options=ExplainOptions(max_sas=100 + i),
                )
                return ("ok", response.explanation_sets())
            except ApiError as exc:
                return ("error", exc.status, exc.error_type)

        with ThreadPoolExecutor(max_workers=8) as pool:
            futures = [pool.submit(fire, i) for i in range(8)]
            time.sleep(0.25)  # let several requests reach the worker
            os.kill(victim, signal.SIGKILL)
            outcomes = [f.result(timeout=90) for f in futures]

        # Every request resolved: correct payload or a clean, typed 503 —
        # the client would have raised on partial/undecodable JSON instead.
        statuses = {o[0] for o in outcomes}
        assert statuses <= {"ok", "error"}
        for outcome in outcomes:
            if outcome[0] == "ok":
                assert outcome[1], "completed request returned no explanations"
            else:
                assert outcome[1] == 503, f"expected clean 503, got {outcome}"
        assert any(o[0] == "error" for o in outcomes), (
            "the kill landed on an idle worker — in-flight requests expected"
        )
        assert _wait_until(lambda: client.health()["status"] == "ok")
        # After respawn the same questions answer fine.
        again = client.explain(
            scenario="Q1", scale=300, options=ExplainOptions(max_sas=100)
        )
        assert again.explanation_sets()

    def test_crash_shows_in_stats_restarts(self, boot_server):
        server, client = boot_server(processes=2, cache_size=8)
        os.kill(client.health()["workers"][1]["pid"], signal.SIGKILL)
        assert _wait_until(lambda: client.health()["status"] == "ok")
        serving, workers = serving_stats_from_json(client._request("GET", "/stats"))
        assert serving["restarts"] == 1
        assert workers[1]["restarts"] == 1 and workers[0]["restarts"] == 0


class TestSaturation:
    def test_503_with_retry_after_before_queue_explodes(self, boot_server):
        server, client = boot_server(processes=1, queue_depth=2, cache_size=8)
        host, port = server.server_address[:2]

        def fire(i):
            worker_client = Client(f"http://{host}:{port}", timeout=60)
            try:
                response = worker_client.explain(
                    scenario="Q1",
                    scale=300,
                    options=ExplainOptions(max_sas=200 + i),
                )
                return ("ok", response.explanation_sets())
            except ApiError as exc:
                return ("error", exc.status, exc.retry_after)

        with ThreadPoolExecutor(max_workers=12) as pool:
            outcomes = list(pool.map(fire, range(12)))

        rejected = [o for o in outcomes if o[0] == "error"]
        completed = [o for o in outcomes if o[0] == "ok"]
        assert rejected, "burst of 12 at queue depth 2 must shed load"
        for outcome in rejected:
            assert outcome[1] == 503
            assert outcome[2] is not None and outcome[2] >= 1  # Retry-After header
        for outcome in completed:
            assert outcome[1]
        serving, workers = serving_stats_from_json(client._request("GET", "/stats"))
        assert serving["rejected"] >= len(rejected)
        # Shedding is immediate: nothing ever queues past the bound.
        assert workers[0]["inflight"] <= 2

    def test_shed_load_is_not_counted_as_completed(self, boot_server):
        server, client = boot_server(processes=1, queue_depth=1, cache_size=8)
        host, port = server.server_address[:2]

        def fire(i):
            worker_client = Client(f"http://{host}:{port}", timeout=60)
            try:
                worker_client.explain(
                    scenario="Q4",
                    scale=300,
                    options=ExplainOptions(max_sas=300 + i),
                )
                return "ok"
            except ApiError:
                return "rejected"

        with ThreadPoolExecutor(max_workers=8) as pool:
            outcomes = list(pool.map(fire, range(8)))
        serving, _ = serving_stats_from_json(client._request("GET", "/stats"))
        assert serving["completed"] == outcomes.count("ok")
        assert serving["rejected"] == outcomes.count("rejected")
        assert serving["requests"] >= serving["completed"] + serving["rejected"]


class TestRequestTimeout:
    def test_stuck_request_yields_503_not_a_hang(self, boot_server):
        # A request slower than the front-end bound must come back as a
        # typed 503 within ~the timeout, never hang the HTTP thread.
        server, client = boot_server(
            processes=1, cache_size=8, request_timeout=0.05
        )
        started = time.monotonic()
        with pytest.raises(ApiError) as excinfo:
            client.explain(scenario="Q1", scale=500)
        elapsed = time.monotonic() - started
        assert excinfo.value.status == 503
        assert excinfo.value.error_type == "Timeout"
        assert excinfo.value.retry_after is not None
        assert elapsed < 30
        serving, _ = serving_stats_from_json(client._request("GET", "/stats"))
        assert serving["timeouts"] >= 1


class TestClientRetries:
    def test_retrying_client_rides_out_backpressure(self, boot_server):
        server, client = boot_server(processes=1, queue_depth=1, cache_size=8)
        host, port = server.server_address[:2]
        retrying = Client(
            f"http://{host}:{port}", timeout=60, retries=8, max_retry_wait=0.2
        )

        def fire(i):
            return retrying.explain(
                scenario="Q6",
                scale=200,
                options=ExplainOptions(max_sas=400 + i),
            ).explanation_sets() is not None

        # Without retries a burst at depth 1 sheds most requests (proved
        # above); with retries every request eventually lands.
        with ThreadPoolExecutor(max_workers=6) as pool:
            assert all(pool.map(fire, range(6)))


class TestWorkerBackendDefault:
    def test_worker_ignores_process_backend_env(self, boot_server, monkeypatch):
        # Shard workers default to serial evaluation even when the
        # environment asks for the process backend: nesting a process pool
        # inside a forked, threaded worker deadlocks, and the front end's
        # scaling axis is --processes.  The env var is set before boot so
        # the forked worker inherits it; a bounded request_timeout turns a
        # regression into a fast 503 instead of a hung test.
        monkeypatch.setenv("REPRO_BACKEND", "process")
        monkeypatch.setenv("REPRO_WORKERS", "2")
        server, client = boot_server(
            processes=1, cache_size=8, request_timeout=20.0
        )
        response = client.explain(scenario="Q1", scale=20)
        assert response.explanation_sets()
