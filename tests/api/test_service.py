"""ExplanationService behaviour: registry, validation, cache, dispatch."""

import pytest

from repro.api import (
    BadRequest,
    ExplainOptions,
    ExplainRequest,
    ExplanationService,
    UnknownDatabase,
)
from repro.nested.values import Bag, Tup
from repro.scenarios import get_scenario
from repro.whynot.explain import explain
from repro.whynot.placeholders import ANY, STAR
from repro.whynot.question import IllPosedQuestion


def _request(question, alternatives=(), **kwargs):
    return ExplainRequest(
        query=question.query,
        nip=question.nip,
        database=question.db,
        alternatives=alternatives,
        **kwargs,
    )


class TestRegistry:
    def test_register_and_lookup(self, person_db):
        service = ExplanationService()
        service.register_database("people", person_db)
        assert service.database("people") is person_db
        assert service.databases() == ["people"]

    def test_unknown_database(self):
        service = ExplanationService()
        with pytest.raises(UnknownDatabase, match="nope"):
            service.database("nope")

    def test_by_name_requests_resolve(self, person_db, running_question):
        service = ExplanationService(databases={"people": person_db})
        request = ExplainRequest(
            query=running_question.query, nip=running_question.nip, database="people"
        )
        response = service.explain(request)
        direct = explain(running_question)
        assert response.explanation_sets() == [
            frozenset(e.labels) for e in direct.explanations
        ]

    def test_scenarios_listing(self):
        entries = ExplanationService().scenarios()
        names = {e["name"] for e in entries}
        assert {"Q1", "Q10", "T2", "C3", "D3"} <= names
        q10 = next(e for e in entries if e["name"] == "Q10")
        assert q10["gold"]  # the paper defines a gold explanation for Q10


class TestValidation:
    def test_incomplete_request(self):
        with pytest.raises(BadRequest, match="scenario name or query"):
            ExplanationService().explain(ExplainRequest())

    def test_unknown_scenario(self):
        with pytest.raises(BadRequest, match="unknown scenario"):
            ExplanationService().explain(ExplainRequest(scenario="Q999"))

    def test_ill_posed_question(self, person_db, running_query):
        # ⟨city: LA, ...⟩ is present in the result: Definition 5 fails.
        request = ExplainRequest(
            query=running_query,
            nip=Tup(city="LA", nList=Bag([ANY, STAR])),
            database=person_db,
        )
        with pytest.raises(IllPosedQuestion):
            ExplanationService().explain(request)

    @pytest.mark.parametrize("scale", [0, -3, "20", 2.5, True])
    def test_bad_scenario_scale_rejected(self, scale):
        with pytest.raises(BadRequest, match="scale"):
            ExplanationService().explain(ExplainRequest(scenario="Q1", scale=scale))

    def test_huge_scenario_scale_rejected(self):
        # scale sizes a synchronous database build from network input.
        with pytest.raises(BadRequest, match="serving limit"):
            ExplanationService().explain(ExplainRequest(scenario="Q1", scale=10**8))

    def test_scenario_db_cache_is_bounded(self):
        service = ExplanationService()
        service._scenario_db_limit = 2
        for scale in (5, 6, 7, 8):
            service.prepare(ExplainRequest(scenario="Q1", scale=scale))
        assert len(service._scenario_dbs) == 2

    def test_unknown_option_fields_rejected(self):
        with pytest.raises(BadRequest, match="unknown option"):
            ExplainOptions.from_json({"backend": "serial", "typo": 1})

    def test_prepare_validates(self, running_question):
        service = ExplanationService()
        question, alternatives, key = service.prepare(_request(running_question))
        assert question.nip == running_question.nip
        assert isinstance(key, int)


class TestCache:
    def test_hit_counters_and_flag(self, running_question):
        service = ExplanationService(cache_size=4)
        request = _request(running_question)
        first = service.explain(request)
        second = service.explain(_request(running_question))
        assert not first.cached and second.cached
        assert second.cache == {"hits": 1, "misses": 1, "size": 1}
        assert second.explanation_sets() == first.explanation_sets()
        # The cached response reuses the computed result object: no re-trace.
        assert second.result is first.result

    def test_use_cache_false_bypasses(self, running_question):
        service = ExplanationService(cache_size=4)
        service.explain(_request(running_question), use_cache=False)
        response = service.explain(_request(running_question), use_cache=False)
        assert not response.cached
        assert service.cache_stats() == {"hits": 0, "misses": 0, "size": 0}

    def test_execution_knobs_share_cache_entries(self, running_question):
        # backend/partitions/optimize don't change explanations (equivalence
        # guarantees), so they share one cache entry.
        service = ExplanationService(cache_size=4)
        service.explain(_request(running_question))
        response = service.explain(
            _request(running_question, options=ExplainOptions(optimize=True))
        )
        assert response.cached

    def test_semantic_knobs_get_separate_entries(self, running_question):
        service = ExplanationService(cache_size=4)
        service.explain(_request(running_question))
        response = service.explain(
            _request(
                running_question,
                options=ExplainOptions(use_schema_alternatives=False),
            )
        )
        assert not response.cached
        assert service.cache_stats()["size"] == 2

    def test_alternatives_change_the_key(self, running_question):
        service = ExplanationService(cache_size=4)
        service.explain(_request(running_question))
        response = service.explain(
            _request(
                running_question,
                alternatives=[["person.address2", "person.address1"]],
            )
        )
        assert not response.cached

    def test_lru_eviction(self, running_question):
        service = ExplanationService(cache_size=1)
        service.explain(_request(running_question))
        service.explain(ExplainRequest(scenario="Q1", scale=10))
        assert service.cache_stats()["size"] == 1
        response = service.explain(_request(running_question))
        assert not response.cached  # evicted by the Q1 entry

    def test_clear_cache(self, running_question):
        service = ExplanationService(cache_size=4)
        service.explain(_request(running_question))
        service.clear_cache()
        assert service.cache_stats()["size"] == 0
        assert not service.explain(_request(running_question)).cached


class TestScenarioShorthand:
    def test_matches_direct_run(self):
        scenario = get_scenario("Q1")
        direct = explain(scenario.question(20), alternatives=scenario.alternatives)
        response = ExplanationService().explain(ExplainRequest(scenario="Q1", scale=20))
        assert response.explanation_sets() == [
            frozenset(e.labels) for e in direct.explanations
        ]
        assert response.result.n_sas == direct.n_sas

    def test_directed_alternative_groups_served(self):
        # T2's alternatives use the directed (from, [to, ...]) pair form.
        scenario = get_scenario("T2")
        direct = explain(scenario.question(20), alternatives=scenario.alternatives)
        response = ExplanationService().explain(ExplainRequest(scenario="T2", scale=20))
        assert response.explanation_sets() == [
            frozenset(e.labels) for e in direct.explanations
        ]


class TestConcurrentDispatch:
    def test_submit_fans_out_and_caches(self, running_question):
        service = ExplanationService(cache_size=8, max_concurrency=4)
        futures = [service.submit(_request(running_question)) for _ in range(6)]
        responses = [f.result(timeout=120) for f in futures]
        sets = {
            tuple(tuple(sorted(s)) for s in r.explanation_sets()) for r in responses
        }
        assert len(sets) == 1  # all six agree
        stats = service.cache_stats()
        assert stats["hits"] + stats["misses"] == 6
        assert stats["hits"] >= 1  # repeats were served from the cache
        service.close()

    def test_close_is_idempotent(self):
        service = ExplanationService()
        service.close()
        service.close()


class TestRequestWire:
    def test_request_round_trip_inline_db(self, running_question):
        request = _request(running_question, name="rt")
        decoded = ExplainRequest.from_json(request.to_json())
        assert decoded.name == "rt"
        response_a = ExplanationService().explain(decoded)
        response_b = ExplanationService().explain(request)
        assert response_a.explanation_sets() == response_b.explanation_sets()

    def test_request_round_trip_scenario(self):
        request = ExplainRequest(scenario="Q1", scale=20)
        decoded = ExplainRequest.from_json(request.to_json())
        assert decoded.scenario == "Q1" and decoded.scale == 20

    def test_response_wire_document(self, running_question):
        response = ExplanationService().explain(_request(running_question))
        document = response.to_json()
        assert document["format"] == 2 and document["kind"] == "explain-response"
        assert document["result"]["kind"] == "result"
        assert document["cached"] is False
