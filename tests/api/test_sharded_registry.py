"""Sharded database registry: replicated registration, mutation, convergence.

The sharded front end replicates every ``PUT /v1/databases/{name}`` and
``POST /v1/databases/{name}/mutate`` to **all** workers (registry writes are
broadcast, not routed), so a request that lands on any worker sees the same
version chain.  These tests pin:

* register through the front end → every worker holds the database
  (the info response carries a per-worker ``shards`` view and a
  ``converged`` flag that must be true);
* mutate through the front end → each worker advances, reads through any
  worker observe the new version, and version-aware caches invalidate;
* a crashed worker is respawned and the registry **replayed** from the
  dispatcher's log, so convergence survives worker loss;
* error mapping: 404 unknown name, 405 wrong method, client errors don't
  kill workers.

Crash/replay scenarios spawn their own short-lived servers; the happy-path
tests share the module server.
"""

import json
import os
import signal
import threading
import time
import urllib.error
import urllib.request

import pytest

from repro.api import ApiError, Client, ExplainRequest, ShardedConfig
from repro.api.sharded import make_sharded_server
from repro.algebra.expressions import Attr, Cmp, Const
from repro.algebra.operators import Projection, Query, Selection, TableAccess
from repro.engine.database import Database
from repro.nested.values import Tup


def _small_db():
    return Database({"T": [Tup(a=1, b="x"), Tup(a=5, b="y")],
                     "U": [Tup(c=7)]})


@pytest.fixture(scope="module")
def sharded_server():
    server = make_sharded_server(ShardedConfig(processes=2, cache_size=32))
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    yield server
    server.shutdown()
    server.server_close()
    server.dispatcher.close()


@pytest.fixture(scope="module")
def sharded_client(sharded_server):
    host, port = sharded_server.server_address[:2]
    return Client(f"http://{host}:{port}")


class TestReplicatedRegistry:
    def test_register_reaches_every_worker(self, sharded_client):
        info = sharded_client.register_database("alpha", _small_db())
        assert info["version_id"] == 0
        assert info["converged"] is True
        assert len(info["shards"]) == 2
        assert all(s["version_id"] == 0 for s in info["shards"])

    def test_listing_reports_converged_views(self, sharded_client):
        sharded_client.register_database("listed", _small_db())
        document = sharded_client._request("GET", "/databases")
        assert document["converged"] is True
        names = {d["name"] for d in document["databases"]}
        assert "listed" in names

    def test_mutate_advances_all_workers(self, sharded_client):
        sharded_client.register_database("beta", _small_db())
        info = sharded_client.mutate("beta", inserts={"T": [{"a": 9, "b": "z"}]})
        assert info["version_id"] == 1
        assert info["converged"] is True
        assert all(s["version_id"] == 1 for s in info["shards"])
        # A read through the front end (any worker) sees the new version.
        assert sharded_client.database("beta")["version_id"] == 1

    def test_explain_by_name_tracks_mutations(self, sharded_client):
        sharded_client.register_database("gamma", _small_db())
        query = Query(
            Selection(TableAccess("T"), Cmp(">=", Attr("a"), Const(3)))
        )
        request = ExplainRequest(
            query=query, nip=Tup(a=1, b="x"), database="gamma"
        )
        sharded_client.explain(request=request)
        warm = sharded_client.explain(request=request)
        assert warm.cached
        # Insert a second passing row; the broadcast mutation must invalidate
        # the cached entry on whichever worker holds it.
        sharded_client.mutate("gamma", inserts={"T": [{"a": 7, "b": "w"}]})
        after = sharded_client.explain(request=request)
        assert not after.cached

    def test_mutate_through_one_worker_read_through_another(self, sharded_client):
        """Registry writes broadcast, so no matter which worker serves the
        follow-up read (forced here by distinct request contents routing to
        different workers), the version matches."""
        sharded_client.register_database("delta", _small_db())
        sharded_client.mutate("delta", deletes={"T": [{"a": 1, "b": "x"}]})
        # database-info requests are broadcast reads: every worker replies,
        # and the response only converges if both applied the mutation.
        info = sharded_client.database("delta")
        assert info["version_id"] == 1
        assert info["converged"] is True
        assert info["tables"]["T"]["rows"] == 1

    def test_health_reports_database_names(self, sharded_client):
        sharded_client.register_database("seen_in_health", _small_db())
        health = sharded_client.health()
        assert "seen_in_health" in health["databases"]

    def test_unknown_database_404(self, sharded_client):
        with pytest.raises(ApiError) as exc_info:
            sharded_client.database("missing")
        assert exc_info.value.status == 404
        with pytest.raises(ApiError) as exc_info:
            sharded_client.mutate("missing", inserts={})
        assert exc_info.value.status == 404

    def test_invalid_mutation_is_400_and_harmless(self, sharded_client):
        sharded_client.register_database("eps", _small_db())
        with pytest.raises(ApiError) as exc_info:
            sharded_client.mutate("eps", deletes={"T": [{"a": 42, "b": "?"}]})
        assert exc_info.value.status == 400
        # The failed mutation left every worker at version 0, still converged.
        info = sharded_client.database("eps")
        assert info["version_id"] == 0 and info["converged"] is True

    def test_wrong_methods(self, sharded_server):
        host, port = sharded_server.server_address[:2]

        def status_of(method, path, body=None):
            request = urllib.request.Request(
                f"http://{host}:{port}{path}",
                data=json.dumps(body).encode() if body is not None else None,
                headers={"Content-Type": "application/json"},
                method=method,
            )
            try:
                with urllib.request.urlopen(request, timeout=30) as response:
                    return response.status
            except urllib.error.HTTPError as exc:
                return exc.code

        assert status_of("GET", "/v1/databases/x/mutate") == 405
        assert status_of("POST", "/v1/databases/x", {}) == 405
        assert status_of("PUT", "/v1/databases", {}) == 404


class TestCrashReplay:
    def test_registry_survives_worker_crash(self):
        """SIGKILL one worker; the dispatcher respawns it and replays the
        registry log, so reads still converge on the pre-crash state."""
        server = make_sharded_server(ShardedConfig(processes=2, cache_size=8))
        thread = threading.Thread(target=server.serve_forever, daemon=True)
        thread.start()
        try:
            host, port = server.server_address[:2]
            client = Client(f"http://{host}:{port}")
            client.register_database("durable", _small_db())
            client.mutate("durable", inserts={"T": [{"a": 3, "b": "k"}]})

            victim = server.dispatcher.workers[0]
            os.kill(victim.process.pid, signal.SIGKILL)
            deadline = time.monotonic() + 10.0
            while time.monotonic() < deadline:
                try:
                    info = client.database("durable")
                    if info["converged"] and len(info["shards"]) == 2:
                        break
                except ApiError:
                    pass
                time.sleep(0.2)
            info = client.database("durable")
            assert info["version_id"] == 1
            assert info["converged"] is True
            assert info["tables"]["T"]["rows"] == 3
        finally:
            server.shutdown()
            server.server_close()
            server.dispatcher.close()
