"""Serving-layer mutations: versioned registry, cache warmth, HTTP routes.

Pins the tentpole's serving guarantees:

* ``POST /v1/databases/{name}/mutate`` advances a registered database one
  version on both the in-process service and over HTTP;
* the result cache is **version-aware**: a mutation invalidates exactly the
  cached entries whose queries *read* a mutated relation of that database —
  entries for other databases (and for untouched relations of the same
  database) stay warm, proven through hit counters;
* an insert that satisfies a why-not question turns the explain error into
  a typed "question satisfied" response when the request opts in via
  ``satisfied_ok`` (and stays a client error when it does not);
* the ``GET /v1/databases[/{name}]`` listing/info endpoints and their
  error mapping (404 unknown name, 405 wrong method).
"""

import threading

import pytest

from repro.api import ApiError, Client, ExplainRequest, ExplanationService
from repro.api.http import make_server
from repro.api.service import SatisfiedResponse, UnknownDatabase
from repro.algebra.expressions import Attr, Cmp, Const
from repro.algebra.operators import Projection, Query, Selection, TableAccess
from repro.engine.database import Database, Mutation
from repro.nested.values import Bag, Tup


def _db_a():
    return Database({"T": [Tup(a=1, b="x"), Tup(a=5, b="y")],
                     "U": [Tup(c=7)]})


def _db_b():
    return Database({"V": [Tup(d=1), Tup(d=2)]})


def _filter_request(database, nip=None):
    query = Query(Selection(TableAccess("T"), Cmp(">=", Attr("a"), Const(3))))
    return ExplainRequest(
        query=query, nip=nip or Tup(a=1, b="x"), database=database
    )


class TestServiceMutations:
    def test_mutate_advances_the_registered_version(self):
        service = ExplanationService()
        service.register_database("a", _db_a())
        service.mutate_database("a", inserts={"T": [Tup(a=9, b="z")]})
        db = service.database("a")
        assert db.version_id == 1
        assert db.relation("T").mult(Tup(a=9, b="z")) == 1
        assert service.database_info("a")["version_id"] == 1

    def test_mutate_unknown_database(self):
        service = ExplanationService()
        with pytest.raises(UnknownDatabase):
            service.mutate_database("nope", inserts={})

    def test_listing_reports_versions_and_row_counts(self):
        service = ExplanationService()
        service.register_database("a", _db_a())
        service.register_database("b", _db_b())
        service.mutate_database("b", deletes={"V": [Tup(d=1)]})
        listing = service.database_listing()
        byname = {d["name"]: d for d in listing["databases"]}
        assert byname["a"]["version_id"] == 0
        assert byname["b"]["version_id"] == 1
        assert byname["b"]["tables"]["V"]["rows"] == 1

    def test_mutation_invalidates_only_entries_reading_mutated_relations(self):
        service = ExplanationService(cache_size=8)
        service.register_database("a", _db_a())
        service.register_database("b", _db_b())
        req_a = _filter_request("a")
        req_b = ExplainRequest(
            query=Query(Projection(TableAccess("V"), ["d"])),
            nip=Tup(d=99),
            database="b",
        )
        assert not service.explain(req_a).cached
        assert not service.explain(req_b).cached
        assert service.explain(req_a).cached and service.explain(req_b).cached
        hits_before = service.cache_stats()["hits"]
        # Mutating a relation req_a READS ("T" of database a) must evict
        # exactly that entry; database b's entry stays warm.
        service.mutate_database("a", Mutation(inserts={"T": [Tup(a=4, b="q")]}))
        assert not service.explain(_filter_request("a")).cached
        assert service.explain(req_b).cached
        assert service.cache_stats()["hits"] == hits_before + 1

    def test_mutating_an_unread_relation_keeps_the_entry_warm(self):
        service = ExplanationService(cache_size=8)
        service.register_database("a", _db_a())
        req = _filter_request("a")  # reads only "T"
        service.explain(req)
        service.mutate_database("a", inserts={"U": [Tup(c=8)]})
        assert service.explain(_filter_request("a")).cached

    def test_satisfied_opt_in_returns_typed_response(self):
        service = ExplanationService()
        service.register_database("a", _db_a())
        # Insert the "missing" row: the question is now answered.
        service.mutate_database("a", inserts={"T": [Tup(a=3, b="w")]})
        query = Query(Projection(TableAccess("T"), ["b"]))
        request = ExplainRequest(
            query=query, nip=Tup(b="w"), database="a", satisfied_ok=True
        )
        response = service.explain(request)
        assert isinstance(response, SatisfiedResponse)
        assert response.satisfied and response.witnesses == [Tup(b="w")]
        document = response.to_json()
        assert document["satisfied"] is True and document["witnesses"]

    def test_satisfied_without_opt_in_still_errors(self):
        service = ExplanationService()
        service.register_database("a", _db_a())
        query = Query(Projection(TableAccess("T"), ["b"]))
        request = ExplainRequest(query=query, nip=Tup(b="x"), database="a")
        from repro.whynot.question import IllPosedQuestion

        with pytest.raises(IllPosedQuestion):
            service.explain(request)


@pytest.fixture(scope="module")
def server():
    server = make_server(ExplanationService(cache_size=8))
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    yield server
    server.shutdown()
    server.server_close()
    server.service.close()


@pytest.fixture(scope="module")
def client(server):
    host, port = server.server_address[:2]
    return Client(f"http://{host}:{port}")


class TestHttpMutations:
    def test_register_list_info_roundtrip(self, client):
        info = client.register_database("alpha", _db_a())
        assert info["version_id"] == 0
        assert info["tables"]["T"]["rows"] == 2
        names = {d["name"] for d in client.databases()}
        assert "alpha" in names
        assert client.database("alpha")["version_id"] == 0

    def test_mutate_endpoint_advances_and_reports(self, client):
        client.register_database("beta", _db_a())
        info = client.mutate("beta", inserts={"T": [{"a": 8, "b": "n"}]})
        assert info["version_id"] == 1
        assert info["tables"]["T"]["rows"] == 3
        assert client.database("beta")["version_id"] == 1

    def test_canonical_form_mutation_over_the_wire(self, client):
        client.register_database(
            "gamma", Database({"W": [Tup(a=2.0), Tup(a=0.0)]})
        )
        # The wire round-trips int 2 and -0.0; both must hit the stored rows.
        info = client.mutate("gamma", deletes={"W": [{"a": 2}, {"a": -0.0}]})
        assert info["tables"]["W"]["rows"] == 0

    def test_unknown_database_is_404(self, client):
        with pytest.raises(ApiError) as exc_info:
            client.database("missing")
        assert exc_info.value.status == 404
        with pytest.raises(ApiError) as exc_info:
            client.mutate("missing", inserts={})
        assert exc_info.value.status == 404

    def test_invalid_delete_is_400(self, client):
        client.register_database("delta", _db_b())
        with pytest.raises(ApiError) as exc_info:
            client.mutate("delta", deletes={"V": [{"d": 42}]})
        assert exc_info.value.status == 400

    def test_method_mismatches(self, server):
        import json
        import urllib.error
        import urllib.request

        host, port = server.server_address[:2]

        def status_of(method, path, body=None):
            request = urllib.request.Request(
                f"http://{host}:{port}{path}",
                data=json.dumps(body).encode() if body is not None else None,
                headers={"Content-Type": "application/json"},
                method=method,
            )
            try:
                with urllib.request.urlopen(request, timeout=30) as response:
                    return response.status
            except urllib.error.HTTPError as exc:
                return exc.code

        assert status_of("GET", "/v1/databases/x/mutate") == 405
        assert status_of("POST", "/v1/databases", {}) == 405
        assert status_of("POST", "/v1/databases/x", {}) == 405
        assert status_of("PUT", "/v1/databases", {}) == 404
        assert status_of("GET", "/v1/databases/a/b/c") == 404

    def test_cache_warmth_across_databases_over_http(self, client):
        client.register_database("warm_a", _db_a())
        client.register_database("warm_b", _db_b())
        req_a = _filter_request("warm_a")
        req_b = ExplainRequest(
            query=Query(Projection(TableAccess("V"), ["d"])),
            nip=Tup(d=99),
            database="warm_b",
        )
        client.explain(request=req_a)
        client.explain(request=req_b)
        warm = client.explain(request=req_b)
        assert warm.cached
        hits_before = warm.cache["hits"]
        # Mutate database A on a relation req_a reads: B's entry stays warm,
        # A's entry misses — proven by the server-wide hit counter.
        client.mutate("warm_a", inserts={"T": [{"a": 6, "b": "m"}]})
        after_b = client.explain(request=req_b)
        assert after_b.cached and after_b.cache["hits"] == hits_before + 1
        after_a = client.explain(request=_filter_request("warm_a"))
        assert not after_a.cached

    def test_satisfied_response_over_http(self, client):
        client.register_database("sat", Database({"T": [Tup(a=1, b="x")]}))
        client.mutate("sat", inserts={"T": [{"a": 2, "b": "y"}]})
        query = Query(Projection(TableAccess("T"), ["b"]))
        request = ExplainRequest(
            query=query, nip=Tup(b="y"), database="sat", satisfied_ok=True
        )
        response = client.explain(request=request)
        assert response.satisfied
        assert response.witnesses  # wire-encoded matching tuples
        # Without the opt-in the same question is a client error.
        with pytest.raises(ApiError) as exc_info:
            client.explain(request=ExplainRequest(
                query=query, nip=Tup(b="y"), database="sat"
            ))
        assert exc_info.value.status == 400
        assert exc_info.value.error_type == "IllPosedQuestion"
