"""`ExplainOptions(summarize=)` through the serving stack.

Summarization is a *semantic* option: it changes the response payload, so
it must split the cache key and the sharded routing key — while execution
knobs still don't.  These tests pin the option surface at every layer:
service (cache semantics, validation), wire (``summaries`` response
section), sharded routing, and HTTP via ``Client.explain(summarize=…)``.
"""

import threading

import pytest

from repro.api import (
    ApiError,
    BadRequest,
    Client,
    ExplainOptions,
    ExplainRequest,
    ExplanationService,
    routing_key,
)
from repro.api.http import make_server
from repro.whynot.summarize import ConceptHierarchy


def _request(scenario="Q1", scale=20, **options):
    return ExplainRequest(
        scenario=scenario, scale=scale, options=ExplainOptions(**options)
    )


@pytest.fixture(scope="module")
def service():
    service = ExplanationService(cache_size=16)
    yield service
    service.close()


class TestServiceSummarize:
    def test_summaries_attach_and_partition(self, service):
        response = service.explain(_request(summarize=True))
        result = response.result
        assert result.summaries is not None
        assert sum(s.count for s in result.summaries) == len(result.explanations)
        document = response.to_json()["result"]
        assert len(document["summaries"]) == len(result.summaries)

    def test_no_summarize_means_no_summaries_section(self, service):
        response = service.explain(_request(scenario="Q4"))
        assert response.result.summaries is None
        assert "summaries" not in response.to_json()["result"]

    def test_summarize_splits_the_cache_key(self, service):
        service.clear_cache()
        plain = service.explain(_request(scenario="Q6"))
        summarized = service.explain(_request(scenario="Q6", summarize=True))
        assert not plain.cached and not summarized.cached
        assert plain.result.summaries is None
        assert summarized.result.summaries

    def test_repeat_hits_carry_the_summaries(self, service):
        spec = {"max_summaries": 2}
        cold = service.explain(_request(scenario="T2", summarize=spec))
        warm = service.explain(_request(scenario="T2", summarize=spec))
        assert not cold.cached and warm.cached
        assert warm.result.summaries == cold.result.summaries

    def test_hierarchy_spec_drives_grouping(self, service):
        hierarchy = ConceptHierarchy({"anything": None}, {})
        response = service.explain(
            _request(summarize={"hierarchy": hierarchy, "max_summaries": 1})
        )
        assert len(response.result.summaries) == 1
        (summary,) = response.result.summaries
        assert summary.count == len(response.result.explanations)

    @pytest.mark.parametrize(
        "spec",
        [
            {"bogus": 1},
            {"max_summaries": 0},
            "yes",
            {"hierarchy": {"format": 2, "kind": "database", "tables": {}}},
        ],
    )
    def test_bad_specs_are_rejected_up_front(self, service, spec):
        with pytest.raises(BadRequest):
            service.explain(_request(summarize=spec))


class TestOptionsSurface:
    def test_summarize_is_a_semantic_field(self):
        fields = ExplainOptions(summarize=True).semantic_fields()
        assert fields["summarize"] is True
        assert "engine" not in fields  # execution knobs stay out

    def test_hierarchy_objects_canonicalize_for_keys(self):
        hierarchy = ConceptHierarchy({"geo": None}, {"a.b": "geo"})
        by_object = ExplainOptions(summarize={"hierarchy": hierarchy})
        by_wire = ExplainOptions(summarize={"hierarchy": hierarchy.to_json()})
        assert by_object.semantic_fields() == by_wire.semantic_fields()
        assert by_object.to_json()["summarize"]["hierarchy"]["kind"] == "hierarchy"

    def test_routing_key_splits_on_summarize(self):
        def doc(**options):
            return _request(**options).to_json()

        assert routing_key(doc(summarize=True)) != routing_key(doc())
        assert routing_key(doc(summarize=True)) == routing_key(doc(summarize=True))
        assert routing_key(doc(summarize={"max_summaries": 2})) != routing_key(
            doc(summarize=True)
        )


@pytest.fixture(scope="module")
def http_client():
    server = make_server(ExplanationService(cache_size=8))
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    host, port = server.server_address[:2]
    yield Client(f"http://{host}:{port}")
    server.shutdown()
    server.server_close()
    server.service.close()


class TestHttpSummarize:
    def test_client_round_trip(self, http_client):
        response = http_client.explain(scenario="Q1", scale=20, summarize=True)
        summaries = response.summaries()
        assert summaries
        assert sum(s.count for s in summaries) == len(response.explanations())
        plain = http_client.explain(scenario="Q1", scale=20)
        assert plain.summaries() is None

    def test_wire_hierarchy_spec_over_http(self, http_client):
        hierarchy = ConceptHierarchy({"all": None}, {}, name="demo")
        response = http_client.explain(
            scenario="GenSocial",
            scale=1,
            summarize={"hierarchy": hierarchy.to_json(), "max_summaries": 1},
        )
        (summary,) = response.summaries()
        assert summary.count == len(response.explanations())

    def test_bad_spec_maps_to_http_400(self, http_client):
        with pytest.raises(ApiError) as excinfo:
            http_client.explain(scenario="Q1", scale=20, summarize={"bogus": 1})
        assert excinfo.value.status == 400
        assert "summarize" in str(excinfo.value)
