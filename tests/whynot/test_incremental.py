"""Incremental explanation maintenance: ``IncrementalExplainer`` ≡ ``explain``.

Every version of a mutated database must yield the identical ranked
explanation label sets through the incremental path (retained backtrace +
schema alternatives, partial re-trace of only the operators whose inputs
changed) as through a from-scratch ``explain`` — including the edge cases
the mutation satellite pins: deleting the row that feeds the only
explanation, an insert that flips the question to answered (both paths must
raise ``IllPosedQuestion``, and the explainer must recover on the next
well-posed version), and mutations addressed in canonically-equal forms.
"""

import pytest

from repro.algebra.expressions import Attr, Cmp, Const
from repro.algebra.operators import Projection, Query, Selection, TableAccess
from repro.engine.database import Database
from repro.engine.deltas import IncrementalExplainer
from repro.nested.values import Bag, Tup
from repro.scenarios import get_scenario
from repro.whynot.explain import explain
from repro.whynot.question import IllPosedQuestion, WhyNotQuestion


def _labels(result):
    return [frozenset(e.labels) for e in result.explanations]


def _scratch(query, db, nip):
    return explain(
        WhyNotQuestion(query, db, nip), backend="serial", optimize=False
    )


class TestScenarioEquivalence:
    @pytest.mark.parametrize("name", ["Q1", "Q4", "T2"])
    def test_mutation_chain_matches_scratch(self, name):
        scenario = get_scenario(name)
        db = scenario.make_db(scenario.default_scale // 3 or 1)
        question = WhyNotQuestion(
            scenario.make_query(), db, scenario.make_nip(), name=name
        )
        explainer = IncrementalExplainer(question)
        baseline = explain(
            WhyNotQuestion(question.query, db, question.nip, name=name),
            optimize=False,
        )
        assert _labels(explainer.last_result) == _labels(baseline)
        table = sorted(explainer.evaluator.reads)[0]
        version = db
        for _ in range(2):
            row = next(iter(version.relation(table).distinct()))
            version = version.apply_mutations(deletes={table: [row]})
            try:
                expected = explain(
                    WhyNotQuestion(question.query, version, question.nip),
                    optimize=False,
                )
            except IllPosedQuestion:
                with pytest.raises(IllPosedQuestion):
                    explainer.apply(version)
                continue
            got = explainer.apply(version)
            assert _labels(got) == _labels(expected)
            assert explainer.last_stats["mode"] == "delta"
            assert explainer.last_stats["ops_reused"] >= 0


class TestEdgeCases:
    def _filter_case(self):
        db = Database({"T": [Tup(a=1, b="x"), Tup(a=5, b="y")],
                       "U": [Tup(c=7)]})
        query = Query(
            Selection(TableAccess("T"), Cmp(">=", Attr("a"), Const(3)))
        )
        nip = Tup(a=1, b="x")
        return db, query, nip

    def test_delete_of_the_row_feeding_the_only_explanation(self):
        db, query, nip = self._filter_case()
        explainer = IncrementalExplainer(WhyNotQuestion(query, db, nip))
        # Base: the selection is the only picky operator.
        assert _labels(explainer.last_result), "expected a non-empty explanation"
        # Deleting (a=1, b="x") removes the only row the explanation traces
        # back to; whatever from-scratch does now, incremental must match.
        v1 = db.apply_mutations(deletes={"T": [Tup(a=1, b="x")]})
        try:
            expected = _scratch(query, v1, nip)
        except Exception as exc:  # noqa: BLE001 - compare outcome types
            with pytest.raises(type(exc)):
                explainer.apply(v1)
        else:
            assert _labels(explainer.apply(v1)) == _labels(expected)

    def test_insert_flips_question_to_answered_and_back(self):
        db = Database({"T": [Tup(a=1, b="x")]})
        query = Query(Projection(TableAccess("T"), ["b"]))
        nip = Tup(b="y")
        explainer = IncrementalExplainer(WhyNotQuestion(query, db, nip))
        # v1 inserts a row whose projection IS the missing tuple: the
        # question is now answered, so both paths must refuse it.
        v1 = db.apply_mutations(inserts={"T": [Tup(a=2, b="y")]})
        with pytest.raises(IllPosedQuestion):
            _scratch(query, v1, nip)
        with pytest.raises(IllPosedQuestion):
            explainer.apply(v1)
        # v2 removes it again: the question is well-posed once more and the
        # explainer must recover (its trace of T is stale from v1).
        v2 = v1.apply_mutations(deletes={"T": [Tup(a=2, b="y")]})
        expected = _scratch(query, v2, nip)
        assert _labels(explainer.apply(v2)) == _labels(expected)

    def test_canonical_form_mutations_hit_the_same_rows(self):
        db = Database({"T": [Tup(a=2.0, b="x"), Tup(a=0.0, b="y"),
                             Tup(a=9, b="z")]})
        query = Query(
            Selection(TableAccess("T"), Cmp(">=", Attr("a"), Const(5)))
        )
        nip = Tup(a=2.0, b="x")
        explainer = IncrementalExplainer(WhyNotQuestion(query, db, nip))
        # Delete the row through its canonical variants: int 2 for the
        # stored 2.0 and -0.0 for 0.0.  The incremental path must see the
        # same post-state from-scratch explanation (or the same refusal).
        v1 = db.apply_mutations(
            deletes={"T": [Tup(a=2, b="x"), Tup(a=-0.0, b="y")]}
        )
        assert len(v1.relation("T")) == 1
        try:
            expected = _scratch(query, v1, nip)
        except Exception as exc:  # noqa: BLE001 - compare outcome types
            with pytest.raises(type(exc)):
                explainer.apply(v1)
        else:
            assert _labels(explainer.apply(v1)) == _labels(expected)

    def test_untouched_operators_are_reused(self):
        scenario = get_scenario("Q1")
        db = scenario.make_db(20)
        question = WhyNotQuestion(
            scenario.make_query(), db, scenario.make_nip(), name="Q1"
        )
        explainer = IncrementalExplainer(question)
        table = sorted(explainer.evaluator.reads)[0]
        row = next(iter(db.relation(table).distinct()))
        version = db.apply_mutations(deletes={table: [row]})
        try:
            explainer.apply(version)
        except IllPosedQuestion:
            pytest.skip("mutation flipped the question; reuse not observable")
        stats = explainer.last_stats
        assert stats["mode"] == "delta"
        assert stats["ops_retraced"] >= 1
