"""Tests for Algorithm 4 internals: alive chains, bounds, ranking, pruning."""

import pytest

from repro.algebra.expressions import col
from repro.algebra.operators import Projection, Query, Selection, TableAccess
from repro.engine.database import Database
from repro.nested.values import Bag, Tup
from repro.whynot.alternatives import enumerate_schema_alternatives
from repro.whynot.approximate import Explanation, approximate_msrs
from repro.whynot.backtrace import backtrace
from repro.whynot.explain import explain
from repro.whynot.placeholders import ANY
from repro.whynot.question import WhyNotQuestion
from repro.whynot.tracing import trace


def run_pipeline(question, groups=()):
    bt = backtrace(question.query, question.db, question.nip)
    sas = enumerate_schema_alternatives(
        question.query, question.db, question.nip, bt, groups=groups
    )
    traced = trace(question.query, question.db, sas)
    return approximate_msrs(question, sas, traced)


class TestChains:
    def test_two_selections_one_witness_each(self):
        """Distinct witnesses per selection: all three subsets emerge."""
        db = Database(
            {
                "T": [
                    Tup(k="target", a=0, b=9),
                    Tup(k="target", a=9, b=0),
                    Tup(k="target", a=0, b=0),
                    Tup(k="target", a=9, b=9),
                ]
            }
        )
        plan = Selection(
            Selection(TableAccess("T"), col("a").ge(5), label="σa"),
            col("b").ge(5),
            label="σb",
        )
        phi = WhyNotQuestion(Query(plan), db, Tup(k="target", a=0, b=ANY))
        sets = [set(e.labels) for e in run_pipeline(phi)]
        # a must change (every a=0 row fails σa); b may or may not.
        assert {"σa"} in sets and {"σa", "σb"} in sets

    def test_chain_precision(self):
        """A row passing σa and a different row passing σb do not combine
        into a spurious skip (the alive-chain requirement)."""
        db = Database(
            {
                "T": [
                    Tup(k="t", a=9, b=0),  # passes σa only
                    Tup(k="t", a=0, b=9),  # passes σb only
                ]
            }
        )
        plan = Selection(
            Selection(TableAccess("T"), col("a").ge(5), label="σa"),
            col("b").ge(5),
            label="σb",
        )
        phi = WhyNotQuestion(Query(plan), db, Tup(k="t", a=ANY, b=ANY))
        sets = [set(e.labels) for e in run_pipeline(phi)]
        # No single row passes both, so the empty SR never survives; both
        # single-op extensions exist (each witnessed by the other row).
        assert {"σa"} in sets and {"σb"} in sets


class TestBoundsAndRanking:
    def test_rank_by_size_first(self, running_question):
        result = explain(
            running_question,
            alternatives=[["person.address2", "person.address1"]],
        )
        sizes = [len(e.ops) for e in result.explanations]
        assert sizes == sorted(sizes)

    def test_original_sa_before_alternative_on_ties(self, running_question):
        result = explain(
            running_question,
            alternatives=[["person.address2", "person.address1"]],
        )
        sa_indexes = [e.sa_index for e in result.explanations]
        assert sa_indexes[0] == 0

    def test_bounds_nonnegative_and_ordered(self, running_question):
        result = explain(
            running_question,
            alternatives=[["person.address2", "person.address1"]],
        )
        for e in result.explanations:
            assert 0 <= e.lb <= e.ub

    def test_explanation_repr(self):
        e = Explanation(frozenset({1}), ("σ",), 0, "S1")
        assert repr(e) == "{σ}"


class TestNoExplanations:
    def test_unreachable_answer(self):
        """A missing answer whose constant exists nowhere yields nothing."""
        db = Database({"T": [Tup(a=1)]})
        plan = Projection(Selection(TableAccess("T"), col("a").ge(0)), ["a"])
        phi = WhyNotQuestion(Query(plan), db, Tup(a=99))
        assert run_pipeline(phi) == []
