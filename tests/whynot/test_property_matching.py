"""Property-based tests (hypothesis) for NIP matching (Definition 4)."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.nested.values import Bag, Tup
from repro.whynot.matching import matches
from repro.whynot.placeholders import ANY, STAR


values = st.one_of(st.integers(0, 4), st.sampled_from(["x", "y"]))
tuples = st.builds(lambda a, b: Tup(a=a, b=b), values, values)
bags = st.lists(tuples, max_size=6).map(Bag)


@given(tuples)
def test_any_matches_everything(t):
    assert matches(t, ANY)


@given(tuples)
def test_instance_matches_itself(t):
    assert matches(t, t)


@given(bags)
def test_bag_matches_itself(b):
    assert matches(b, b)


@given(bags)
def test_star_matches_any_bag(b):
    assert matches(b, Bag([STAR]))


@given(bags)
def test_exists_pattern_iff_nonempty(b):
    assert matches(b, Bag([ANY, STAR])) == (len(b) > 0)


@given(bags, tuples)
def test_element_pattern_iff_member(b, t):
    assert matches(b, Bag([t, STAR])) == (t in b)


@given(bags)
def test_bag_with_one_element_removed_still_matches_with_star(b):
    if len(b) == 0:
        return
    element = next(iter(b))
    pattern = Bag([element, STAR])
    assert matches(b, pattern)


@given(bags, bags)
@settings(max_examples=60)
def test_union_matches_concatenated_patterns_with_star(b1, b2):
    # Every element of b1 used as a demand is satisfiable in b1 ∪ b2.
    union = b1.union(b2)
    pattern = Bag(list(b1) + [STAR])
    assert matches(union, pattern)


@given(tuples, tuples)
def test_tuple_pattern_attribute_wise(t1, t2):
    pattern = Tup(a=t1["a"], b=ANY)
    expected = t2["a"] == t1["a"]
    assert matches(t2, pattern) == expected


@given(bags)
def test_multiplicity_exactness_without_star(b):
    # The exact multiset is the only thing matching a star-free self-pattern.
    assert matches(b, Bag(list(b)))
    extended = b.union(Bag([Tup(a=99, b=99)]))
    assert not matches(extended, Bag(list(b)))
