"""Unit tests for why-not questions (Definition 5)."""

import pytest

from repro.nested.values import Bag, Tup
from repro.whynot.matching import InvalidNIP
from repro.whynot.placeholders import ANY, STAR
from repro.whynot.question import IllPosedQuestion, WhyNotQuestion


class TestValidation:
    def test_valid_question(self, running_question):
        running_question.validate()  # must not raise

    def test_ill_posed_question_rejected(self, running_query, person_db):
        phi = WhyNotQuestion(
            running_query, person_db, Tup(city="LA", nList=Bag([ANY, STAR]))
        )
        with pytest.raises(IllPosedQuestion):
            phi.validate()

    def test_malformed_nip_rejected(self, running_query, person_db):
        phi = WhyNotQuestion(
            running_query, person_db, Tup(city="NY", nList=Bag([STAR, STAR]))
        )
        with pytest.raises(InvalidNIP):
            phi.validate()


class TestResult:
    def test_result_cached(self, running_question):
        first = running_question.result()
        assert running_question.result() is first

    def test_is_answered_by(self, running_question):
        answered = Bag([Tup(city="NY", nList=Bag([Tup(name="Sue")]))])
        assert running_question.is_answered_by(answered)
        assert not running_question.is_answered_by(running_question.result())

    def test_describe(self, running_question):
        text = running_question.describe()
        assert "NY" in text and "running-example" in text
