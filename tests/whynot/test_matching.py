"""Unit tests for NIP matching (paper Definitions 3–4, Examples 5–7)."""

import pytest

from repro.nested.values import NULL, Bag, Tup
from repro.whynot.matching import InvalidNIP, any_match, matches, matching_tuples, validate_nip
from repro.whynot.placeholders import ANY, STAR, ge, gt, lt


class TestScalars:
    def test_any_matches_everything(self):
        assert matches(5, ANY)
        assert matches(NULL, ANY)
        assert matches(Bag([1]), ANY)
        assert matches(Tup(a=1), ANY)

    def test_equality(self):
        assert matches(5, 5)
        assert not matches(5, 6)
        assert matches("NY", "NY")

    def test_null_matches_null_pattern(self):
        assert matches(NULL, NULL)
        assert not matches(5, NULL)

    def test_cond_placeholders(self):
        assert matches(5, gt(4))
        assert not matches(5, gt(5))
        assert matches(5, ge(5))
        assert matches(4, lt(5))
        assert not matches(NULL, gt(0))


class TestTuples:
    def test_attribute_wise(self):
        assert matches(Tup(a=1, b=2), Tup(a=1, b=ANY))
        assert not matches(Tup(a=1, b=2), Tup(a=2, b=ANY))

    def test_attribute_sets_must_agree(self):
        assert not matches(Tup(a=1), Tup(a=1, b=ANY))
        assert not matches(Tup(a=1, b=2), Tup(a=1))

    def test_nested(self):
        instance = Tup(a=Tup(x=1, y=2))
        assert matches(instance, Tup(a=Tup(x=1, y=ANY)))
        assert not matches(instance, Tup(a=Tup(x=9, y=ANY)))

    def test_non_tuple_instance(self):
        assert not matches(5, Tup(a=1))


class TestBags:
    def test_example6_multiplicities(self):
        """Example 6: {{?, *}} matches, {{?, ?}} does not."""
        t = Bag([Tup(name="Sue"), Tup(name="Sue"), Tup(name="Peter")])
        assert matches(t, Bag([ANY, STAR]))
        assert not matches(t, Bag([ANY, ANY]))

    def test_example7_nested_match(self):
        """Example 7: Sue's tuple matches the backtraced NIP."""
        sue = Tup(
            name="Sue",
            address1=Bag([Tup(city="LA", year=2019), Tup(city="NY", year=2018)]),
            address2=Bag([Tup(city="LA", year=2019), Tup(city="NY", year=2018)]),
        )
        nip = Tup(
            name="Sue",
            address1=ANY,
            address2=Bag([Tup(city=ANY, year=2019), STAR]),
        )
        assert matches(sue, nip)

    def test_exact_bag_equality(self):
        assert matches(Bag([1, 1, 2]), Bag([1, 1, 2]))
        assert not matches(Bag([1, 2]), Bag([1, 1, 2]))

    def test_star_absorbs_leftovers(self):
        assert matches(Bag([1, 2, 3]), Bag([1, STAR]))
        assert matches(Bag([1]), Bag([1, STAR]))
        assert matches(Bag([]), Bag([STAR]))

    def test_without_star_multiplicities_exact(self):
        assert not matches(Bag([1, 2]), Bag([1]))
        assert not matches(Bag([1]), Bag([1, 2]))

    def test_non_star_demand_must_be_met(self):
        assert not matches(Bag([2]), Bag([1, STAR]))
        assert not matches(Bag([]), Bag([ANY, STAR]))

    def test_assignment_needs_flow(self):
        # Two ?-patterns need two elements, even though each element matches
        # both patterns.
        assert matches(Bag(["a", "b"]), Bag([ANY, ANY]))
        assert not matches(Bag(["a"]), Bag([ANY, ANY]))

    def test_flow_with_competition(self):
        # One pattern matches only 'a'; the ? must then take 'b'.
        assert matches(Bag(["a", "b"]), Bag(["a", ANY]))
        # Both patterns demand 'a', but only one 'a' exists.
        assert not matches(Bag(["a", "b"]), Bag(["a", "a"]))

    def test_duplicate_demands_with_flow(self):
        assert matches(Bag(["a", "a", "b"]), Bag(["a", "a", ANY]))
        assert matches(Bag(["a", "a"]), Bag(["a", STAR]))

    def test_bag_of_tuples_with_conditions(self):
        bag = Bag([Tup(city="NY", year=2018), Tup(city="LA", year=2019)])
        assert matches(bag, Bag([Tup(city="NY", year=ANY), STAR]))
        assert not matches(bag, Bag([Tup(city="SF", year=ANY), STAR]))

    def test_non_bag_instance(self):
        assert not matches(5, Bag([ANY]))


class TestValidation:
    def test_two_stars_rejected(self):
        with pytest.raises(InvalidNIP):
            validate_nip(Bag([STAR, STAR]))

    def test_star_outside_bag_rejected(self):
        with pytest.raises(InvalidNIP):
            validate_nip(Tup(a=STAR))
        with pytest.raises(InvalidNIP):
            validate_nip(STAR)

    def test_valid_patterns_pass(self):
        validate_nip(Tup(city="NY", nList=Bag([ANY, STAR])))
        validate_nip(ANY)
        validate_nip(Bag([Tup(a=1), STAR]))


class TestHelpers:
    def test_any_match(self):
        bag = Bag([Tup(a=1), Tup(a=2)])
        assert any_match(bag, Tup(a=2))
        assert not any_match(bag, Tup(a=3))

    def test_matching_tuples(self):
        bag = Bag([Tup(a=1), Tup(a=2), Tup(a=2)])
        assert matching_tuples(bag, Tup(a=ANY)) == [Tup(a=1), Tup(a=2)]
