"""Tests for the tighter-bounds extension (paper §7 future work)."""

import pytest

from repro.whynot.exact import enumerate_explanations
from repro.whynot.explain import explain
from repro.whynot.refine import refine_side_effects


GROUPS = [["person.address2", "person.address1"]]


class TestRefinement:
    def test_observed_bounds_match_exact_minimum(self, running_question):
        """The witness search finds the same minimal bag-side-effects as the
        exhaustive enumeration (d=2 for {σ}: SF and NY rows added)."""
        result = refine_side_effects(
            explain(running_question, alternatives=GROUPS), distance="bag"
        )
        by_labels = {e.labels: e for e in result.explanations}
        exact = enumerate_explanations(running_question, max_ops=2, distance="bag")
        exact_min = {
            frozenset(running_question.query.op(i).label for i in delta): d
            for delta, d in ((sr.delta, sr.side_effect) for sr in exact.srs)
        }
        sigma = by_labels[("σ",)]
        assert sigma.ub == min(
            d for delta, d in exact_min.items() if delta == frozenset({"σ"})
        )

    def test_bounds_never_widen(self, running_question):
        before = explain(running_question, alternatives=GROUPS)
        ubs_before = {e.labels: e.ub for e in before.explanations}
        after = refine_side_effects(before)
        for e in after.explanations:
            assert e.ub <= ubs_before[e.labels]
            assert e.lb <= e.ub

    def test_ranking_remains_size_first(self, running_question):
        result = refine_side_effects(explain(running_question, alternatives=GROUPS))
        sizes = [len(e.ops) for e in result.explanations]
        assert sizes == sorted(sizes)

    def test_tree_distance_mode(self, running_question):
        """Under the tree metric, the refined {F, σ} bound undercuts {σ}'s —
        Example 10's reason to keep both MSRs."""
        result = refine_side_effects(
            explain(running_question, alternatives=GROUPS), distance="tree"
        )
        by_labels = {e.labels: e for e in result.explanations}
        assert by_labels[("F", "σ")].ub < by_labels[("σ",)].ub
