"""Summarization correctness: exact partition, budgets, hierarchy, wire.

The central guarantee (ISSUE 10): the summary groups **partition** the raw
explanation set — counts sum to the total, no explanation is uncovered or
double-counted — at every budget, with or without a hierarchy.  Plus:
hierarchy validation errors, graceful degradation, determinism, and the
wire round-trip of both the hierarchy document and summary payloads.
"""

import json

import pytest

from repro.factory import make_bundle
from repro.whynot.approximate import Explanation
from repro.whynot.explain import explain
from repro.whynot.summarize import (
    ANY_ATTRIBUTE,
    ANY_OPERATOR,
    TOP,
    ConceptHierarchy,
    HierarchyError,
    attach_summaries,
    explanation_terms,
    resolve_summarize,
    summarize_explanations,
    term_chain,
)
from repro.wire import hierarchy_from_json, hierarchy_to_json, summary_from_json, summary_to_json


def fake_explanations(n):
    """Synthetic explanations over a rotating label alphabet (no SAs)."""
    labels = ["σ1", "σ2", "F3", "⋈4", "γ5"]
    return [
        Explanation(
            ops=frozenset({i}),
            labels=(labels[i % len(labels)], labels[(i + 1) % len(labels)]),
            sa_index=-1,
            sa_description="S1 (original)",
            lb=float(i),
            ub=float(10 + i),
            rank=i + 1,
        )
        for i in range(n)
    ]


# -- partition exactness -------------------------------------------------------


@pytest.mark.parametrize("n", [1, 2, 7, 23])
@pytest.mark.parametrize("budget", [1, 2, 4, 100])
def test_summaries_partition_exactly(n, budget):
    explanations = fake_explanations(n)
    summaries = summarize_explanations(explanations, [], max_summaries=budget)
    assert 1 <= len(summaries) <= budget
    assert sum(s.count for s in summaries) == n
    covered_ranks = sorted(
        rank for s in summaries for rank in range(s.ranks[0], s.ranks[1] + 1)
    )
    # Rank ranges may interleave across groups, but witness membership is
    # exact: replay the grouping and check it's a disjoint cover.
    signatures = set()
    total = 0
    for s in summaries:
        assert s.count >= 1
        assert s.ranks[0] <= s.ranks[1]
        assert s.concepts == tuple(sorted(s.concepts))
        assert s.concepts not in signatures, "duplicate group signature"
        signatures.add(s.concepts)
        total += s.count
    assert total == n
    assert covered_ranks[0] == 1 and covered_ranks[-1] == n


def test_real_explanations_partition_with_and_without_hierarchy():
    bundle = make_bundle("social", 1)
    result = explain(bundle.question(), alternatives=bundle.alternatives)
    assert result.explanations
    hierarchy = ConceptHierarchy(
        {"geo": None, "ops": None},
        {"T.user.location": "geo", "F60": "ops", "σ62": "ops"},
    )
    for h in (None, hierarchy):
        for budget in (1, 2, 8):
            summaries = summarize_explanations(
                result.explanations, result.sas, hierarchy=h, max_summaries=budget
            )
            assert sum(s.count for s in summaries) == len(result.explanations)
            assert len(summaries) <= budget


def test_budget_one_always_collapses_to_a_single_group():
    explanations = fake_explanations(9)
    summaries = summarize_explanations(explanations, [], max_summaries=1)
    assert len(summaries) == 1
    (summary,) = summaries
    assert summary.count == 9
    assert summary.ranks == (1, 9)
    # Maximal generalization: only top-level concepts remain.
    assert set(summary.concepts) <= {ANY_OPERATOR, ANY_ATTRIBUTE, TOP}


def test_empty_explanations_summarize_to_nothing():
    assert summarize_explanations([], []) == []


def test_witness_sampling_respects_rank_order_and_budget():
    explanations = fake_explanations(10)
    summaries = summarize_explanations(explanations, [], max_summaries=1, sample=2)
    (summary,) = summaries
    assert len(summary.witnesses) == 2
    assert [w["rank"] for w in summary.witnesses] == [1, 2]
    none = summarize_explanations(explanations, [], max_summaries=1, sample=0)
    assert none[0].witnesses == ()


def test_summaries_are_deterministic():
    explanations = fake_explanations(12)
    a = summarize_explanations(explanations, [], max_summaries=3)
    b = summarize_explanations(explanations, [], max_summaries=3)
    assert [summary_to_json(s) for s in a] == [summary_to_json(s) for s in b]


def test_attach_summaries_stores_on_result():
    bundle = make_bundle("tpch", 1)
    result = explain(bundle.question(), alternatives=bundle.alternatives)
    assert result.summaries is None
    summaries = attach_summaries(result)
    assert result.summaries == summaries
    assert "summaries" in result.describe()


# -- vocabulary and chains -----------------------------------------------------


def test_explanation_terms_carry_substitutions():
    bundle = make_bundle("social", 1)
    result = explain(bundle.question(), alternatives=bundle.alternatives)
    by_labels = {e.labels: explanation_terms(e, result.sas) for e in result.explanations}
    assert {"op:F60", "alt:T.user.location"} in [set(t) for t in by_labels.values()]


def test_term_chain_structural_fallback_and_tops():
    chain = term_chain("alt:T.user.location")
    assert chain == (
        "alt:T.user.location",
        "T.user.*",
        "T.*",
        ANY_ATTRIBUTE,
        TOP,
    )
    assert term_chain("op:σ1") == ("op:σ1", ANY_OPERATOR, TOP)


def test_term_chain_follows_hierarchy():
    hierarchy = ConceptHierarchy(
        {"geo": "attrs", "attrs": None}, {"T.user.location": "geo"}
    )
    assert term_chain("alt:T.user.location", hierarchy) == (
        "alt:T.user.location",
        "geo",
        "attrs",
        ANY_ATTRIBUTE,
        TOP,
    )


# -- hierarchy validation ------------------------------------------------------


def test_hierarchy_rejects_unknown_parent():
    with pytest.raises(HierarchyError):
        ConceptHierarchy({"a": "missing"}, {})


def test_hierarchy_rejects_unknown_member_target():
    with pytest.raises(HierarchyError):
        ConceptHierarchy({"a": None}, {"x": "missing"})


def test_hierarchy_rejects_parent_cycle():
    with pytest.raises(HierarchyError):
        ConceptHierarchy({"a": "b", "b": "a"}, {})


def test_hierarchy_wire_roundtrip():
    hierarchy = ConceptHierarchy(
        {"geo": None, "city": "geo"}, {"T.user.location": "city"}, name="demo"
    )
    document = json.loads(json.dumps(hierarchy_to_json(hierarchy)))
    assert document["format"] == 2 and document["kind"] == "hierarchy"
    assert hierarchy_from_json(document) == hierarchy


# -- summarize spec resolution -------------------------------------------------


def test_resolve_summarize_accepts_true_and_specs():
    assert resolve_summarize(True) == (None, 8, 3)
    hierarchy = ConceptHierarchy({"geo": None}, {})
    resolved = resolve_summarize(
        {"hierarchy": hierarchy, "max_summaries": 2, "sample": 0}
    )
    assert resolved == (hierarchy, 2, 0)
    # A wire-encoded hierarchy decodes transparently.
    resolved = resolve_summarize({"hierarchy": hierarchy.to_json()})
    assert resolved[0] == hierarchy


@pytest.mark.parametrize(
    "spec",
    [
        False,
        "yes",
        3,
        {"bogus": 1},
        {"max_summaries": 0},
        {"max_summaries": True},
        {"sample": -1},
        {"hierarchy": {"format": 2, "kind": "database", "tables": {}}},
    ],
)
def test_resolve_summarize_rejects_bad_specs(spec):
    with pytest.raises(ValueError):
        resolve_summarize(spec)


# -- summary wire round-trip ---------------------------------------------------


def test_summary_wire_roundtrip():
    explanations = fake_explanations(6)
    for summary in summarize_explanations(explanations, [], max_summaries=2):
        decoded = summary_from_json(json.loads(json.dumps(summary_to_json(summary))))
        assert decoded == summary
