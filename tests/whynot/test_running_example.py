"""End-to-end tests on the paper's running example (Sections 1–5).

These tests tie the whole pipeline together and check it against both the
paper's narrative (Examples 1, 2, 19) and the exact brute-force enumerator.
"""

import pytest

from repro.nested.values import Bag, Tup
from repro.whynot.exact import enumerate_explanations
from repro.whynot.explain import explain
from repro.whynot.placeholders import ANY, STAR
from repro.whynot.question import WhyNotQuestion


GROUPS = [["person.address2", "person.address1"]]


class TestHeuristicPipeline:
    def test_example19_explanations(self, running_question):
        """E≈ = {{σ}, {F, σ}} with {σ} ranked first."""
        result = explain(running_question, alternatives=GROUPS)
        assert result.explanation_labels() == [("σ",), ("F", "σ")]

    def test_rpnosa_finds_only_sigma(self, running_question):
        result = explain(running_question, use_schema_alternatives=False)
        assert result.explanation_labels() == [("σ",)]

    def test_sa_count(self, running_question):
        result = explain(running_question, alternatives=GROUPS)
        assert result.n_sas == 2

    def test_explanations_agree_with_exact(self, running_question):
        """The heuristic matches the exact MSRs (tree distance) here."""
        heuristic = {e.ops for e in explain(running_question, alternatives=GROUPS).explanations}
        exact = {
            delta
            for delta, _ in enumerate_explanations(
                running_question, max_ops=2, distance="tree"
            ).explanations
        }
        assert heuristic == exact

    def test_all_explanations_are_srs(self, running_question):
        """§5.5: every returned explanation corresponds to a correct SR —
        check by cross-referencing the exact enumeration's SR deltas."""
        exact = enumerate_explanations(running_question, max_ops=2, distance="tree")
        sr_deltas = {sr.delta for sr in exact.srs}
        result = explain(running_question, alternatives=GROUPS)
        for e in result.explanations:
            assert e.ops in sr_deltas

    def test_describe_output(self, running_question):
        text = explain(running_question, alternatives=GROUPS).describe()
        assert "σ" in text and "side effects" in text

    def test_timings_recorded(self, running_question):
        result = explain(running_question, alternatives=GROUPS)
        assert set(result.timings) == {
            "backtrace",
            "alternatives",
            "tracing",
            "approximate",
        }

    def test_rows_traced_reported(self, running_question):
        result = explain(running_question, alternatives=GROUPS)
        assert result.rows_traced() > 10


class TestSideEffectBounds:
    def test_bounds_are_ordered(self, running_question):
        result = explain(running_question, alternatives=GROUPS)
        for e in result.explanations:
            assert e.lb <= e.ub

    def test_selection_explanations_have_zero_lb(self, running_question):
        result = explain(running_question, alternatives=GROUPS)
        sigma = next(e for e in result.explanations if e.labels == ("σ",))
        assert sigma.lb == 0


class TestRevalidationAblation:
    def test_ablation_still_finds_sigma(self, running_question):
        result = explain(
            running_question, alternatives=GROUPS, revalidate=False
        )
        assert ("σ",) in result.explanation_labels()


class TestIllPosed:
    def test_present_answer_rejected(self, running_query, person_db):
        phi = WhyNotQuestion(
            running_query, person_db, Tup(city="LA", nList=Bag([ANY, STAR]))
        )
        with pytest.raises(Exception):
            explain(phi, alternatives=GROUPS)

    def test_validation_can_be_skipped(self, running_query, person_db):
        phi = WhyNotQuestion(
            running_query, person_db, Tup(city="LA", nList=Bag([ANY, STAR]))
        )
        result = explain(phi, alternatives=GROUPS, validate=False)
        assert result is not None
