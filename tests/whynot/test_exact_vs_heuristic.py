"""Exact vs. heuristic agreement on small instances (paper §5.5).

The heuristic guarantees every returned explanation is a correct SR; on small
databases the exact enumerator (Definitions 8–10) provides the ground truth
to check this — and to check that the heuristic's ranking respects the exact
minimality where the metrics coincide.
"""

import pytest

from repro.scenarios import get_scenario
from repro.whynot.exact import enumerate_explanations
from repro.whynot.explain import explain


def exact_sr_deltas(question, max_ops=2):
    result = enumerate_explanations(question, max_ops=max_ops, distance="bag")
    return {sr.delta for sr in result.srs}


class TestCrimeScenarios:
    @pytest.mark.parametrize("name", ["C1", "C2"])
    def test_every_heuristic_explanation_is_an_sr(self, name):
        scenario = get_scenario(name)
        question = scenario.question(scale=4)
        heuristic = explain(
            question, alternatives=scenario.alternatives, validate=False
        )
        srs = exact_sr_deltas(question)
        for e in heuristic.explanations:
            assert e.ops in srs, f"{name}: {e.labels} is not a correct SR"

    def test_c2_exact_contains_gold(self):
        scenario = get_scenario("C2")
        question = scenario.question(scale=4)
        exact = enumerate_explanations(question, max_ops=1, distance="bag")
        labels = {
            frozenset(question.query.op(i).label for i in delta)
            for delta, _ in exact.explanations
        }
        assert frozenset({"σ4"}) in labels


class TestRunningExample:
    def test_heuristic_is_sound_and_complete_here(self, running_question):
        heuristic = explain(
            running_question,
            alternatives=[["person.address2", "person.address1"]],
        )
        exact = enumerate_explanations(running_question, max_ops=2, distance="tree")
        assert {e.ops for e in heuristic.explanations} == set(
            exact.explanation_sets()
        )
