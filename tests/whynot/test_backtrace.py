"""Tests for schema backtracing (Step 1; paper Examples 11–12)."""

import pytest

from repro.algebra.aggregates import AggSpec
from repro.algebra.expressions import col
from repro.algebra.operators import (
    GroupAggregation,
    InnerFlatten,
    Join,
    Map,
    NestedAggregation,
    Projection,
    Query,
    RelationNesting,
    Renaming,
    Selection,
    TableAccess,
    TupleFlatten,
)
from repro.engine.database import Database
from repro.nested.values import Bag, Tup
from repro.whynot.backtrace import BacktraceError, backtrace, is_trivial
from repro.whynot.placeholders import ANY, STAR, gt


class TestRunningExample:
    def test_table_nip_matches_example11(self, running_query, person_db, running_nip):
        bt = backtrace(running_query, person_db, running_nip)
        expected = Tup(
            name=ANY,
            address1=ANY,
            address2=Bag([Tup(city="NY", year=ANY), STAR]),
        )
        assert bt.table_nip("person") == expected

    def test_flatten_output_pattern(self, running_query, person_db, running_nip):
        bt = backtrace(running_query, person_db, running_nip)
        flatten = running_query.op_by_label("F")
        assert bt.nip_at[flatten.op_id] == Tup(
            name=ANY, address1=ANY, address2=ANY, city="NY", year=ANY
        )

    def test_refs_resolve_to_sources_example12(
        self, running_query, person_db, running_nip
    ):
        bt = backtrace(running_query, person_db, running_nip)
        by_role = {(r.op_id, r.role): r for r in bt.refs}
        sigma = running_query.op_by_label("σ").op_id
        year_ref = next(r for (op, _), r in by_role.items() if op == sigma)
        assert year_ref.source() == ("person", ("address2", "year"))
        pi = running_query.op_by_label("π").op_id
        city_ref = by_role[(pi, "col:1@0")]
        assert city_ref.source() == ("person", ("address2", "city"))

    def test_flatten_ref_is_structural(self, running_query, person_db, running_nip):
        bt = backtrace(running_query, person_db, running_nip)
        flatten_refs = [r for r in bt.refs if r.role == "flatten"]
        assert len(flatten_refs) == 1 and flatten_refs[0].structural


class TestOperatorRules:
    def test_projection_inverts_renaming_column(self):
        db = Database({"T": [Tup(a=1, b=2)]})
        q = Query(Projection(TableAccess("T"), [("x", col("a"))]))
        bt = backtrace(q, db, Tup(x=1))
        assert bt.table_nip("T") == Tup(a=1, b=ANY)

    def test_computed_column_constraint_dropped(self):
        db = Database({"T": [Tup(a=1, b=2)]})
        q = Query(Projection(TableAccess("T"), [("x", col("a") * 2)]))
        bt = backtrace(q, db, Tup(x=2))
        assert is_trivial(bt.table_nip("T"))

    def test_renaming(self):
        db = Database({"T": [Tup(a=1)]})
        q = Query(Renaming(TableAccess("T"), [("renamed", "a")]))
        bt = backtrace(q, db, Tup(renamed=1))
        assert bt.table_nip("T") == Tup(a=1)

    def test_join_splits_and_propagates_key_constants(self):
        db = Database(
            {"L": [Tup(k=1, x="a")], "R": [Tup(j=1, y="b")]}
        )
        q = Query(Join(TableAccess("L"), TableAccess("R"), [("k", "j")]))
        bt = backtrace(q, db, Tup(k=7, x=ANY, j=ANY, y="b"))
        assert bt.table_nip("L") == Tup(k=7, x=ANY)
        # The constant 7 on the left key propagates to the right key.
        assert bt.table_nip("R") == Tup(j=7, y="b")

    def test_tuple_flatten_alias(self):
        db = Database({"T": [Tup(info=Tup(x=5), other=1)]})
        q = Query(TupleFlatten(TableAccess("T"), "info.x", alias="val"))
        bt = backtrace(q, db, Tup(info=ANY, other=1, val=5))
        assert bt.table_nip("T") == Tup(info=Tup(x=5), other=1)

    def test_relation_nesting_single_element_pattern(self):
        db = Database({"T": [Tup(name="a", city="x")]})
        q = Query(RelationNesting(TableAccess("T"), ["name"], "names"))
        bt = backtrace(q, db, Tup(city="x", names=Bag([Tup(name="a"), STAR])))
        assert bt.table_nip("T") == Tup(name="a", city="x")

    def test_group_aggregation_relaxes_agg_constraint(self):
        db = Database({"T": [Tup(g="x", v=1)]})
        q = Query(
            GroupAggregation(TableAccess("T"), ["g"], [AggSpec("sum", col("v"), "s")])
        )
        bt = backtrace(q, db, Tup(g="x", s=gt(100)))
        assert bt.table_nip("T") == Tup(g="x", v=ANY)
        root = q.root.op_id
        assert bt.nip_at[root]["s"] == gt(100)
        assert bt.relaxed_at[root]["s"] is ANY

    def test_nested_aggregation_constraint_dropped(self):
        db = Database({"T": [Tup(name="a", items=Bag([Tup(v=1)]))]})
        q = Query(NestedAggregation(TableAccess("T"), "count", "items", "cnt"))
        bt = backtrace(q, db, Tup(name="a", items=ANY, cnt=gt(5)))
        assert bt.table_nip("T") == Tup(name="a", items=ANY)

    def test_map_unsupported(self):
        db = Database({"T": [Tup(a=1)]})
        q = Query(Map(TableAccess("T"), lambda t: t))
        with pytest.raises(BacktraceError):
            backtrace(q, db, Tup(a=1))


class TestColumnLineage:
    def test_flatten_lineage(self, running_query, person_db, running_nip):
        bt = backtrace(running_query, person_db, running_nip)
        flatten = running_query.op_by_label("F").op_id
        assert bt.colmaps[flatten][("city",)].source() == (
            "person",
            ("address2", "city"),
        )

    def test_agg_output_marked(self):
        db = Database({"T": [Tup(g="x", v=1)]})
        q = Query(
            GroupAggregation(TableAccess("T"), ["g"], [AggSpec("sum", col("v"), "s")])
        )
        bt = backtrace(q, db, Tup(g=ANY, s=ANY))
        assert bt.colmaps[q.root.op_id][("s",)].from_agg
        assert not bt.colmaps[q.root.op_id][("g",)].from_agg
