"""Unit tests for admissible parameter changes (Table 2)."""

import pytest

from repro.algebra.aggregates import AggSpec
from repro.algebra.expressions import And, col, lit
from repro.algebra.operators import (
    GroupAggregation,
    InnerFlatten,
    Join,
    Projection,
    Query,
    RelationFlatten,
    Renaming,
    Selection,
    TableAccess,
)
from repro.engine.database import Database
from repro.nested.values import Bag, Tup
from repro.whynot.reparam import (
    active_domain,
    bag_attr_paths,
    compatible_paths,
    condition_variants,
    operator_candidates,
    value_paths,
)


@pytest.fixture
def db():
    return Database(
        {
            "T": [
                Tup(a=1, b=2, name="x", tags=Bag([Tup(t="p")]), more=Bag([Tup(t="q")])),
                Tup(a=3, b=4, name="y", tags=Bag([Tup(t="r")]), more=Bag()),
            ]
        }
    )


class TestSchemaHelpers:
    def test_value_paths(self, db):
        paths = [p for p, _ in value_paths(db.schema("T"))]
        assert ("a",) in paths and ("name",) in paths
        assert ("tags", "t") not in paths  # bags are not crossed

    def test_bag_attr_paths(self, db):
        paths = [p for p, _ in bag_attr_paths(db.schema("T"))]
        assert set(paths) == {("tags",), ("more",)}

    def test_compatible_paths_same_type_only(self, db):
        schema = db.schema("T")
        from repro.nested.types import INT

        assert set(compatible_paths(schema, ("a",), INT)) == {("b",)}


class TestActiveDomain:
    def test_collects_by_type(self, db):
        adom = active_domain(db)
        assert 1 in adom[int] and 4 in adom[int]
        assert "x" in adom[str] and "p" in adom[str]

    def test_numeric_boundaries_added(self, db):
        adom = active_domain(db)
        assert min(adom[int]) == 0 and max(adom[int]) == 5


class TestConditionVariants:
    def test_constant_changes(self, db):
        variants = list(
            condition_variants(
                col("a").ge(1), db.schema("T"), active_domain(db), change_ops=False,
                change_attrs=False,
            )
        )
        constants = {v.right.value for v in variants}
        assert 3 in constants and 1 not in constants

    def test_operator_changes(self, db):
        variants = list(
            condition_variants(
                col("a").ge(1), db.schema("T"), active_domain(db),
                change_attrs=False, change_consts=False,
            )
        )
        assert {v.op for v in variants} == {"=", "!=", "<", "<=", ">"}

    def test_attribute_swaps(self, db):
        variants = list(
            condition_variants(
                col("a").ge(1), db.schema("T"), active_domain(db),
                change_ops=False, change_consts=False,
            )
        )
        assert any(v.left.path == ("b",) for v in variants)

    def test_structure_preserved(self, db):
        pred = And(col("a").ge(1), col("name").eq("x"))
        for variant in condition_variants(pred, db.schema("T"), active_domain(db)):
            assert isinstance(variant, And)
            assert len(variant.terms) == 2

    def test_original_excluded(self, db):
        pred = col("a").ge(1)
        assert pred not in list(
            condition_variants(pred, db.schema("T"), active_domain(db))
        )


class TestOperatorCandidates:
    def run_candidates(self, op, db):
        query = Query(op)
        schemas = query.infer_schemas(db)
        input_schemas = [schemas[c.op_id] for c in op.children]
        return operator_candidates(op, input_schemas, active_domain(db))

    def test_selection(self, db):
        op = Selection(TableAccess("T"), col("a").ge(1))
        candidates = self.run_candidates(op, db)
        assert candidates
        assert all(set(c) == {"pred"} for c in candidates)

    def test_flatten_includes_outer_toggle_and_attr_swap(self, db):
        op = InnerFlatten(TableAccess("T"), "tags")
        candidates = self.run_candidates(op, db)
        assert {"path": ("tags",), "outer": True} in candidates
        assert {"path": ("more",), "outer": False} in candidates

    def test_projection_substitutions(self, db):
        op = Projection(TableAccess("T"), ["a"])
        candidates = self.run_candidates(op, db)
        new_paths = {c["cols"][0][1].path for c in candidates}
        assert ("b",) in new_paths

    def test_join_type_changes(self, db):
        op = Join(
            Projection(TableAccess("T"), ["a"]),
            Projection(TableAccess("T"), [("a2", col("b"))]),
            [("a", "a2")],
        )
        candidates = self.run_candidates(op, db)
        hows = {c["how"] for c in candidates}
        # "inner" only appears when combined with an attribute change; with no
        # compatible alternative attributes here, the pure how-changes remain.
        assert hows == {"left", "right", "full"}

    def test_group_agg_function_changes(self, db):
        op = GroupAggregation(TableAccess("T"), ["name"], [AggSpec("sum", col("a"), "s")])
        candidates = self.run_candidates(op, db)
        funcs = {c["aggs"][0].func for c in candidates}
        assert {"count", "avg", "min", "max"} <= funcs

    def test_renaming_permutations(self, db):
        op = Renaming(TableAccess("T"), [("x", "a"), ("y", "b")])
        candidates = self.run_candidates(op, db)
        assert {"pairs": (("y", "a"), ("x", "b"))} in candidates

    def test_table_access_has_none(self, db):
        op = TableAccess("T")
        assert self.run_candidates(op, db) == []
