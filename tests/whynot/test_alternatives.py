"""Tests for schema alternative enumeration (Step 2; Examples 13–15, Fig. 3)."""

import pytest

from repro.algebra.expressions import col
from repro.algebra.operators import (
    InnerFlatten,
    Projection,
    Query,
    RelationFlatten,
    Selection,
    TableAccess,
)
from repro.engine.database import Database
from repro.nested.values import Bag, Tup
from repro.whynot.alternatives import (
    TooManyAlternatives,
    enumerate_schema_alternatives,
    parse_source,
)
from repro.whynot.backtrace import backtrace
from repro.whynot.placeholders import ANY, STAR


def enumerate_for(query, db, nip, groups, **kwargs):
    bt = backtrace(query, db, nip)
    return enumerate_schema_alternatives(query, db, nip, bt, groups=groups, **kwargs)


class TestParseSource:
    def test_string(self):
        assert parse_source("person.address2.city") == ("person", ("address2", "city"))

    def test_tuple_passthrough(self):
        assert parse_source(("t", ("a",))) == ("t", ("a",))

    def test_table_only_rejected(self):
        with pytest.raises(ValueError):
            parse_source("person")


class TestRunningExample:
    GROUPS = [["person.address2", "person.address1"]]

    def test_two_sas_remain(self, running_query, person_db, running_nip):
        sas = enumerate_for(running_query, person_db, running_nip, self.GROUPS)
        assert len(sas) == 2
        assert sas[0].is_original and not sas[1].is_original

    def test_s2_swaps_flatten(self, running_query, person_db, running_nip):
        sas = enumerate_for(running_query, person_db, running_nip, self.GROUPS)
        s2 = sas[1]
        assert s2.delta == frozenset({running_query.op_by_label("F").op_id})
        flatten: RelationFlatten = s2.query.op_by_label("F")
        assert flatten.path == ("address1",)

    def test_s2_backtrace_swaps_table_nip(self, running_query, person_db, running_nip):
        """Example 15: t2 nests the city constraint under address1."""
        sas = enumerate_for(running_query, person_db, running_nip, self.GROUPS)
        nip = sas[1].backtrace.table_nip("person")
        assert nip["address1"] == Bag([Tup(city="NY", year=ANY), STAR])
        assert nip["address2"] is ANY

    def test_no_groups_yields_only_s1(self, running_query, person_db, running_nip):
        sas = enumerate_for(running_query, person_db, running_nip, [])
        assert len(sas) == 1 and sas[0].is_original


class TestPruning:
    def test_output_schema_change_pruned(self):
        """Flattening an alternative with differently named element fields
        changes the output schema and must be pruned (paper's city1 case)."""
        db = Database(
            {
                "T": [
                    Tup(
                        name="n",
                        a1=Bag([Tup(city1="x", year=1)]),
                        a2=Bag([Tup(city="x", year=1)]),
                    )
                ]
            }
        )
        plan = Projection(InnerFlatten(TableAccess("T"), "a2"), ["name", "city"])
        q = Query(plan)
        nip = Tup(name=ANY, city="NY")
        sas = enumerate_for(q, db, nip, [["T.a2", "T.a1"]])
        assert len(sas) == 1  # only the original remains

    def test_unreachable_reference_pruned(self):
        """If the selection references a field that only exists under the
        original flatten, the swapped SA is pruned (Figure 3, dashed)."""
        db = Database(
            {
                "T": [
                    Tup(
                        a1=Bag([Tup(city="x")]),
                        a2=Bag([Tup(city="x", year=1)]),
                    )
                ]
            }
        )
        plan = Selection(InnerFlatten(TableAccess("T"), "a2"), col("year").ge(0))
        q = Query(plan)
        nip = Tup(a1=ANY, a2=ANY, city="NY", year=ANY)
        sas = enumerate_for(q, db, nip, [["T.a2", "T.a1"]])
        assert len(sas) == 1

    def test_cap_enforced(self, running_query, person_db, running_nip):
        groups = [[f"person.address{i}" for i in (1, 2)]] * 8
        with pytest.raises(TooManyAlternatives):
            enumerate_for(
                running_query, person_db, running_nip, groups, max_sas=2
            )


class TestInjectiveLinking:
    def test_swap_is_linked(self):
        """Two references in the same group swap together (the Q6 pattern)."""
        db = Database({"T": [Tup(a=1, b=2, c=3)]})
        plan = Selection(
            Selection(TableAccess("T"), col("a").ge(0), label="σa"),
            col("b").ge(0),
            label="σb",
        )
        q = Query(plan)
        nip = Tup(a=ANY, b=ANY, c=ANY)
        sas = enumerate_for(q, db, nip, [["T.a", "T.b"]])
        # identity + full swap: the (a→b, b→b) style collapses are excluded.
        assert len(sas) == 2
        swapped = sas[1]
        assert swapped.query.op_by_label("σa").pred.attr_paths() == [("b",)]
        assert swapped.query.op_by_label("σb").pred.attr_paths() == [("a",)]

    def test_same_attr_refs_move_together(self):
        """A BETWEEN predicate references the attribute twice; both move."""
        db = Database({"T": [Tup(a=1, b=2)]})
        plan = Selection(TableAccess("T"), col("a").between(0, 9))
        q = Query(plan)
        nip = Tup(a=ANY, b=ANY)
        sas = enumerate_for(q, db, nip, [["T.a", "T.b"]])
        assert len(sas) == 2
        assert sas[1].query.op(2).pred.attr_paths() == [("b",), ("b",)]

    def test_three_member_group_one_ref(self):
        db = Database({"T": [Tup(a=1, b=2, c=3)]})
        plan = Selection(TableAccess("T"), col("a").ge(0))
        q = Query(plan)
        nip = Tup(a=ANY, b=ANY, c=ANY)
        sas = enumerate_for(q, db, nip, [["T.a", "T.b", "T.c"]])
        assert len(sas) == 3
