"""Tests for data tracing (Step 3; paper Figures 4–7)."""

import pytest

from repro.algebra.operators import Map, Query, TableAccess
from repro.engine.database import Database
from repro.nested.values import Bag, Tup
from repro.whynot.alternatives import enumerate_schema_alternatives
from repro.whynot.backtrace import backtrace
from repro.whynot.placeholders import ANY, STAR
from repro.whynot.tracing import UnsupportedOperator, trace


@pytest.fixture
def traced(running_query, person_db, running_nip):
    bt = backtrace(running_query, person_db, running_nip)
    sas = enumerate_schema_alternatives(
        running_query,
        person_db,
        running_nip,
        bt,
        groups=[["person.address2", "person.address1"]],
    )
    return sas, trace(running_query, person_db, sas)


def rows_of(traced, query, label):
    sas, result = traced
    return result.traces[query.op_by_label(label).op_id].rows


class TestTableAccess:
    def test_figure4_consistency(self, traced, running_query):
        """Figure 4: Peter is consistent only under S2, Sue under both."""
        rows = rows_of(traced, running_query, "R1")
        by_name = {r.vals[0]["name"]: r for r in rows}
        assert by_name["Peter"].consistent == (False, True)
        assert by_name["Sue"].consistent == (True, True)

    def test_all_rows_valid_and_retained(self, traced, running_query):
        for r in rows_of(traced, running_query, "R1"):
            assert r.vals[0] is not None and r.vals[1] is not None
            assert r.retained == (True, True)


class TestFlatten:
    def test_figure5_shape(self, traced, running_query):
        """Figure 5: five merged rows (3 from Peter's zip-merge, 2 from Sue)."""
        rows = rows_of(traced, running_query, "F")
        assert len(rows) == 5

    def test_figure5_annotations(self, traced, running_query):
        rows = rows_of(traced, running_query, "F")
        # Peter's third row exists only under S2 (address1 has 3 addresses,
        # address2 only 2) — valid S1 = False.
        peter_rows = [r for r in rows if r.vals[1] and r.vals[1]["name"] == "Peter"]
        assert sum(1 for r in peter_rows if r.vals[0] is None) == 1
        # The only S1-consistent flatten row is Sue's NY 2018 row.
        s1_consistent = [r for r in rows if r.consistent[0]]
        assert len(s1_consistent) == 1
        assert s1_consistent[0].vals[0]["city"] == "NY"

    def test_inner_padding_not_retained(self):
        db = Database(
            {"T": [Tup(name="a", xs=Bag()), Tup(name="b", xs=Bag([Tup(v=1)]))]}
        )
        from repro.algebra.operators import InnerFlatten

        q = Query(InnerFlatten(TableAccess("T"), "xs"))
        nip = Tup(name="a", xs=ANY, v=ANY)
        bt = backtrace(q, db, nip)
        sas = enumerate_schema_alternatives(q, db, nip, bt)
        result = trace(q, db, sas)
        padded = [
            r
            for r in result.traces[q.root.op_id].rows
            if r.vals[0] and r.vals[0]["name"] == "a"
        ]
        assert len(padded) == 1
        assert padded[0].retained[0] is False  # would be kept by outer flatten


class TestSelection:
    def test_figure6_retained_flags(self, traced, running_query):
        rows = rows_of(traced, running_query, "σ")
        # Under S1 exactly one row passes year ≥ 2019 (Sue's LA 2019).
        retained_s1 = [r for r in rows if r.retained[0]]
        assert len(retained_s1) == 1
        assert retained_s1[0].vals[0]["city"] == "LA"
        # Sue's NY 2018 row is consistent but not retained — the σ witness.
        witness = [r for r in rows if r.consistent[0] and not r.retained[0]]
        assert len(witness) == 1 and witness[0].vals[0]["year"] == 2018


class TestNesting:
    def test_figure7_final_rows(self, traced, running_query):
        sas, result = traced
        rows = result.final_rows()
        by_city = {}
        for r in rows:
            for i in (0, 1):
                if r.vals[i] is not None:
                    by_city.setdefault(r.vals[i]["city"], {})[i] = r
        # NY exists under both SAs and is consistent under both (Fig. 7 id 8).
        ny = by_city["NY"]
        assert 0 in ny and 1 in ny
        assert ny[0].consistent[0] and ny[1].consistent[1]
        # SF exists only under S1, LV only under S2 (Fig. 7 ids 10–11).
        assert 0 in by_city["SF"] and 1 not in by_city.get("SF", {0: None})
        lv = by_city["LV"]
        assert lv[1].vals[0] is None

    def test_nested_value_under_s1(self, traced, running_query):
        sas, result = traced
        ny_rows = [
            r
            for r in result.final_rows()
            if r.vals[0] is not None and r.vals[0]["city"] == "NY"
        ]
        assert ny_rows[0].vals[0]["nList"] == Bag([Tup(name="Sue")])


class TestLineage:
    def test_ancestors_reach_table(self, traced, running_query):
        sas, result = traced
        ny = next(
            r
            for r in result.final_rows()
            if r.vals[0] is not None and r.vals[0]["city"] == "NY"
        )
        ancestors = result.ancestors([ny.rid])
        table_rows = result.traces[running_query.op_by_label("R1").op_id].rows
        sue = next(r for r in table_rows if r.vals[0]["name"] == "Sue")
        assert sue.rid in ancestors


class TestRevalidationAblation:
    def test_without_revalidation_all_successors_stay_compatible(
        self, running_query, person_db, running_nip
    ):
        bt = backtrace(running_query, person_db, running_nip)
        sas = enumerate_schema_alternatives(
            running_query, person_db, running_nip, bt
        )
        result = trace(running_query, person_db, sas, revalidate=False)
        flatten_rows = result.traces[running_query.op_by_label("F").op_id].rows
        sue_rows = [
            r for r in flatten_rows if r.vals[0] and r.vals[0]["name"] == "Sue"
        ]
        # Both of Sue's successors stay flagged compatible (the paper's
        # false-positive critique of lineage-based approaches).
        assert all(r.consistent[0] for r in sue_rows)


class TestUnsupported:
    def test_map_rejected(self):
        db = Database({"T": [Tup(a=1)]})
        q = Query(Map(TableAccess("T"), lambda t: t))
        with pytest.raises(Exception):
            bt = backtrace(q, db, Tup(a=1))


class TestBitmaskFlags:
    """The bitmask storage must agree with the tuple-style views."""

    def test_masks_consistent_with_tuple_views(self, traced):
        _, result = traced
        n = result.n_sas
        for row in result.rows_by_rid.values():
            for i in range(n):
                assert row.valid(i) == (row.vals[i] is not None)
                assert row.consistent[i] == row.consistent_at(i)
                assert row.retained[i] == row.retained_at(i)
                assert row.consistent_at(i) == bool((row.consistent_mask >> i) & 1)

    def test_consistent_implies_valid(self, traced):
        _, result = traced
        for row in result.rows_by_rid.values():
            assert row.consistent_mask & ~row.valid_mask == 0

    def test_shared_columns_share_objects(self, traced, running_query):
        """SAs indistinguishable at an operator must share tuple objects
        (the column-sharing invariant behind SA-shared tracing)."""
        _, result = traced
        for op_trace in result.traces.values():
            groups = op_trace.groups
            for row in op_trace.rows:
                for i, gid in enumerate(groups.gids):
                    rep = groups.reps[gid]
                    assert row.vals[i] is row.vals[rep]

    def test_table_rows_fully_shared(self, traced, running_query):
        _, result = traced
        table_rows = result.traces[running_query.op_by_label("R1").op_id].rows
        for row in table_rows:
            assert all(v is row.vals[0] for v in row.vals)
