"""Tests for exact SR/MSR enumeration (Definitions 8–10, Examples 9–10)."""

import pytest

from repro.algebra.expressions import col
from repro.algebra.operators import Projection, Query, Selection, TableAccess
from repro.engine.database import Database
from repro.nested.values import Bag, Tup
from repro.whynot.exact import SearchBudgetExceeded, enumerate_explanations
from repro.whynot.placeholders import ANY
from repro.whynot.question import WhyNotQuestion


class TestRunningExample:
    def test_example10_with_tree_distance(self, running_question):
        """With tree edit distance both {σ} and {F, σ} are MSRs (Ex. 10)."""
        result = enumerate_explanations(running_question, max_ops=2, distance="tree")
        q = running_question.query
        label_sets = {
            frozenset(q.op(i).label for i in delta) for delta, _ in result.explanations
        }
        assert label_sets == {frozenset({"σ"}), frozenset({"F", "σ"})}

    def test_sigma_alone_is_sr(self, running_question):
        result = enumerate_explanations(running_question, max_ops=1, distance="bag")
        q = running_question.query
        assert {q.op(i).label for delta, _ in result.explanations for i in delta} == {"σ"}

    def test_bag_distance_prunes_dominated(self, running_question):
        """Under the top-level bag metric, {σ} (d=2) dominates {F, σ} (d=3)."""
        result = enumerate_explanations(running_question, max_ops=2, distance="bag")
        assert len(result.explanations) == 1
        (delta, d) = result.explanations[0]
        assert d == 2

    def test_srs_really_succeed(self, running_question):
        result = enumerate_explanations(running_question, max_ops=2, distance="bag")
        for sr in result.srs:
            assert running_question.is_answered_by(sr.result)

    def test_restricted_ops(self, running_question):
        result = enumerate_explanations(
            running_question, max_ops=2, distance="bag", ops=[4, 5]
        )
        assert result.explanations == []


class TestSimpleCases:
    def make_question(self):
        db = Database({"T": [Tup(a=1, b=10), Tup(a=2, b=20), Tup(a=3, b=30)]})
        plan = Projection(Selection(TableAccess("T"), col("a").ge(3), label="σ"), ["b"])
        return WhyNotQuestion(Query(plan), db, Tup(b=20))

    def test_selection_constant_repair(self):
        phi = self.make_question()
        result = enumerate_explanations(phi, max_ops=1)
        assert [phi.query.op(i).label for delta, _ in result.explanations for i in delta] == ["σ"]

    def test_minimal_side_effect_chosen(self):
        phi = self.make_question()
        result = enumerate_explanations(phi, max_ops=1)
        (_, d) = result.explanations[0]
        # σ: a ≥ 2 keeps (30) and adds (20): one added tuple → d = 1.
        assert d == 1

    def test_budget_guard(self):
        phi = self.make_question()
        with pytest.raises(SearchBudgetExceeded):
            enumerate_explanations(phi, max_ops=2, max_candidates=1)

    def test_unanswerable_question_has_no_explanations(self):
        db = Database({"T": [Tup(a=1)]})
        plan = Selection(TableAccess("T"), col("a").ge(0))
        phi = WhyNotQuestion(Query(plan), db, Tup(a=99))
        result = enumerate_explanations(phi, max_ops=1)
        assert result.explanations == []


class TestMinimality:
    def test_subset_domination(self):
        """An explanation must not be a superset of another with ≤ side
        effects; construct a case where {σ1} suffices so {σ1, σ2} is pruned."""
        db = Database({"T": [Tup(a=1, b=1), Tup(a=5, b=5)]})
        plan = Selection(
            Selection(TableAccess("T"), col("a").ge(5), label="σ1"),
            col("b").ge(0),
            label="σ2",
        )
        phi = WhyNotQuestion(Query(plan), db, Tup(a=1, b=1))
        result = enumerate_explanations(phi, max_ops=2)
        q = phi.query
        label_sets = {
            frozenset(q.op(i).label for i in delta) for delta, _ in result.explanations
        }
        assert frozenset({"σ1"}) in label_sets
        assert frozenset({"σ1", "σ2"}) not in label_sets
