"""Tracing coverage for union / difference / dedup / product and guards."""

import pytest

from repro.algebra.expressions import col
from repro.algebra.operators import (
    CartesianProduct,
    Deduplication,
    Difference,
    Projection,
    Query,
    Renaming,
    Selection,
    TableAccess,
    Union,
)
from repro.engine.database import Database
from repro.nested.values import Tup
from repro.whynot.alternatives import enumerate_schema_alternatives
from repro.whynot.backtrace import backtrace
from repro.whynot.explain import explain
from repro.whynot.placeholders import ANY
from repro.whynot.question import WhyNotQuestion
from repro.whynot.tracing import trace


def run_explain(plan, db, nip):
    phi = WhyNotQuestion(Query(plan), db, nip)
    return explain(phi, validate=False)


class TestUnion:
    def test_explanation_through_union(self):
        db = Database(
            {"A": [Tup(v=1)], "B": [Tup(v=2)]}
        )
        plan = Selection(
            Union(TableAccess("A"), TableAccess("B")), col("v").ge(5), label="σ"
        )
        result = run_explain(plan, db, Tup(v=2))
        assert [e.labels for e in result.explanations] == [("σ",)]


class TestDifference:
    def test_difference_retained_flags(self):
        db = Database({"A": [Tup(v=1), Tup(v=2)], "B": [Tup(v=2)]})
        plan = Difference(TableAccess("A"), TableAccess("B"))
        q = Query(plan)
        phi = WhyNotQuestion(q, db, Tup(v=9))
        bt = backtrace(q, db, phi.nip)
        sas = enumerate_schema_alternatives(q, db, phi.nip, bt)
        traced = trace(q, db, sas)
        rows = traced.traces[q.root.op_id].rows
        flags = {r.vals[0]["v"]: r.retained[0] for r in rows}
        assert flags == {1: True, 2: False}


class TestDeduplication:
    def test_passthrough(self):
        db = Database({"A": [Tup(v=1), Tup(v=1)]})
        plan = Selection(Deduplication(TableAccess("A")), col("v").ge(5), label="σ")
        result = run_explain(plan, db, Tup(v=1))
        assert [e.labels for e in result.explanations] == [("σ",)]


class TestProduct:
    def test_small_product_traced(self):
        db = Database({"A": [Tup(v=1)], "B": [Tup(w=2)]})
        plan = Selection(
            CartesianProduct(TableAccess("A"), TableAccess("B")),
            col("v").ge(5),
            label="σ",
        )
        result = run_explain(plan, db, Tup(v=ANY, w=2))
        assert [e.labels for e in result.explanations] == [("σ",)]


class TestRenamingTrace:
    def test_explanation_below_renaming(self):
        db = Database({"A": [Tup(v=1)]})
        plan = Renaming(
            Selection(TableAccess("A"), col("v").ge(5), label="σ"), [("value", "v")]
        )
        result = run_explain(plan, db, Tup(value=1))
        assert [e.labels for e in result.explanations] == [("σ",)]


class TestGuards:
    def test_too_many_alternatives_raises(self, running_question):
        from repro.whynot.alternatives import TooManyAlternatives

        groups = [["person.address2", "person.address1"]] * 12
        with pytest.raises(TooManyAlternatives):
            explain(running_question, alternatives=groups, max_sas=2)

    def test_projection_only_query_has_no_explanations_when_impossible(self):
        db = Database({"A": [Tup(v=1, w=2)]})
        plan = Projection(TableAccess("A"), ["v"])
        result = run_explain(plan, db, Tup(v=42))
        assert result.explanations == []
