"""Property tests for the fuzz generators themselves.

The generators' contract: everything they produce is *well-typed* — schemas
infer, plans evaluate, questions validate — and fully determined by the
seed.  A generator crash or an ill-typed plan would silently shrink fuzz
coverage, so these properties are tier-1.
"""

import random

from repro.engine.executor import Executor
from repro.fuzz.data import FuzzConfig, gen_db_spec
from repro.fuzz.harness import generate_case
from repro.fuzz.plans import gen_query, gen_question
from repro.fuzz.serialize import case_to_json
from repro.nested.types import conforms
from repro.nested.values import NAN
from repro.whynot.matching import matching_tuples

SEEDS = range(40)


class TestDataGenerator:
    def test_rows_conform_to_declared_schema(self):
        for seed in SEEDS:
            spec = gen_db_spec(random.Random(f"schema:{seed}"), FuzzConfig())
            for name, table in spec.tables.items():
                for row in table.rows:
                    assert conforms(row, table.schema), (seed, name, row)

    def test_databases_build_and_report_schemas(self):
        for seed in SEEDS:
            spec = gen_db_spec(random.Random(f"build:{seed}"), FuzzConfig())
            db = spec.build()
            for name in spec.tables:
                assert db.schema(name) == spec.tables[name].schema

    def test_nan_values_are_canonical_after_build(self):
        # The generator draws NAN from the pool; ingestion must keep it (or
        # make it) the canonical object so fuzz cases obey the invariant.
        found = 0
        for seed in SEEDS:
            spec = gen_db_spec(random.Random(f"nan:{seed}"), FuzzConfig())
            db = spec.build()
            for name in db.tables():
                for row in db.relation(name):
                    for value in row.values():
                        if type(value) is float and value != value:
                            assert value is NAN
                            found += 1
        assert found > 0, "the value pools stopped producing NaN"


class TestPlanGenerator:
    def test_plans_type_check_and_evaluate(self):
        for seed in SEEDS:
            rng = random.Random(f"plan:{seed}")
            spec = gen_db_spec(rng, FuzzConfig())
            db = spec.build()
            query = gen_query(rng, db, FuzzConfig())
            schemas = query.infer_schemas(db)  # raises on an ill-typed plan
            assert set(schemas) == {op.op_id for op in query.ops}
            result = query.evaluate(db)
            executed = Executor(num_partitions=3).execute(query, db)
            assert executed == result

    def test_generation_is_deterministic(self):
        a = case_to_json(generate_case(11, 3, FuzzConfig()))
        b = case_to_json(generate_case(11, 3, FuzzConfig()))
        assert a == b

    def test_different_indices_differ(self):
        a = case_to_json(generate_case(11, 3, FuzzConfig()))
        b = case_to_json(generate_case(11, 4, FuzzConfig()))
        assert a != b


class TestQuestionGenerator:
    def test_questions_are_well_posed(self):
        derived = 0
        for seed in SEEDS:
            rng = random.Random(f"q:{seed}")
            spec = gen_db_spec(rng, FuzzConfig())
            db = spec.build()
            query = gen_query(rng, db, FuzzConfig())
            question = gen_question(rng, query, db)
            if question is None:
                continue
            derived += 1
            question.validate()  # Def. 3 + Def. 5: raises if ill-posed
            assert not matching_tuples(query.evaluate(db), question.nip)
        assert derived > len(SEEDS) // 2, "question derivation rate collapsed"
