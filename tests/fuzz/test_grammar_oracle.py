"""The grammar round-trip leg of the differential oracle.

``check_case(..., grammar=True)`` adds a sixth oracle dimension: pretty-
print the plan, recompile the text, and demand the identity — structur-
ally, on evaluation, and on explanation label sets.  These tests prove
both directions: a healthy case reports nothing, and each injected
defect (unprintable plan, unparseable text, silently different plan)
surfaces as a ``grammar`` divergence rather than a crash or a pass.
"""

import pytest

import repro.lang
from repro.algebra.operators import Query
from repro.datasets.people import person_database, person_query
from repro.fuzz.oracle import check_case
from repro.lang import PrettyError
from repro.nested.values import Bag, Tup
from repro.whynot.placeholders import ANY, STAR
from repro.whynot.question import WhyNotQuestion

FAST = dict(partitions=(1,), backends=("serial",), optimize=(False,),
            engines=("row",), explain_grid=())


@pytest.fixture
def db():
    return person_database()


@pytest.fixture
def question(db):
    query = person_query()
    nip = Tup(city="NY", nList=Bag([ANY, STAR]))
    return WhyNotQuestion(query, db, nip)


def grammar_divergences(report):
    return [d for d in report.divergences if d.kind == "grammar"]


def test_clean_case_has_no_grammar_divergence(db, question):
    report = check_case(
        db, person_query(), question=question, grammar=True, **FAST
    )
    assert grammar_divergences(report) == []
    # The grammar leg ran: one recompile plus the explain pair.
    assert report.explain_configs_run >= 2


def test_grammar_flag_off_skips_the_check(db, monkeypatch):
    def boom(*args, **kwargs):
        raise AssertionError("pretty_program must not run with grammar=False")

    monkeypatch.setattr(repro.lang, "pretty_program", boom)
    report = check_case(db, person_query(), grammar=False, **FAST)
    assert grammar_divergences(report) == []


def test_unprintable_plan_is_a_pretty_divergence(db, monkeypatch):
    def unprintable(query, **kwargs):
        raise PrettyError("no surface syntax for this operator")

    monkeypatch.setattr(repro.lang, "pretty_program", unprintable)
    report = check_case(db, person_query(), grammar=True, **FAST)
    kinds = [d.config for d in grammar_divergences(report)]
    assert kinds == ["pretty"]


def test_unparseable_pretty_output_is_a_reparse_divergence(db, monkeypatch):
    monkeypatch.setattr(
        repro.lang, "pretty_program", lambda query, **kwargs: "query { from }"
    )
    report = check_case(db, person_query(), grammar=True, **FAST)
    kinds = [d.config for d in grammar_divergences(report)]
    assert kinds == ["reparse"]


def test_silently_different_plan_is_a_plan_divergence(db, monkeypatch):
    # A printer that emits a syntactically valid but semantically wrong
    # program — the exact failure mode the structural check exists for.
    monkeypatch.setattr(
        repro.lang,
        "pretty_program",
        lambda query, **kwargs: "query { from person }",
    )
    report = check_case(db, person_query(), grammar=True, **FAST)
    kinds = [d.config for d in grammar_divergences(report)]
    assert kinds == ["plan"]


def test_divergent_nip_is_caught(db, question, monkeypatch):
    real = repro.lang.pretty_program

    def wrong_nip(query, nip=None, **kwargs):
        return real(query, nip=Tup(city="LA"), **kwargs)

    monkeypatch.setattr(repro.lang, "pretty_program", wrong_nip)
    report = check_case(
        db, person_query(), question=question, grammar=True, **FAST
    )
    kinds = [d.config for d in grammar_divergences(report)]
    assert kinds == ["nip"]


def test_grammar_check_runs_even_when_reference_errors(db, monkeypatch):
    # A plan whose evaluation raises still gets the structural round-trip
    # (the check precedes the reference-error early return).
    query = person_query()
    monkeypatch.setattr(
        Query, "evaluate", lambda self, database: (_ for _ in ()).throw(
            RuntimeError("boom")
        )
    )
    report = check_case(db, query, grammar=True, **FAST)
    assert report.reference_error is not None
    assert grammar_divergences(report) == []  # structural identity held
