"""Tier-1 differential fuzzing: the pinned corpus plus a seeded mini sweep.

The corpus files under ``tests/fuzz/corpus/`` are minimized repro cases of
bugs the fuzzer found (each ``found_by`` field names the seed); they must
stay green forever.  The mini sweep keeps a slice of the full randomized
grid in tier-1 — the CI ``fuzz`` job and ``python -m repro fuzz`` run the
larger sweeps.
"""

import glob
import os

import pytest

from repro.fuzz import FuzzConfig, run_sweep
from repro.fuzz.serialize import load_case

CORPUS_DIR = os.path.join(os.path.dirname(__file__), "corpus")
CORPUS_FILES = sorted(glob.glob(os.path.join(CORPUS_DIR, "*.json")))


def _corpus_id(path: str) -> str:
    return os.path.splitext(os.path.basename(path))[0]


class TestPinnedCorpus:
    def test_corpus_is_not_empty(self):
        assert CORPUS_FILES, "the pinned fuzz corpus disappeared"

    @pytest.mark.parametrize("path", CORPUS_FILES, ids=_corpus_id)
    def test_corpus_case_has_no_divergence(self, path):
        case = load_case(path)
        report = case.check()
        assert report.reference_error is None, (
            f"{path}: reference evaluation raised {report.reference_error}"
        )
        assert report.ok, f"{path} diverged:\n{report.describe()}"


class TestPinnedRegressions:
    """Each fixed bug, asserted on its minimized corpus case directly."""

    def _load(self, name):
        return load_case(os.path.join(CORPUS_DIR, name))

    def test_nan_group_key_forms_one_group(self):
        # seed3-case8 family: two source NaNs must group together everywhere.
        case = self._load("nan_group_key.json")
        result = case.query.evaluate(case.database())
        counts = sorted(row["g0"] for row in result)
        assert counts == [1, 2]  # one NaN group of 2, one 1.5-group of 1

    def test_nan_join_key_matches(self):
        # seed9-case12: NaN equi-joins NaN under the canonical-NaN invariant.
        case = self._load("nan_join_key.json")
        assert len(case.query.evaluate(case.database())) == 1

    def test_nan_arith_group_key_is_canonical(self):
        # seed2 family: NaN + x must group as one value, not one per row.
        case = self._load("nan_arith_group_key.json")
        result = list(case.query.evaluate(case.database()))
        assert len(result) == 1 and result[0]["g0"] == 2

    def test_min_over_nan_group_is_order_independent(self):
        # seed21-case22: min([2, nan]) must be 2 on every partitioning.
        case = self._load("nan_min_max_partition_order.json")
        result = list(case.query.evaluate(case.database()))
        assert result[0]["g1"] == 2


class TestMiniSweep:
    """A pinned slice of the randomized grid inside the tier-1 budget."""

    def test_seed4_mini_sweep_has_no_divergence(self):
        result = run_sweep(4, 40, FuzzConfig())
        details = "\n\n".join(
            f"{case.name}:\n{report.describe()}" for case, report in result.failures
        )
        assert result.ok, f"divergent cases:\n{details}"
        assert result.cases == 40
        assert result.with_question > 20  # the explain differential really ran

    def test_different_seed_stays_clean_without_questions(self):
        result = run_sweep(77, 15, FuzzConfig(depth=3, ops=8), questions=False)
        assert result.ok, "\n".join(
            report.describe() for _, report in result.failures
        )
