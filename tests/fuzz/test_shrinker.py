"""Shrinker behaviour: minimal output that still fails, nothing over-shrunk.

The shrinker is exercised two ways: with synthetic failure predicates (fast,
checks minimality precisely) and end-to-end against a real pre-fix bug shape
(the pinned ``nan_min_max_partition_order`` corpus case was produced by it).
"""

import random

from repro.algebra.operators import TableAccess
from repro.fuzz.data import FuzzConfig
from repro.fuzz.harness import generate_case, shrink_case
from repro.fuzz.serialize import case_from_json, case_to_json

MARKER = 424242


def _case_with_marker(seed=5, index=2):
    """A generated case with one marker row injected into one table."""
    case = generate_case(seed, index, FuzzConfig(), questions=False)
    table = sorted(case.db_spec.tables)[0]
    spec = case.db_spec.tables[table]
    first = spec.rows[0]
    name = first.attrs[0]
    spec.rows.append(first.with_attr(name, MARKER))
    return case, table, name


def _contains_marker(case, table, name):
    return any(
        row.get(name) == MARKER for row in case.db_spec.tables[table].rows
    )


class TestShrinkRows:
    def test_rows_shrink_to_the_marker(self):
        case, table, name = _case_with_marker()
        assert sum(len(s.rows) for s in case.db_spec.tables.values()) > 1

        def fails(candidate):
            return _contains_marker(candidate, table, name)

        shrunk = shrink_case(case, still_fails=fails)
        assert fails(shrunk)
        # Minimal: exactly the marker row survives across all tables.
        assert sum(len(s.rows) for s in shrunk.db_spec.tables.values()) == 1

    def test_plan_shrinks_to_a_single_table_access(self):
        case, table, name = _case_with_marker(seed=6, index=1)

        def fails(candidate):
            return _contains_marker(candidate, table, name)

        shrunk = shrink_case(case, still_fails=fails)
        # The failure does not depend on the plan at all, so every non-source
        # operator must have been removed.
        assert len(shrunk.query.ops) == 1
        assert isinstance(shrunk.query.root, TableAccess)
        assert shrunk.nip is None

    def test_shrunk_case_still_round_trips(self):
        case, table, name = _case_with_marker(seed=7, index=0)

        def fails(candidate):
            return _contains_marker(candidate, table, name)

        shrunk = shrink_case(case, still_fails=fails)
        clone = case_from_json(case_to_json(shrunk))
        assert fails(clone)
        assert case_to_json(clone) == case_to_json(shrunk)


class TestShrinkAgainstRealOracle:
    def test_never_failing_case_is_returned_unchanged_in_shape(self):
        case = generate_case(8, 3, FuzzConfig(), questions=False)

        def never_fails(candidate):
            return False

        shrunk = shrink_case(case, still_fails=never_fails)
        # Nothing may be removed when removal doesn't preserve the failure.
        assert case_to_json(shrunk) == case_to_json(case)

    def test_min_max_bug_shape_shrinks_below_original(self):
        """End-to-end: re-create the pre-fix min/max divergence with a
        synthetic order-sensitive oracle and shrink it (the real pre-fix run
        produced the pinned corpus case the same way, fuzz seed 21)."""
        case = generate_case(21, 22, FuzzConfig(), questions=False)
        original_rows = sum(len(s.rows) for s in case.db_spec.tables.values())

        def fails(candidate):
            # Stand-in for the old order-dependent min/max: fail while any
            # table still has a NaN float anywhere (the bug's trigger).
            for spec in candidate.db_spec.tables.values():
                for row in spec.rows:
                    for value in row.values():
                        if type(value) is float and value != value:
                            return True
            return False

        assert fails(case), "seed 21 case 22 lost its NaN trigger"
        shrunk = shrink_case(case, still_fails=fails)
        assert fails(shrunk)
        shrunk_rows = sum(len(s.rows) for s in shrunk.db_spec.tables.values())
        assert shrunk_rows == 1
        assert shrunk_rows < original_rows
