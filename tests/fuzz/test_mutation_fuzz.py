"""Tier-1 mutation fuzzing: generator validity and a seeded mini sweep.

The full randomized gate (150+ cases over serial+process backends and both
engines) runs as ``python -m repro fuzz --mutations`` in the CI ``mutate``
job; tier-1 keeps a small deterministic slice plus property checks on the
mutation generator itself: generated mutations must always apply cleanly
(valid by construction), canonical-form variants must stay canonically
equal to what they re-express, and the sweep must be reproducible.
"""

import random

from repro.fuzz import FuzzConfig, run_mutation_sweep
from repro.fuzz.harness import generate_case
from repro.fuzz.mutations import _variant_value, gen_mutation, gen_mutation_chain
from repro.nested.values import Bag, Tup, canonicalize_value


def _config():
    return FuzzConfig(depth=2, rows=6, ops=4)


class TestMutationGenerator:
    def test_generated_mutations_always_apply(self):
        config = _config()
        for index in range(20):
            rng = random.Random(f"validity:{index}")
            case = generate_case(rng, config)
            db = case.database()
            for _ in range(3):
                mutation = gen_mutation(rng, db, config)
                assert not mutation.is_empty()
                db = db.apply_mutations(mutation)  # must never raise

    def test_chain_builds_descendant_versions(self):
        rng = random.Random("chain:0")
        config = _config()
        case = generate_case(rng, config)
        db = case.database()
        chain = gen_mutation_chain(rng, db, 4, config)
        # The chain includes the base version at index 0.
        assert [v.version_id for v in chain] == [0, 1, 2, 3, 4]
        assert chain[0] is db
        assert chain[1].parent is db

    def test_variant_values_stay_canonically_equal(self):
        rng = random.Random("variant:0")
        samples = [
            2,
            2.0,
            0.0,
            -0.0,
            float("nan"),
            True,
            "s",
            Tup(a=1, b=Bag([2.0, float("nan")])),
            Bag([Tup(a=0.0), Tup(a=0.0)]),
        ]
        for value in samples:
            for _ in range(10):
                variant = _variant_value(rng, value)
                # Bag equality compares canonical keys (NaN ≡ NaN, 2 ≡ 2.0).
                assert Bag([canonicalize_value(variant)]) == Bag(
                    [canonicalize_value(value)]
                )

    def test_variants_do_reexpress_sometimes(self):
        rng = random.Random("variant:1")
        flips = sum(
            1 for _ in range(50) if repr(_variant_value(rng, 2.0)) != repr(2.0)
        )
        assert flips > 0  # int 2 must appear among the variants of 2.0


class TestMiniSweep:
    def test_mini_sweep_is_clean_and_deterministic(self):
        kwargs = dict(
            seed=5,
            cases=3,
            config=_config(),
            steps=2,
            backends=("serial",),
            engines=("row",),
        )
        first = run_mutation_sweep(**kwargs)
        assert first.ok, "\n".join(
            f"{label}: {message}" for label, message in first.failures
        )
        assert first.configs_run > 0 and first.explain_configs_run > 0
        second = run_mutation_sweep(**kwargs)
        assert first.summary() == second.summary()
        assert first.failures == second.failures

    def test_mini_sweep_without_questions(self):
        result = run_mutation_sweep(
            seed=6,
            cases=2,
            config=_config(),
            steps=2,
            questions=False,
            backends=("serial",),
            engines=("columnar",),
        )
        assert result.ok
        assert result.with_question == 0
        assert result.explain_configs_run == 0
