"""Round-trip tests for the corpus serialization format."""

import json
import math

from repro.fuzz.data import FuzzConfig
from repro.fuzz.harness import generate_case
from repro.fuzz.serialize import (
    case_from_json,
    case_to_json,
    value_from_json,
    value_to_json,
)
from repro.nested.values import NAN, NULL, Bag, Tup
from repro.whynot.placeholders import ANY, STAR, gt


class TestValueRoundTrip:
    def test_adversarial_primitives_survive(self):
        values = [0, 1, -1, True, False, 2, 2.0, 0.0, -0.0, 1.5, "", "a",
                  "naïve", "x\udc80y", "\U0001f680", NULL]
        for value in values:
            restored = value_from_json(json.loads(json.dumps(value_to_json(value))))
            assert restored == value
            assert type(restored) is type(value)

    def test_negative_zero_sign_survives(self):
        restored = value_from_json(json.loads(json.dumps(value_to_json(-0.0))))
        assert math.copysign(1.0, restored) == -1.0

    def test_nan_restores_as_canonical(self):
        restored = value_from_json(json.loads(json.dumps(value_to_json(NAN))))
        assert restored is NAN

    def test_nested_values_and_placeholders(self):
        nip = Tup(
            a=ANY,
            b=Bag([Tup(x=gt(3), y=ANY), STAR]),
            c=Bag([NAN, 1.0, 1.0]),
        )
        restored = value_from_json(json.loads(json.dumps(value_to_json(nip))))
        assert restored == nip

    def test_empty_bag_survives(self):
        restored = value_from_json(json.loads(json.dumps(value_to_json(Bag()))))
        assert isinstance(restored, Bag) and restored.is_empty()


class TestCaseRoundTrip:
    def test_generated_cases_round_trip_exactly(self):
        for index in range(12):
            case = generate_case(13, index, FuzzConfig())
            doc = case_to_json(case)
            clone = case_from_json(json.loads(json.dumps(doc)))
            assert case_to_json(clone) == doc
            # The restored case is runnable and agrees with the original.
            assert clone.query.evaluate(clone.database()) == case.query.evaluate(
                case.database()
            )

    def test_round_trip_preserves_question(self):
        found = False
        for index in range(20):
            case = generate_case(17, index, FuzzConfig())
            if case.nip is None:
                continue
            found = True
            clone = case_from_json(case_to_json(case))
            assert clone.nip == case.nip
            assert clone.question() is not None
        assert found, "no generated case carried a question"
