"""Smoke test: every script in examples/ runs as documented.

Each example documents ``PYTHONPATH=src python examples/<name>.py`` from the
repository root; this test executes exactly that from a clean environment so
the examples cannot drift from the code (or from their own docstrings).
"""

import os
import subprocess
import sys
from pathlib import Path

import pytest

REPO_ROOT = Path(__file__).resolve().parents[1]
EXAMPLES = sorted((REPO_ROOT / "examples").glob("*.py"))


def test_examples_present():
    names = {p.name for p in EXAMPLES}
    assert {
        "quickstart.py",
        "debug_twitter_pipeline.py",
        "tpch_report_debugging.py",
        "lineage_and_exact_msrs.py",
    } <= names


@pytest.mark.parametrize("example", EXAMPLES, ids=lambda p: p.name)
def test_example_runs(example):
    env = dict(os.environ, PYTHONPATH=str(REPO_ROOT / "src"))
    proc = subprocess.run(
        [sys.executable, str(example.relative_to(REPO_ROOT))],
        cwd=REPO_ROOT,
        env=env,
        capture_output=True,
        text=True,
        timeout=300,
    )
    assert proc.returncode == 0, f"{example.name} failed:\n{proc.stderr[-2000:]}"
    assert proc.stdout.strip(), f"{example.name} produced no output"


@pytest.mark.parametrize("example", EXAMPLES, ids=lambda p: p.name)
def test_example_documents_invocation(example):
    """Each example's docstring shows the PYTHONPATH=src invocation."""
    text = example.read_text()
    assert f"PYTHONPATH=src python examples/{example.name}" in text