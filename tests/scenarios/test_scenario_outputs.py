"""Table 7/8 reproduction tests: explanation sets per scenario and approach.

The expected values are the committed reproduction results; deviations from
the paper's Table 8 are marked in comments and documented in EXPERIMENTS.md.
"""

import pytest

from repro.scenarios import get_scenario, run_scenario

SCALE = 40

# Per scenario: (wnpp, rp_nosa, rp) as lists of label sets, plus gold rank.
EXPECTED = {
    "D1": (
        [{"σ2"}],
        [{"σ2"}],
        [{"σ2"}, {"π1"}],
        None,
    ),
    "D2": ([], [], [{"F3"}], 1),
    "D3": ([], [], [{"N4"}], 1),
    "D4": (
        [{"σ6"}],
        [{"σ6"}, {"σ6", "σ7"}],
        # Paper lists 4 sets; we additionally find {F5, σ6} (a correct SR on
        # this data — see EXPERIMENTS.md).
        [{"σ6"}, {"σ6", "σ7"}, {"F5", "σ6"}, {"F5", "σ7"}, {"F5", "σ6", "σ7"}],
        4,
    ),
    "D5": ([{"F9"}], [{"F9"}], [{"F9"}, {"π8"}], 2),
    "T1": (
        [{"F11"}],
        [{"F11", "σ12"}],
        [{"F11", "σ12"}, {"F10", "σ12"}],
        2,
    ),
    "T2": (
        [{"σ15"}],
        [{"σ15"}, {"σ14", "σ15"}],
        # Paper's 4th set is {F13, σ14, σ15}; ours is {F13, σ14}.
        [{"σ15"}, {"F13"}, {"σ14", "σ15"}, {"F13", "σ14"}],
        2,
    ),
    "T3": (
        [{"⋈"}],  # paper reports {F17}; see EXPERIMENTS.md
        [{"F17"}],
        [{"F17"}, {"F16"}],
        2,
    ),
    "T4": (
        [{"σ19"}],
        # Paper reports a single {σ19, σ20}; {σ20} alone is a correct SR here.
        [{"σ20"}, {"σ19", "σ20"}],
        [{"σ20"}, {"F18"}, {"σ19", "σ20"}, {"F18", "σ19"}],
        2,
    ),
    "T_ASD": ([], [], [{"F21"}, {"F21", "σ22"}], 2),
    "Q1": ([{"σ24"}], [{"σ24"}], [{"σ24"}, {"γ23"}, {"γ23", "σ24"}], 2),
    "Q3": (
        [{"σ27"}],
        [{"σ26", "σ27"}],
        [{"σ26", "σ27"}, {"γ25", "σ26", "σ27"}],
        1,
    ),
    "Q4": (
        [],
        [],
        [{"γ30"}, {"γ30", "σ28"}, {"γ30", "σ29"}, {"γ30", "σ28", "σ29"}],
        2,  # paper ranks the gold set third (tie on bounds)
    ),
    "Q6": (
        [{"σ32"}],
        [
            {"σ32"},
            {"σ33"},
            {"σ34"},
            {"σ32", "σ33"},
            {"σ32", "σ34"},
            {"σ33", "σ34"},
            {"σ32", "σ33", "σ34"},
        ],
        [
            {"σ32"},
            {"σ33"},
            {"σ34"},
            {"σ32", "σ33"},
            {"σ32", "σ34"},
            {"σ33", "σ34"},
            {"π31", "σ33"},
            {"σ32", "σ33", "σ34"},
            {"π31", "σ32", "σ33"},
            {"π31", "σ33", "σ34"},
            {"π31", "σ32", "σ33", "σ34"},
        ],
        2,
    ),
    "Q10": (
        [{"Z38"}],  # the paper's "misleading" lineage answer, reproduced
        [{"σ35"}, {"σ35", "σ36"}],
        [{"σ35"}, {"σ35", "σ36"}, {"π37", "σ35"}, {"π37", "σ35", "σ36"}],
        4,
    ),
    "Q13": ([{"Z39"}], [{"Z39"}], [{"Z39"}], 1),
    "Q13N": ([{"F39"}], [{"F39"}], [{"F39"}], 1),
}

# Flat variants find the same explanations as the nested scenarios (paper
# §6.4); WN++ differs on Q3F only through the plan translation.
FLAT_EXPECTED = {
    "Q1F": "Q1",
    "Q3F": "Q3",
    "Q4F": "Q4",
    "Q6F": "Q6",
    "Q10F": "Q10",
    "Q13F": "Q13",
}

CRIME_EXPECTED = {
    # name: (whynot, conseil, rp)
    "C1": ([{"σ1"}], [{"σ1", "Z2"}], [{"σ1", "Z2"}]),
    "C2": ([{"ZP"}], [{"σ4"}], [{"σ4"}, {"σ3", "σ4"}]),
    "C3": ([{"Z5"}], [{"Z5"}], [{"π6"}]),
}


@pytest.fixture(scope="module")
def runs():
    cache = {}

    def get(name):
        if name not in cache:
            cache[name] = run_scenario(name, scale=SCALE)
        return cache[name]

    return get


@pytest.mark.parametrize("name", sorted(EXPECTED))
def test_scenario_explanations(runs, name):
    wnpp, nosa, rp, gold_rank = EXPECTED[name]
    run = runs(name)
    assert run.wnpp == [frozenset(s) for s in wnpp], f"{name} WN++"
    assert run.rp_nosa == [frozenset(s) for s in nosa], f"{name} RPnoSA"
    assert run.rp == [frozenset(s) for s in rp], f"{name} RP"
    if gold_rank is not None:
        assert run.gold_position() == gold_rank, f"{name} gold rank"


@pytest.mark.parametrize("name", sorted(FLAT_EXPECTED))
def test_flat_variants_match_nested(runs, name):
    """Paper §6.4: the explanations on flat data equal the nested ones."""
    nested = EXPECTED[FLAT_EXPECTED[name]]
    run = runs(name)
    assert run.rp_nosa == [frozenset(s) for s in nested[1]], f"{name} RPnoSA"
    assert run.rp == [frozenset(s) for s in nested[2]], f"{name} RP"


@pytest.mark.parametrize("name", sorted(CRIME_EXPECTED))
def test_crime_comparison(runs, name):
    whynot, conseil, rp = CRIME_EXPECTED[name]
    run = runs(name)
    assert run.wnpp == [frozenset(s) for s in whynot], f"{name} Why-Not"
    assert run.conseil == [frozenset(s) for s in conseil], f"{name} Conseil"
    assert run.rp == [frozenset(s) for s in rp], f"{name} RP"


@pytest.mark.parametrize("name", sorted(EXPECTED))
def test_questions_are_well_posed(runs, name):
    """Every scenario's why-not tuple is genuinely missing (Def. 5)."""
    scenario = get_scenario(name)
    question = scenario.question(SCALE)
    question.validate()


def test_rp_supersets_rpnosa():
    """RP's explanation sets always include RPnoSA's (more SAs, same S1)."""
    for name in EXPECTED:
        run = run_scenario(name, scale=SCALE, with_baselines=False)
        assert set(run.rp) >= set(run.rp_nosa), name


def test_sa_counts():
    """Schema-alternative counts per query (Figure 10's '# of SAs' row)."""
    expected = {"Q1": 6, "Q3": 6, "Q4": 12, "Q6": 6, "Q10": 2, "Q13": 1}
    for name, n_sas in expected.items():
        run = run_scenario(name, scale=SCALE, with_baselines=False)
        assert run.n_sas == n_sas, name
