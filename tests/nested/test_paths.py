"""Unit tests for attribute paths."""

import pytest

from repro.nested.paths import (
    common_prefix,
    parse_path,
    path_exists,
    path_str,
    replace_prefix,
    resolve_type,
    starts_with,
)
from repro.nested.types import INT, STR, BagType, TupleType


SCHEMA = TupleType(
    [
        ("name", STR),
        ("address2", BagType(TupleType([("city", STR), ("year", INT)]))),
        ("place", TupleType([("country", STR)])),
    ]
)


class TestParse:
    def test_string(self):
        assert parse_path("a.b.c") == ("a", "b", "c")

    def test_tuple_passthrough(self):
        assert parse_path(("a", "b")) == ("a", "b")

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            parse_path("")

    def test_path_str(self):
        assert path_str(("a", "b")) == "a.b"


class TestPrefixOps:
    def test_starts_with(self):
        assert starts_with("a.b.c", "a.b")
        assert not starts_with("a.b", "a.b.c")

    def test_replace_prefix(self):
        assert replace_prefix("address2.city", "address2", "address1") == (
            "address1",
            "city",
        )

    def test_replace_prefix_no_match(self):
        assert replace_prefix("name", "address2", "address1") == ("name",)

    def test_common_prefix(self):
        assert common_prefix(["a.b.c", "a.b.d"]) == ("a", "b")
        assert common_prefix(["a", "b"]) == ()
        assert common_prefix([]) is None


class TestResolveType:
    def test_top_level(self):
        assert resolve_type(SCHEMA, "name") == STR

    def test_crosses_bag(self):
        assert resolve_type(SCHEMA, "address2.year") == INT

    def test_through_tuple(self):
        assert resolve_type(SCHEMA, "place.country") == STR

    def test_missing_raises(self):
        with pytest.raises(KeyError):
            resolve_type(SCHEMA, "address2.zip")

    def test_path_exists(self):
        assert path_exists(SCHEMA, "address2.city")
        assert not path_exists(SCHEMA, "bogus")
