"""Unit tests for the tree representation (paper Figure 2)."""

from repro.nested.tree import Tree, relation_tree, to_tree
from repro.nested.values import NULL, Bag, Tup


class TestTree:
    def test_size(self):
        tree = Tree("a", [Tree("b"), Tree("c", [Tree("d")])])
        assert tree.size() == 4

    def test_unordered_equality(self):
        left = Tree("a", [Tree("b"), Tree("c")])
        right = Tree("a", [Tree("c"), Tree("b")])
        assert left == right

    def test_multiset_children(self):
        left = Tree("a", [Tree("b"), Tree("b")])
        right = Tree("a", [Tree("b")])
        assert left != right


class TestToTree:
    def test_primitive_leaf(self):
        assert to_tree(5).label == "5"

    def test_null(self):
        assert to_tree(NULL).label == "⊥"

    def test_tuple_children_are_labelled(self):
        tree = to_tree(Tup(city="LA", year=2019))
        labels = sorted(child.label for child in tree.children)
        assert labels == ["city: 'LA'", "year: 2019"]

    def test_bag_repeats_elements(self):
        tree = to_tree(Bag(["x", "x"]))
        assert len(tree.children) == 2

    def test_figure2_shape(self):
        # T1 of Figure 2: {{⟨city: LA, nList: {{⟨name: Sue⟩}}⟩}}
        result = Bag([Tup(city="LA", nList=Bag([Tup(name="Sue")]))])
        tree = relation_tree(result)
        assert tree.label == "{{}}"
        (tuple_node,) = tree.children
        assert tuple_node.label == "⟨⟩"
        labels = {child.label for child in tuple_node.children}
        assert "city: 'LA'" in labels
        assert any(label.startswith("nList") for label in labels)
