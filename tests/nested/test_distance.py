"""Unit tests for the side-effect distance metrics (Def. 9's ``d``)."""

import pytest

from repro.nested.distance import (
    bag_distance,
    get_distance,
    relation_tree_distance,
    tree_edit_distance,
    value_tree_distance,
)
from repro.nested.tree import Tree
from repro.nested.values import Bag, Tup


class TestBagDistance:
    def test_identity(self):
        b = Bag([Tup(a=1)])
        assert bag_distance(b, b) == 0

    def test_symmetric_difference(self):
        left = Bag([Tup(a=1), Tup(a=2)])
        right = Bag([Tup(a=2), Tup(a=3)])
        assert bag_distance(left, right) == 2

    def test_multiplicity_counts(self):
        assert bag_distance(Bag([Tup(a=1)] * 3), Bag([Tup(a=1)])) == 2

    def test_symmetry(self):
        left = Bag([Tup(a=1)])
        right = Bag([Tup(a=2), Tup(a=3)])
        assert bag_distance(left, right) == bag_distance(right, left)


class TestTreeEditDistance:
    def test_identical(self):
        tree = Tree("a", [Tree("b")])
        assert tree_edit_distance(tree, tree) == 0

    def test_relabel(self):
        assert tree_edit_distance(Tree("a"), Tree("b")) == 1

    def test_insert_subtree(self):
        left = Tree("a")
        right = Tree("a", [Tree("b", [Tree("c")])])
        assert tree_edit_distance(left, right) == 2

    def test_unordered_children_free(self):
        left = Tree("a", [Tree("x"), Tree("y")])
        right = Tree("a", [Tree("y"), Tree("x")])
        assert tree_edit_distance(left, right) == 0

    def test_triangle_inequality_examples(self):
        a = Tree("r", [Tree("x")])
        b = Tree("r", [Tree("y")])
        c = Tree("r", [Tree("x"), Tree("y")])
        ab = tree_edit_distance(a, b)
        bc = tree_edit_distance(b, c)
        ac = tree_edit_distance(a, c)
        assert ac <= ab + bc


class TestRelationTreeDistance:
    def test_example9_ordering(self):
        """Example 9/10: T2 (extra SF tuple + changed LA) is farther from T1
        than T3 (only an extra name under LA)."""
        t1 = Bag([Tup(city="LA", nList=Bag([Tup(name="Sue")]))])
        t2 = Bag(
            [
                Tup(city="NY", nList=Bag([Tup(name="Sue")])),
                Tup(city="LA", nList=Bag([Tup(name="Sue")])),
                Tup(city="SF", nList=Bag([Tup(name="Peter")])),
            ]
        )
        t3 = Bag(
            [
                Tup(city="NY", nList=Bag([Tup(name="Sue")])),
                Tup(city="LA", nList=Bag([Tup(name="Sue"), Tup(name="Peter")])),
            ]
        )
        d12 = relation_tree_distance(t1, t2)
        d13 = relation_tree_distance(t1, t3)
        assert d13 < d12

    def test_value_tree_distance(self):
        assert value_tree_distance(Tup(a=1), Tup(a=1)) == 0
        assert value_tree_distance(Tup(a=1), Tup(a=2)) == 1


class TestRegistry:
    def test_lookup(self):
        assert get_distance("bag") is bag_distance

    def test_callable_passthrough(self):
        fn = lambda a, b: 0  # noqa: E731
        assert get_distance(fn) is fn

    def test_unknown(self):
        with pytest.raises(ValueError):
            get_distance("hamming")
