"""Tests for the ASCII rendering helpers."""

from repro.nested.pretty import print_relation, render_relation, render_value
from repro.nested.values import NULL, Bag, Tup


class TestRenderValue:
    def test_primitive(self):
        assert render_value(5) == "5"

    def test_null(self):
        assert render_value(NULL) == "⊥"

    def test_tuple(self):
        assert render_value(Tup(a=1, b="x")) == "⟨a: 1, b: x⟩"

    def test_bag_with_multiplicity(self):
        assert render_value(Bag(["x", "x"])) == "{x^2}"

    def test_truncation(self):
        text = render_value("y" * 100, max_width=10)
        assert len(text) == 10 and text.endswith("…")


class TestRenderRelation:
    def test_empty(self):
        assert render_relation(Bag()) == "(empty relation)"

    def test_table_layout(self):
        rel = Bag([Tup(a=1, b="xx"), Tup(a=22, b="y")])
        text = render_relation(rel)
        lines = text.splitlines()
        assert lines[0].split("|")[0].strip() == "a"
        assert len(lines) == 4  # header, separator, two rows

    def test_row_cap(self):
        rel = Bag([Tup(a=i) for i in range(30)])
        text = render_relation(rel, max_rows=5)
        assert "more rows" in text

    def test_print_relation_title(self, capsys):
        print_relation(Bag([Tup(a=1)]), title="demo")
        out = capsys.readouterr().out
        assert "demo" in out and "a" in out
