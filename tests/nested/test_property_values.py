"""Property-based tests (hypothesis) for the bag algebra and tuple laws."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.nested.distance import bag_distance
from repro.nested.values import Bag, Tup

primitives = st.one_of(st.integers(-5, 5), st.sampled_from(["a", "b", "c"]))
tuples = st.builds(
    lambda a, b: Tup(a=a, b=b), primitives, primitives
)
bags = st.lists(tuples, max_size=12).map(Bag)


@given(bags, bags)
def test_union_commutative(x, y):
    assert x.union(y) == y.union(x)


@given(bags, bags, bags)
def test_union_associative(x, y, z):
    assert x.union(y).union(z) == x.union(y.union(z))


@given(bags)
def test_union_identity(x):
    assert x.union(Bag()) == x


@given(bags, bags)
def test_difference_union_inverse_on_disjoint_part(x, y):
    # (x ∪ y) − y == x  (bag law)
    assert x.union(y).difference(y) == x


@given(bags)
def test_dedup_idempotent(x):
    assert x.dedup().dedup() == x.dedup()


@given(bags)
def test_dedup_multiplicities_are_one(x):
    assert all(count == 1 for _, count in x.dedup().items())


@given(bags, bags)
def test_len_of_union(x, y):
    assert len(x.union(y)) == len(x) + len(y)


@given(bags, bags)
def test_bag_distance_symmetry(x, y):
    assert bag_distance(x, y) == bag_distance(y, x)


@given(bags)
def test_bag_distance_identity(x):
    assert bag_distance(x, x) == 0


@given(bags, bags, bags)
@settings(max_examples=50)
def test_bag_distance_triangle(x, y, z):
    assert bag_distance(x, z) <= bag_distance(x, y) + bag_distance(y, z)


@given(tuples)
def test_tuple_project_drop_partition(t):
    kept = t.project(["a"])
    dropped = t.drop(["a"])
    assert kept.concat(dropped).attrs == ("a", "b")


@given(tuples, primitives)
def test_with_attr_then_get(t, v):
    assert t.with_attr("c", v)["c"] == v
    assert t.with_attr("a", v)["a"] == v


@given(st.lists(tuples, max_size=10))
def test_bag_iteration_preserves_multiplicity(rows):
    bag = Bag(rows)
    assert sorted(map(repr, bag)) == sorted(map(repr, rows))
