"""The single-NaN invariant of the value model (fuzzer regressions, seed 2/9).

Every NaN inside the value model must be the canonical ``NAN`` object:
``pickle`` does not memoize floats and CPython hashes NaN by identity, so
without canonicalization "equal" NaNs stop grouping/joining together the
moment a row crosses a process boundary.
"""

import math
import pickle

from repro.engine.database import Database
from repro.nested.values import NAN, NULL, Bag, Tup, canonicalize_value


class TestCanonicalizeValue:
    def test_plain_nan_becomes_canonical(self):
        fresh = float("nan")
        assert fresh is not NAN
        assert canonicalize_value(fresh) is NAN

    def test_clean_values_are_returned_unchanged(self):
        t = Tup(a=1, b="x", c=Bag([Tup(d=2.5)]))
        assert canonicalize_value(t) is t

    def test_nested_nan_is_replaced_everywhere(self):
        t = Tup(a=float("nan"), b=Bag([float("nan"), Tup(c=float("nan"))]))
        canon = canonicalize_value(t)
        assert canon["a"] is NAN
        elements = list(canon["b"])
        assert elements[0] is NAN or elements[1] is NAN
        for element in elements:
            if isinstance(element, Tup):
                assert element["c"] is NAN

    def test_distinct_nans_merge_in_bags(self):
        bag = canonicalize_value(Bag([float("nan"), float("nan")]))
        assert bag.mult(NAN) == 2

    def test_zeros_and_nulls_are_untouched(self):
        t = Tup(a=0.0, b=-0.0, c=NULL)
        assert canonicalize_value(t) is t


class TestUnpickleCanonicalization:
    """Fuzzer seed 2: rows crossing the process boundary lose NaN identity."""

    def test_tup_unpickle_restores_canonical_nan(self):
        t = pickle.loads(pickle.dumps(Tup(x=NAN, y=1)))
        assert t["x"] is NAN

    def test_bag_unpickle_restores_canonical_nan(self):
        bag = pickle.loads(pickle.dumps(Bag([NAN, NAN, 2.0])))
        assert bag.mult(NAN) == 2

    def test_deep_round_trip_keeps_grouping_semantics(self):
        row = Tup(k=NAN, nested=Bag([Tup(v=NAN)]))
        clone = pickle.loads(pickle.dumps(row))
        # Tuple equality relies on the identity shortcut for NaN members;
        # without canonical unpickling these two rows stop being equal.
        assert clone == row
        assert hash(clone) == hash(row)

    def test_nan_free_rows_round_trip_exactly(self):
        row = Tup(a=1.5, b="x", c=Bag([0.0, -0.0]))
        assert pickle.loads(pickle.dumps(row)) == row


class TestIngestionCanonicalization:
    def test_database_add_canonicalizes_tup_rows(self):
        db = Database({"t": [Tup(a=float("nan"))]})
        rows = list(db.relation("t"))
        assert rows[0]["a"] is NAN

    def test_database_add_canonicalizes_converted_rows(self):
        db = Database({"t": [{"a": float("nan"), "b": [{"c": float("nan")}]}]})
        row = next(iter(db.relation("t")))
        assert row["a"] is NAN
        assert next(iter(row["b"]))["c"] is NAN

    def test_nan_rows_group_as_one_value(self):
        # Two source rows with independently created NaNs: one group.
        db = Database({"t": [{"k": float("nan"), "v": 1}, {"k": float("nan"), "v": 2}]})
        keys = {row["k"] for row in db.relation("t")}
        assert len(keys) == 1
        assert math.isnan(next(iter(keys)))
