"""Unit tests for the nested type system (Definition 1) and inference."""

import pytest

from repro.nested.types import (
    ANY_TYPE,
    BOOL,
    FLOAT,
    INT,
    STR,
    AnyType,
    BagType,
    PrimitiveType,
    TupleType,
    conforms,
    same_kind,
    type_of,
    unify,
)
from repro.nested.values import NULL, Bag, Tup


class TestTypeConstruction:
    def test_primitive_names(self):
        assert PrimitiveType("int") == INT
        with pytest.raises(ValueError):
            PrimitiveType("decimal")

    def test_tuple_type_fields(self):
        t = TupleType([("a", INT), ("b", STR)])
        assert t.names == ("a", "b")
        assert t.field("b") == STR
        with pytest.raises(KeyError):
            t.field("c")

    def test_tuple_type_duplicate_fields_rejected(self):
        with pytest.raises(ValueError):
            TupleType([("a", INT), ("a", STR)])

    def test_tuple_concat(self):
        t = TupleType([("a", INT)]).concat(TupleType([("b", STR)]))
        assert t.names == ("a", "b")

    def test_tuple_project_drop(self):
        t = TupleType([("a", INT), ("b", STR), ("c", BOOL)])
        assert t.project(["c", "a"]).names == ("c", "a")
        assert t.drop(["b"]).names == ("a", "c")

    def test_bag_type_equality(self):
        assert BagType(INT) == BagType(INT)
        assert BagType(INT) != BagType(STR)


class TestTypeOf:
    def test_primitives(self):
        assert type_of(1) == INT
        assert type_of(1.5) == FLOAT
        assert type_of(True) == BOOL
        assert type_of("x") == STR

    def test_null_is_any(self):
        assert isinstance(type_of(NULL), AnyType)

    def test_tuple(self):
        t = type_of(Tup(a=1, b="x"))
        assert t == TupleType([("a", INT), ("b", STR)])

    def test_bag(self):
        t = type_of(Bag([Tup(a=1)]))
        assert t == BagType(TupleType([("a", INT)]))

    def test_empty_bag_is_bag_of_any(self):
        assert type_of(Bag()) == BagType(ANY_TYPE)

    def test_bag_with_nulls_unifies(self):
        t = type_of(Bag([Tup(a=1), Tup(a=NULL)]))
        assert t == BagType(TupleType([("a", INT)]))

    def test_heterogeneous_bag_rejected(self):
        with pytest.raises(TypeError):
            type_of(Bag([1, "x"]))


class TestUnify:
    def test_any_is_bottom(self):
        assert unify(ANY_TYPE, INT) == INT
        assert unify(STR, ANY_TYPE) == STR

    def test_numeric_widening(self):
        assert unify(INT, FLOAT) == FLOAT

    def test_incompatible_primitives(self):
        with pytest.raises(TypeError):
            unify(INT, STR)

    def test_tuples_with_different_fields_rejected(self):
        with pytest.raises(TypeError):
            unify(TupleType([("a", INT)]), TupleType([("b", INT)]))


class TestConforms:
    def test_null_conforms_to_everything(self):
        assert conforms(NULL, INT)
        assert conforms(NULL, TupleType([("a", INT)]))

    def test_tuple_conformance(self):
        schema = TupleType([("a", INT), ("b", BagType(TupleType([("c", STR)])))])
        assert conforms(Tup(a=1, b=Bag([Tup(c="x")])), schema)
        assert not conforms(Tup(a="wrong", b=Bag()), schema)
        assert not conforms(Tup(a=1), schema)

    def test_bag_conformance(self):
        assert conforms(Bag([1, 2]), BagType(INT))
        assert not conforms(Bag(["x"]), BagType(INT))


class TestSameKind:
    def test_same_primitives(self):
        assert same_kind(INT, INT)
        assert same_kind(INT, FLOAT)
        assert not same_kind(INT, STR)

    def test_bag_kinds(self):
        addresses = BagType(TupleType([("city", STR), ("year", INT)]))
        assert same_kind(addresses, addresses)
        assert not same_kind(addresses, BagType(TupleType([("url", STR)])))
