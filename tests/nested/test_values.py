"""Unit tests for nested values: NULL, Tup, Bag (paper Definitions 1–2)."""

import pytest

from repro.nested.values import NULL, Bag, Layout, Tup, is_null


class TestNull:
    def test_singleton(self):
        from repro.nested.values import _Null

        assert _Null() is NULL

    def test_is_null(self):
        assert is_null(NULL)
        assert is_null(None)
        assert not is_null(0)
        assert not is_null("")

    def test_falsy(self):
        assert not NULL

    def test_equality_and_hash(self):
        assert NULL == NULL
        assert hash(NULL) == hash(NULL)
        assert NULL != 0


class TestTup:
    def test_construction_from_kwargs(self):
        t = Tup(a=1, b="x")
        assert t.attrs == ("a", "b")
        assert t["a"] == 1
        assert t["b"] == "x"

    def test_construction_from_pairs(self):
        t = Tup([("a", 1), ("b", 2)])
        assert t.attrs == ("a", "b")

    def test_duplicate_names_rejected(self):
        with pytest.raises(ValueError):
            Tup([("a", 1), ("a", 2)])

    def test_immutable(self):
        t = Tup(a=1)
        with pytest.raises(AttributeError):
            t.x = 5

    def test_missing_attribute_raises(self):
        t = Tup(a=1)
        with pytest.raises(KeyError):
            t["missing"]

    def test_get_default(self):
        t = Tup(a=1)
        assert t.get("missing") is None
        assert t.get("missing", 7) == 7

    def test_get_path_nested(self):
        t = Tup(user=Tup(name="Sue", place=Tup(city="NY")))
        assert t.get_path("user.place.city") == "NY"
        assert t.get_path(("user", "name")) == "Sue"

    def test_get_path_through_null_is_null(self):
        t = Tup(user=NULL)
        assert is_null(t.get_path("user.name"))

    def test_get_path_through_bag_raises(self):
        t = Tup(addresses=Bag([Tup(city="NY")]))
        with pytest.raises(TypeError):
            t.get_path("addresses.city")

    def test_get_path_through_primitive_raises(self):
        t = Tup(a=1)
        with pytest.raises(TypeError):
            t.get_path("a.b")

    def test_project(self):
        t = Tup(a=1, b=2, c=3)
        assert t.project(["c", "a"]) == Tup(c=3, a=1)

    def test_drop(self):
        t = Tup(a=1, b=2, c=3)
        assert t.drop(["b"]) == Tup(a=1, c=3)

    def test_concat(self):
        assert Tup(a=1).concat(Tup(b=2)) == Tup(a=1, b=2)

    def test_concat_name_clash_rejected(self):
        with pytest.raises(ValueError):
            Tup(a=1).concat(Tup(a=2))

    def test_replace(self):
        t = Tup(a=1, b=2)
        assert t.replace(b=9) == Tup(a=1, b=9)

    def test_with_attr_appends(self):
        assert Tup(a=1).with_attr("b", 2) == Tup(a=1, b=2)

    def test_with_attr_replaces_in_place(self):
        t = Tup(a=1, b=2).with_attr("a", 9)
        assert t == Tup(a=9, b=2)
        assert t.attrs == ("a", "b")

    def test_rename(self):
        assert Tup(a=1, b=2).rename({"a": "x"}) == Tup(x=1, b=2)

    def test_equality_is_order_sensitive(self):
        assert Tup(a=1, b=2) != Tup(b=2, a=1)

    def test_hash_consistency(self):
        assert hash(Tup(a=1, b=2)) == hash(Tup(a=1, b=2))
        assert len({Tup(a=1), Tup(a=1)}) == 1

    def test_nested_tuples_hashable(self):
        t = Tup(inner=Tup(x=Bag([1, 2])))
        assert isinstance(hash(t), int)

    def test_repr(self):
        assert repr(Tup(a=1)) == "⟨a: 1⟩"


class TestBag:
    def test_multiplicity(self):
        b = Bag([1, 2, 2, 3])
        assert b.mult(2) == 2
        assert b.mult(1) == 1
        assert b.mult(99) == 0
        assert len(b) == 4

    def test_iteration_with_repetition(self):
        b = Bag(["a", "a", "b"])
        assert sorted(b) == ["a", "a", "b"]

    def test_items(self):
        b = Bag([1, 1, 2])
        assert dict(b.items()) == {1: 2, 2: 1}

    def test_from_counts(self):
        b = Bag.from_counts([(1, 3), (2, 0)])
        assert b.mult(1) == 3
        assert 2 not in b

    def test_from_counts_negative_rejected(self):
        with pytest.raises(ValueError):
            Bag.from_counts([(1, -1)])

    def test_union_adds_multiplicities(self):
        u = Bag([1, 2]).union(Bag([2, 3]))
        assert u.mult(2) == 2
        assert u.mult(1) == 1 and u.mult(3) == 1

    def test_difference_floors_at_zero(self):
        d = Bag([1, 1, 2]).difference(Bag([1, 2, 2, 3]))
        assert d == Bag([1])

    def test_dedup(self):
        assert Bag([1, 1, 2]).dedup() == Bag([1, 2])

    def test_equality_ignores_order(self):
        assert Bag([1, 2, 2]) == Bag([2, 1, 2])

    def test_hash_ignores_order(self):
        assert hash(Bag([1, 2])) == hash(Bag([2, 1]))

    def test_empty(self):
        assert Bag().is_empty()
        assert len(Bag()) == 0

    def test_bags_of_tuples(self):
        b = Bag([Tup(a=1), Tup(a=1), Tup(a=2)])
        assert b.mult(Tup(a=1)) == 2

    def test_map_merges(self):
        b = Bag([1, 2, 3]).map(lambda x: x % 2)
        assert b.mult(1) == 2 and b.mult(0) == 1

    def test_filter(self):
        assert Bag([1, 2, 3]).filter(lambda x: x > 1) == Bag([2, 3])

    def test_nested_bags(self):
        outer = Bag([Bag([1]), Bag([1]), Bag([2])])
        assert outer.mult(Bag([1])) == 2

    def test_immutable(self):
        b = Bag([1])
        with pytest.raises(AttributeError):
            b.x = 1

    def test_repr_shows_multiplicity(self):
        assert "^2" in repr(Bag([1, 1]))


class TestLayoutInterning:
    def test_same_attrs_share_layout(self):
        a = Tup(x=1, y=2)
        b = Tup(x=9, y=8)
        assert a.layout is b.layout
        assert a.layout is Layout.of(("x", "y"))

    def test_different_order_different_layout(self):
        assert Tup(x=1, y=2).layout is not Tup(y=2, x=1).layout

    def test_from_layout_fast_constructor(self):
        layout = Layout.of(("x", "y"))
        t = Tup.from_layout(layout, (1, 2))
        assert t == Tup(x=1, y=2)
        assert t["y"] == 2
        assert t.layout is layout

    def test_derived_ops_intern_layouts(self):
        a = Tup(x=1, y=2)
        b = Tup(z=3)
        assert a.concat(b).layout is Tup(x=0, y=0, z=0).layout
        assert a.project(["y"]).layout is Tup(y=0).layout
        assert a.drop(["x"]).layout is Tup(y=0).layout
        assert a.rename({"x": "w"}).layout is Tup(w=0, y=0).layout
        assert a.with_attr("n", 5).layout is Tup(x=0, y=0, n=0).layout

    def test_layout_of_rejects_duplicates(self):
        with pytest.raises(ValueError):
            Layout.of(("x", "x"))

    def test_concat_name_clash_still_raises(self):
        with pytest.raises(ValueError):
            Tup(x=1).concat(Tup(x=2))


class TestReplaceStrict:
    def test_replace_known_attribute(self):
        assert Tup(x=1, y=2).replace(y=9) == Tup(x=1, y=9)

    def test_replace_unknown_attribute_raises(self):
        with pytest.raises(KeyError):
            Tup(x=1).replace(nope=5)

    def test_with_attr_still_appends_unknown(self):
        assert Tup(x=1).with_attr("y", 2) == Tup(x=1, y=2)
