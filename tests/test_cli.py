"""CLI behaviour: knob validation and the fuzz subcommand.

Regression (fuzz PR): ``--workers 0`` / ``--partitions 0`` used to reach the
executor/pool constructors and die with a traceback; they must fail at
argument parsing with a usage error (SystemExit 2) instead.
"""

import os

import pytest

from repro.__main__ import main


def _usage_error(argv):
    with pytest.raises(SystemExit) as excinfo:
        main(argv)
    assert excinfo.value.code == 2


class TestKnobValidation:
    @pytest.mark.parametrize("value", ["0", "-2", "x"])
    def test_run_rejects_bad_workers(self, value, capsys):
        _usage_error(["run", "Q10", "--workers", value])
        err = capsys.readouterr().err
        assert "--workers" in err and "Traceback" not in err

    @pytest.mark.parametrize("value", ["0", "-1"])
    def test_fuzz_rejects_bad_workers(self, value, capsys):
        _usage_error(["fuzz", "--workers", value])
        assert "--workers" in capsys.readouterr().err

    @pytest.mark.parametrize("value", ["0", "1,0,3", "-7", ""])
    def test_fuzz_rejects_bad_partitions(self, value, capsys):
        _usage_error(["fuzz", "--partitions", value])
        err = capsys.readouterr().err
        assert "--partitions" in err and "Traceback" not in err

    @pytest.mark.parametrize(
        "flag", ["--cases", "--depth", "--rows", "--ops"]
    )
    def test_fuzz_rejects_non_positive_counts(self, flag, capsys):
        _usage_error(["fuzz", flag, "0"])
        assert flag in capsys.readouterr().err

    def test_table7_rejects_bad_workers(self, capsys):
        _usage_error(["table7", "--workers", "0"])
        assert "--workers" in capsys.readouterr().err


class TestFuzzCommand:
    def test_small_serial_sweep_exits_zero(self, capsys):
        code = main(
            ["fuzz", "--seed", "4", "--cases", "5", "--backend", "serial"]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "fuzz sweep seed=4" in out and "OK" in out

    def test_partition_list_is_parsed(self, capsys):
        code = main(
            [
                "fuzz",
                "--seed",
                "1",
                "--cases",
                "3",
                "--backend",
                "serial",
                "--partitions",
                "2,5",
                "--no-questions",
            ]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "partitions=2,5" in out

    def test_corpus_dir_written_only_on_divergence(self, tmp_path, capsys):
        corpus = tmp_path / "corpus"
        code = main(
            [
                "fuzz",
                "--seed",
                "2",
                "--cases",
                "3",
                "--backend",
                "serial",
                "--no-questions",
                "--corpus-dir",
                str(corpus),
            ]
        )
        capsys.readouterr()
        assert code == 0
        assert not os.path.exists(corpus)  # clean sweep writes nothing


class TestListCommand:
    def test_list_prints_scenarios(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "Q10" in out


class TestServeCommand:
    """The serve subcommand validates its knobs before binding a socket."""

    def test_rejects_bad_cache_size(self, capsys):
        _usage_error(["serve", "--cache-size", "0"])
        err = capsys.readouterr().err
        assert "--cache-size" in err and "Traceback" not in err

    def test_rejects_bad_workers(self, capsys):
        _usage_error(["serve", "--workers", "0"])
        assert "--workers" in capsys.readouterr().err

    @pytest.mark.parametrize("value", ["0", "-1", "x"])
    def test_rejects_bad_processes(self, value, capsys):
        _usage_error(["serve", "--processes", value])
        err = capsys.readouterr().err
        assert "--processes" in err and "Traceback" not in err

    @pytest.mark.parametrize("value", ["0", "-4"])
    def test_rejects_bad_queue_depth(self, value, capsys):
        _usage_error(["serve", "--queue-depth", value])
        err = capsys.readouterr().err
        assert "--queue-depth" in err and "Traceback" not in err

    def test_rejects_negative_cache_size(self, capsys):
        _usage_error(["serve", "--cache-size", "-1"])
        assert "--cache-size" in capsys.readouterr().err

    def test_help_documents_endpoints_doc(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["serve", "--help"])
        assert excinfo.value.code == 0
        out = capsys.readouterr().out
        assert "--port" in out and "--cache-size" in out
        assert "--processes" in out and "--queue-depth" in out
        assert "SERVING.md" in out
