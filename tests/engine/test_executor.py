"""Tests for the partitioned executor: equivalence with plain evaluation,
including every registered scenario query and PYTHONHASHSEED independence."""

import json
import os
import subprocess
import sys
import textwrap
from pathlib import Path

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.algebra.aggregates import AggSpec
from repro.algebra.expressions import col
from repro.algebra.operators import (
    Deduplication,
    GroupAggregation,
    InnerFlatten,
    Join,
    Projection,
    Query,
    RelationNesting,
    Selection,
    TableAccess,
    Union,
)
from repro.engine.database import Database
from repro.engine.executor import Executor
from repro.nested.values import Bag, Tup


def make_db(rows_r, rows_s):
    return Database(
        {
            "R": [Tup(k=k, v=v) for k, v in rows_r],
            "S": [Tup(j=j, w=w) for j, w in rows_s],
        }
    )


PLANS = {
    "select": lambda: Selection(TableAccess("R"), col("v").ge(2)),
    "project": lambda: Projection(TableAccess("R"), ["v"]),
    "join": lambda: Join(TableAccess("R"), TableAccess("S"), [("k", "j")]),
    "left-join": lambda: Join(TableAccess("R"), TableAccess("S"), [("k", "j")], how="left"),
    "full-join": lambda: Join(TableAccess("R"), TableAccess("S"), [("k", "j")], how="full"),
    "group": lambda: GroupAggregation(
        TableAccess("R"), ["k"], [AggSpec("count", None, "n"), AggSpec("sum", col("v"), "s")]
    ),
    "global-agg": lambda: GroupAggregation(TableAccess("R"), [], [AggSpec("sum", col("v"), "s")]),
    "nest": lambda: RelationNesting(TableAccess("R"), ["v"], "vs"),
    "dedup": lambda: Deduplication(Projection(TableAccess("R"), ["k"])),
    "union": lambda: Union(TableAccess("R"), TableAccess("R")),
}


@pytest.mark.parametrize("plan_name", sorted(PLANS))
@pytest.mark.parametrize("partitions", [1, 3, 7])
def test_partitioned_equals_plain(plan_name, partitions):
    db = make_db(
        rows_r=[(1, 1), (1, 2), (2, 3), (3, 4), (3, 4)],
        rows_s=[(1, "a"), (2, "b"), (2, "b"), (9, "z")],
    )
    query = Query(PLANS[plan_name]())
    plain = query.evaluate(db)
    executor = Executor(num_partitions=partitions)
    assert executor.execute(query, db) == plain


def test_metrics_collected():
    db = make_db([(1, 1), (2, 2)], [(1, "a")])
    query = Query(Join(TableAccess("R"), TableAccess("S"), [("k", "j")]))
    executor = Executor(num_partitions=2)
    executor.execute(query, db)
    metrics = executor.last_metrics
    assert metrics is not None
    assert metrics.total_shuffled_rows() > 0
    join_metrics = metrics.operators[query.root.op_id]
    assert join_metrics.rows_in == 3
    assert "t=" in metrics.report()


def test_running_example_partitioned(person_db, running_query):
    for partitions in (1, 2, 5):
        result = Executor(num_partitions=partitions).execute(running_query, person_db)
        assert result == running_query.evaluate(person_db)


def test_invalid_partition_count():
    with pytest.raises(ValueError):
        Executor(num_partitions=0)


rows_strategy = st.lists(
    st.tuples(st.integers(0, 4), st.integers(0, 3)), min_size=0, max_size=15
)


@given(rows_r=rows_strategy, rows_s=rows_strategy)
@settings(max_examples=40, deadline=None)
def test_property_join_equivalence(rows_r, rows_s):
    if not rows_r or not rows_s:
        return  # schema inference needs at least one row per side
    db = make_db(rows_r, [(j, str(w)) for j, w in rows_s])
    query = Query(Join(TableAccess("R"), TableAccess("S"), [("k", "j")], how="full"))
    plain = query.evaluate(db)
    assert Executor(num_partitions=3).execute(query, db) == plain


@given(rows_r=rows_strategy)
@settings(max_examples=40, deadline=None)
def test_property_grouping_equivalence(rows_r):
    if not rows_r:
        return
    db = make_db(rows_r, [(0, "x")])
    query = Query(
        GroupAggregation(TableAccess("R"), ["k"], [AggSpec("sum", col("v"), "s")])
    )
    assert Executor(num_partitions=4).execute(query, db) == query.evaluate(db)


def _scenario_names():
    from repro.scenarios import SCENARIOS

    return sorted(SCENARIOS)


@pytest.mark.parametrize("name", _scenario_names())
@pytest.mark.parametrize("partitions", [1, 3, 7])
def test_scenario_query_partitioned_equals_plain(name, partitions):
    """Executor ≡ Query.evaluate for every registered scenario query,
    covering the compiled hash-join and keyed-grouping paths end to end."""
    from repro.scenarios import get_scenario

    scenario = get_scenario(name)
    question = scenario.question(scale=20)
    plain = question.query.evaluate(question.db)
    result = Executor(num_partitions=partitions).execute(question.query, question.db)
    assert result == plain, f"{name} diverges at {partitions} partitions"


_HASHSEED_SCRIPT = textwrap.dedent(
    """
    import json
    from repro.algebra.operators import Join, Query, TableAccess
    from repro.engine.database import Database
    from repro.engine.executor import Executor
    from repro.engine.hashing import stable_hash
    from repro.nested.values import Bag, Tup

    db = Database(
        {
            "R": [Tup(k=f"key-{i % 7}", v=i) for i in range(40)],
            "S": [Tup(j=f"key-{i % 5}", w=str(i)) for i in range(25)],
        }
    )
    query = Query(Join(TableAccess("R"), TableAccess("S"), [("k", "j")], how="full"))
    executor = Executor(num_partitions=5)
    result = executor.execute(query, db)
    metrics = executor.last_metrics
    print(
        json.dumps(
            {
                "hashes": [stable_hash(f"key-{i}") for i in range(7)],
                "shuffled": metrics.total_shuffled_rows(),
                "per_op": {
                    str(op_id): m.shuffled_rows
                    for op_id, m in metrics.operators.items()
                },
                "result_size": len(result),
            }
        )
    )
    """
)


def test_partitioning_independent_of_hashseed():
    """Partition assignment and shuffle metrics must not vary with the
    process's string-hash salt (regression: salted hash() partitioning)."""
    src_dir = Path(__file__).resolve().parents[2] / "src"
    outputs = []
    for seed in ("0", "1", "424242"):
        env = dict(os.environ, PYTHONHASHSEED=seed, PYTHONPATH=str(src_dir))
        proc = subprocess.run(
            [sys.executable, "-c", _HASHSEED_SCRIPT],
            capture_output=True,
            text=True,
            env=env,
            check=True,
        )
        outputs.append(json.loads(proc.stdout))
    assert outputs[0] == outputs[1] == outputs[2], (
        "partitioning varies across PYTHONHASHSEED values: " + repr(outputs)
    )
