"""Tests for the Spark-like DataFrame façade."""

import pytest

from repro.algebra.aggregates import AggSpec
from repro.algebra.expressions import col, lit
from repro.engine.dataframe import Session
from repro.engine.database import Database
from repro.nested.values import Bag, Tup


@pytest.fixture
def session(person_db):
    return Session(person_db)


class TestBuilding:
    def test_running_example_via_dataframe(self, session):
        result = (
            session.table("person")
            .explode("address2")
            .filter(col("year").ge(lit(2019)))
            .select("name", "city")
            .nest(["name"], "nList")
            .collect()
        )
        assert result == Bag([Tup(city="LA", nList=Bag([Tup(name="Sue")]))])

    def test_labels_propagate(self, session):
        df = session.table("person").explode("address2", label="F")
        assert df.query().op_by_label("F") is df.plan

    def test_with_column(self, session):
        df = session.table("person").explode("address2").with_column("place", "city")
        assert all("place" in t for t in df.collect())

    def test_explode_outer(self):
        db = Database({"T": [Tup(a=1, xs=Bag()), Tup(a=2, xs=Bag([Tup(v=1)]))]})
        result = Session(db).table("T").explode_outer("xs").collect()
        assert len(result) == 2

    def test_join(self):
        db = Database({"L": [Tup(k=1, x="a")], "R": [Tup(j=1, y="b")]})
        s = Session(db)
        result = s.table("L").join(s.table("R"), on=[("k", "j")]).collect()
        assert result == Bag([Tup(k=1, x="a", j=1, y="b")])

    def test_group_by_agg(self, session):
        result = (
            session.table("person")
            .explode("address1")
            .group_by("name")
            .agg(AggSpec("count", None, "n"))
            .collect()
        )
        assert Tup(name="Peter", n=3) in result

    def test_agg_nested(self, session):
        result = (
            session.table("person").agg_nested("count", "address1", "n").collect()
        )
        assert {t["n"] for t in result} == {2, 3}

    def test_distinct_union_subtract(self, session):
        df = session.table("person").select("name")
        assert df.union(df).count() == 4
        assert df.union(df).distinct().count() == 2
        assert df.subtract(df).count() == 0

    def test_rename(self, session):
        result = session.table("person").select("name").rename([("who", "name")]).collect()
        assert Tup(who="Sue") in result

    def test_count_and_show(self, session, capsys):
        df = session.table("person")
        assert df.count() == 2
        df.show()
        assert "Peter" in capsys.readouterr().out

    def test_unknown_table(self, session):
        with pytest.raises(KeyError):
            session.table("nope")

    def test_immutability_of_dataframes(self, session):
        base = session.table("person")
        filtered = base.filter(col("name").eq("Sue"))
        assert base.count() == 2
        assert filtered.count() == 1
