"""Delta-incremental evaluation: incremental ≡ from-scratch at every version.

The :class:`~repro.engine.deltas.DeltaEvaluator` must maintain a query's
result bag across a database version chain exactly as a full recomputation
would — through fused narrow chains, keyed shuffles, set operations and
driver-side (keyless) aggregation, on both engines.  These tests pin the
equivalence on the paper scenarios plus targeted operator shapes; the wider
randomized gate is ``python -m repro fuzz --mutations`` (CI ``mutate`` job).
"""

import pytest

from repro.engine.database import Database, Mutation
from repro.engine.deltas import (
    DeltaEvaluator,
    DeltaInconsistency,
    mutation_steps,
    read_tables,
)
from repro.engine.executor import Executor
from repro.nested.values import Bag, Tup
from repro.scenarios import SCENARIOS, get_scenario


def _first_row(db, table):
    return next(iter(db.relation(table).distinct()))


class TestHelpers:
    def test_read_tables(self):
        query = get_scenario("Q1").make_query()
        assert read_tables(query) == frozenset({"nestedOrders"})

    def test_mutation_steps_walks_the_chain(self):
        v0 = Database({"T": [Tup(a=1)]})
        v1 = v0.apply_mutations(inserts={"T": [Tup(a=2)]})
        v2 = v1.apply_mutations(deletes={"T": [Tup(a=1)]})
        assert mutation_steps(v0, v2) == [v1, v2]
        assert mutation_steps(v0, v0) == []
        # Not a descendant: a sibling chain forces a rebase.
        other = v0.apply_mutations(inserts={"T": [Tup(a=9)]})
        assert mutation_steps(v2, other) is None


class TestScenarioEquivalence:
    @pytest.mark.parametrize("name", sorted(SCENARIOS))
    def test_single_row_edits_match_scratch(self, name):
        scenario = get_scenario(name)
        db = scenario.make_db(scenario.default_scale // 3 or 1)
        query = scenario.make_query()
        evaluator = DeltaEvaluator(query, db, num_partitions=3)
        scratch = Executor(num_partitions=3, optimize=False)
        assert evaluator.result() == scratch.execute(query, db)
        # One delete then one insert on a read table.
        table = sorted(evaluator.reads)[0]
        row = _first_row(db, table)
        v1 = db.apply_mutations(deletes={table: [row]})
        assert evaluator.update(v1) == scratch.execute(query, v1)
        assert evaluator.last_stats["mode"] == "delta"
        v2 = v1.apply_mutations(inserts={table: [row, row]})
        assert evaluator.update(v2) == scratch.execute(query, v2)
        assert evaluator.rebases == 1  # only the base construction

    @pytest.mark.parametrize("engine", ["row", "columnar"])
    def test_multi_step_jump_applies_every_mutation(self, engine):
        scenario = get_scenario("Q4")
        db = scenario.make_db(20)
        query = scenario.make_query()
        evaluator = DeltaEvaluator(query, db, num_partitions=4, engine=engine)
        table = sorted(evaluator.reads)[0]
        version = db
        for _ in range(3):
            version = version.apply_mutations(
                deletes={table: [_first_row(version, table)]}
            )
        # update() jumps three versions at once and must walk all of them.
        assert evaluator.update(version) == Executor(
            num_partitions=4, optimize=False, engine=engine
        ).execute(query, version)
        assert evaluator.last_stats["steps"] == 3


class TestFallbacks:
    def test_non_descendant_target_rebases(self):
        scenario = get_scenario("Q1")
        db = scenario.make_db(12)
        query = scenario.make_query()
        evaluator = DeltaEvaluator(query, db, num_partitions=2)
        fresh = scenario.make_db(12)  # equal data, different chain root
        assert evaluator.update(fresh) == query.evaluate(fresh)
        assert evaluator.last_stats["mode"] == "rebase"

    def test_schema_widening_on_read_table_rebases(self):
        db = Database({"T": [Tup(a=1), Tup(a=2)]})
        from repro.algebra.operators import Query, Selection, TableAccess
        from repro.algebra.expressions import Attr, Cmp, Const

        query = Query(Selection(TableAccess("T"), Cmp(">=", Attr("a"), Const(1))))
        evaluator = DeltaEvaluator(query, db, num_partitions=2)
        widened = db.apply_mutations(inserts={"T": [Tup(a=2.5)]})
        assert evaluator.update(widened) == query.evaluate(widened)
        assert evaluator.last_stats["mode"] == "rebase"

    def test_noop_update_is_free(self):
        db = Database({"T": [Tup(a=1)]})
        from repro.algebra.operators import Query, TableAccess

        query = Query(TableAccess("T"))
        evaluator = DeltaEvaluator(query, db)
        evaluator.update(db)
        assert evaluator.last_stats["mode"] == "noop"

    def test_delta_inconsistency_is_a_runtime_error(self):
        assert issubclass(DeltaInconsistency, RuntimeError)


class TestCanonicalFormMutations:
    def test_numeric_tower_and_nan_variants_propagate(self):
        db = Database({"T": [Tup(a=2.0, b="x"), Tup(a=0.0, b="y"),
                             Tup(a=float("nan"), b="z")]})
        from repro.algebra.operators import Projection, Query, TableAccess

        query = Query(Projection(TableAccess("T"), ["b"]))
        evaluator = DeltaEvaluator(query, db, num_partitions=2)
        v1 = db.apply_mutations(
            Mutation(deletes={"T": [Tup(a=2, b="x"), Tup(a=-0.0, b="y"),
                                    Tup(a=float("nan"), b="z")]})
        )
        assert evaluator.update(v1) == query.evaluate(v1)
        assert len(evaluator.result()) == 0
        assert evaluator.last_stats["mode"] == "delta"


class TestBackends:
    def test_process_backend_matches_serial(self):
        scenario = get_scenario("Q3")
        db = scenario.make_db(15)
        query = scenario.make_query()
        serial = DeltaEvaluator(query, db, num_partitions=3, backend="serial")
        process = DeltaEvaluator(
            query, db, num_partitions=3, backend="process", workers=2
        )
        table = sorted(serial.reads)[0]
        version = db.apply_mutations(deletes={table: [_first_row(db, table)]})
        assert serial.update(version) == process.update(version)
