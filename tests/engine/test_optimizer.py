"""The explanation-preserving logical plan optimizer.

Two layers of guarantees:

* **per-rule behaviour** — every rewrite rule fires on its target shape and
  declines when a guard condition (outer join sides, computed columns,
  nested-attribute predicates, duplicate output names, ...) makes the
  rewrite unsound;
* **plan-level equivalence** — for every registered scenario, optimized and
  unoptimized execution produce identical result bags on both backends at
  1/3/7 partitions, and the why-not pipeline produces identical explanation
  sets, SA counts and side-effect bounds with the optimizer on and off
  (mirroring the cross-backend suite in ``tests/engine/test_backends.py``).
"""

import pytest

from repro.algebra.aggregates import AggSpec
from repro.algebra.expressions import And, col, lit
from repro.algebra.operators import (
    Deduplication,
    GroupAggregation,
    Join,
    Projection,
    Query,
    RelationNesting,
    Renaming,
    Selection,
    TableAccess,
)
from repro.engine.database import Database
from repro.engine.executor import Executor
from repro.engine.optimizer import (
    OPTIMIZE_ENV,
    OptimizationReport,
    default_optimize,
    optimize_query,
    resolve_optimize,
)
from repro.nested.values import Tup
from repro.whynot.explain import explain


def make_db(small: int = 4, big: int = 30):
    return Database(
        {
            "R": [Tup(k=i % 3, v=i, w=str(i)) for i in range(small)],
            "S": [Tup(j=i % 3, x=i * 10, y=i % 2) for i in range(big)],
        }
    )


def fires(query: Query, db) -> dict:
    return {k: v for k, v in optimize_query(query, db).rule_fires.items() if v}


def assert_equivalent(query: Query, db) -> OptimizationReport:
    report = optimize_query(query, db)
    assert report.optimized.evaluate(db) == query.evaluate(db)
    return report


# -- fuse-selections ---------------------------------------------------------


def test_fuse_selections_fires_and_preserves_results():
    db = make_db()
    query = Query(
        Selection(Selection(TableAccess("R"), col("v").ge(1)), col("k").le(1))
    )
    report = assert_equivalent(query, db)
    assert report.rule_fires["fuse-selections"] == 1
    fused = [op for op in report.optimized.ops if isinstance(op, Selection)]
    assert len(fused) == 1 and isinstance(fused[0].pred, And)


def test_fuse_selections_links_both_origins():
    db = make_db()
    inner = Selection(TableAccess("R"), col("v").ge(1))
    outer = Selection(inner, col("k").le(1))
    query = Query(outer)
    report = optimize_query(query, db)
    fused = next(op for op in report.optimized.ops if isinstance(op, Selection))
    assert set(fused.origins) == {inner.op_id, outer.op_id}


# -- pushdown-projection / pushdown-rename -----------------------------------


def test_pushdown_projection_rewrites_passthrough_columns():
    db = make_db()
    query = Query(
        Selection(Projection(TableAccess("R"), ["k", ("vv", col("v"))]), col("vv").ge(2))
    )
    report = assert_equivalent(query, db)
    assert report.rule_fires["pushdown-projection"] == 1
    # The selection now sits below the user projection (possibly above a
    # synthesized pruning projection) and references the source attribute.
    pushed = next(op for op in report.optimized.ops if isinstance(op, Selection))
    assert isinstance(report.optimized.root, Projection)
    assert pushed.pred.attr_paths() == [("v",)]


def test_pushdown_projection_declines_on_computed_columns():
    db = make_db()
    query = Query(
        Selection(
            Projection(TableAccess("R"), [("s", col("v") + lit(1))]), col("s").ge(2)
        )
    )
    assert "pushdown-projection" not in fires(query, db)
    assert_equivalent(query, db)


def test_pushdown_rename_maps_attribute_roots_back():
    db = make_db()
    query = Query(
        Selection(Renaming(TableAccess("R"), [("key", "k")]), col("key").le(1))
    )
    report = assert_equivalent(query, db)
    assert report.rule_fires["pushdown-rename"] == 1
    pushed = next(op for op in report.optimized.ops if isinstance(op, Selection))
    assert pushed.pred.attr_paths() == [("k",)]


# -- pushdown-join -----------------------------------------------------------


def _join_plan(how: str) -> Query:
    joined = Join(TableAccess("R"), TableAccess("S"), [("k", "j")], how=how)
    return Query(Selection(joined, col("v").ge(1) & col("x").ge(10)))


def test_pushdown_join_splits_conjuncts_for_inner_joins():
    db = make_db()
    report = assert_equivalent(_join_plan("inner"), db)
    assert report.rule_fires["pushdown-join"] == 2
    join = next(op for op in report.optimized.ops if isinstance(op, Join))
    assert all(isinstance(c, Selection) for c in join.children)


def test_pushdown_join_outer_variants_only_push_preserved_side():
    db = make_db()
    left = assert_equivalent(_join_plan("left"), db)
    assert left.rule_fires["pushdown-join"] == 1  # only the v-term moves
    assert "pushdown-join" not in fires(_join_plan("full"), db)
    assert_equivalent(_join_plan("full"), db)


def test_pushdown_join_drop_right_keys_classifies_keys_as_left():
    """With dropped right keys the output key column is the left side's copy
    (⊥-padded under right/full outer joins), so a key-named term must never
    move into the right input."""
    db = Database(
        {
            "L": [Tup(k=1, a=10)],
            "R": [Tup(k=1, b=100), Tup(k=5, b=500)],
        }
    )
    query = Query(
        Selection(
            Join(TableAccess("L"), TableAccess("R"), [("k", "k")], how="right",
                 drop_right_keys=True),
            col("k").ge(1),
        )
    )
    assert "pushdown-join" not in fires(query, db)
    assert_equivalent(query, db)
    inner = Query(
        Selection(
            Join(TableAccess("L"), TableAccess("R"), [("k", "k")],
                 drop_right_keys=True),
            col("k").ge(1) & col("b").ge(100),
        )
    )
    report = assert_equivalent(inner, db)
    join = next(op for op in report.optimized.ops if isinstance(op, Join))
    assert isinstance(join.children[0], Selection), "key term goes left"
    assert isinstance(join.children[1], Selection), "b term goes right"


def test_pushdown_join_keeps_cross_side_residual_above():
    db = make_db()
    joined = Join(TableAccess("R"), TableAccess("S"), [("k", "j")])
    query = Query(Selection(joined, col("v").ge(1) & col("v").le(col("x"))))
    report = assert_equivalent(query, db)
    assert report.rule_fires["pushdown-join"] == 1
    assert isinstance(report.optimized.root, Selection), "residual term stays above"
    assert report.optimized.root.pred.attr_paths() == [("v",), ("x",)]


# -- pushdown-nesting --------------------------------------------------------


def test_pushdown_nesting_commutes_with_group_key_predicates():
    db = make_db()
    query = Query(
        Selection(RelationNesting(TableAccess("R"), ["v"], "vs"), col("k").le(1))
    )
    report = assert_equivalent(query, db)
    assert report.rule_fires["pushdown-nesting"] == 1
    nest = next(op for op in report.optimized.ops if isinstance(op, RelationNesting))
    assert isinstance(nest.children[0], Selection)


def test_pushdown_nesting_declines_on_nested_attributes():
    db = make_db()
    query = Query(
        Selection(
            RelationNesting(TableAccess("R"), ["v"], "vs"), col("vs").is_null()
        )
    )
    assert "pushdown-nesting" not in fires(query, db)
    assert_equivalent(query, db)


# -- reorder-join ------------------------------------------------------------


def test_reorder_join_builds_hash_index_over_smaller_input():
    db = make_db(small=4, big=40)
    query = Query(Join(TableAccess("R"), TableAccess("S"), [("k", "j")]))
    report = assert_equivalent(query, db)
    assert report.rule_fires["reorder-join"] == 1
    # Root is the synthesized column-order-restoring projection.
    assert isinstance(report.optimized.root, Projection)
    assert report.optimized.root.origins == ()
    join = next(op for op in report.optimized.ops if isinstance(op, Join))
    assert isinstance(join.children[0], TableAccess) and join.children[0].table == "S"
    assert join.on == ((("j",), ("k",)),)


def test_reorder_join_declines_when_already_ordered_or_unsafe():
    db = make_db(small=4, big=40)
    ordered = Query(Join(TableAccess("S"), TableAccess("R"), [("j", "k")]))
    assert "reorder-join" not in fires(ordered, db)
    outer = Query(Join(TableAccess("R"), TableAccess("S"), [("k", "j")], how="left"))
    assert "reorder-join" not in fires(outer, db)
    residual = Query(
        Join(TableAccess("R"), TableAccess("S"), [("k", "j")], extra=col("v").le(col("x")))
    )
    assert "reorder-join" not in fires(residual, db)
    dropping = Query(
        Join(TableAccess("R"), TableAccess("S"), [("k", "j")], drop_right_keys=True)
    )
    assert "reorder-join" not in fires(dropping, db)
    for query in (ordered, outer, residual, dropping):
        assert_equivalent(query, db)


# -- prune-columns -----------------------------------------------------------


def test_prune_columns_inserts_projection_above_table_access():
    db = make_db()
    query = Query(
        GroupAggregation(TableAccess("S"), ["j"], [AggSpec("sum", col("x"), "sx")])
    )
    report = assert_equivalent(query, db)
    assert report.rule_fires["prune-columns"] == 1
    pruned = next(op for op in report.optimized.ops if isinstance(op, Projection))
    assert pruned.origins == () and [n for n, _ in pruned.cols] == ["j", "x"]


def test_prune_columns_respects_whole_row_operators():
    db = make_db()
    query = Query(
        GroupAggregation(
            Deduplication(TableAccess("S")), ["j"], [AggSpec("count", None, "n")]
        )
    )
    assert "prune-columns" not in fires(query, db)
    assert_equivalent(query, db)


def test_prune_columns_keeps_tuple_nesting_attrs_live():
    """``N^T`` drops + re-projects its attrs unconditionally, so they stay
    live even when the packed target column is dead downstream."""
    from repro.algebra.operators import TupleNesting

    db = make_db()
    query = Query(
        Projection(TupleNesting(TableAccess("R"), ["v", "w"], "t"), ["k"])
    )
    report = assert_equivalent(query, db)  # must not crash schema inference
    assert report.optimized.evaluate(db) == query.evaluate(db)


def test_prune_columns_skips_tables_under_projections():
    db = make_db()
    query = Query(Projection(TableAccess("S"), ["j"]))
    assert fires(query, db) == {}


# -- report / plumbing -------------------------------------------------------


def test_report_describe_renders_both_plans_with_annotations():
    db = make_db(small=4, big=40)
    query = Query(
        Selection(
            Join(TableAccess("R"), TableAccess("S"), [("k", "j")]),
            col("v").ge(1) & col("x").ge(10),
        ),
        name="unit",
    )
    report = optimize_query(query, db)
    text = report.describe()
    assert "original plan:" in text and "optimized plan:" in text
    assert "pushdown-join" in text and "⟵" in text
    assert report.changed and report.total_fires() >= 2
    summary = report.summary()
    assert summary["ops_before"] == len(query.ops)
    assert summary["ops_after"] == len(report.optimized.ops)


def test_explain_plan_is_deterministic_and_annotation_free_by_default():
    db = make_db()
    query = Query(Selection(TableAccess("R"), col("v").ge(1)), name="plain")
    text = query.explain_plan()
    assert text == query.explain_plan()
    assert "⟵" not in text and text.startswith("Query plain")


def test_optimized_query_is_picklable():
    import pickle

    db = make_db(small=4, big=40)
    query = Query(Join(TableAccess("R"), TableAccess("S"), [("k", "j")]))
    report = optimize_query(query, db)
    restored = pickle.loads(pickle.dumps(report.optimized))
    assert restored.evaluate(db) == query.evaluate(db)
    assert [op.origins for op in restored.ops] == [
        op.origins for op in report.optimized.ops
    ]


def test_resolve_optimize_env(monkeypatch):
    monkeypatch.delenv(OPTIMIZE_ENV, raising=False)
    assert default_optimize() is False and resolve_optimize(None) is False
    monkeypatch.setenv(OPTIMIZE_ENV, "1")
    assert default_optimize() is True and resolve_optimize(None) is True
    assert resolve_optimize(False) is False and resolve_optimize(True) is True


def test_optimize_query_caches_plan_per_query_and_db_version():
    """Re-optimizing the same query against the same database is a cache hit."""
    db = make_db()
    query = Query(
        Selection(Selection(TableAccess("R"), col("v").ge(1)), col("k").le(1))
    )
    first = optimize_query(query, db)
    assert first.rewrite_seconds > 0.0
    assert optimize_query(query, db) is first, "same query+db must reuse the plan"
    # A structurally equal but distinct Query re-optimizes (identity keyed).
    clone = Query(
        Selection(Selection(TableAccess("R"), col("v").ge(1)), col("k").le(1))
    )
    assert optimize_query(clone, db) is not first
    # Mutating the database invalidates the cached plan.
    db.add("T", [Tup(z=1)])
    second = optimize_query(query, db)
    assert second is not first
    assert second.rule_fires == first.rule_fires
    # A different database object misses as well.
    other = make_db()
    assert optimize_query(query, other) is not second


def test_rewrite_seconds_in_metrics_but_not_summary():
    """The executor surfaces rewrite time; summaries stay deterministic."""
    db = make_db()
    query = Query(
        Selection(Selection(TableAccess("R"), col("v").ge(1)), col("k").le(1))
    )
    report = optimize_query(query, db)
    assert "rewrite_seconds" not in report.summary()
    executor = Executor(num_partitions=2, optimize=True)
    executor.execute(query, db)
    recorded = executor.last_metrics.optimizer["rewrite_seconds"]
    assert recorded == report.rewrite_seconds  # served from the plan cache


def test_executor_surfaces_rule_fires_and_origins_in_metrics():
    db = make_db(small=4, big=40)
    query = Query(
        Selection(
            Join(TableAccess("R"), TableAccess("S"), [("k", "j")]),
            col("v").ge(1) & col("x").ge(10),
        )
    )
    executor = Executor(num_partitions=3, optimize=True)
    assert executor.execute(query, db) == query.evaluate(db)
    metrics = executor.last_metrics
    assert metrics.optimizer is not None and metrics.optimizer["rule_fires"]
    assert executor.last_report is not None and executor.last_report.changed
    assert any(m.origins for m in metrics.operators.values())
    assert "optimizer:" in metrics.report()
    # Off by default: no report, no optimizer block in metrics.
    plain = Executor(num_partitions=3)
    plain.execute(query, db)
    assert plain.last_metrics.optimizer is None and plain.last_report is None


# -- scenario-wide equivalence (the explanation-identity guarantee) ----------


def _scenario_names():
    from repro.scenarios import SCENARIOS

    return sorted(SCENARIOS)


@pytest.mark.parametrize("name", _scenario_names())
@pytest.mark.parametrize("partitions", [1, 3, 7])
def test_scenario_optimized_equals_unoptimized(name, partitions):
    """Optimized ≡ unoptimized ≡ Query.evaluate for every scenario, both
    backends, at 1/3/7 partitions (the optimizer acceptance criterion)."""
    from repro.scenarios import get_scenario

    question = get_scenario(name).question(scale=10)
    plain = question.query.evaluate(question.db)
    workers = {1: 1, 3: 2, 7: 4}[partitions]
    for backend, kwargs in (("serial", {}), ("process", {"workers": workers})):
        off = Executor(num_partitions=partitions, backend=backend, optimize=False, **kwargs)
        on = Executor(num_partitions=partitions, backend=backend, optimize=True, **kwargs)
        assert off.execute(question.query, question.db) == plain
        assert on.execute(question.query, question.db) == plain, (
            f"{name}: optimized {backend} execution diverges at {partitions} partitions"
        )


def test_at_least_three_rules_fire_across_the_scenario_suite():
    from repro.scenarios import SCENARIOS, get_scenario

    fired = set()
    for name in sorted(SCENARIOS):
        question = get_scenario(name).question(scale=10)
        report = optimize_query(question.query, question.db)
        fired |= {rule for rule, count in report.rule_fires.items() if count}
    assert len(fired) >= 3, f"only {sorted(fired)} fired across the scenario suite"


SA_SCENARIOS = ["Q4", "D4", "T2", "C3", "Q13N"]


@pytest.mark.parametrize("name", SA_SCENARIOS)
def test_explanations_identical_with_optimizer(name):
    """explain() must report identical explanation sets, SA counts, ranks and
    side-effect bounds with the optimizer on and off."""
    from repro.scenarios import get_scenario

    scenario = get_scenario(name)
    off = explain(
        scenario.question(scale=12),
        alternatives=scenario.alternatives,
        validate=False,
        optimize=False,
    )
    on = explain(
        scenario.question(scale=12),
        alternatives=scenario.alternatives,
        validate=False,
        optimize=True,
    )
    assert off.n_sas == on.n_sas
    assert off.explanation_labels() == on.explanation_labels()
    assert [(e.rank, e.lb, e.ub) for e in off.explanations] == [
        (e.rank, e.lb, e.ub) for e in on.explanations
    ]
    assert on.optimizer is not None and off.optimizer is None


def test_run_scenario_explanations_independent_of_optimizer():
    from repro.scenarios import run_scenario

    off = run_scenario("Q3", scale=12, optimize=False)
    on = run_scenario("Q3", scale=12, optimize=True)
    assert off.rp == on.rp and off.rp_nosa == on.rp_nosa
    assert off.gold_position() == on.gold_position()
    # The flag must actually reach the pipeline, not be a silent no-op.
    assert on.rp_result.optimizer is not None and on.rp_result.optimizer["rule_fires"]
    assert off.rp_result.optimizer is None


def test_explain_records_optimizer_even_with_precomputed_result():
    """A question whose result is already cached still gets the optimizer
    pass recorded (the evaluation is reused; the summary must not vanish)."""
    from repro.scenarios import get_scenario

    scenario = get_scenario("Q3")
    question = scenario.question(scale=12)
    question.validate()  # fills the result cache with the plain evaluation
    result = explain(
        question, alternatives=scenario.alternatives, validate=False, optimize=True
    )
    assert result.optimizer is not None and result.optimizer["rule_fires"]
