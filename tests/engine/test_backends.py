"""Cross-backend equivalence: the process backend must reproduce the serial
backend (and plain ``Query.evaluate``) exactly — results, explanations, and
the merged row/shuffle metrics — for every plan, partition count and worker
count.  Also covers the serialization contracts the process backend rests
on: layout re-interning and compiled-cache stripping across pickling."""

import pickle

import pytest

from repro.algebra.aggregates import AggSpec
from repro.algebra.expressions import col
from repro.algebra.operators import (
    GroupAggregation,
    Join,
    Projection,
    Query,
    RelationNesting,
    Selection,
    TableAccess,
)
from repro.engine.backends import (
    ProcessBackend,
    SerialBackend,
    close_backends,
    default_backend_name,
    get_backend,
)
from repro.engine.database import Database
from repro.engine.executor import Executor, build_segments
from repro.nested.values import Bag, Layout, Tup
from repro.whynot.explain import explain


def make_db():
    return Database(
        {
            "R": [Tup(k=i % 5, v=i) for i in range(23)],
            "S": [Tup(j=i % 4, w=str(i)) for i in range(11)],
        }
    )


def plan_join_group():
    joined = Join(TableAccess("R"), TableAccess("S"), [("k", "j")], how="full")
    return Query(
        GroupAggregation(
            Selection(joined, col("v").ge(2)),
            ["k"],
            [AggSpec("count", None, "n"), AggSpec("sum", col("v"), "s")],
        )
    )


# -- serialization contracts -------------------------------------------------


def test_tup_pickle_reinterns_layout():
    t = Tup(a=1, b=Bag([Tup(c=2.0)]))
    t2 = pickle.loads(pickle.dumps(t))
    assert t2 == t and hash(t2) == hash(t)
    assert t2.layout is t.layout, "unpickled tuples must share interned layouts"


def test_layout_pickle_is_identity():
    layout = Layout.of(("x", "y"))
    assert pickle.loads(pickle.dumps(layout)) is layout


def test_operator_pickle_strips_compiled_caches():
    query = plan_join_group()
    # Populate every lazy compiled cache, then round-trip.
    query.root.key_fn()
    query.root.children[0].pred.compile()
    query.root.children[0].children[0].key_fns()
    restored = pickle.loads(pickle.dumps(query))
    for op in restored.ops:
        compiled = [k for k in op.__dict__ if k.startswith("_compiled")]
        assert not compiled, f"{op.label} pickled compiled state {compiled}"
    assert not hasattr(restored.root.children[0].pred, "_compiled")
    # Re-compilation on the receiving side agrees with the original.
    db = make_db()
    assert restored.evaluate(db) == query.evaluate(db)


def test_backend_resolution():
    assert isinstance(get_backend("serial"), SerialBackend)
    proc = get_backend("process", 2)
    assert isinstance(proc, ProcessBackend) and proc.workers == 2
    assert get_backend("process", 2) is proc, "pools are cached per worker count"
    passthrough = SerialBackend()
    assert get_backend(passthrough) is passthrough
    assert default_backend_name() in ("serial", "process")
    with pytest.raises(ValueError):
        get_backend("threads")


def test_chain_fusion_segments():
    query = Query(
        Projection(
            Selection(
                Projection(TableAccess("R"), ["k", "v"]), col("v").ge(2)
            ),
            ["k"],
        )
    )
    segments = build_segments(query)
    kinds = [s.kind for s in segments]
    assert kinds == ["source", "chain"]
    assert len(segments[1].ops) == 3, "narrow run must fuse into one chain"


# -- executor equivalence ----------------------------------------------------


@pytest.mark.parametrize("workers", [1, 2, 4])
@pytest.mark.parametrize("partitions", [1, 3, 7])
def test_process_equals_serial_join_group(workers, partitions):
    db = make_db()
    query = plan_join_group()
    plain = query.evaluate(db)
    serial = Executor(num_partitions=partitions, backend="serial")
    proc = Executor(num_partitions=partitions, backend="process", workers=workers)
    assert serial.execute(query, db) == plain
    assert proc.execute(query, db) == plain


def test_metrics_merged_from_workers_equal_serial():
    db = make_db()
    query = Query(
        RelationNesting(
            Selection(
                Join(TableAccess("R"), TableAccess("S"), [("k", "j")]),
                col("v").ge(1),
            ),
            ["v", "w"],
            "vs",
        )
    )
    serial = Executor(num_partitions=3, backend="serial")
    proc = Executor(num_partitions=3, backend="process", workers=2)
    assert serial.execute(query, db) == proc.execute(query, db)
    ms, mp = serial.last_metrics, proc.last_metrics
    assert ms.backend == "serial" and mp.backend == "process" and mp.workers == 2
    assert set(ms.operators) == set(mp.operators)
    for op_id, s in ms.operators.items():
        p = mp.operators[op_id]
        assert (s.rows_in, s.rows_out, s.shuffled_rows, s.partitions, s.tasks) == (
            p.rows_in,
            p.rows_out,
            p.shuffled_rows,
            p.partitions,
            p.tasks,
        ), f"metrics diverge at operator #{op_id}"
        assert p.cpu_seconds >= 0.0
    assert ms.total_shuffled_rows() == mp.total_shuffled_rows()
    assert "backend=process" in mp.report()


def _scenario_names():
    from repro.scenarios import SCENARIOS

    return sorted(SCENARIOS)


@pytest.mark.parametrize("engine", ["row", "columnar"])
@pytest.mark.parametrize("name", _scenario_names())
@pytest.mark.parametrize("partitions", [1, 3, 7])
def test_scenario_process_equals_serial(name, partitions, engine):
    """process ≡ serial ≡ Query.evaluate for every scenario, on both engines."""
    from repro.scenarios import get_scenario

    question = get_scenario(name).question(scale=10)
    plain = question.query.evaluate(question.db)
    workers = {1: 1, 3: 2, 7: 4}[partitions]  # cover 1/2/4 workers across the grid
    serial = Executor(num_partitions=partitions, backend="serial", engine=engine)
    proc = Executor(
        num_partitions=partitions, backend="process", workers=workers, engine=engine
    )
    assert serial.execute(question.query, question.db) == plain
    assert proc.execute(question.query, question.db) == plain, (
        f"{name} diverges on the process backend at {partitions} partitions"
    )
    ms, mp = serial.last_metrics, proc.last_metrics
    assert ms.engine == engine and mp.engine == engine
    for op_id, s in ms.operators.items():
        p = mp.operators[op_id]
        assert (s.rows_in, s.rows_out, s.shuffled_rows) == (
            p.rows_in,
            p.rows_out,
            p.shuffled_rows,
        ), f"{name}: worker-merged metrics diverge at operator #{op_id}"


# -- tracing / explanation equivalence ---------------------------------------

SA_SCENARIOS = ["Q4", "D4", "T2", "C3", "Q13N"]


@pytest.mark.parametrize("name", SA_SCENARIOS)
def test_explain_process_equals_serial(name):
    """Parallel SA-group tracing must not change any explanation."""
    from repro.scenarios import get_scenario

    scenario = get_scenario(name)
    question = scenario.question(scale=12)
    serial = explain(
        question, alternatives=scenario.alternatives, validate=False, backend="serial"
    )
    question = scenario.question(scale=12)
    proc = explain(
        question,
        alternatives=scenario.alternatives,
        validate=False,
        backend="process",
        workers=2,
    )
    assert serial.n_sas == proc.n_sas
    assert serial.explanation_labels() == proc.explanation_labels()
    assert [(e.lb, e.ub) for e in serial.explanations] == [
        (e.lb, e.ub) for e in proc.explanations
    ]
    assert serial.trace.total_rows() == proc.trace.total_rows()


@pytest.mark.parametrize("name", SA_SCENARIOS)
def test_explain_columnar_equals_row(name):
    """The columnar answer path must not change any explanation."""
    from repro.scenarios import get_scenario

    scenario = get_scenario(name)
    question = scenario.question(scale=12)
    row = explain(
        question, alternatives=scenario.alternatives, validate=False, engine="row"
    )
    question = scenario.question(scale=12)
    columnar = explain(
        question, alternatives=scenario.alternatives, validate=False, engine="columnar"
    )
    assert row.n_sas == columnar.n_sas
    assert row.explanation_labels() == columnar.explanation_labels()
    assert [(e.lb, e.ub) for e in row.explanations] == [
        (e.lb, e.ub) for e in columnar.explanations
    ]


def test_running_example_explain_cross_backend(person_db, running_query):
    from repro.nested.values import Bag, Tup
    from repro.whynot.placeholders import ANY, STAR
    from repro.whynot.question import WhyNotQuestion

    nip = Tup(city="NY", nList=Bag([ANY, STAR]))
    groups = [["person.address2", "person.address1"]]
    question = WhyNotQuestion(running_query, person_db, nip)
    serial = explain(question, alternatives=groups, backend="serial")
    proc = explain(question, alternatives=groups, backend="process", workers=2)
    assert serial.explanation_labels() == proc.explanation_labels()


def test_context_miss_replays_with_payload():
    """Later batches ship only the context id; a worker that never saw the
    payload must trigger a transparent replay, not an error."""
    from repro.algebra.operators import TableAccess as TA
    from repro.engine.backends import TaskContext

    db = Database({"R": [Tup(k=i, v=i) for i in range(12)]})
    query = Query(Selection(TA("R"), col("v").ge(0)))
    rows = list(db.relation("R"))
    backend = ProcessBackend(workers=3)
    try:
        ctx = TaskContext(query, db)
        # One-task batch: at most one worker learns the context, but the
        # driver marks it as shipped.
        backend.run(ctx, [("chain", (query.root.op_id,), rows[:4])])
        # A wider batch then reaches workers without the cached context.
        tasks = [("chain", (query.root.op_id,), [row]) for row in rows]
        results = backend.run(ctx, tasks)
        assert [out for out, _ in results] == [[row] for row in rows]
    finally:
        backend.close()


def test_close_backends_is_idempotent():
    backend = get_backend("process", 2)
    db = make_db()
    query = plan_join_group()
    Executor(num_partitions=2, backend=backend).execute(query, db)
    close_backends()
    close_backends()
    # A fresh pool spins up transparently after closing.
    assert Executor(num_partitions=2, backend="process", workers=2).execute(
        query, db
    ) == query.evaluate(db)