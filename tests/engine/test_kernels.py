"""Kernel code generator: golden source, caching, bailouts, stats parity.

The columnar engine's contract is bit-equivalence with the row path — the
broad equivalence nets live in ``test_backends.py`` (all scenarios × both
engines) and the differential fuzzer; this module pins the mechanisms that
make it hold: the generated source itself (golden snapshot), the semantic
cache keying, the row-path fallbacks (unsupported operators, heterogeneous
layouts, error parity), and the per-operator stats shape.
"""

import textwrap

import pytest

from repro.algebra.expressions import col
from repro.algebra.operators import (
    EvalContext,
    Map,
    Projection,
    Query,
    RelationFlatten,
    Selection,
    TableAccess,
)
from repro.engine.columnar import (
    default_engine,
    new_kernel_info,
    resolve_engine,
    task_kernel_chain,
)
from repro.engine.database import Database
from repro.engine.executor import Executor
from repro.engine.kernels import (
    build_kernel,
    chain_kernel,
    kernel_cache_clear,
    kernel_source,
)
from repro.nested.values import Bag, Layout, Tup


def _chain_parts(query, db):
    """(non-source ops, EvalContext) for a single-chain plan over *db*."""
    ctx = EvalContext(db, query.infer_schemas(db))
    ops = [op for op in query.ops if not isinstance(op, TableAccess)]
    return ops, ctx


def make_db():
    return Database({"R": [Tup(k=i % 3, v=i, w=str(i)) for i in range(12)]})


# -- engine knob --------------------------------------------------------------


def test_engine_resolution(monkeypatch):
    monkeypatch.delenv("REPRO_ENGINE", raising=False)
    assert default_engine() == "row"
    assert resolve_engine(None) == "row"
    assert resolve_engine("columnar") == "columnar"
    monkeypatch.setenv("REPRO_ENGINE", "columnar")
    assert default_engine() == "columnar"
    monkeypatch.setenv("REPRO_ENGINE", "vectorized")
    with pytest.raises(ValueError):
        default_engine()
    with pytest.raises(ValueError):
        resolve_engine("vectorized")


# -- golden generated source --------------------------------------------------


def test_kernel_source_golden():
    """Pin the generated source for a σ→π chain (the codegen contract).

    Deliberate golden snapshot: column lists are extracted only for used
    columns, ⊥/None and the TypeError→False comparison semantics are inlined,
    and the final projection rebuilds tuples through the interned layout.
    Update alongside intentional codegen changes — the shape is documented in
    ``docs/KERNELS.md``.
    """
    db = make_db()
    query = Query(
        Projection(Selection(TableAccess("R"), col("v").ge(2)), ["k", "v"])
    )
    ops, ctx = _chain_parts(query, db)
    expected = textwrap.dedent(
        """\
        def _kernel(rows):
            _out = []
            _append = _out.append
            _l0 = [_r._values[0] for _r in rows]
            _l1 = [_r._values[1] for _r in rows]
            for _c0_, _c1_ in zip(_l0, _l1):
                _t1_ = 2
                if _c1_ is _NULL or _c1_ is None or _t1_ is _NULL or _t1_ is None:
                    _t2_ = False
                else:
                    try:
                        _t2_ = _c1_ >= _t1_
                    except TypeError:
                        _t2_ = False
                if not (_t2_):
                    continue
                _append(_mk(_g0, (_c0_, _c1_,)))
            return _out, ()
        """
    )
    assert kernel_source(ops, Layout.of(("k", "v", "w")), ctx) == expected


def test_kernel_runs_and_matches_row_path():
    db = make_db()
    query = Query(
        Projection(Selection(TableAccess("R"), col("v").ge(2)), ["k", "v"])
    )
    ops, ctx = _chain_parts(query, db)
    rows = list(db.relation("R"))
    kernel = build_kernel(ops, rows[0].layout, ctx)
    out, stats = kernel.run(rows, ops)
    expected = query.evaluate(db)
    assert Bag(out) == expected
    # Stats mirror the row path's (op_id, n_in, n_out, seconds) tuples.
    assert [(s[0], s[1], s[2]) for s in stats] == [
        (ops[0].op_id, 12, 10),
        (ops[1].op_id, 10, 10),
    ]
    assert all(s[3] >= 0.0 for s in stats)


def test_kernel_cardinality_counters_mid_chain():
    """A cardinality-changing op that is not last still reports exact counts."""
    db = Database(
        {
            "N": [
                Tup(g=1, xs=Bag([Tup(x=1), Tup(x=2)])),
                Tup(g=2, xs=Bag([])),
                Tup(g=3, xs=Bag([Tup(x=7)])),
            ]
        }
    )
    query = Query(
        Projection(RelationFlatten(TableAccess("N"), "xs", alias="x"), ["g", "x"])
    )
    ops, ctx = _chain_parts(query, db)
    rows = list(db.relation("N"))
    kernel = build_kernel(ops, rows[0].layout, ctx)
    out, stats = kernel.run(rows, ops)
    assert Bag(out) == query.evaluate(db)
    assert [(s[1], s[2]) for s in stats] == [(3, 3), (3, 3)]


# -- caching ------------------------------------------------------------------


def test_chain_kernel_semantic_cache():
    """Fresh-but-equal plans hit the cache; the first build is a miss."""
    kernel_cache_clear()
    db = make_db()

    def fresh():
        query = Query(
            Projection(Selection(TableAccess("R"), col("v").ge(2)), ["k", "v"])
        )
        return _chain_parts(query, db)

    layout = Layout.of(("k", "v", "w"))
    ops, ctx = fresh()
    info = new_kernel_info()
    first = chain_kernel(ops, layout, ctx, info)
    assert first is not None
    assert info["misses"] == 1 and info["hits"] == 0
    assert info["codegen_seconds"] > 0.0
    ops2, ctx2 = fresh()
    info2 = new_kernel_info()
    assert chain_kernel(ops2, layout, ctx2, info2) is first
    assert info2["hits"] == 1 and info2["misses"] == 0
    assert info2["codegen_seconds"] == 0.0


def test_unsupported_operator_falls_back():
    """A chain with an un-lowerable operator always takes the row path.

    ``Map`` has no kernel hooks, so its key never builds — every call is a
    cheap miss that skips codegen entirely (nothing is even attempted, hence
    no negative entry and zero codegen seconds).
    """
    kernel_cache_clear()
    db = make_db()
    query = Query(Map(TableAccess("R"), lambda t: t))
    ops, ctx = _chain_parts(query, db)
    layout = Layout.of(("k", "v", "w"))
    for _ in range(2):
        info = new_kernel_info()
        assert chain_kernel(ops, layout, ctx, info) is None
        assert info["misses"] == 1 and info["hits"] == 0
        assert info["codegen_seconds"] == 0.0


def test_failed_build_negative_cached(monkeypatch):
    """A chain whose key builds but whose codegen fails is cached as None."""
    import repro.engine.kernels as kernels_module

    kernel_cache_clear()
    db = make_db()
    query = Query(Selection(TableAccess("R"), col("v").ge(2)))
    ops, ctx = _chain_parts(query, db)
    layout = Layout.of(("k", "v", "w"))

    def broken_build(*args, **kwargs):
        raise RuntimeError("simulated codegen failure")

    monkeypatch.setattr(kernels_module, "build_kernel", broken_build)
    info = new_kernel_info()
    assert chain_kernel(ops, layout, ctx, info) is None
    assert info["misses"] == 1
    monkeypatch.undo()
    # The negative entry survives even though codegen would now succeed.
    info2 = new_kernel_info()
    assert chain_kernel(ops, layout, ctx, info2) is None
    assert info2["hits"] == 1 and info2["misses"] == 0
    # A clean cache lowers the same chain fine.
    kernel_cache_clear()
    info3 = new_kernel_info()
    assert chain_kernel(ops, layout, ctx, info3) is not None


# -- fallbacks ----------------------------------------------------------------


def test_task_chain_falls_back_and_matches(monkeypatch):
    """kchain ≡ chain even when kernels cannot run (empty/mixed partitions)."""
    from repro.engine.backends import WorkerState

    db = make_db()
    query = Query(Selection(TableAccess("R"), col("v").ge(4)))
    state = WorkerState(query, db)
    op_ids = (query.root.op_id,)
    rows = list(db.relation("R"))

    out, stats, info = task_kernel_chain(state, op_ids, rows)
    assert Bag(out) == query.evaluate(db)
    assert info["fallbacks"] == 0

    # Empty partitions always use the row path (schema errors must surface)
    # but are not counted as fallbacks — there was nothing to vectorize.
    out, stats, info = task_kernel_chain(state, op_ids, [])
    assert out == [] and info["fallbacks"] == 0
    assert info["hits"] == 0 and info["misses"] == 0

    # Mixed layouts cannot be batched into columns.
    mixed = rows + [Tup(k=0, v=99)]
    out, stats, info = task_kernel_chain(state, op_ids, mixed)
    assert info["fallbacks"] == 1
    assert Bag(out) == Bag([t for t in mixed if t["v"] >= 4])


def test_kernel_error_parity_with_row_path():
    """Fallbacks reproduce the row path's exact error type and message."""
    from repro.engine.backends import WorkerState

    db = make_db()
    # Flattening an attribute that is not a nested relation fails at runtime;
    # the kernel must surface the same KeyError text via the row-path rerun.
    query = Query(RelationFlatten(TableAccess("R"), "missing", alias="x"))
    with pytest.raises(Exception) as row_err:
        query.evaluate(db)
    state = WorkerState(query, db)
    with pytest.raises(Exception) as kernel_err:
        task_kernel_chain(state, (query.root.op_id,), list(db.relation("R")))
    assert type(kernel_err.value) is type(row_err.value)
    assert str(kernel_err.value) == str(row_err.value)


# -- executor integration -----------------------------------------------------


def test_executor_columnar_metrics_and_report():
    db = make_db()
    query = Query(
        Projection(Selection(TableAccess("R"), col("v").ge(2)), ["k", "v"])
    )
    executor = Executor(num_partitions=3, engine="columnar")
    result = executor.execute(query, db)
    assert result == query.evaluate(db)
    metrics = executor.last_metrics
    assert metrics.engine == "columnar"
    assert metrics.kernels is not None
    assert metrics.kernels["hits"] + metrics.kernels["misses"] >= 1
    report = metrics.report()
    assert "engine=columnar" in report and "kernels:" in report

    row = Executor(num_partitions=3, engine="row")
    assert row.execute(query, db) == result
    assert row.last_metrics.engine == "row"
    assert row.last_metrics.kernels is None
    assert "kernels:" not in row.last_metrics.report()


def test_metrics_wire_round_trip_with_kernels():
    from repro.wire.payloads import metrics_from_json, metrics_to_json

    db = make_db()
    query = Query(Selection(TableAccess("R"), col("v").ge(2)))
    executor = Executor(num_partitions=2, engine="columnar")
    executor.execute(query, db)
    metrics = executor.last_metrics
    restored = metrics_from_json(metrics_to_json(metrics))
    assert restored.engine == "columnar"
    assert restored.kernels == metrics.kernels
    # Tolerant decode: pre-engine payloads default to the row engine.
    doc = metrics_to_json(metrics)
    del doc["engine"], doc["kernels"]
    legacy = metrics_from_json(doc)
    assert legacy.engine == "row" and legacy.kernels is None
