"""Tests for the database catalog and row conversion."""

import pytest

from repro.engine.database import Database
from repro.nested.types import INT, STR, BagType, TupleType
from repro.nested.values import Bag, Tup


class TestConstruction:
    def test_from_dicts(self):
        db = Database({"T": [{"a": 1, "tags": ["x", "y"], "info": {"b": 2}}]})
        (row,) = db.relation("T")
        assert row == Tup(a=1, tags=Bag(["x", "y"]), info=Tup(b=2))

    def test_from_tuples(self):
        db = Database({"T": [Tup(a=1)]})
        assert db.size("T") == 1

    def test_schema_inferred(self):
        db = Database({"T": [Tup(a=1, tags=Bag([Tup(t="x")]))]})
        assert db.schema("T") == TupleType(
            [("a", INT), ("tags", BagType(TupleType([("t", STR)])))]
        )

    def test_schema_unifies_nulls(self):
        from repro.nested.values import NULL

        db = Database({"T": [Tup(a=NULL), Tup(a=3)]})
        assert db.schema("T").field("a") == INT

    def test_empty_relation_needs_schema(self):
        with pytest.raises(ValueError):
            Database({"T": []})
        schema = TupleType([("a", INT)])
        db = Database({"T": []}, schemas={"T": schema})
        assert db.schema("T") == schema

    def test_missing_relation(self):
        db = Database({"T": [Tup(a=1)]})
        with pytest.raises(KeyError):
            db.relation("U")

    def test_contains_and_tables(self):
        db = Database({"T": [Tup(a=1)], "U": [Tup(b=2)]})
        assert "T" in db and "V" not in db
        assert set(db.tables()) == {"T", "U"}
