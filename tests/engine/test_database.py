"""Tests for the database catalog, row conversion and the version chain."""

import pytest

from repro.engine.database import Database, Mutation
from repro.nested.types import FLOAT, INT, STR, BagType, TupleType
from repro.nested.values import NAN, Bag, Tup


class TestConstruction:
    def test_from_dicts(self):
        db = Database({"T": [{"a": 1, "tags": ["x", "y"], "info": {"b": 2}}]})
        (row,) = db.relation("T")
        assert row == Tup(a=1, tags=Bag(["x", "y"]), info=Tup(b=2))

    def test_from_tuples(self):
        db = Database({"T": [Tup(a=1)]})
        assert db.size("T") == 1

    def test_schema_inferred(self):
        db = Database({"T": [Tup(a=1, tags=Bag([Tup(t="x")]))]})
        assert db.schema("T") == TupleType(
            [("a", INT), ("tags", BagType(TupleType([("t", STR)])))]
        )

    def test_schema_unifies_nulls(self):
        from repro.nested.values import NULL

        db = Database({"T": [Tup(a=NULL), Tup(a=3)]})
        assert db.schema("T").field("a") == INT

    def test_empty_relation_needs_schema(self):
        with pytest.raises(ValueError):
            Database({"T": []})
        schema = TupleType([("a", INT)])
        db = Database({"T": []}, schemas={"T": schema})
        assert db.schema("T") == schema

    def test_missing_relation(self):
        db = Database({"T": [Tup(a=1)]})
        with pytest.raises(KeyError):
            db.relation("U")

    def test_contains_and_tables(self):
        db = Database({"T": [Tup(a=1)], "U": [Tup(b=2)]})
        assert "T" in db and "V" not in db
        assert set(db.tables()) == {"T", "U"}


class TestVersionChain:
    def test_apply_mutations_builds_next_version(self):
        v0 = Database({"T": [Tup(a=1)], "U": [Tup(b=2)]})
        v1 = v0.apply_mutations(inserts={"T": [Tup(a=5)]})
        assert (v0.version_id, v1.version_id) == (0, 1)
        assert v1.parent is v0
        assert v1.last_mutation is not None and v1.last_mutation.tables() == ["T"]
        assert v1.relation("T") == Bag([Tup(a=1), Tup(a=5)])
        # The parent snapshot is untouched.
        assert v0.relation("T") == Bag([Tup(a=1)])

    def test_structural_sharing_of_unchanged_relations(self):
        v0 = Database({"T": [Tup(a=1)], "U": [Tup(b=2)]})
        v1 = v0.apply_mutations(deletes={"T": [Tup(a=1)]})
        assert v1.relation("U") is v0.relation("U")
        assert v1.relation("T") is not v0.relation("T")

    def test_relation_version_stamps(self):
        v0 = Database({"T": [Tup(a=1)], "U": [Tup(b=2)]})
        v1 = v0.apply_mutations(inserts={"U": [Tup(b=3)]})
        v2 = v1.apply_mutations(inserts={"T": [Tup(a=9)]})
        assert v2.relation_version("U") == 1
        assert v2.relation_version("T") == 2
        assert v0.relation_version("T") == 0
        # In-place add() on the same snapshot changes the epoch component.
        stamp = v0.relation_stamp("T")
        v0.add("T", [Tup(a=7)])
        assert v0.relation_stamp("T") != stamp

    def test_mutation_accepts_prebuilt_object(self):
        v0 = Database({"T": [Tup(a=1)]})
        mutation = Mutation(inserts={"T": [Tup(a=2)]}, deletes={"T": [Tup(a=1)]})
        v1 = v0.apply_mutations(mutation)
        assert v1.relation("T") == Bag([Tup(a=2)])
        assert mutation.signed_delta("T") == {Tup(a=2): 1, Tup(a=1): -1}

    def test_unknown_relation_rejected(self):
        v0 = Database({"T": [Tup(a=1)]})
        with pytest.raises(KeyError):
            v0.apply_mutations(inserts={"X": [Tup(a=1)]})

    def test_delete_of_absent_row_rejected(self):
        v0 = Database({"T": [Tup(a=1)]})
        with pytest.raises(KeyError):
            v0.apply_mutations(deletes={"T": [Tup(a=99)]})

    def test_delete_may_consume_same_batch_insert(self):
        v0 = Database({"T": [Tup(a=1)]})
        v1 = v0.apply_mutations(
            inserts={"T": [Tup(a=2)]}, deletes={"T": [Tup(a=2)]}
        )
        assert v1.relation("T") == v0.relation("T")
        assert v1.version_id == 1

    def test_insert_widens_schema(self):
        v0 = Database({"T": [Tup(a=1)]})
        v1 = v0.apply_mutations(inserts={"T": [Tup(a=2.5)]})
        assert v0.schema("T").field("a") == INT
        assert v1.schema("T").field("a") == FLOAT

    def test_canonical_forms_address_the_same_rows(self):
        v0 = Database({"T": [Tup(a=2.0), Tup(a=0.0), Tup(a=float("nan"))]})
        # int 2 deletes the stored 2.0; -0.0 deletes the stored 0.0; a fresh
        # NaN deletes the canonicalized NaN row.
        v1 = v0.apply_mutations(
            deletes={"T": [Tup(a=2), Tup(a=-0.0), Tup(a=float("nan"))]}
        )
        assert len(v1.relation("T")) == 0

    def test_mutation_canonicalizes_nan_inserts(self):
        v0 = Database({"T": [Tup(a=1.5)]})
        v1 = v0.apply_mutations(inserts={"T": [Tup(a=float("nan"))]})
        assert v1.relation("T").mult(Tup(a=NAN)) == 1

    def test_repr_shows_version(self):
        v0 = Database({"T": [Tup(a=1)]})
        v1 = v0.apply_mutations(inserts={"T": [Tup(a=2)]})
        assert repr(v1).startswith("Database(v1:")
