"""Tests for the process-stable shuffle hash."""

import datetime
import json
import subprocess
import sys
import textwrap
from pathlib import Path

import pytest

from repro.engine.hashing import _NAN_HASH, stable_hash
from repro.nested.values import NAN, NULL, Bag, Tup


class TestStableHash:
    def test_equality_compatible_numeric_tower(self):
        assert stable_hash(2) == stable_hash(2.0)
        assert stable_hash(True) == stable_hash(1)

    def test_equal_values_hash_alike(self):
        assert stable_hash("abc") == stable_hash("abc")
        assert stable_hash(("a", 1)) == stable_hash(("a", 1))
        assert stable_hash(Tup(x=1, y="a")) == stable_hash(Tup(x=1, y="a"))
        assert stable_hash(Bag([1, 1, 2])) == stable_hash(Bag([1, 2, 1]))

    def test_null_and_none_collapse(self):
        assert stable_hash(None) == stable_hash(NULL)

    def test_known_string_hash_is_fixed(self):
        # crc32 is specified; this value must never change across processes
        # or Python versions (it anchors partition assignment).
        import zlib

        assert stable_hash("key-1") == zlib.crc32(b"key-1")

    def test_nested_values(self):
        t1 = Tup(k=Tup(inner=Bag(["x", "y"])), v=1.5)
        t2 = Tup(k=Tup(inner=Bag(["y", "x"])), v=1.5)
        assert stable_hash(t1) == stable_hash(t2)


class TestNaNStability:
    """Regression: differential fuzzer seed 4 — NaN partition instability.

    CPython ≥ 3.10 hashes NaN by object identity, so before the fix
    ``stable_hash(float("nan"))`` depended on the NaN *object* — violating
    the seed/partition-independence invariant whenever NaN crossed a process
    boundary (pickle does not memoize floats).
    """

    def test_distinct_nan_objects_hash_alike(self):
        # Two distinct NaN objects: identical stable hashes (fails pre-fix).
        a, b = float("nan"), float("nan")
        assert a is not b
        assert stable_hash(a) == stable_hash(b) == _NAN_HASH
        assert stable_hash(NAN) == _NAN_HASH

    def test_nan_inside_nested_values_hashes_alike(self):
        t1 = Tup(x=float("nan"), b=Bag([float("nan"), 1.0]))
        t2 = Tup(x=float("nan"), b=Bag([float("nan"), 1.0]))
        assert stable_hash(t1) == stable_hash(t2)

    def test_nan_hash_identical_across_worker_processes(self):
        """The acceptance check: NaN hashes alike in separate interpreters."""
        src_dir = Path(__file__).resolve().parents[2] / "src"
        script = textwrap.dedent(
            """
            import json
            from repro.engine.hashing import stable_hash
            print(json.dumps(stable_hash(float("nan"))))
            """
        )
        values = set()
        for _ in range(2):
            proc = subprocess.run(
                [sys.executable, "-c", script],
                capture_output=True,
                text=True,
                env={"PYTHONPATH": str(src_dir), "PYTHONHASHSEED": "random"},
                check=True,
            )
            values.add(json.loads(proc.stdout))
        assert values == {stable_hash(float("nan"))}

    def test_signed_zeros_hash_alike(self):
        # 0.0 == -0.0, so they must hash alike (they do: both hash to 0);
        # pinned explicitly because the NaN fix special-cases float hashing.
        assert stable_hash(0.0) == stable_hash(-0.0) == stable_hash(0)


class TestUnknownTypeFallback:
    """Regression: the silent ``hash(value)`` fallback was seed-dependent."""

    def test_unknown_type_raises_type_error(self):
        class Opaque:
            pass

        with pytest.raises(TypeError, match="stable_hash"):
            stable_hash(Opaque())

    def test_dates_hash_deterministically(self):
        # dates hash via the salted bytes hash internally, so they get an
        # explicit ISO-based encoding rather than the TypeError.
        assert stable_hash(datetime.date(2021, 6, 1)) == stable_hash(
            datetime.date(2021, 6, 1)
        )
        assert stable_hash(datetime.datetime(2021, 6, 1, 12, 30)) == stable_hash(
            datetime.datetime(2021, 6, 1, 12, 30)
        )
        assert stable_hash(datetime.date(2021, 6, 1)) != stable_hash(
            datetime.date(2021, 6, 2)
        )
