"""Tests for the process-stable shuffle hash."""

from repro.engine.hashing import stable_hash
from repro.nested.values import NULL, Bag, Tup


class TestStableHash:
    def test_equality_compatible_numeric_tower(self):
        assert stable_hash(2) == stable_hash(2.0)
        assert stable_hash(True) == stable_hash(1)

    def test_equal_values_hash_alike(self):
        assert stable_hash("abc") == stable_hash("abc")
        assert stable_hash(("a", 1)) == stable_hash(("a", 1))
        assert stable_hash(Tup(x=1, y="a")) == stable_hash(Tup(x=1, y="a"))
        assert stable_hash(Bag([1, 1, 2])) == stable_hash(Bag([1, 2, 1]))

    def test_null_and_none_collapse(self):
        assert stable_hash(None) == stable_hash(NULL)

    def test_known_string_hash_is_fixed(self):
        # crc32 is specified; this value must never change across processes
        # or Python versions (it anchors partition assignment).
        import zlib

        assert stable_hash("key-1") == zlib.crc32(b"key-1")

    def test_nested_values(self):
        t1 = Tup(k=Tup(inner=Bag(["x", "y"])), v=1.5)
        t2 = Tup(k=Tup(inner=Bag(["y", "x"])), v=1.5)
        assert stable_hash(t1) == stable_hash(t2)
