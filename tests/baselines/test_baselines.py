"""Tests for the WN++ and Conseil baselines on controlled inputs."""

import pytest

from repro.algebra.expressions import col
from repro.algebra.operators import (
    InnerFlatten,
    Join,
    Projection,
    Query,
    Selection,
    TableAccess,
)
from repro.baselines import conseil_explain, wnpp_explain
from repro.baselines.common import build_s1_trace
from repro.engine.database import Database
from repro.nested.values import Bag, Tup
from repro.whynot.placeholders import ANY, STAR
from repro.whynot.question import WhyNotQuestion


class TestRunningExample:
    def test_wnpp_finds_sigma(self, running_question):
        """Example 2: WN++ identifies the selection as picky."""
        assert [e.labels for e in wnpp_explain(running_question)] == [("σ",)]

    def test_conseil_finds_sigma(self, running_question):
        assert [e.labels for e in conseil_explain(running_question)] == [("σ",)]

    def test_shared_s1_trace(self, running_question):
        s1 = build_s1_trace(running_question)
        assert wnpp_explain(running_question, s1) == wnpp_explain(running_question)


class TestFrontierSemantics:
    def make_pipeline(self, rows, nip, pred1, pred2):
        db = Database({"T": rows})
        plan = Selection(
            Selection(TableAccess("T"), pred1, label="σ_inner"),
            pred2,
            label="σ_outer",
        )
        return WhyNotQuestion(Query(plan), db, nip)

    def test_death_at_inner_selection(self):
        phi = self.make_pipeline(
            [Tup(a=1, b=1)], Tup(a=1, b=ANY), col("a").ge(5), col("b").ge(0)
        )
        assert [e.labels for e in wnpp_explain(phi)] == [("σ_inner",)]

    def test_furthest_death_wins(self):
        # One compatible dies at the inner selection, another survives it and
        # dies at the outer one → the frontier is the outer selection.
        phi = self.make_pipeline(
            [Tup(a=1, b=9), Tup(a=9, b=1)],
            Tup(a=ANY, b=ANY),
            col("a").ge(5),
            col("b").ge(5),
        )
        assert [e.labels for e in wnpp_explain(phi)] == [("σ_outer",)]

    def test_survivor_has_no_death(self):
        phi = self.make_pipeline(
            [Tup(a=9, b=9), Tup(a=0, b=0)],
            Tup(a=9, b=9),
            col("a").ge(5),
            col("b").ge(5),
        )
        # The compatible (9, 9) reaches the output... but then the question
        # would be ill-posed; use a different NIP: (0, 0) dies at σ_inner.
        phi = self.make_pipeline(
            [Tup(a=9, b=9), Tup(a=0, b=0)],
            Tup(a=0, b=0),
            col("a").ge(5),
            col("b").ge(5),
        )
        assert [e.labels for e in wnpp_explain(phi)] == [("σ_inner",)]


class TestJoinDeath:
    def test_compatible_dies_at_join(self):
        db = Database(
            {
                "L": [Tup(k=1, name="target"), Tup(k=2, name="other")],
                "R": [Tup(j=2, v="x")],
            }
        )
        plan = Join(TableAccess("L"), TableAccess("R"), [("k", "j")], label="⋈")
        phi = WhyNotQuestion(Query(plan), db, Tup(k=ANY, name="target", j=ANY, v=ANY))
        assert [e.labels for e in wnpp_explain(phi)] == [("⋈",)]

    def test_missing_data_blames_consuming_join(self):
        """C3 behaviour: no tuple matches one constrained side's NIP while the
        other side still has compatibles."""
        db = Database(
            {
                "L": [Tup(k=1, name="present")],
                "R": [Tup(j=1, v="x")],
            }
        )
        plan = Join(TableAccess("L"), TableAccess("R"), [("k", "j")], label="⋈")
        phi = WhyNotQuestion(
            Query(plan), db, Tup(k=ANY, name="absent", j=ANY, v="x")
        )
        assert [e.labels for e in wnpp_explain(phi)] == [("⋈",)]

    def test_no_compatibles_anywhere_stays_silent(self):
        """Q4 behaviour: with no compatibles at all, Why-Not returns nothing."""
        db = Database(
            {
                "L": [Tup(k=1, name="present")],
                "R": [Tup(j=1, v="x")],
            }
        )
        plan = Join(TableAccess("L"), TableAccess("R"), [("k", "j")], label="⋈")
        phi = WhyNotQuestion(
            Query(plan), db, Tup(k=ANY, name="absent", j=ANY, v="missing-too")
        )
        assert wnpp_explain(phi) == []


class TestAggregationBoundary:
    def test_wnpp_stops_at_grouping(self):
        """A compatible absorbed by an aggregation yields no explanation
        (the D2 scenario shape)."""
        from repro.algebra.operators import RelationNesting

        db = Database({"T": [Tup(name="a", city="x")]})
        plan = RelationNesting(TableAccess("T"), ["name"], "names")
        phi = WhyNotQuestion(
            Query(plan), db, Tup(city="y", names=Bag([ANY, STAR]))
        )
        assert wnpp_explain(phi) == []


class TestConseil:
    def test_combined_explanation(self):
        """C1 shape: selection + partnerless join blocked on the same path."""
        db = Database(
            {
                "P": [Tup(name="Roger", hair="brown")],
                "S": [Tup(h="blue", witness="w1")],
            }
        )
        plan = Join(
            Selection(TableAccess("P"), col("hair").eq("blue"), label="σ1"),
            TableAccess("S"),
            [("hair", "h")],
            label="⋈2",
        )
        phi = WhyNotQuestion(
            Query(plan), db, Tup(name="Roger", hair=ANY, h=ANY, witness=ANY)
        )
        result = conseil_explain(phi)
        assert [set(e.labels) for e in result] == [{"σ1", "⋈2"}]

    def test_minimal_sets_only(self):
        db = Database({"T": [Tup(a=1, b=9), Tup(a=1, b=1)]})
        plan = Selection(
            Selection(TableAccess("T"), col("a").ge(5), label="σa"),
            col("b").ge(5),
            label="σb",
        )
        phi = WhyNotQuestion(Query(plan), db, Tup(a=1, b=ANY))
        result = conseil_explain(phi)
        # Derivation via (1, 9) is blocked by σa only; the {σa, σb} derivation
        # via (1, 1) is not subset-minimal.
        assert [set(e.labels) for e in result] == [{"σa"}]
