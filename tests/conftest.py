"""Shared fixtures: the paper's running example and small helper databases."""

import pytest

from repro.datasets.people import person_database, person_query
from repro.nested.values import Bag, Tup
from repro.whynot.placeholders import ANY, STAR
from repro.whynot.question import WhyNotQuestion


@pytest.fixture
def person_db():
    return person_database()


@pytest.fixture
def running_query():
    return person_query()


@pytest.fixture
def running_nip():
    """The example why-not tuple t_ex = ⟨city: NY, nList: {{?, *}}⟩ (Ex. 5)."""
    return Tup(city="NY", nList=Bag([ANY, STAR]))


@pytest.fixture
def running_question(running_query, person_db, running_nip):
    return WhyNotQuestion(running_query, person_db, running_nip, name="running-example")
