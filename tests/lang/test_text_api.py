"""Textual ``.rq`` payloads across the wire, service, HTTP and client layers.

The acceptance bar for the query language: a program sent as a ``text``
field must behave *identically* to the equivalent structured request —
same results byte-for-byte, same cache entries, same error mapping.
"""

import json
import threading
import urllib.error
import urllib.request

import pytest

from repro.api import (
    ApiError,
    Client,
    ExplainOptions,
    ExplainRequest,
    ExplanationService,
)
from repro.api.http import make_server
from repro.api.service import BadRequest
from repro.lang import pretty_program
from repro.scenarios import SCENARIOS, get_scenario
from repro.wire import (
    WIRE_VERSION,
    database_to_json,
    relation_from_json,
    relation_to_json,
)
from repro.wire.payloads import text_query_request


# -- wire layer ---------------------------------------------------------------


def test_text_query_request_envelope_with_named_database():
    document = text_query_request("query { from t }", "mydb")
    assert document["format"] == WIRE_VERSION
    assert document["kind"] == "query-request"
    assert document["text"] == "query { from t }"
    assert document["database"] == "mydb"
    assert "options" not in document
    # The envelope must survive JSON transport untouched.
    assert json.loads(json.dumps(document)) == document


def test_text_query_request_inlines_database_objects(person_db):
    document = text_query_request("query { from person }", person_db)
    assert document["database"] == database_to_json(person_db)


def test_text_query_request_carries_encoded_options():
    options = ExplainOptions(max_sas=7).to_json()
    document = text_query_request("query { from t }", "db", options=options)
    assert document["options"] == options


# -- service layer: ExplainRequest text form ----------------------------------


def test_explain_request_text_json_roundtrip(person_db):
    request = ExplainRequest(text="query { from person } whynot {name: ?}",
                             database=person_db)
    decoded = ExplainRequest.from_json(request.to_json())
    assert decoded.text == request.text
    assert decoded.to_json() == request.to_json()


def test_explain_request_text_requires_database():
    with pytest.raises(BadRequest, match="database"):
        ExplainRequest(text="query { from t } whynot {a: ?}").to_json()


def test_explain_text_matches_structured_and_shares_cache():
    scenario = get_scenario("C3")
    db = scenario.make_db(scenario.default_scale)
    service = ExplanationService(cache_size=8)
    text = pretty_program(
        scenario.make_query(),
        nip=scenario.make_nip(),
        alternatives=scenario.alternatives,
        name="C3",
    )
    textual = service.explain(ExplainRequest(text=text, database=db))
    structured = service.explain(
        ExplainRequest(
            query=scenario.make_query(),
            nip=scenario.make_nip(),
            database=db,
            alternatives=scenario.alternatives,
            name="C3",
        )
    )
    assert not textual.cached
    # The structured twin hits the entry the textual request populated:
    # both lower to the same plan, so they share one cache key.
    assert structured.cached
    assert [e.labels for e in structured.result.explanations] == [
        e.labels for e in textual.result.explanations
    ]
    service.close()


def test_explain_text_without_whynot_block_is_rejected():
    scenario = get_scenario("C1")
    db = scenario.make_db(scenario.default_scale)
    service = ExplanationService()
    with pytest.raises(BadRequest, match="no whynot block"):
        service.explain(ExplainRequest(text="query { from S }", database=db))
    service.close()


# -- HTTP + client ------------------------------------------------------------


@pytest.fixture(scope="module")
def server():
    service = ExplanationService(cache_size=32)
    for name in ("C1", "C3"):
        scenario = get_scenario(name)
        service.register_database(name, scenario.make_db(scenario.default_scale))
    server = make_server(service)
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    yield server
    server.shutdown()
    server.server_close()
    server.service.close()


@pytest.fixture(scope="module")
def client(server):
    host, port = server.server_address[:2]
    return Client(f"http://{host}:{port}")


def canonical(document):
    """Order-insensitive form of a ``relation_to_json`` document.

    Bags are unordered: the service's executor is free to emit rows in a
    different order than direct evaluation, so "byte-identical" means
    identical up to row permutation — same rows, same multiplicities.
    """
    out = dict(document)
    out["rows"] = sorted(document["rows"], key=lambda row: json.dumps(row))
    return out


def test_client_query_text_matches_direct_evaluation(client):
    scenario = get_scenario("C1")
    db = scenario.make_db(scenario.default_scale)
    text = pretty_program(scenario.make_query(), name="C1")
    result, metrics = client.query_text(text, "C1")
    assert result == scenario.make_query().evaluate(db)  # bag equality
    assert canonical(relation_to_json(result)) == canonical(
        relation_to_json(scenario.make_query().evaluate(db))
    )
    assert metrics is not None  # decoded ExecutionMetrics ride along


def test_client_query_text_ignores_trailing_whynot(client):
    scenario = get_scenario("C1")
    text = pretty_program(
        scenario.make_query(), nip=scenario.make_nip(), name="C1"
    )
    result, _ = client.query_text(text, "C1")
    assert len(result) > 0


def test_client_explain_text_matches_scenario_explain(client):
    scenario = get_scenario("C3")
    text = pretty_program(
        scenario.make_query(),
        nip=scenario.make_nip(),
        alternatives=scenario.alternatives,
        name="C3",
    )
    via_text = client.explain(text=text, database="C3")
    via_scenario = client.explain(scenario="C3")
    assert via_text.explanation_sets() == via_scenario.explanation_sets()
    assert via_text.explanation_sets() == [frozenset({"π6"})]


def test_client_explain_text_parse_error_carries_position(client):
    with pytest.raises(ApiError) as info:
        client.explain(text="query { from Nope } whynot {a: ?}", database="C1")
    assert info.value.status == 400
    assert info.value.position == {"line": 1, "column": 9}


def test_client_query_text_with_inline_database(client, person_db):
    from repro.lang import compile_program

    text = "query { from person |> distinct }"
    result, _ = client.query_text(text, person_db)
    assert result == compile_program(text, database=person_db).query.evaluate(
        person_db
    )


# -- acceptance: every golden .rq evaluates identically over HTTP -------------


@pytest.mark.parametrize("name", sorted(SCENARIOS))
def test_every_golden_runs_over_http_with_identical_bytes(server, name):
    import os

    scenario = get_scenario(name)
    db = scenario.make_db(scenario.default_scale)
    path = os.path.join(
        os.path.dirname(__file__), "..", "..", "queries", f"{name}.rq"
    )
    with open(path, encoding="utf-8") as fh:
        text = fh.read()
    host, port = server.server_address[:2]
    request = urllib.request.Request(
        f"http://{host}:{port}/v1/query",
        data=json.dumps(text_query_request(text, db)).encode(),
        headers={"Content-Type": "application/json"},
        method="POST",
    )
    with urllib.request.urlopen(request, timeout=60) as response:
        payload = json.loads(response.read())
    # Bag equality: nested bags are unordered at every level, so decode
    # the wire document back into values rather than diffing row arrays.
    assert relation_from_json(payload["result"]) == scenario.make_query().evaluate(db)
