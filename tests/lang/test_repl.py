"""Scripted REPL sessions against byte-pinned transcripts.

Each ``transcripts/<name>.in.txt`` is fed to ``python -m repro repl`` on
stdin (the REPL echoes input when stdin is not a tty, so the pinned
``<name>.out.txt`` is a complete, self-contained session transcript).
The comparison is byte-for-byte: prompt placement, error carets, row
elision and the ``bye`` farewell are all part of the contract.

To refresh after an intentional change::

    PYTHONPATH=src python -m repro repl < tests/lang/transcripts/NAME.in.txt \
        > tests/lang/transcripts/NAME.out.txt
"""

import os
import subprocess
import sys

import pytest

REPO = os.path.join(os.path.dirname(__file__), "..", "..")
TRANSCRIPTS = os.path.join(os.path.dirname(__file__), "transcripts")

SESSIONS = sorted(
    entry[: -len(".in.txt")]
    for entry in os.listdir(TRANSCRIPTS)
    if entry.endswith(".in.txt")
)


def run_repl(stdin_text, args=()):
    proc = subprocess.run(
        [sys.executable, "-m", "repro", "repl", *args],
        input=stdin_text,
        capture_output=True,
        text=True,
        cwd=REPO,
        env={**os.environ, "PYTHONPATH": "src"},
        timeout=180,
    )
    return proc


def test_transcript_pairs_are_complete():
    outs = {
        entry[: -len(".out.txt")]
        for entry in os.listdir(TRANSCRIPTS)
        if entry.endswith(".out.txt")
    }
    assert outs == set(SESSIONS) and SESSIONS


@pytest.mark.parametrize("name", SESSIONS)
def test_session_matches_pinned_transcript(name):
    with open(os.path.join(TRANSCRIPTS, f"{name}.in.txt"), encoding="utf-8") as fh:
        script = fh.read()
    with open(os.path.join(TRANSCRIPTS, f"{name}.out.txt"), encoding="utf-8") as fh:
        expected = fh.read()
    proc = run_repl(script)
    assert proc.returncode == 0, proc.stderr
    assert "Traceback" not in proc.stdout and "Traceback" not in proc.stderr
    assert proc.stdout == expected, (
        f"transcript drift for {name} — if intentional, re-pin with:\n"
        f"  PYTHONPATH=src python -m repro repl "
        f"< tests/lang/transcripts/{name}.in.txt "
        f"> tests/lang/transcripts/{name}.out.txt"
    )


def test_eof_without_quit_says_bye():
    proc = run_repl("\\use C1\nquery { from W |> group by [] agg [count(*) as n] }\n")
    assert proc.returncode == 0
    assert proc.stdout.rstrip().endswith("bye")
    assert "{n: 20}" in proc.stdout


def test_scenario_flag_preloads_database():
    proc = run_repl("\\schema\n\\quit\n", args=["--scenario", "C1"])
    assert proc.returncode == 0
    assert "S: " in proc.stdout  # schema printed without an explicit \use


def test_repl_survives_malformed_then_runs_valid_query():
    script = (
        "\\use C1\n"
        "query { from S |> select }\n"
        "query { from S |> group by [] agg [count(*) as n] }\n"
        "\\quit\n"
    )
    proc = run_repl(script)
    assert proc.returncode == 0
    assert "Traceback" not in proc.stdout
    assert "^" in proc.stdout  # the caret diagnostic for the bad line
    assert "{n: 21}" in proc.stdout  # and the next query still ran


def test_golden_file_paste_runs_question_via_continuations():
    # Pasting a full .rq file (query + whynot + alternatives blocks, as
    # emitted by tools/gen_golden_queries.py) must attach the question to
    # the query and answer it with the paper's explanation.
    with open(os.path.join(REPO, "queries", "C3.rq"), encoding="utf-8") as fh:
        golden = fh.read()
    proc = run_repl("\\use C3\n" + golden + "\n\\quit\n")
    assert proc.returncode == 0
    assert "-- explanations: 1" in proc.stdout
    assert "{π6}" in proc.stdout
