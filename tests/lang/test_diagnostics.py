"""Parser/validation diagnostics: positions, carets, and HTTP error bodies.

Every user-facing failure mode of the query language must surface as a
:class:`repro.lang.LangError` carrying a 1-based ``line``/``column`` and a
``render()`` with a caret under the offending token — never a Python
traceback.  The same errors crossing the HTTP boundary must map to
status 400 with the position echoed in the JSON error document.
"""

import json
import os
import subprocess
import sys
import threading
import urllib.error
import urllib.request

import pytest

from repro.api import ExplanationService
from repro.api.http import make_server
from repro.lang import LangError, compile_program, parse_program
from repro.scenarios import get_scenario
from repro.wire import WIRE_VERSION

REPO = os.path.join(os.path.dirname(__file__), "..", "..")


@pytest.fixture(scope="module")
def db():
    scenario = get_scenario("Q1")
    return scenario.make_db(2)


def fails_at(text, db=None):
    """Compile ``text`` expecting a LangError; returns the exception."""
    with pytest.raises(LangError) as info:
        compile_program(text, database=db)
    exc = info.value
    # Every diagnostic must carry a usable position and caret rendering.
    assert exc.line >= 1 and exc.column >= 1
    rendered = exc.render()
    assert f"line {exc.line}, column {exc.column}" in rendered
    caret_line = rendered.splitlines()[-1]
    assert caret_line.strip() == "^"
    assert "Traceback" not in rendered
    return exc


# -- the five diagnostic classes ----------------------------------------------


def test_unknown_attribute(db):
    exc = fails_at("query { from nestedOrders |> select bogus = 1 }", db)
    assert "unknown attribute 'bogus'" in str(exc)
    assert "o_orderkey" in str(exc)  # suggests what IS available
    assert (exc.line, exc.column) == (1, 30)


def test_unknown_table(db):
    exc = fails_at("query { from Part }", db)
    assert "unknown table 'Part'" in str(exc)
    assert "nestedOrders" in str(exc)
    assert (exc.line, exc.column) == (1, 9)


def test_type_mismatch_arithmetic_on_string(db):
    exc = fails_at("query { from nestedOrders |> project [x = o_comment + 1] }", db)
    assert "arithmetic '+' needs numeric operands" in str(exc)


def test_type_mismatch_comparison_over_bag(db):
    exc = fails_at("query { from nestedOrders |> select o_lineitems < 3 }", db)
    assert "bag-valued operand" in str(exc)


def test_bad_path_crossing_a_bag(db):
    exc = fails_at(
        "query { from nestedOrders |> project [o_lineitems.l_tax] }", db
    )
    assert "flatten it first" in str(exc)


def test_flatten_of_scalar_attribute(db):
    exc = fails_at("query { from nestedOrders |> flatten inner o_comment }", db)
    assert "not a bag of tuples" in str(exc)


def test_truncated_input(db):
    exc = fails_at("query { from nestedOrders |> select", db)
    assert "unexpected end of input" in str(exc)


def test_unbalanced_nesting(db):
    exc = fails_at("query { from nestedOrders |> project [a, b }", db)
    assert (exc.line, exc.column) == (1, 44)


def test_multiline_position_and_caret_alignment(db):
    text = "query {\n  from nestedOrders\n  |> select bogus = 1\n}"
    exc = fails_at(text, db)
    assert exc.line == 3
    lines = exc.render().splitlines()
    source_line, caret_line = lines[-2], lines[-1]
    # The caret must sit under the start of the offending stage.
    assert caret_line.index("^") == source_line.index("select")


def test_parse_error_without_database_still_positions():
    with pytest.raises(LangError) as info:
        parse_program("query { from t |> |> select a = 1 }")
    assert info.value.line == 1


# -- CLI surface: errors render, never traceback ------------------------------


def test_query_file_error_renders_caret_to_stderr(tmp_path):
    bad = tmp_path / "bad.rq"
    bad.write_text("query { from nestedOrders |> select bogus = 1 }")
    proc = subprocess.run(
        [sys.executable, "-m", "repro", "run", "--query-file", str(bad), "--db", "Q1"],
        capture_output=True,
        text=True,
        cwd=REPO,
        env={**os.environ, "PYTHONPATH": "src"},
    )
    assert proc.returncode == 2
    assert "unknown attribute 'bogus'" in proc.stderr
    assert "^" in proc.stderr
    assert "Traceback" not in proc.stderr


# -- HTTP surface: 400 + position in the JSON body ----------------------------


@pytest.fixture(scope="module")
def server():
    service = ExplanationService(cache_size=4)
    service.register_database("Q1", get_scenario("Q1").make_db(2))
    server = make_server(service)
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    yield server
    server.shutdown()
    server.server_close()
    server.service.close()


def post(server, path, document):
    host, port = server.server_address[:2]
    document.setdefault("format", WIRE_VERSION)
    document.setdefault(
        "kind", "query-request" if path == "/v1/query" else "explain-request"
    )
    request = urllib.request.Request(
        f"http://{host}:{port}{path}",
        data=json.dumps(document).encode(),
        headers={"Content-Type": "application/json"},
        method="POST",
    )
    try:
        with urllib.request.urlopen(request, timeout=30) as response:
            return response.status, json.loads(response.read())
    except urllib.error.HTTPError as exc:
        return exc.code, json.loads(exc.read())


def test_http_parse_error_is_400_with_position(server):
    status, payload = post(
        server,
        "/v1/query",
        {"text": "query { from nestedOrders |> select bogus = 1 }", "database": "Q1"},
    )
    assert status == 400
    error = payload["error"]
    assert "unknown attribute 'bogus'" in error["message"]
    assert error["position"] == {"line": 1, "column": 30}


def test_http_unknown_table_is_400_with_position(server):
    status, payload = post(
        server, "/v1/query", {"text": "query { from Part }", "database": "Q1"}
    )
    assert status == 400
    assert payload["error"]["position"] == {"line": 1, "column": 9}


def test_http_explain_text_without_whynot_is_400(server):
    status, payload = post(
        server, "/v1/explain", {"text": "query { from nestedOrders }", "database": "Q1"}
    )
    assert status == 400
    assert "no whynot block" in payload["error"]["message"]


def test_http_truncated_text_is_400_not_500(server):
    status, payload = post(
        server, "/v1/query", {"text": "query { from nestedOrders |> ", "database": "Q1"}
    )
    assert status == 400
    assert "position" in payload["error"]


def test_http_structured_errors_have_no_position(server):
    # Non-language client errors keep the plain {type, message} shape.
    status, payload = post(server, "/v1/explain", {"scenario": "NoSuchScenario"})
    assert status == 400
    assert "position" not in payload["error"]
