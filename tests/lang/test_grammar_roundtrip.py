"""Grammar round-trip: ``parse(pretty(Q)) ≡ Q`` for scenarios and fuzz plans.

The full property lives in the fuzz oracle (``repro.fuzz.oracle`` with
``grammar=True``; CI runs ``python -m repro fuzz --text --cases 200``).
These tier-1 tests pin the same property on every registered paper
scenario and a fixed sample of fuzz-generated cases so a printer/parser
regression fails fast in the normal suite.
"""

import pytest

from repro.fuzz import FuzzConfig, generate_case
from repro.fuzz.oracle import check_case
from repro.lang import compile_program, pretty_program
from repro.scenarios import SCENARIOS, get_scenario
from repro.wire import op_to_json, value_to_json

#: Tier-1 sample of the fuzz space (the CI lang job sweeps 200 more).
FUZZ_SEED = 11
FUZZ_CASES = 40


@pytest.mark.parametrize("name", sorted(SCENARIOS))
def test_scenario_roundtrip_structural(name):
    """pretty → parse → lower reproduces each scenario's plan, NIP and alts."""
    scenario = get_scenario(name)
    db = scenario.make_db(scenario.default_scale)
    query, nip = scenario.make_query(), scenario.make_nip()
    text = pretty_program(
        query, nip=nip, alternatives=scenario.alternatives, name=name
    )
    lowered = compile_program(text, database=db)
    assert op_to_json(lowered.query.root) == op_to_json(query.root)
    assert value_to_json(lowered.nip) == value_to_json(nip)
    assert lowered.alternatives == list(scenario.alternatives)
    assert lowered.name == name


@pytest.mark.parametrize("name", sorted(SCENARIOS))
def test_scenario_roundtrip_evaluation(name):
    """The reparsed plan evaluates to the byte-identical result bag."""
    scenario = get_scenario(name)
    db = scenario.make_db(scenario.default_scale)
    query = scenario.make_query()
    text = pretty_program(query, nip=scenario.make_nip(), name=name)
    lowered = compile_program(text, database=db)
    assert lowered.query.evaluate(db) == query.evaluate(db)


def test_pretty_is_canonical_fixed_point():
    """pretty(parse(pretty(Q))) == pretty(Q) — printing is idempotent."""
    for name in sorted(SCENARIOS):
        scenario = get_scenario(name)
        text = pretty_program(
            scenario.make_query(),
            nip=scenario.make_nip(),
            alternatives=scenario.alternatives,
            name=name,
        )
        lowered = compile_program(text)
        again = pretty_program(
            lowered.query,
            nip=lowered.nip,
            alternatives=lowered.alternatives,
            name=lowered.name,
        )
        assert again == text, f"pretty not idempotent for {name}"


@pytest.mark.parametrize("index", range(FUZZ_CASES))
def test_fuzz_case_roundtrip(index):
    """Seeded fuzz plans+questions pass the oracle's grammar check."""
    case = generate_case(f"{FUZZ_SEED}:{index}", FuzzConfig(), questions=True)
    db = case.db_spec.build()
    question = None
    if case.nip is not None:
        from repro.whynot.question import WhyNotQuestion

        question = WhyNotQuestion(case.query, db, case.nip, name=case.name)
    report = check_case(
        db,
        case.query,
        question=question,
        partitions=(1,),
        backends=("serial",),
        optimize=(False,),
        engines=("row",),
        explain_grid=(),
        grammar=True,
    )
    grammar_divergences = [d for d in report.divergences if d.kind == "grammar"]
    assert not grammar_divergences, "\n".join(
        d.describe() for d in grammar_divergences
    )
