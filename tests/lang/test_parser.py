"""Unit tests for the .rq lexer, parser, pretty-printer and lowering."""

import math

import pytest

from repro.algebra.expressions import And, Arith, Attr, Cmp, Const, Contains, Not, Or
from repro.algebra.operators import (
    GroupAggregation,
    Join,
    Projection,
    RelationFlatten,
    RelationNesting,
    Selection,
    TableAccess,
)
from repro.lang import LangError, compile_program, parse_program, pretty_program, tokenize
from repro.lang.lexer import KEYWORDS
from repro.lang.lower import lower_program
from repro.lang.pretty import expr_text, pattern_text, string_literal
from repro.nested.values import Bag, Tup
from repro.whynot.placeholders import ANY, STAR, Cond, HasValue
from repro.wire import op_to_json


def lower(text):
    return lower_program(parse_program(text), source=text)


def roundtrip(text):
    """Parse → pretty → reparse; returns both lowered programs."""
    first = lower(text)
    printed = pretty_program(
        first.query, nip=first.nip, alternatives=first.alternatives, name=first.name
    )
    second = lower(printed)
    return first, second, printed


# -- lexer --------------------------------------------------------------------


def test_tokenize_positions_are_one_based():
    tokens = tokenize("query {\n  from t\n}")
    assert (tokens[0].line, tokens[0].column) == (1, 1)
    from_tok = next(t for t in tokens if t.value == "from")
    assert (from_tok.line, from_tok.column) == (2, 3)


def test_keywords_match_lower_and_upper_but_not_mixed():
    assert tokenize("whynot")[0].kind == "kw"
    assert tokenize("WHYNOT")[0].kind == "kw"
    assert tokenize("WhyNot")[0].kind == "ident"


def test_backquoted_identifier_can_collide_with_keyword():
    token = tokenize("`select`")[0]
    assert (token.kind, token.value) == ("ident", "select")


def test_comments_run_to_end_of_line():
    kinds = [t.kind for t in tokenize("from -- a comment\nx")]
    assert kinds == ["kw", "ident", "eof"]


def test_string_escapes_decode():
    assert tokenize(r'"a\nb\t\"\\"')[0].value == 'a\nb\t"\\'
    assert tokenize(r'"A\U0001F680"')[0].value == "A\U0001f680"


def test_unterminated_string_is_positioned():
    with pytest.raises(LangError) as info:
        tokenize('from x |> select a = "oops')
    assert (info.value.line, info.value.column) == (1, 22)


def test_float_and_int_lexing():
    values = [t.value for t in tokenize("1 2.5 1e3 7")[:4]]
    assert values == [1, 2.5, 1000.0, 7]
    assert isinstance(values[0], int) and isinstance(values[2], float)


# -- parser: stages and expressions -------------------------------------------


def test_minimal_pipeline_lowers_to_table_access():
    lowered = lower("query { from people }")
    root = lowered.query.root
    assert isinstance(root, TableAccess) and root.table == "people"
    assert lowered.nip is None and lowered.alternatives == []


def test_select_predicate_precedence():
    lowered = lower("query { from t |> select a = 1 or b = 2 and not c = 3 }")
    pred = lowered.query.root.pred
    assert isinstance(pred, Or)
    assert isinstance(pred.terms[1], And)
    assert isinstance(pred.terms[1].terms[1], Not)


def test_arithmetic_left_associativity_survives_roundtrip():
    first, second, _ = roundtrip("query { from t |> project [x = a - b - c] }")
    assert op_to_json(first.query.root) == op_to_json(second.query.root)
    (_, expr), = first.query.root.cols
    assert isinstance(expr, Arith) and isinstance(expr.left, Arith)


def test_parenthesized_right_associative_arith_is_preserved():
    first, second, printed = roundtrip("query { from t |> project [x = a - (b - c)] }")
    assert "(" in printed
    assert op_to_json(first.query.root) == op_to_json(second.query.root)
    (_, expr), = first.query.root.cols
    assert isinstance(expr.right, Arith)


def test_contains_and_is_null():
    lowered = lower('query { from t |> select "x" in name and a is null }')
    pred = lowered.query.root.pred
    contains = pred.terms[0]
    assert isinstance(contains, Contains)
    assert isinstance(contains.haystack, Attr) and contains.haystack.path == ("name",)
    assert contains.needle == Const("x")


def test_projection_path_shorthand():
    lowered = lower("query { from t |> project [a.b.c, out = a.b] }")
    cols = lowered.query.root.cols
    assert cols[0][0] == "c" and cols[0][1].path == ("a", "b", "c")
    assert cols[1][0] == "out" and cols[1][1].path == ("a", "b")


def test_join_with_all_clauses():
    lowered = lower(
        "query { from l |> join left ( from r |> distinct ) "
        'on a = b, c = d extra (x > 1) drop @"J" }'
    )
    join = lowered.query.root
    assert isinstance(join, Join) and join.how == "left"
    assert join.on == ((("a",), ("b",)), (("c",), ("d",)))
    assert join.drop_right_keys is True
    assert isinstance(join.extra, Cmp)
    assert join._label == "J"


def test_group_by_bare_key_is_single_attribute():
    lowered = lower("query { from t |> group by [a] agg [count(*) as n] }")
    group = lowered.query.root
    assert isinstance(group, GroupAggregation)
    assert group.key_specs == (("a", ("a",)),)


def test_group_by_renaming_key_pair():
    lowered = lower("query { from t |> group by [k = a.b] agg [sum(x) as s] }")
    assert lowered.query.root.key_specs == (("k", ("a", "b")),)


def test_flatten_and_nest_stages():
    lowered = lower(
        "query { from t |> flatten outer items as it |> nest bag [a, b] as grp }"
    )
    nest = lowered.query.root
    assert isinstance(nest, RelationNesting) and nest.target == "grp"
    flatten = nest.children[0]
    assert isinstance(flatten, RelationFlatten) and flatten.outer is True
    assert flatten.alias == "it"


def test_distinct_aggregate_spec():
    lowered = lower("query { from t |> group by [k] agg [sum(distinct x) as s] }")
    spec = lowered.query.root.aggs[0]
    assert spec.distinct is True


def test_labels_attach_to_any_stage_and_source():
    lowered = lower('query { from t @"src" |> distinct @"dd" }')
    assert lowered.query.root._label == "dd"
    assert lowered.query.root.children[0]._label == "src"


def test_query_name_forms():
    assert lower("query myname { from t }").name == "myname"
    assert lower('query "odd name" { from t }').name == "odd name"
    assert lower("query { from t }").name == ""


# -- why-not questions and alternatives ---------------------------------------


def test_whynot_patterns():
    lowered = lower(
        "query { from t } whynot {a: ?, b: [*], c: {d: 1}, e: < 5, f: has 2}"
    )
    nip = lowered.nip
    assert nip["a"] is ANY
    assert isinstance(nip["b"], Bag) and STAR in nip["b"]
    assert nip["c"] == Tup(d=1)
    assert nip["e"] == Cond("<", 5)
    assert nip["f"] == HasValue(2)


def test_alternative_groups_both_shapes():
    lowered = lower(
        "query { from t } whynot {a: ?} with alternatives {"
        " [t.a, t.b]\n t.c -> [t.d, t.e] }"
    )
    assert lowered.alternatives == [["t.a", "t.b"], ("t.c", ["t.d", "t.e"])]


def test_alternatives_without_whynot_is_an_error():
    with pytest.raises(LangError, match="requires a whynot block"):
        parse_program("query { from t } with alternatives { [a.b, c.d] }")


def test_duplicate_pattern_field_is_an_error():
    with pytest.raises(LangError, match="duplicate"):
        parse_program("query { from t } whynot {a: 1, a: 2}")


# -- pretty-printer details ---------------------------------------------------


def test_string_literal_escapes_are_lossless():
    for value in ["plain", 'quo"te', "back\\slash", "new\nline", "\udc80", "\U0001f680", ""]:
        literal = string_literal(value)
        assert tokenize(literal)[0].value == value


def test_keyword_identifiers_are_backquoted():
    first, second, printed = roundtrip("query { from t |> project [x = `select`] }")
    assert "`select`" in printed
    assert op_to_json(first.query.root) == op_to_json(second.query.root)


def test_every_keyword_roundtrips_as_identifier():
    for word in sorted(KEYWORDS):
        text = f"query {{ from t |> project [out = `{word}`] }}"
        first, second, _ = roundtrip(text)
        assert op_to_json(first.query.root) == op_to_json(second.query.root)


def test_float_literals_roundtrip_exactly():
    for value in (0.1, -0.0, 1e300, 5e-324, math.inf, -math.inf):
        text = f"query {{ from t |> select a = {pattern_text(value)} }}"
        lowered = lower(text)
        literal = lowered.query.root.pred.right.value
        assert literal == value
        assert math.copysign(1.0, literal) == math.copysign(1.0, value)


def test_nan_literal_roundtrips():
    lowered = lower("query { from t |> select a = nan }")
    assert math.isnan(lowered.query.root.pred.right.value)


def test_expr_text_parenthesizes_only_when_needed():
    lowered = lower("query { from t |> select (a = 1 or b = 2) and c = 3 }")
    printed = expr_text(lowered.query.root.pred)
    assert printed == "(a = 1 or b = 2) and c = 3"


def test_compile_program_one_step(person_db):
    lowered = compile_program("query { from person |> distinct }", database=person_db)
    assert len(lowered.query.evaluate(person_db)) > 0
