"""Replay of the hand-written ``.rq`` corpus in ``tests/lang/corpus/``.

These files exercise grammar corners the generated goldens do not reach
(backquoted keyword identifiers, escape sequences, set operations,
numeric edge literals, deeply nested subqueries).  Each file declares
its database in a ``-- db: NAME`` header comment and must:

* parse deterministically (two parses → identical plans),
* reach a pretty-printed canonical form in one step
  (``pretty(parse(x))`` is a fixed point of ``pretty ∘ parse``),
* compile and evaluate against the declared scenario database, with
  identical results before and after the round-trip.

New parser stress cases found by ``python -m repro fuzz --text`` land
here (the fuzz corpus writer emits ``.rq`` repros) so they stay fixed.
"""

import os

import pytest

from repro.lang import compile_program, parse_program, pretty_program
from repro.lang.lower import lower_program
from repro.scenarios import get_scenario
from repro.wire import op_to_json, value_to_json

CORPUS = os.path.join(os.path.dirname(__file__), "corpus")
FILES = sorted(entry for entry in os.listdir(CORPUS) if entry.endswith(".rq"))


def load(name):
    with open(os.path.join(CORPUS, name), encoding="utf-8") as fh:
        text = fh.read()
    header = text.splitlines()[0]
    assert header.startswith("-- db:"), f"{name} must declare '-- db: NAME' first"
    return text, header.split(":", 1)[1].strip()


def build_db(scenario_name):
    scenario = get_scenario(scenario_name)
    # TPC-H databases are big at default scale; 2 keeps the replay quick.
    scale = 2 if scenario_name.startswith("Q") else scenario.default_scale
    return scenario.make_db(scale)


def test_corpus_is_nonempty():
    assert len(FILES) >= 5


@pytest.mark.parametrize("name", FILES)
def test_parse_is_deterministic(name):
    text, _ = load(name)
    first = lower_program(parse_program(text), source=text)
    second = lower_program(parse_program(text), source=text)
    assert op_to_json(first.query.root) == op_to_json(second.query.root)
    if first.nip is not None:
        assert value_to_json(first.nip) == value_to_json(second.nip)
    assert first.alternatives == second.alternatives


@pytest.mark.parametrize("name", FILES)
def test_pretty_reaches_canonical_form_in_one_step(name):
    text, _ = load(name)
    lowered = lower_program(parse_program(text), source=text)
    canonical = pretty_program(
        lowered.query,
        nip=lowered.nip,
        alternatives=lowered.alternatives,
        name=lowered.name,
    )
    relowered = lower_program(parse_program(canonical), source=canonical)
    again = pretty_program(
        relowered.query,
        nip=relowered.nip,
        alternatives=relowered.alternatives,
        name=relowered.name,
    )
    assert again == canonical
    assert op_to_json(relowered.query.root) == op_to_json(lowered.query.root)


@pytest.mark.parametrize("name", FILES)
def test_compiles_and_evaluates_identically_after_roundtrip(name):
    text, scenario_name = load(name)
    db = build_db(scenario_name)
    lowered = compile_program(text, database=db)
    reference = lowered.query.evaluate(db)
    canonical = pretty_program(
        lowered.query, nip=lowered.nip, name=lowered.name
    )
    replayed = compile_program(canonical, database=db)
    assert replayed.query.evaluate(db) == reference
