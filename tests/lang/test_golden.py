"""Golden ``.rq`` files: byte-pinned and structurally verified.

``queries/<name>.rq`` is the canonical textual form of each paper
scenario, produced by ``tools/gen_golden_queries.py``.  These tests pin
the files two ways:

* **byte-pin** — the checked-in file must equal the generator's output
  exactly, so any printer/grammar change that shifts the canonical form
  shows up as a reviewable ``queries/`` diff;
* **structural** — parsing the file must reproduce the hand-built
  operator tree, NIP and alternatives of the scenario, so the goldens
  can never drift away from the Python definitions they mirror.
"""

import os
import sys

import pytest

from repro.lang import compile_program
from repro.scenarios import SCENARIOS, get_scenario
from repro.wire import op_to_json, value_to_json
from repro.wire.payloads import alternatives_to_json

REPO = os.path.join(os.path.dirname(__file__), "..", "..")
QUERIES_DIR = os.path.join(REPO, "queries")

sys.path.insert(0, os.path.join(REPO, "tools"))
from gen_golden_queries import render  # noqa: E402


def golden_path(name):
    return os.path.join(QUERIES_DIR, f"{name}.rq")


def read_golden(name):
    path = golden_path(name)
    assert os.path.exists(path), (
        f"missing golden file queries/{name}.rq — "
        "run: PYTHONPATH=src python tools/gen_golden_queries.py"
    )
    with open(path, encoding="utf-8") as fh:
        return fh.read()


def test_every_scenario_has_a_golden_and_no_strays():
    checked_in = {
        entry[:-3] for entry in os.listdir(QUERIES_DIR) if entry.endswith(".rq")
    }
    assert checked_in == set(SCENARIOS)


@pytest.mark.parametrize("name", sorted(SCENARIOS))
def test_golden_is_byte_identical_to_generator(name):
    assert read_golden(name) == render(name), (
        f"queries/{name}.rq is stale — "
        "run: PYTHONPATH=src python tools/gen_golden_queries.py"
    )


@pytest.mark.parametrize("name", sorted(SCENARIOS))
def test_golden_parses_to_the_hand_built_tree(name):
    scenario = get_scenario(name)
    db = scenario.make_db(scenario.default_scale)
    lowered = compile_program(read_golden(name), database=db)
    assert lowered.name == name
    assert op_to_json(lowered.query.root) == op_to_json(scenario.make_query().root)
    assert value_to_json(lowered.nip) == value_to_json(scenario.make_nip())
    assert alternatives_to_json(lowered.alternatives) == alternatives_to_json(
        scenario.alternatives
    )


@pytest.mark.parametrize("name", sorted(SCENARIOS))
def test_golden_evaluates_to_the_scenario_result(name):
    scenario = get_scenario(name)
    db = scenario.make_db(scenario.default_scale)
    lowered = compile_program(read_golden(name), database=db)
    assert lowered.query.evaluate(db) == scenario.make_query().evaluate(db)
