"""Validity tests for the dataset generators (planted facts + determinism)."""

import pytest

from repro.datasets.crime import CRIME_FACTS, crime_database
from repro.datasets.dblp import DBLP_FACTS, dblp_database
from repro.datasets.people import person_database, person_query
from repro.datasets.tpch import TPCH_FACTS, tpch_database
from repro.datasets.twitter import TWITTER_FACTS, twitter_database
from repro.nested.values import Bag, Tup, is_null


class TestPeople:
    def test_figure1a_rows_present(self):
        db = person_database()
        names = {t["name"] for t in db.relation("person")}
        assert {"Peter", "Sue"} <= names

    def test_scale_adds_noise(self):
        assert person_database(scale=10).size("person") == 12

    def test_deterministic(self):
        assert person_database(scale=5) .relation("person") == person_database(
            scale=5
        ).relation("person")

    def test_noise_never_reaches_result(self):
        db = person_database(scale=50)
        result = person_query().evaluate(db)
        assert result == person_query().evaluate(person_database(scale=0))


class TestDblp:
    def test_tables_present(self):
        db = dblp_database(scale=10)
        assert set(db.tables()) == {"I", "A", "P", "U"}

    def test_d1_plants(self):
        db = dblp_database(scale=10)
        proc = next(
            t for t in db.relation("P") if t["_key"] == DBLP_FACTS["d1_proc_key"]
        )
        assert proc["booktitle"] == "SIGMOD"
        assert "SIGMOD" in proc["title"]
        paper = next(
            t
            for t in db.relation("I")
            if t["title"]["_VALUE"] == DBLP_FACTS["d1_paper_title"]
        )
        assert DBLP_FACTS["d1_proc_key"] in paper["crossref"]

    def test_d2_bibtex_mostly_null(self):
        db = dblp_database(scale=100)
        articles = list(db.relation("A"))
        nulls = sum(1 for t in articles if is_null(t["title"]["_bibtex"]))
        assert nulls / len(articles) > 0.9

    def test_d5_homepage_in_note(self):
        db = dblp_database(scale=10)
        row = next(
            t
            for t in db.relation("U")
            if Tup(_VALUE=DBLP_FACTS["d5_author"]) in t["author"]
        )
        assert row["url"].is_empty()
        assert not row["note"].is_empty()


class TestTwitter:
    def test_planted_tweets(self):
        db = twitter_database(scale=10)
        by_id = {t["id"]: t for t in db.relation("T")}
        t1 = by_id[TWITTER_FACTS["t1_tweet_id"]]
        assert t1["entities"]["media"].is_empty()
        assert not t1["entities"]["urls"].is_empty()
        assert "LeBron" in t1["text"]

    def test_asd_retweets(self):
        db = twitter_database(scale=10)
        retweets = [
            t
            for t in db.relation("T")
            if t["retweeted_status"]["id"] == TWITTER_FACTS["asd_famous_id"]
        ]
        assert len(retweets) == 2
        counts = sorted(t["quote_count"] for t in retweets)
        assert counts[0] == 0 and counts[1] > 0

    def test_schema_has_alternative_statuses(self):
        db = twitter_database(scale=5)
        schema = db.schema("T")
        for attr in ("retweeted_status", "quoted_status", "pinned_status"):
            assert schema.has_field(attr)


class TestTpch:
    def test_all_shapes(self):
        db = tpch_database(scale=20)
        assert set(db.tables()) == {
            "customer",
            "nation",
            "nestedOrders",
            "orders",
            "lineitem",
            "customerNested",
        }

    def test_flat_matches_nested(self):
        db = tpch_database(scale=20)
        nested_items = sum(
            len(o["o_lineitems"]) for o in db.relation("nestedOrders")
        )
        assert nested_items == db.size("lineitem")
        assert db.size("orders") == db.size("nestedOrders")

    def test_q10_customer_only_returns(self):
        db = tpch_database(scale=40)
        items = [
            item
            for o in db.relation("nestedOrders")
            if o["o_custkey"] == TPCH_FACTS["q10_custkey"]
            for item in o["o_lineitems"]
        ]
        assert items and all(i["l_returnflag"] == "R" for i in items)

    def test_orderless_customer(self):
        db = tpch_database(scale=20)
        custkeys_with_orders = {o["o_custkey"] for o in db.relation("nestedOrders")}
        assert 61999 not in custkeys_with_orders
        nested = next(
            c for c in db.relation("customerNested") if c["c_custkey"] == 61999
        )
        assert nested["c_orders"].is_empty()

    def test_q1_tax_story(self):
        """On-time taxes avg > 0.05; overall avg < 0.05 (the Q1 plant)."""
        db = tpch_database(scale=60)
        items = list(db.relation("lineitem"))
        on_time = [i["l_tax"] for i in items if i["l_shipdate"] <= "1998-09-02"]
        all_tax = [i["l_tax"] for i in items]
        assert sum(on_time) / len(on_time) > 0.05
        assert sum(all_tax) / len(all_tax) < 0.05


class TestCrime:
    def test_planted_facts(self):
        db = crime_database(scale=10)
        roger = next(t for t in db.relation("P") if t["name"] == "Roger")
        assert roger["hair"] != "blue"
        witnesses = {t["w_name"] for t in db.relation("W")}
        assert "Kayla" not in witnesses  # C1: unregistered witness
        assert CRIME_FACTS["c3_witness"] in witnesses

    def test_c3_description_in_clothes(self):
        db = crime_database(scale=10)
        sighting = next(
            t
            for t in db.relation("S")
            if t["witness"] == CRIME_FACTS["c3_witness"]
        )
        assert sighting["clothes"] == "snow"
        assert sighting["hair"] != "snow"
