"""Wire-format round-trip guarantees (format v2) and the compat policy.

The heart of the contract: for every registered scenario, the query, NIP and
database survive ``to_json → json.dumps → json.loads → from_json`` with an
identical result bag and identical explanation sets.  Plus: adversarial
values round-trip exactly, operator labels are preserved (new in v2),
format-v1 documents still decode, and unknown versions are rejected.
"""

import json
import math

import pytest

from repro.algebra.expressions import col, lit
from repro.engine.metrics import ExecutionMetrics, OperatorMetrics
from repro.nested.values import NAN, NULL, Bag, Tup
from repro.scenarios import SCENARIOS, get_scenario
from repro.whynot.explain import explain
from repro.whynot.placeholders import ANY, STAR, Cond
from repro.wire import (
    SUPPORTED_VERSIONS,
    WIRE_VERSION,
    check_envelope,
    database_from_json,
    database_to_json,
    expr_from_json,
    expr_to_json,
    metrics_from_json,
    metrics_to_json,
    op_from_json,
    op_to_json,
    query_from_json,
    query_to_json,
    question_from_json,
    question_to_json,
    relation_from_json,
    relation_to_json,
    result_to_json,
    value_from_json,
    value_to_json,
)

#: Scale every scenario is round-tripped at (small but non-trivial data).
SCALE = 20


def _wire_trip(document):
    """to_json → actual JSON text → from_json, like the HTTP layer does."""
    return json.loads(json.dumps(document, ensure_ascii=True))


class TestValueRoundTrip:
    @pytest.mark.parametrize(
        "value",
        [
            NULL,
            ANY,
            STAR,
            Cond(">=", 2019),
            True,
            2,
            2.0,
            -0.0,
            "",
            "x\udc80y",
            "\U0001f680",
            Tup(city="NY", n=Bag([ANY, STAR])),
            Bag([]),
            Bag([NULL, NULL, Tup(a=1)]),
        ],
    )
    def test_exact(self, value):
        restored = value_from_json(_wire_trip(value_to_json(value)))
        assert restored == value
        assert type(restored) is type(value)

    def test_nan_restores_canonical_object(self):
        restored = value_from_json(_wire_trip(value_to_json(float("nan"))))
        assert restored is NAN

    def test_negative_zero_sign_survives(self):
        restored = value_from_json(_wire_trip(value_to_json(-0.0)))
        assert math.copysign(1.0, restored) == -1.0

    def test_int_float_bool_stay_distinct(self):
        for value in (2, 2.0, True):
            restored = value_from_json(_wire_trip(value_to_json(value)))
            assert type(restored) is type(value)


class TestOperatorLabels:
    def test_labels_survive_the_trip(self, person_db, running_query):
        restored = query_from_json(_wire_trip(query_to_json(running_query)))
        assert [op.label for op in restored.ops] == [
            op.label for op in running_query.ops
        ]
        assert restored.name == running_query.name

    def test_v1_documents_without_labels_decode(self, running_query):
        document = op_to_json(running_query.root)

        def strip(node):
            node.pop("label", None)
            for child in node.values():
                if isinstance(child, dict):
                    strip(child)

        strip(document)
        restored = op_from_json(document)
        assert restored.describe() != ""  # decodes to an unlabeled operator tree


class TestEnvelope:
    def test_supported_versions_accepted(self):
        for version in SUPPORTED_VERSIONS:
            check_envelope({"format": version})

    def test_unknown_version_rejected(self):
        with pytest.raises(ValueError, match="unsupported wire format"):
            check_envelope({"format": WIRE_VERSION + 1})

    def test_kind_mismatch_rejected(self):
        with pytest.raises(ValueError, match="expected a"):
            check_envelope({"format": WIRE_VERSION, "kind": "database"}, "question")

    def test_v1_documents_skip_the_kind_check(self):
        # v1 predates payload envelopes: no kind field, still accepted.
        check_envelope({"format": 1}, "question")


@pytest.mark.parametrize("name", sorted(SCENARIOS))
class TestScenarioRoundTrip:
    def test_result_bag_identical(self, name):
        question = get_scenario(name).question(SCALE)
        db = database_from_json(_wire_trip(database_to_json(question.db)))
        query = query_from_json(_wire_trip(query_to_json(question.query)))
        nip = value_from_json(_wire_trip(value_to_json(question.nip)))
        assert query.evaluate(db) == question.query.evaluate(question.db)
        assert nip == question.nip

    def test_explanation_sets_identical(self, name):
        scenario = get_scenario(name)
        question = scenario.question(SCALE)
        restored, alternatives = question_from_json(
            _wire_trip(question_to_json(question, alternatives=scenario.alternatives))
        )
        original = explain(question, alternatives=scenario.alternatives)
        roundtripped = explain(restored, alternatives=alternatives)
        assert [e.labels for e in roundtripped.explanations] == [
            e.labels for e in original.explanations
        ]
        assert roundtripped.n_sas == original.n_sas
        # The full result payloads agree modulo timings.
        doc_a, doc_b = result_to_json(original), result_to_json(roundtripped)
        doc_a["timings"] = doc_b["timings"] = None
        assert json.dumps(doc_a, sort_keys=True) == json.dumps(doc_b, sort_keys=True)


class TestRelationAndMetricsPayloads:
    def test_relation_preserves_multiplicities(self):
        bag = Bag([Tup(a=1), Tup(a=1), Tup(a=NULL)])
        assert relation_from_json(_wire_trip(relation_to_json(bag))) == bag

    def test_metrics_round_trip(self):
        metrics = ExecutionMetrics(wall_seconds=1.25, backend="process", workers=4)
        metrics.operators[3] = OperatorMetrics(
            op_id=3, label="σ3", rows_in=10, rows_out=4, shuffled_rows=10,
            partitions=3, tasks=3, wall_seconds=0.5, cpu_seconds=0.9, origins=(1, 2),
        )
        restored = metrics_from_json(_wire_trip(metrics_to_json(metrics)))
        assert restored.backend == "process" and restored.workers == 4
        assert restored.operators[3].origins == (1, 2)
        assert restored.operators[3].rows_out == 4

    def test_question_name_reference_needs_registry(self, person_db, running_query):
        from repro.whynot.question import WhyNotQuestion

        question = WhyNotQuestion(
            running_query, person_db, Tup(city="NY", nList=Bag([ANY, STAR]))
        )
        document = _wire_trip(question_to_json(question, database="people"))
        assert document["database"] == "people"
        with pytest.raises(ValueError, match="no registry"):
            question_from_json(document)
        restored, _ = question_from_json(
            document, resolve_database=lambda name: person_db
        )
        assert restored.query.evaluate(restored.db) == running_query.evaluate(person_db)


class TestServingStatsPayload:
    def _serving(self, **overrides):
        serving = {
            "mode": "sharded",
            "uptime_s": 12.5,
            "requests": 10,
            "completed": 7,
            "errors": 1,
            "rejected": 1,
            "coalesced": 1,
            "timeouts": 0,
            "qps": 0.56,
            "latency_ms": {"count": 7, "p50_ms": 30.0, "p95_ms": 90.0, "p99_ms": 90.0},
            "cache": {"hits": 3, "misses": 4, "size": 4, "hit_rate": 3 / 7},
        }
        serving.update(overrides)
        return serving

    def test_round_trip_with_workers(self):
        from repro.wire import serving_stats_from_json, serving_stats_to_json

        workers = [{"index": 0, "pid": 123, "alive": True, "restarts": 0}]
        document = _wire_trip(serving_stats_to_json(self._serving(), workers))
        check_envelope(document, "stats")
        serving, decoded_workers = serving_stats_from_json(document)
        assert serving == self._serving()
        assert decoded_workers == workers

    def test_workers_default_to_empty(self):
        from repro.wire import serving_stats_from_json, serving_stats_to_json

        document = serving_stats_to_json(self._serving(mode="inprocess"))
        serving, workers = serving_stats_from_json(document)
        assert serving["mode"] == "inprocess" and workers == []

    def test_missing_counter_fields_rejected_both_ways(self):
        from repro.wire import serving_stats_from_json, serving_stats_to_json

        incomplete = self._serving()
        del incomplete["qps"]
        with pytest.raises(ValueError, match="qps"):
            serving_stats_to_json(incomplete)
        document = serving_stats_to_json(self._serving())
        del document["serving"]["latency_ms"]
        with pytest.raises(ValueError, match="latency_ms"):
            serving_stats_from_json(document)
