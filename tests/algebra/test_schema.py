"""Unit tests for schema inference (the ``type(·)`` column of Table 1)."""

import pytest

from repro.algebra.aggregates import AggSpec
from repro.algebra.expressions import col, lit
from repro.algebra.operators import (
    GroupAggregation,
    InnerFlatten,
    Join,
    OuterFlatten,
    Projection,
    Query,
    RelationNesting,
    Selection,
    TableAccess,
    TupleFlatten,
    TupleNesting,
)
from repro.algebra.schema import expr_type, validate_expr
from repro.engine.database import Database
from repro.nested.types import BOOL, FLOAT, INT, STR, BagType, TupleType
from repro.nested.values import Bag, Tup


@pytest.fixture
def db():
    return Database(
        {
            "person": [
                Tup(
                    name="Sue",
                    age=33,
                    address2=Bag([Tup(city="NY", year=2018)]),
                    place=Tup(country="US"),
                )
            ]
        }
    )


def schema_of(plan, db):
    q = Query(plan)
    return q.infer_schemas(db)[q.root.op_id]


class TestExprType:
    def test_attr(self, db):
        schema = db.schema("person")
        assert expr_type(col("name"), schema) == STR
        assert expr_type(col("place.country"), schema) == STR

    def test_const(self, db):
        assert expr_type(lit(1), db.schema("person")) == INT

    def test_comparison_is_bool(self, db):
        assert expr_type(col("age").ge(1), db.schema("person")) == BOOL

    def test_arith(self, db):
        schema = db.schema("person")
        assert expr_type(col("age") + 1, schema) == INT
        assert expr_type(col("age") / 2, schema) == FLOAT

    def test_validate_expr(self, db):
        schema = db.schema("person")
        assert validate_expr(col("age").ge(1), schema)
        assert not validate_expr(col("bogus").ge(1), schema)


class TestOperatorSchemas:
    def test_selection_preserves(self, db):
        schema = schema_of(Selection(TableAccess("person"), col("age").ge(0)), db)
        assert schema == db.schema("person")

    def test_projection(self, db):
        schema = schema_of(Projection(TableAccess("person"), ["name", ("a2", col("age") * 2)]), db)
        assert schema.names == ("name", "a2")

    def test_inner_flatten_concat(self, db):
        schema = schema_of(InnerFlatten(TableAccess("person"), "address2"), db)
        assert schema.names[-2:] == ("city", "year")

    def test_outer_flatten_same_schema_as_inner(self, db):
        inner = schema_of(InnerFlatten(TableAccess("person"), "address2"), db)
        outer = schema_of(OuterFlatten(TableAccess("person"), "address2"), db)
        assert inner == outer

    def test_flatten_alias(self, db):
        schema = schema_of(InnerFlatten(TableAccess("person"), "address2", alias="addr"), db)
        assert schema.field("addr") == TupleType([("city", STR), ("year", INT)])

    def test_tuple_flatten_alias_replaces(self, db):
        schema = schema_of(
            TupleFlatten(TableAccess("person"), "place.country", alias="place"), db
        )
        assert schema.field("place") == STR

    def test_relation_nesting(self, db):
        flat = InnerFlatten(TableAccess("person"), "address2")
        proj = Projection(flat, ["name", "city"])
        schema = schema_of(RelationNesting(proj, ["name"], "nList"), db)
        assert schema == TupleType(
            [("city", STR), ("nList", BagType(TupleType([("name", STR)])))]
        )

    def test_tuple_nesting(self, db):
        proj = Projection(TableAccess("person"), ["name", "age"])
        schema = schema_of(TupleNesting(proj, ["age"], "packed"), db)
        assert schema.field("packed") == TupleType([("age", INT)])

    def test_join_concat(self, db):
        join = Join(
            Projection(TableAccess("person"), ["name"]),
            Projection(TableAccess("person"), [("nm", col("name")), "age"]),
            [("name", "nm")],
        )
        assert schema_of(join, db).names == ("name", "nm", "age")

    def test_group_aggregation(self, db):
        agg = GroupAggregation(
            TableAccess("person"), ["name"], [AggSpec("count", None, "n")]
        )
        schema = schema_of(agg, db)
        assert schema.names == ("name", "n")
        assert schema.field("n") == INT
