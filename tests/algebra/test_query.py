"""Unit tests for Query: operator identity, reparameterization, Δ (Def. 7/9)."""

import pytest

from repro.algebra.expressions import col
from repro.algebra.operators import (
    InnerFlatten,
    Projection,
    Query,
    RelationNesting,
    Selection,
    TableAccess,
)
from repro.datasets.people import person_database, person_query
from repro.nested.values import Bag, Tup


class TestIdentity:
    def test_ids_assigned_topologically(self, running_query):
        labels = [op.label for op in running_query.ops]
        assert labels == ["R1", "F", "σ", "π", "N"]
        assert [op.op_id for op in running_query.ops] == [1, 2, 3, 4, 5]

    def test_op_lookup(self, running_query):
        assert running_query.op(3).label == "σ"
        assert running_query.op_by_label("π").op_id == 4
        with pytest.raises(KeyError):
            running_query.op_by_label("nope")

    def test_default_labels_use_symbol_and_id(self):
        q = Query(Selection(TableAccess("person"), col("name").eq("Sue")))
        assert q.op(2).label == "σ2"


class TestReparameterize:
    def test_preserves_ids_and_structure(self, running_query):
        new = running_query.reparameterize({3: {"pred": col("year").ge(2018)}})
        assert [op.op_id for op in new.ops] == [op.op_id for op in running_query.ops]
        assert type(new.op(3)) is type(running_query.op(3))

    def test_changes_semantics(self, person_db, running_query):
        relaxed = running_query.reparameterize({3: {"pred": col("year").ge(2018)}})
        result = relaxed.evaluate(person_db)
        assert any(t["city"] == "NY" for t in result)

    def test_delta(self, running_query):
        new = running_query.reparameterize(
            {3: {"pred": col("year").ge(2018)}, 2: {"path": ("address1",)}}
        )
        assert running_query.delta(new) == frozenset({2, 3})

    def test_delta_of_identity_is_empty(self, running_query):
        clone = running_query.reparameterize({})
        assert running_query.delta(clone) == frozenset()

    def test_unknown_param_rejected(self, running_query):
        with pytest.raises(ValueError):
            running_query.op(3).with_params(bogus=1)

    def test_original_query_untouched(self, person_db, running_query):
        before = running_query.evaluate(person_db)
        running_query.reparameterize({3: {"pred": col("year").ge(0)}})
        assert running_query.evaluate(person_db) == before


class TestEvaluation:
    def test_running_example_result(self, person_db, running_query):
        # Figure 1b: a single tuple ⟨city: LA, nList: {{⟨name: Sue⟩}}⟩.
        result = running_query.evaluate(person_db)
        assert result == Bag([Tup(city="LA", nList=Bag([Tup(name="Sue")]))])

    def test_describe_mentions_all_ops(self, running_query):
        text = running_query.describe()
        for label in ["F", "σ", "π", "N"]:
            assert label in text

    def test_schemas_inferred_per_op(self, person_db, running_query):
        schemas = running_query.infer_schemas(person_db)
        assert schemas[4].names == ("name", "city")
        assert schemas[5].names == ("city", "nList")
