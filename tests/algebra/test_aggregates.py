"""Unit tests for the SQL aggregate functions."""

import itertools
import math

import pytest

from repro.algebra.aggregates import AGGREGATE_FUNCTIONS, AggSpec, apply_aggregate
from repro.algebra.expressions import col
from repro.nested.values import NAN, NULL, is_null


class TestApplyAggregate:
    def test_sum(self):
        assert apply_aggregate("sum", [1, 2, 3]) == 6

    def test_count_skips_nulls(self):
        assert apply_aggregate("count", [1, NULL, 3]) == 2

    def test_count_empty_is_zero(self):
        assert apply_aggregate("count", []) == 0

    def test_value_aggregates_on_empty_are_null(self):
        for func in ("sum", "avg", "min", "max"):
            assert is_null(apply_aggregate(func, []))
            assert is_null(apply_aggregate(func, [NULL, NULL]))

    def test_avg(self):
        assert apply_aggregate("avg", [1, 2, 3]) == 2

    def test_min_max(self):
        assert apply_aggregate("min", [3, 1, 2]) == 1
        assert apply_aggregate("max", [3, 1, 2]) == 3

    def test_distinct(self):
        assert apply_aggregate("count", [1, 1, 2], distinct=True) == 2
        assert apply_aggregate("sum", [1, 1, 2], distinct=True) == 3

    def test_unknown_function(self):
        with pytest.raises(ValueError):
            apply_aggregate("median", [1])


class TestNaNOrderIndependence:
    """Regression: fuzzer seed 4 — aggregates must not depend on input order.

    Python's ``min``/``max`` return whichever operand comes first once a NaN
    comparison is involved, so group results depended on how the partitioned
    executor happened to interleave a group's rows.  The fixed semantics
    (Postgres/Spark): NaN sorts *above* every other value — ``max`` returns
    NaN whenever one is present, ``min`` only when nothing else is left.
    """

    def test_min_max_with_nan_are_order_independent(self):
        values = [float("nan"), 1.0, 2.0]
        for perm in itertools.permutations(values):
            assert apply_aggregate("min", list(perm)) == 1.0
            assert math.isnan(apply_aggregate("max", list(perm)))

    def test_min_of_only_nans_is_nan(self):
        result = apply_aggregate("min", [float("nan"), float("nan")])
        assert result is NAN  # canonical object, not just any NaN

    def test_sum_avg_with_nan_return_canonical_nan(self):
        for func in ("sum", "avg"):
            for perm in itertools.permutations([float("nan"), 1.0, 2.0]):
                assert apply_aggregate(func, list(perm)) is NAN

    def test_distinct_treats_nan_as_one_value(self):
        # With the canonical-NaN invariant, DISTINCT over NaNs counts one
        # value (SQL semantics) regardless of how rows were partitioned.
        assert apply_aggregate("count", [NAN, NAN, 1.0], distinct=True) == 2

    def test_mixed_numeric_tower_distinct_is_order_independent(self):
        # 2 == 2.0 collapse under DISTINCT (True == 1 stays distinct from
        # both), so the distinct sum is 3 no matter how rows interleave.
        for perm in itertools.permutations([2, 2.0, True]):
            assert apply_aggregate("sum", list(perm), distinct=True) == 3
            assert apply_aggregate("count", list(perm), distinct=True) == 2


class TestAggSpec:
    def test_count_star(self):
        spec = AggSpec("count", None, "n")
        assert spec.label() == "count(*)→n"

    def test_value_aggregate_requires_expr(self):
        with pytest.raises(ValueError):
            AggSpec("sum", None, "s")

    def test_unknown_function_rejected(self):
        with pytest.raises(ValueError):
            AggSpec("median", col("a"), "m")

    def test_distinct_label(self):
        assert "distinct" in AggSpec("count", col("a"), "n", distinct=True).label()

    def test_all_functions_supported(self):
        for func in AGGREGATE_FUNCTIONS:
            AggSpec(func, col("a"), "out")
