"""Unit tests for the SQL aggregate functions."""

import pytest

from repro.algebra.aggregates import AGGREGATE_FUNCTIONS, AggSpec, apply_aggregate
from repro.algebra.expressions import col
from repro.nested.values import NULL, is_null


class TestApplyAggregate:
    def test_sum(self):
        assert apply_aggregate("sum", [1, 2, 3]) == 6

    def test_count_skips_nulls(self):
        assert apply_aggregate("count", [1, NULL, 3]) == 2

    def test_count_empty_is_zero(self):
        assert apply_aggregate("count", []) == 0

    def test_value_aggregates_on_empty_are_null(self):
        for func in ("sum", "avg", "min", "max"):
            assert is_null(apply_aggregate(func, []))
            assert is_null(apply_aggregate(func, [NULL, NULL]))

    def test_avg(self):
        assert apply_aggregate("avg", [1, 2, 3]) == 2

    def test_min_max(self):
        assert apply_aggregate("min", [3, 1, 2]) == 1
        assert apply_aggregate("max", [3, 1, 2]) == 3

    def test_distinct(self):
        assert apply_aggregate("count", [1, 1, 2], distinct=True) == 2
        assert apply_aggregate("sum", [1, 1, 2], distinct=True) == 3

    def test_unknown_function(self):
        with pytest.raises(ValueError):
            apply_aggregate("median", [1])


class TestAggSpec:
    def test_count_star(self):
        spec = AggSpec("count", None, "n")
        assert spec.label() == "count(*)→n"

    def test_value_aggregate_requires_expr(self):
        with pytest.raises(ValueError):
            AggSpec("sum", None, "s")

    def test_unknown_function_rejected(self):
        with pytest.raises(ValueError):
            AggSpec("median", col("a"), "m")

    def test_distinct_label(self):
        assert "distinct" in AggSpec("count", col("a"), "n", distinct=True).label()

    def test_all_functions_supported(self):
        for func in AGGREGATE_FUNCTIONS:
            AggSpec(func, col("a"), "out")
