"""Unit tests for NRAB operator semantics (paper Table 1)."""

import pytest

from repro.algebra.aggregates import AggSpec
from repro.algebra.expressions import col, lit
from repro.algebra.operators import (
    BagDestroy,
    CartesianProduct,
    Deduplication,
    Difference,
    GroupAggregation,
    InnerFlatten,
    Join,
    Map,
    NestedAggregation,
    OuterFlatten,
    Projection,
    Query,
    RelationNesting,
    Renaming,
    Selection,
    TableAccess,
    TupleFlatten,
    TupleNesting,
    Union,
)
from repro.engine.database import Database
from repro.nested.values import NULL, Bag, Tup, is_null


def run(plan, db):
    return Query(plan).evaluate(db)


@pytest.fixture
def db():
    return Database(
        {
            "R": [
                Tup(a=1, b="x", nested=Bag([Tup(k=1), Tup(k=2)])),
                Tup(a=1, b="x", nested=Bag([Tup(k=1), Tup(k=2)])),
                Tup(a=2, b="y", nested=Bag()),
            ],
            "S": [Tup(c=1, d="l"), Tup(c=3, d="m")],
        }
    )


class TestTableAccess:
    def test_reads_with_multiplicity(self, db):
        result = run(TableAccess("R"), db)
        assert len(result) == 3
        assert result.mult(Tup(a=1, b="x", nested=Bag([Tup(k=1), Tup(k=2)]))) == 2


class TestProjection:
    def test_projects_and_merges_duplicates(self, db):
        result = run(Projection(TableAccess("R"), ["b"]), db)
        assert result.mult(Tup(b="x")) == 2
        assert result.mult(Tup(b="y")) == 1

    def test_computed_column(self, db):
        result = run(Projection(TableAccess("R"), [("twice", col("a") * 2)]), db)
        assert result.mult(Tup(twice=2)) == 2

    def test_dotted_path_shorthand(self):
        db = Database({"T": [Tup(u=Tup(name="sue"))]})
        result = run(Projection(TableAccess("T"), ["u.name"]), db)
        assert result == Bag([Tup(name="sue")])

    def test_duplicate_output_names_rejected(self, db):
        with pytest.raises(ValueError):
            Projection(TableAccess("R"), ["a", ("a", col("b"))])


class TestRenaming:
    def test_partial_rename(self, db):
        result = run(Renaming(TableAccess("S"), [("key", "c")]), db)
        assert Tup(key=1, d="l") in result


class TestSelection:
    def test_filters(self, db):
        result = run(Selection(TableAccess("R"), col("a").eq(1)), db)
        assert len(result) == 2

    def test_null_semantics(self):
        db = Database({"T": [Tup(a=NULL), Tup(a=1)]})
        result = run(Selection(TableAccess("T"), col("a").ge(0)), db)
        assert result == Bag([Tup(a=1)])


class TestJoin:
    def test_inner_multiplicities(self):
        db = Database(
            {"L": [Tup(k=1)] * 2, "R2": [Tup(j=1, v="a")] * 3 + [Tup(j=2, v="b")]}
        )
        result = run(Join(TableAccess("L"), TableAccess("R2"), [("k", "j")]), db)
        assert result.mult(Tup(k=1, j=1, v="a")) == 6  # 2 × 3 (Table 1: k·l)

    def test_left_outer_pads_nulls(self, db):
        result = run(
            Join(TableAccess("S"), TableAccess("R"), [("c", "a")], how="left"), db
        )
        padded = [t for t in result if is_null(t["a"])]
        assert len(padded) == 1 and padded[0]["c"] == 3

    def test_right_outer(self, db):
        result = run(
            Join(TableAccess("S"), TableAccess("R"), [("c", "a")], how="right"), db
        )
        padded = [t for t in result if is_null(t["c"])]
        assert {t["a"] for t in padded} == {2}

    def test_full_outer(self, db):
        result = run(
            Join(TableAccess("S"), TableAccess("R"), [("c", "a")], how="full"), db
        )
        assert any(is_null(t["a"]) for t in result)
        assert any(is_null(t["c"]) for t in result)

    def test_null_keys_never_match(self):
        db = Database({"L": [Tup(k=NULL)], "R2": [Tup(j=NULL, v=1)]})
        result = run(Join(TableAccess("L"), TableAccess("R2"), [("k", "j")]), db)
        assert result.is_empty()

    def test_residual_predicate(self, db):
        result = run(
            Join(
                TableAccess("S"),
                TableAccess("R"),
                [("c", "a")],
                extra=col("d").eq("l"),
            ),
            db,
        )
        assert all(t["d"] == "l" for t in result)

    def test_drop_right_keys(self):
        db = Database({"L": [Tup(k=1, x="a")], "R2": [Tup(k=1, y="b")]})
        result = run(
            Join(TableAccess("L"), TableAccess("R2"), [("k", "k")], drop_right_keys=True),
            db,
        )
        assert result == Bag([Tup(k=1, x="a", y="b")])

    def test_bad_join_type_rejected(self, db):
        with pytest.raises(ValueError):
            Join(TableAccess("S"), TableAccess("R"), [("c", "a")], how="semi")


class TestFlatten:
    def test_inner_flatten_concat_fields(self, db):
        result = run(InnerFlatten(TableAccess("R"), "nested"), db)
        # Each of the two duplicate rows expands into its 2 nested tuples;
        # the empty-bag row is dropped (inner semantics).
        assert len(result) == 4
        assert result.mult(Tup(a=1, b="x", nested=Bag([Tup(k=1), Tup(k=2)]), k=1)) == 2

    def test_inner_flatten_drops_empty(self, db):
        result = run(InnerFlatten(TableAccess("R"), "nested"), db)
        assert not any(t["a"] == 2 for t in result)

    def test_outer_flatten_pads(self, db):
        result = run(OuterFlatten(TableAccess("R"), "nested"), db)
        padded = [t for t in result if t["a"] == 2]
        assert len(padded) == 1 and is_null(padded[0]["k"])

    def test_flatten_null_bag_like_empty(self):
        db = Database(
            {"T": [Tup(a=1, nested=NULL), Tup(a=2, nested=Bag([Tup(k=9)]))]}
        )
        inner = run(InnerFlatten(TableAccess("T"), "nested"), db)
        assert len(inner) == 1
        outer = run(OuterFlatten(TableAccess("T"), "nested"), db)
        assert len(outer) == 2

    def test_flatten_with_alias(self, db):
        result = run(InnerFlatten(TableAccess("R"), "nested", alias="item"), db)
        assert any(t["item"] == Tup(k=1) for t in result)

    def test_flatten_primitive_bag_requires_alias(self):
        db = Database({"T": [Tup(a=1, tags=Bag(["x"]))]})
        with pytest.raises(TypeError):
            run(InnerFlatten(TableAccess("T"), "tags"), db)
        result = run(InnerFlatten(TableAccess("T"), "tags", alias="tag"), db)
        assert result == Bag([Tup(a=1, tags=Bag(["x"]), tag="x")])


class TestTupleFlatten:
    def test_concat_fields(self):
        db = Database({"T": [Tup(a=1, info=Tup(x=2, y=3))]})
        result = run(TupleFlatten(TableAccess("T"), "info"), db)
        assert result == Bag([Tup(a=1, info=Tup(x=2, y=3), x=2, y=3)])

    def test_alias_extracts_field(self):
        db = Database({"T": [Tup(a=1, info=Tup(x=2))]})
        result = run(TupleFlatten(TableAccess("T"), "info.x", alias="x_val"), db)
        assert result == Bag([Tup(a=1, info=Tup(x=2), x_val=2)])

    def test_alias_replaces_existing_column(self):
        # Spark's withColumn semantics, used by the DBLP scenarios.
        db = Database({"T": [Tup(title=Tup(text="t", bibtex=NULL))]})
        result = run(TupleFlatten(TableAccess("T"), "title.text", alias="title"), db)
        assert result == Bag([Tup(title="t")])

    def test_null_struct_pads(self):
        db = Database(
            {"T": [Tup(a=1, info=Tup(x=2)), Tup(a=2, info=NULL)]}
        )
        result = run(TupleFlatten(TableAccess("T"), "info"), db)
        padded = [t for t in result if t["a"] == 2]
        assert is_null(padded[0]["x"])


class TestNesting:
    def test_tuple_nesting(self, db):
        result = run(TupleNesting(TableAccess("S"), ["c"], "packed"), db)
        assert Tup(d="l", packed=Tup(c=1)) in result

    def test_relation_nesting_groups(self):
        db = Database(
            {"T": [Tup(name="a", city="x"), Tup(name="b", city="x"), Tup(name="a", city="y")]}
        )
        result = run(RelationNesting(TableAccess("T"), ["name"], "names"), db)
        assert result.mult(Tup(city="x", names=Bag([Tup(name="a"), Tup(name="b")]))) == 1
        assert result.mult(Tup(city="y", names=Bag([Tup(name="a")]))) == 1

    def test_relation_nesting_multiplicity_one(self):
        db = Database({"T": [Tup(name="a", city="x")] * 3})
        result = run(RelationNesting(TableAccess("T"), ["name"], "names"), db)
        assert len(result) == 1
        (row,) = result
        assert row["names"].mult(Tup(name="a")) == 3


class TestAggregation:
    def test_nested_count(self, db):
        result = run(NestedAggregation(TableAccess("R"), "count", "nested", "cnt"), db)
        assert any(t["cnt"] == 2 for t in result)
        assert any(t["cnt"] == 0 for t in result)

    def test_nested_sum_unwraps_unary_tuples(self):
        db = Database({"T": [Tup(vals=Bag([Tup(v=1), Tup(v=2)]))]})
        result = run(NestedAggregation(TableAccess("T"), "sum", "vals", "total"), db)
        (row,) = result
        assert row["total"] == 3

    def test_nested_agg_field(self):
        db = Database({"T": [Tup(vals=Bag([Tup(v=1, w=5), Tup(v=2, w=7)]))]})
        result = run(
            NestedAggregation(TableAccess("T"), "max", "vals", "m", field="w"), db
        )
        (row,) = result
        assert row["m"] == 7

    def test_group_by(self, db):
        result = run(
            GroupAggregation(
                TableAccess("R"), ["b"], [AggSpec("count", None, "n"), AggSpec("sum", col("a"), "s")]
            ),
            db,
        )
        assert result.mult(Tup(b="x", n=2, s=2)) == 1
        assert result.mult(Tup(b="y", n=1, s=2)) == 1

    def test_global_aggregate_on_empty_input(self):
        db = Database({"T": []}, schemas={"T": __import__("repro.nested.types", fromlist=["TupleType"]).TupleType([("a", __import__("repro.nested.types", fromlist=["INT"]).INT)])})
        result = run(
            GroupAggregation(TableAccess("T"), [], [AggSpec("count", None, "n"), AggSpec("sum", col("a"), "s")]),
            db,
        )
        (row,) = result
        assert row["n"] == 0 and is_null(row["s"])

    def test_count_distinct(self):
        db = Database({"T": [Tup(a=1), Tup(a=1), Tup(a=2)]})
        result = run(
            GroupAggregation(
                TableAccess("T"), [], [AggSpec("count", col("a"), "n", distinct=True)]
            ),
            db,
        )
        (row,) = result
        assert row["n"] == 2


class TestSetOperators:
    def test_union_adds(self, db):
        result = run(Union(TableAccess("S"), TableAccess("S")), db)
        assert result.mult(Tup(c=1, d="l")) == 2

    def test_difference(self):
        db = Database({"A": [Tup(x=1)] * 3 + [Tup(x=2)], "B": [Tup(x=1)]})
        result = run(Difference(TableAccess("A"), TableAccess("B")), db)
        assert result.mult(Tup(x=1)) == 2
        assert result.mult(Tup(x=2)) == 1

    def test_deduplication(self, db):
        result = run(Deduplication(TableAccess("R")), db)
        assert len(result) == 2

    def test_cartesian_product(self, db):
        renamed = Renaming(TableAccess("S"), [("c2", "c"), ("d2", "d")])
        result = run(CartesianProduct(TableAccess("S"), renamed), db)
        assert len(result) == 4

    def test_cartesian_product_name_clash_rejected(self, db):
        with pytest.raises(ValueError):
            run(CartesianProduct(TableAccess("S"), TableAccess("S")), db)


class TestMapAndBagDestroy:
    def test_map(self, db):
        result = run(
            Map(TableAccess("S"), lambda t: Tup(c=t["c"] * 10, d=t["d"])), db
        )
        assert Tup(c=10, d="l") in result

    def test_bag_destroy(self):
        db = Database({"T": [Tup(inner=Bag([Tup(v=1), Tup(v=2)])), Tup(inner=Bag([Tup(v=1)]))]})
        result = run(BagDestroy(TableAccess("T"), "inner"), db)
        assert result.mult(Tup(v=1)) == 2
        assert result.mult(Tup(v=2)) == 1
