"""Unit tests for the expression/condition language."""

import pytest

from repro.algebra.expressions import (
    And,
    Arith,
    Attr,
    Cmp,
    Const,
    Contains,
    IsNull,
    Not,
    Or,
    col,
    lit,
)
from repro.nested.values import NULL, Bag, Tup, is_null


ROW = Tup(a=5, b="hello world", c=NULL, nested=Tup(x=3), tags=Bag(["x", "y"]))


class TestAttr:
    def test_eval(self):
        assert Attr("a").eval(ROW) == 5

    def test_eval_path(self):
        assert Attr("nested.x").eval(ROW) == 3

    def test_map_attrs(self):
        rewritten = Attr("a").map_attrs(lambda p: ("b",))
        assert rewritten == Attr("b")

    def test_repr(self):
        assert repr(Attr("nested.x")) == "nested.x"


class TestCmp:
    def test_all_operators(self):
        assert col("a").eq(5).eval(ROW)
        assert col("a").ne(4).eval(ROW)
        assert col("a").lt(6).eval(ROW)
        assert col("a").le(5).eval(ROW)
        assert col("a").gt(4).eval(ROW)
        assert col("a").ge(5).eval(ROW)

    def test_null_comparisons_are_false(self):
        assert not col("c").eq(NULL).eval(ROW)
        assert not col("c").ne(5).eval(ROW)
        assert not col("c").lt(5).eval(ROW)

    def test_type_mismatch_is_false(self):
        assert not col("a").lt("zzz").eval(ROW)

    def test_unknown_operator_rejected(self):
        with pytest.raises(ValueError):
            Cmp("<>", col("a"), lit(1))

    def test_with_op(self):
        c = col("a").ge(5)
        assert c.with_op("<").eval(ROW) is False

    def test_attr_paths_lists_references(self):
        pred = And(col("a").ge(1), col("nested.x").lt(col("a")))
        assert pred.attr_paths() == [("a",), ("nested", "x"), ("a",)]


class TestBoolean:
    def test_and_or_not(self):
        assert And(col("a").ge(1), col("a").le(9)).eval(ROW)
        assert Or(col("a").eq(0), col("a").eq(5)).eval(ROW)
        assert Not(col("a").eq(0)).eval(ROW)

    def test_and_flattens(self):
        inner = And(col("a").eq(5), col("a").ge(0))
        outer = And(inner, col("a").le(9))
        assert len(outer.terms) == 3

    def test_operator_overloads(self):
        pred = (col("a").ge(1)) & (col("a").le(9)) | ~col("a").eq(5)
        assert isinstance(pred, Or)
        assert pred.eval(ROW)

    def test_between_sugar(self):
        assert col("a").between(1, 9).eval(ROW)
        assert not col("a").between(6, 9).eval(ROW)


class TestArith:
    def test_basic(self):
        assert (col("a") + 1).eval(ROW) == 6
        assert (col("a") * 2).eval(ROW) == 10
        assert (col("a") - 3).eval(ROW) == 2
        assert (col("a") / 2).eval(ROW) == 2.5

    def test_reflected(self):
        assert (1 - col("a") * 0).eval(ROW) == 1

    def test_null_absorbing(self):
        assert is_null((col("c") + 1).eval(ROW))

    def test_composition(self):
        # TPC-H disc_price pattern: extendedprice * (1 - discount)
        expr = col("a") * (lit(1) - col("nested.x"))
        assert expr.eval(ROW) == 5 * (1 - 3)


class TestContains:
    def test_substring(self):
        assert col("b").contains("world").eval(ROW)
        assert not col("b").contains("mars").eval(ROW)

    def test_bag_membership(self):
        assert col("tags").contains("x").eval(ROW)
        assert not col("tags").contains("z").eval(ROW)

    def test_null_haystack(self):
        assert not col("c").contains("x").eval(ROW)

    def test_not_contains(self):
        assert Not(col("b").contains("mars")).eval(ROW)


class TestIsNull:
    def test_is_null(self):
        assert IsNull(col("c")).eval(ROW)
        assert not IsNull(col("a")).eval(ROW)


class TestStructuralEquality:
    def test_equal_expressions(self):
        assert col("a").ge(5) == col("a").ge(5)
        assert col("a").ge(5) != col("a").ge(6)
        assert hash(col("a").ge(5)) == hash(col("a").ge(5))

    def test_map_attrs_rebuilds_deeply(self):
        pred = And(col("x").eq(1), Or(col("y").lt(2), Not(col("x").gt(0))))
        rewritten = pred.map_attrs(lambda p: ("z",) if p == ("x",) else p)
        assert rewritten.attr_paths() == [("z",), ("y",), ("z",)]


class TestCompile:
    """Expr.compile must agree with the interpreted eval on every input."""

    SAMPLE_EXPRS = [
        col("a"),
        lit(42),
        col("a").ge(5),
        col("a").eq(10) & col("b").contains("hello"),
        col("a").lt(3) | col("a").gt(9),
        Not(col("b").contains("mars")),
        col("a") + 2,
        (col("a") * 2 - 1) / 3,
        col("c").is_null(),
        col("a").between(5, 15),
        col("b").contains(lit("world")),
        col("tags").contains("x"),
    ]

    def test_compiled_agrees_with_eval(self):
        rows = [
            ROW,
            Tup(a=2, b="mars rover", c=1, tags=Bag(["z"])),
            Tup(a=NULL, b=NULL, c=NULL, tags=NULL),
        ]
        for expr in self.SAMPLE_EXPRS:
            fn = expr.compile()
            for row in rows:
                assert fn(row) == expr.eval(row), f"{expr!r} diverges on {row!r}"

    def test_compiled_is_cached(self):
        expr = col("a").ge(5)
        assert expr.compile() is expr.compile()

    def test_nested_path_compiles(self):
        nested = Tup(outer=Tup(inner=7), other=1)
        expr = col("outer.inner")
        assert expr.compile()(nested) == 7 == expr.eval(nested)

    def test_compiled_null_path_navigation(self):
        nested = Tup(outer=NULL, other=1)
        expr = col("outer.inner").is_null()
        assert expr.compile()(nested) is True
