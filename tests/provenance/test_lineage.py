"""Tests for lineage capture (why-provenance of existing answers)."""

import pytest

from repro.algebra.aggregates import AggSpec
from repro.algebra.expressions import col
from repro.algebra.operators import (
    GroupAggregation,
    InnerFlatten,
    Join,
    Projection,
    Query,
    Selection,
    TableAccess,
)
from repro.engine.database import Database
from repro.nested.values import Bag, Tup
from repro.provenance import lineage_execute, why_provenance


class TestResultEquivalence:
    def test_running_example(self, person_db, running_query):
        run = lineage_execute(running_query, person_db)
        assert run.result() == running_query.evaluate(person_db)

    def test_join_query(self):
        db = Database({"L": [Tup(k=1, x="a"), Tup(k=2, x="b")], "R": [Tup(j=1, y="c")]})
        q = Query(Join(TableAccess("L"), TableAccess("R"), [("k", "j")], how="left"))
        run = lineage_execute(q, db)
        assert run.result() == q.evaluate(db)

    def test_aggregation_query(self):
        db = Database({"T": [Tup(g="x", v=1), Tup(g="x", v=2), Tup(g="y", v=3)]})
        q = Query(GroupAggregation(TableAccess("T"), ["g"], [AggSpec("sum", col("v"), "s")]))
        run = lineage_execute(q, db)
        assert run.result() == q.evaluate(db)


class TestWhyProvenance:
    def test_running_example_lineage_is_sue(self, person_db, running_query):
        out = Tup(city="LA", nList=Bag([Tup(name="Sue")]))
        lineage = why_provenance(running_query, person_db, out)
        assert len(lineage["person"]) == 1
        assert lineage["person"][0]["name"] == "Sue"

    def test_aggregation_lineage_covers_group(self):
        db = Database({"T": [Tup(g="x", v=1), Tup(g="x", v=2), Tup(g="y", v=3)]})
        q = Query(GroupAggregation(TableAccess("T"), ["g"], [AggSpec("sum", col("v"), "s")]))
        lineage = why_provenance(q, db, Tup(g="x", s=3))
        assert sorted(t["v"] for t in lineage["T"]) == [1, 2]

    def test_join_lineage_covers_both_sides(self):
        db = Database({"L": [Tup(k=1, x="a")], "R": [Tup(j=1, y="c")]})
        q = Query(Join(TableAccess("L"), TableAccess("R"), [("k", "j")]))
        lineage = q and why_provenance(q, db, Tup(k=1, x="a", j=1, y="c"))
        assert lineage["L"] == [Tup(k=1, x="a")]
        assert lineage["R"] == [Tup(j=1, y="c")]

    def test_absent_tuple_has_empty_lineage(self, person_db, running_query):
        lineage = why_provenance(
            running_query, person_db, Tup(city="NY", nList=Bag([]))
        )
        assert lineage["person"] == []
