"""Tour of the scenario factory and explanation summarization (docs/SCENARIOS.md).

Generates seeded SF-10 databases for both factory families, proves their
closed-form cardinality invariants against the materialized data, answers
the planted why-not question, and rolls the explanations up into
concept-level summaries — plain and with the example ontology.

Run:  PYTHONPATH=src python examples/scenario_factory_tour.py   (from the repository root)
"""

import json
from pathlib import Path

from repro.factory import FAMILIES, make_bundle
from repro.whynot.explain import explain
from repro.whynot.summarize import ConceptHierarchy, attach_summaries

REPO_ROOT = Path(__file__).resolve().parents[1]
SF = 10


def main() -> None:
    # -- 1. seeded SF-10 generation with provable invariants ------------------
    bundles = {}
    for family in sorted(FAMILIES):
        bundle = make_bundle(family, SF)
        observed = bundle.check()  # asserts every closed-form prediction
        bundles[family] = bundle
        rows = {k: v for k, v in observed.items() if k != "result_rows"}
        print(f"{family} @ SF {SF} (seed {bundle.seed}): {rows}")
        print(f"  |Q(D)| = {observed['result_rows']}  (exactly as predicted)")

    # -- 2. the planted why-not story -----------------------------------------
    bundle = bundles["social"]
    question = bundle.question()  # Definition-5 validated
    result = explain(question, alternatives=bundle.alternatives)
    print(f"\nwhy is the fan's tweet missing from {bundle.name}?")
    for e in result.explanations:
        print(f"  {e.rank}. {{{', '.join(sorted(e.labels))}}} "
              f"side effects [{e.lb:g}, {e.ub:g}]")
    assert frozenset(next(iter(result.explanations)).labels) == bundle.gold

    # -- 3. summaries: exact concept-level rollups ----------------------------
    summaries = attach_summaries(result, max_summaries=8)
    print("\nstructural summaries (no ontology):")
    for s in summaries:
        print(f"  {s.describe()}")
    assert sum(s.count for s in summaries) == len(result.explanations)

    hierarchy = ConceptHierarchy.from_json(
        json.loads(
            (REPO_ROOT / "examples" / "hierarchies" / "social_concepts.json")
            .read_text()
        )
    )
    summaries = attach_summaries(result, hierarchy, max_summaries=1)
    print(f"\nwith {hierarchy.name!r} at budget 1 (maximal generalization):")
    for s in summaries:
        print(f"  {s.describe()}")

    print("\nOK — see docs/SCENARIOS.md for the factory and summarizer contract")


if __name__ == "__main__":
    main()
