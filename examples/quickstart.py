"""Quickstart: the paper's running example end-to-end (Figures 1–7).

Builds the person/address database, runs the city query, poses the why-not
question "why is NY missing?", and prints the explanations — including the
schema-alternative one ({F, σ}) that lineage-based tools cannot find.

Run:  PYTHONPATH=src python examples/quickstart.py   (from the repository root)
"""

from repro import ANY, STAR, Bag, Database, Session, Tup, WhyNotQuestion, col, explain, lit
from repro.nested.pretty import print_relation


def main() -> None:
    # -- the data of Figure 1a ------------------------------------------------
    db = Database(
        {
            "person": [
                {
                    "name": "Peter",
                    "address1": [
                        {"city": "NY", "year": 2010},
                        {"city": "LA", "year": 2019},
                        {"city": "LV", "year": 2017},
                    ],
                    "address2": [
                        {"city": "LA", "year": 2010},
                        {"city": "SF", "year": 2018},
                    ],
                },
                {
                    "name": "Sue",
                    "address1": [
                        {"city": "LA", "year": 2019},
                        {"city": "NY", "year": 2018},
                    ],
                    "address2": [
                        {"city": "LA", "year": 2019},
                        {"city": "NY", "year": 2018},
                    ],
                },
            ]
        }
    )

    # -- the query of Figure 1c (Spark-like DataFrame API) --------------------
    query = (
        Session(db)
        .table("person")
        .explode("address2", label="F")
        .filter(col("year").ge(lit(2019)), label="σ")
        .select("name", "city", label="π")
        .nest(["name"], "nList", label="N")
        .query("cities-with-recent-workers")
    )

    print("Query result (Figure 1b):")
    print_relation(query.evaluate(db))
    print()

    # -- the why-not question of Example 5 ------------------------------------
    # t_ex = ⟨city: NY, nList: {{?, *}}⟩ — "why is NY (with at least one
    # person) not in the result?"
    question = WhyNotQuestion(
        query, db, Tup(city="NY", nList=Bag([ANY, STAR])), name="why no NY?"
    )

    # -- explanations (Example 19) --------------------------------------------
    # The attribute alternative "address2 could have been address1" enables
    # the schema-alternative explanation {F, σ}.
    result = explain(question, alternatives=[["person.address2", "person.address1"]])
    print(result.describe())
    print()

    print("What each explanation means:")
    for e in result.explanations:
        ops = ", ".join(e.labels)
        print(f"  {e.rank}. reparameterize {{{ops}}} — found via {e.sa_description}")


if __name__ == "__main__":
    main()
