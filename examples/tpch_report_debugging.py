"""Debugging a TPC-H style revenue report (the paper's Q10 scenario).

A returned-items report misses a customer who definitely generated revenue.
The lineage baseline blames the join (misleading: fixing the join cannot
produce non-zero revenue); the holistic algorithm pinpoints the two
selections and — via a schema alternative — the projection computing the
revenue from the wrong column.

Run:  PYTHONPATH=src python examples/tpch_report_debugging.py   (from the repository root)
"""

from repro import explain, wnpp_explain
from repro.scenarios import get_scenario


def main() -> None:
    scenario = get_scenario("Q10")
    question = scenario.question(scale=60)
    question.validate()

    print(f"Scenario: {scenario.description}")
    print(f"Missing answer: {question.nip!r}")
    print()

    print("Lineage-based WN++ says:", wnpp_explain(question))
    print("  ... but making the join outer only adds a customer with ⊥ revenue.")
    print()

    result = explain(question, alternatives=scenario.alternatives)
    print(result.describe())
    print()
    print(
        "Explanation 4 pinpoints all three planted bugs: the returnflag\n"
        "selection σ35, the orderdate window σ36, and the revenue projection\n"
        "π37 (l_tax instead of l_discount)."
    )
    gold = scenario.gold
    ranks = [e.rank for e in result.explanations if e.ops == result.explanations[-1].ops]
    assert frozenset(result.explanations[-1].labels) == gold and ranks


if __name__ == "__main__":
    main()
