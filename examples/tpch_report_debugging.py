"""Debugging a TPC-H style revenue report (the paper's Q10 scenario).

A returned-items report misses a customer who definitely generated revenue.
The lineage baseline blames the join (misleading: fixing the join cannot
produce non-zero revenue); the holistic algorithm pinpoints the two
selections and — via a schema alternative — the projection computing the
revenue from the wrong column.

Along the way this example shows the logical plan optimizer
(docs/OPTIMIZER.md): the answer path may run a rewritten plan
(``explain(..., optimize=True)``, CLI ``--optimize``/``--show-plan``)
while the explanations keep naming the operators the analyst wrote.

Run:  PYTHONPATH=src python examples/tpch_report_debugging.py   (from the repository root)
"""

from repro import explain, optimize_query, wnpp_explain
from repro.scenarios import get_scenario


def main() -> None:
    scenario = get_scenario("Q10")
    question = scenario.question(scale=60)
    # No explicit validate() here: explain(..., optimize=True) below seeds
    # Q(D) through the optimized plan and then validates Definition 5 itself.

    # The optimizer rewrites the answer path (fused selections, reordered
    # join) but every rewritten operator links back to the user's plan —
    # and the explanations below are identical with or without it.
    report = optimize_query(question.query, question.db)
    fired = ", ".join(f"{r}×{n}" for r, n in report.rule_fires.items() if n)
    print(f"Answer-path optimizer: {fired}")
    print()

    print(f"Scenario: {scenario.description}")
    print(f"Missing answer: {question.nip!r}")
    print()

    print("Lineage-based WN++ says:", wnpp_explain(question))
    print("  ... but making the join outer only adds a customer with ⊥ revenue.")
    print()

    result = explain(question, alternatives=scenario.alternatives, optimize=True)
    print(result.describe())
    print()
    print(
        "Explanation 4 pinpoints all three planted bugs: the returnflag\n"
        "selection σ35, the orderdate window σ36, and the revenue projection\n"
        "π37 (l_tax instead of l_discount)."
    )
    gold = scenario.gold
    ranks = [e.rank for e in result.explanations if e.ops == result.explanations[-1].ops]
    assert frozenset(result.explanations[-1].labels) == gold and ranks


if __name__ == "__main__":
    main()
