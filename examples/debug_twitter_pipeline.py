"""Debugging a Twitter analytics pipeline (the paper's T_ASD scenario).

An adaptive-schema-style extraction job flattens *quoted* tweets and filters
on the *quote* count — but the analyst is looking for a famous tweet that was
*retweeted*.  Lineage-based tools return nothing (no tweet quotes the famous
one); the reparameterization-based algorithm finds the flatten (and the
filter) through a schema alternative.

Run:  PYTHONPATH=src python examples/debug_twitter_pipeline.py   (from the repository root)
"""

from repro import Tup, WhyNotQuestion, col, explain, wnpp_explain
from repro.algebra.operators import Projection, Query, Selection, TableAccess, TupleFlatten
from repro.datasets.twitter import TWITTER_FACTS, twitter_database
from repro.whynot.placeholders import ANY


def build_query() -> Query:
    """Extract a flat (id, text) relation of quoted tweets (two bugs!)."""
    plan = TupleFlatten(TableAccess("T"), "quoted_status", alias="qt", label="F21")
    plan = Selection(plan, col("quote_count").gt(0), label="σ22")
    plan = Projection(plan, [("rid", col("qt.id")), ("rtext", col("qt.text"))])
    return Query(plan, name="extract-quoted-tweets")


def main() -> None:
    db = twitter_database(scale=80)
    query = build_query()
    famous_id = TWITTER_FACTS["asd_famous_id"]

    question = WhyNotQuestion(
        query, db, Tup(rid=famous_id, rtext=ANY), name=f"why is tweet {famous_id} missing?"
    )
    question.validate()

    print("Lineage-based WN++ finds:", wnpp_explain(question) or "nothing at all")
    print()

    result = explain(
        question,
        alternatives=[("T.quoted_status", ["T.retweeted_status"])],
    )
    print(result.describe())
    print()
    print(
        "The first explanation says: the flatten F21 should target\n"
        "retweeted_status; the second adds that the filter σ22 should use the\n"
        "retweet counter — exactly the two bugs planted in the query."
    )


if __name__ == "__main__":
    main()
