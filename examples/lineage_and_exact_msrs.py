"""Provenance utilities and exact MSR enumeration on the running example.

Shows the two supporting APIs around the heuristic algorithm:

* why-provenance of an *existing* answer (which source tuples produced it);
* the exact brute-force MSR enumeration of Definitions 8–10, usable on small
  databases as ground truth — including the tree-edit-distance side-effect
  metric that separates the two MSRs of Example 10.

Run:  PYTHONPATH=src python examples/lineage_and_exact_msrs.py   (from the repository root)
"""

from repro import ANY, STAR, Bag, Tup, WhyNotQuestion, enumerate_explanations
from repro.datasets.people import person_database, person_query
from repro.nested.distance import relation_tree_distance
from repro.provenance import lineage_execute


def main() -> None:
    db = person_database()
    query = person_query()

    # -- why-provenance of the existing answer --------------------------------
    run = lineage_execute(query, db)
    (answer,) = run.result()
    print(f"The query returns: {answer!r}")
    lineage = run.lineage_of(answer)
    print("Its why-provenance:")
    for table, tuples in lineage.items():
        for t in tuples:
            print(f"  {table}: {t!r}")
    print()

    # -- exact MSRs for the missing answer (Example 9/10) ---------------------
    question = WhyNotQuestion(
        query, db, Tup(city="NY", nList=Bag([ANY, STAR])), name="why no NY?"
    )
    exact = enumerate_explanations(question, max_ops=2, distance="tree")
    print(f"Exact search tried {exact.candidates_tried} reparameterizations.")
    print("Minimal successful reparameterizations (MSRs):")
    for delta, side_effect in exact.explanations:
        labels = sorted(query.op(i).label for i in delta)
        print(f"  {{{', '.join(labels)}}} — tree-edit side effect {side_effect:.0f}")
    print()

    # Example 9's trees: the {σ}-repair's result is farther from the original
    # than the {F, σ}-repair's.
    original = question.result()
    sr_sigma = query.reparameterize(
        {3: {"pred": __import__("repro").col("year").ge(2018)}}
    ).evaluate(db)
    sr_flatten = query.reparameterize(
        {
            2: {"path": ("address1",)},
            3: {"pred": __import__("repro").col("year").ge(2018)},
        }
    ).evaluate(db)
    print(f"d(T1, T2) for the {{σ}}-repair:   {relation_tree_distance(original, sr_sigma):.0f}")
    print(f"d(T1, T3) for the {{F, σ}}-repair: {relation_tree_distance(original, sr_flatten):.0f}")


if __name__ == "__main__":
    main()
