"""Tour of the textual ``.rq`` query language (docs/LANGUAGE.md).

Compiles a program from source, shows the pretty-printer round-trip, runs
the golden ``queries/C3.rq`` file end to end — query, why-not question,
attribute alternatives — and demonstrates a positioned compile error.

Run:  PYTHONPATH=src python examples/query_language_tour.py   (from the repository root)
"""

from pathlib import Path

from repro.lang import LangError, compile_program, pretty_program
from repro.scenarios import get_scenario
from repro.whynot.explain import explain
from repro.whynot.question import WhyNotQuestion

REPO_ROOT = Path(__file__).resolve().parents[1]


def main() -> None:
    # -- 1. compile a program from source -------------------------------------
    scenario = get_scenario("C1")
    db = scenario.make_db(scenario.default_scale)
    source = """
    query suspects {
      from S
      |> select hair = "black" @"σ"
      |> project [s_name, clothes] @"π"
      |> distinct
    }
    """
    lowered = compile_program(source, database=db)
    result = lowered.query.evaluate(db)
    print(f"compiled query {lowered.name!r}: {len(result)} distinct suspects")

    # -- 2. the pretty-printer is the parser's inverse ------------------------
    canonical = pretty_program(lowered.query, name=lowered.name)
    reparsed = compile_program(canonical, database=db)
    assert reparsed.query.evaluate(db) == result
    print("\ncanonical form (parse ∘ pretty is the identity):\n")
    print(canonical)

    # -- 3. run a golden scenario file end to end -----------------------------
    golden = (REPO_ROOT / "queries" / "C3.rq").read_text()
    scenario = get_scenario("C3")
    db = scenario.make_db(scenario.default_scale)
    program = compile_program(golden, database=db)
    question = WhyNotQuestion(program.query, db, program.nip, name=program.name)
    answer = explain(question, alternatives=program.alternatives)
    print(f"\nqueries/C3.rq — why is {program.nip} missing?")
    for explanation in answer.explanations:
        print(f"  {explanation.rank}. {set(explanation.labels)}")
    # The paper's answer: under the S.clothes alternative the witness
    # tuple survives to the projection π6 — the operator to blame.

    # -- 4. diagnostics carry positions, not tracebacks -----------------------
    try:
        compile_program("query { from S |> select bogus = 1 }", database=db)
    except LangError as exc:
        print("\na compile error renders with a caret:\n")
        print(exc.render())


if __name__ == "__main__":
    main()
