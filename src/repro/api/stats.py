"""Serving-side metrics primitives: latency windows and request counters.

Both HTTP front ends (the single-process :mod:`repro.api.http` server and
the sharded multi-process one in :mod:`repro.api.sharded`) surface the same
observability payload through ``GET /v1/stats``: how many requests were
served, rejected or coalesced, the recent latency percentiles, and the
derived throughput.  This module holds the two thread-safe building blocks
they share:

* :class:`LatencyWindow` — a bounded ring of recent request latencies with
  p50/p95/p99 snapshots (bounded so a long-lived server's memory stays
  constant under load, per the ROADMAP's "millions of users" axis);
* :class:`ServingCounters` — monotonic request/outcome counters plus the
  uptime needed to derive QPS.

The wire encoding of the aggregate payload lives in
:func:`repro.wire.payloads.serving_stats_to_json`.
"""

from __future__ import annotations

import threading
import time


def percentile(sorted_values: "list[float]", q: float) -> float:
    """The *q*-quantile (0 ≤ q ≤ 1) of an ascending-sorted non-empty list.

    Uses the nearest-rank method, so the result is always an observed
    value — appropriate for latency reporting where interpolation between
    two real requests has no physical meaning.
    """
    if not sorted_values:
        raise ValueError("percentile of an empty window")
    rank = max(0, min(len(sorted_values) - 1, int(round(q * (len(sorted_values) - 1)))))
    return sorted_values[rank]


class LatencyWindow:
    """A bounded, thread-safe ring buffer of request latencies (seconds).

    ``record`` is O(1); ``snapshot`` sorts a copy of the window (bounded by
    ``capacity``) and reports millisecond percentiles.  ``count`` keeps the
    lifetime total even after old samples rotate out of the ring.
    """

    def __init__(self, capacity: int = 2048):
        if capacity < 1:
            raise ValueError(f"capacity must be positive, got {capacity}")
        self.capacity = capacity
        self._samples: "list[float]" = []
        self._next = 0
        self._count = 0
        self._lock = threading.Lock()

    def record(self, seconds: float) -> None:
        """Add one latency sample, evicting the oldest when full."""
        with self._lock:
            if len(self._samples) < self.capacity:
                self._samples.append(seconds)
            else:
                self._samples[self._next] = seconds
                self._next = (self._next + 1) % self.capacity
            self._count += 1

    def snapshot(self) -> dict:
        """Percentiles of the current window: ``{count, p50_ms, p95_ms, p99_ms}``.

        ``count`` is the lifetime sample count; the percentiles describe the
        most recent ``capacity`` samples.  An empty window reports ``None``
        percentiles rather than inventing numbers.
        """
        with self._lock:
            window = sorted(self._samples)
            count = self._count
        if not window:
            return {"count": 0, "p50_ms": None, "p95_ms": None, "p99_ms": None}
        return {
            "count": count,
            "p50_ms": percentile(window, 0.50) * 1000.0,
            "p95_ms": percentile(window, 0.95) * 1000.0,
            "p99_ms": percentile(window, 0.99) * 1000.0,
        }


class ServingCounters:
    """Monotonic serving counters shared by the HTTP front ends.

    Tracks request outcomes (``completed`` 2xx, ``errors`` 4xx/5xx computed
    by a worker, ``rejected`` backpressure 503s, ``timeouts``, ``coalesced``
    duplicates that shared an in-flight computation) and derives QPS from
    completions over uptime.  All mutation methods are thread-safe.
    """

    def __init__(self):
        self._lock = threading.Lock()
        self.started = time.monotonic()
        self.requests = 0
        self.completed = 0
        self.errors = 0
        self.rejected = 0
        self.coalesced = 0
        self.timeouts = 0
        self.latency = LatencyWindow()

    def record_outcome(self, status: int, seconds: float) -> None:
        """Count one finished request (any status) and its latency."""
        with self._lock:
            self.requests += 1
            if 200 <= status < 300:
                self.completed += 1
            else:
                self.errors += 1
        self.latency.record(seconds)

    def record_rejected(self) -> None:
        """Count one request shed by backpressure (503 + ``Retry-After``)."""
        with self._lock:
            self.requests += 1
            self.rejected += 1

    def record_coalesced(self) -> None:
        """Count one duplicate request that attached to an in-flight leader.

        The duplicate is a real request (it counts in ``requests``) but not
        a computation: ``completed``/``errors`` and the latency window track
        leader computations only, so QPS measures distinct work done.
        """
        with self._lock:
            self.requests += 1
            self.coalesced += 1

    def record_timeout(self) -> None:
        """Count one request that timed out waiting for its worker."""
        with self._lock:
            self.timeouts += 1

    def snapshot(self) -> dict:
        """One JSON-ready dict of every counter plus uptime, QPS and latency."""
        with self._lock:
            uptime = time.monotonic() - self.started
            completed = self.completed
            data = {
                "uptime_s": uptime,
                "requests": self.requests,
                "completed": completed,
                "errors": self.errors,
                "rejected": self.rejected,
                "coalesced": self.coalesced,
                "timeouts": self.timeouts,
            }
        data["qps"] = completed / uptime if uptime > 0 else 0.0
        data["latency_ms"] = self.latency.snapshot()
        return data
