"""Request/response layer: ``ExplanationService`` and its dataclasses.

The service is the stateful, production-facing entry point the ROADMAP's
north star asks for.  It owns

* a **database registry** — named :class:`~repro.engine.database.Database`
  objects requests can reference instead of shipping data inline.  The
  registry is *versioned*: :meth:`ExplanationService.mutate_database`
  advances a name to the next version of its chain
  (``Database.apply_mutations``), and cache keys for named databases fold
  in the version stamps of exactly the relations a query reads, so a
  mutation leaves every entry that does not read a mutated relation warm
  (a dependency map actively purges the entries that do);
* **prepared questions** — every request is resolved and validated
  (Definition 5) before work is dispatched, so malformed or ill-posed
  questions fail fast with a typed error;
* a **result cache** — an LRU keyed by
  :func:`~repro.engine.hashing.stable_hash` over the request's canonical
  wire encoding, with hit/miss counters surfaced in every response.  The
  key covers everything that determines the *explanations* (query, NIP,
  database content, alternatives, SA toggles); execution-only knobs
  (backend, workers, partitions, optimize) are excluded because the engine's
  equivalence guarantees make results independent of them — the same cached
  entry serves all of them, and the differential fuzz oracle cross-checks
  the service against direct :func:`~repro.whynot.explain.explain` to keep
  that assumption honest;
* **concurrent dispatch** — :meth:`ExplanationService.submit` fans requests
  out over a thread pool; each request still uses the configured execution
  backend (:mod:`repro.engine.backends`) underneath.

:func:`~repro.whynot.explain.explain` remains the in-process computational
core; the service wraps it (and the scenario registry) with the request
lifecycle, so existing callers and tests keep working unchanged.
"""

from __future__ import annotations

import json
import threading
from collections import OrderedDict
from concurrent.futures import Future, ThreadPoolExecutor
from dataclasses import dataclass, field, replace
from typing import Any, Optional, Sequence

from repro.engine.database import Database, Mutation
from repro.engine.deltas import read_tables
from repro.engine.executor import Executor
from repro.engine.hashing import stable_hash
from repro.engine.metrics import ExecutionMetrics
from repro.nested.values import Bag
from repro.whynot.explain import WhyNotResult, explain
from repro.whynot.matching import matching_tuples
from repro.whynot.question import IllPosedQuestion, WhyNotQuestion
from repro.whynot.summarize import ConceptHierarchy, attach_summaries, resolve_summarize
from repro.wire import (
    WIRE_VERSION,
    check_envelope,
    database_from_json,
    database_info_to_json,
    database_to_json,
    envelope,
    query_from_json,
    query_to_json,
    result_to_json,
    value_from_json,
    value_to_json,
)
from repro.wire.payloads import alternatives_from_json, alternatives_to_json

#: Serving API version (the ``/v1/...`` HTTP prefix).
API_VERSION = "v1"

#: Largest scenario ``scale`` the service accepts from a request.  ``scale``
#: is network-controlled input that sizes a synchronous database build, so
#: it is bounded like any other request knob (the paper's evaluation uses
#: scales up to the low hundreds).
MAX_SCENARIO_SCALE = 10_000


class UnknownDatabase(KeyError):
    """Raised when a request references a database name not in the registry."""


def scenarios_listing() -> "list[dict]":
    """Metadata of every registered paper scenario (the ``/v1/scenarios`` body).

    Module-level so front ends that own no :class:`ExplanationService`
    instance (the sharded dispatcher answers this route without a worker
    round-trip) serve the identical listing.
    """
    from repro.scenarios import SCENARIOS

    return [
        {
            "name": s.name,
            "description": s.description,
            "default_scale": s.default_scale,
            "alternatives": [list(g) for g in s.alternatives],
            "gold": sorted(s.gold) if s.gold is not None else None,
            "notes": s.notes,
        }
        for s in SCENARIOS.values()
    ]


class BadRequest(ValueError):
    """Raised when a request payload is structurally invalid or incomplete."""


@dataclass(frozen=True)
class ExplainOptions:
    """Execution and algorithm knobs of one explain request.

    ``backend``/``workers``/``optimize``/``engine`` select *how* the engine
    runs (and default to the ``REPRO_BACKEND``/``REPRO_OPTIMIZE``/
    ``REPRO_ENGINE`` environment, like the CLI); ``partitions`` applies to
    plain query evaluation only (:meth:`ExplanationService.query` /
    ``POST /v1/query`` — the explain pipeline's tracing step manages its own
    partitioning); ``use_schema_alternatives``/``revalidate``/``max_sas``
    select *what* is computed (the paper's RP vs RPnoSA vs no-revalidation
    ablation) and therefore participate in the cache key.  ``engine`` is an
    execution-only knob — explanations are engine-invariant, so it stays out
    of the cache key like ``backend``.

    ``summarize`` requests ontology-aware explanation summaries
    (:mod:`repro.whynot.summarize`): ``None`` (default) skips them, ``True``
    summarizes with defaults, and an object with any of
    :data:`~repro.whynot.summarize.SUMMARIZE_SPEC_FIELDS` supplies a concept
    hierarchy (inline :class:`~repro.whynot.summarize.ConceptHierarchy` or
    its wire document), the group budget and the witness sample size.  It
    changes response content, so it participates in the cache key.
    """

    backend: Optional[str] = None
    workers: Optional[int] = None
    partitions: Optional[int] = None
    optimize: Optional[bool] = None
    engine: Optional[str] = None
    use_schema_alternatives: bool = True
    revalidate: bool = True
    max_sas: int = 64
    summarize: Any = None

    def summarize_json(self) -> Any:
        """The ``summarize`` spec in canonical JSON form (hierarchy encoded)."""
        spec = self.summarize
        if isinstance(spec, dict):
            spec = dict(spec)
            if isinstance(spec.get("hierarchy"), ConceptHierarchy):
                spec["hierarchy"] = spec["hierarchy"].to_json()
        return spec

    def semantic_fields(self) -> dict:
        """The option fields that change explanation content (cache key part)."""
        return {
            "use_schema_alternatives": self.use_schema_alternatives,
            "revalidate": self.revalidate,
            "max_sas": self.max_sas,
            "summarize": self.summarize_json(),
        }

    def to_json(self) -> dict:
        """Encode as a plain JSON object (all fields, defaults included)."""
        return {
            "backend": self.backend,
            "workers": self.workers,
            "partitions": self.partitions,
            "optimize": self.optimize,
            "engine": self.engine,
            "use_schema_alternatives": self.use_schema_alternatives,
            "revalidate": self.revalidate,
            "max_sas": self.max_sas,
            "summarize": self.summarize_json(),
        }

    @classmethod
    def from_json(cls, data: Optional[dict]) -> "ExplainOptions":
        """Decode :meth:`to_json` output; unknown fields are rejected."""
        if data is None:
            return cls()
        extra = set(data) - set(cls.__dataclass_fields__)
        if extra:
            raise BadRequest(f"unknown option fields: {sorted(extra)}")
        return cls(**data)


@dataclass
class ExplainRequest:
    """One why-not request: ⟨Q, D, t⟩ plus alternatives and options.

    Three forms are accepted:

    * **explicit** — ``query`` + ``nip`` + ``database`` (a registered name
      or an inline :class:`Database`);
    * **textual** — ``text`` (an ``.rq`` program with a ``whynot`` block;
      grammar: ``docs/LANGUAGE.md``) + ``database``: the server parses,
      validates and lowers the program, taking query, NIP and attribute
      alternatives from the text;
    * **scenario shorthand** — ``scenario`` (+ optional ``scale``): the
      server builds query, database, NIP and attribute alternatives from
      its scenario registry.
    """

    query: Optional[Any] = None
    nip: Any = None
    database: "str | Database | None" = None
    alternatives: Sequence[Sequence[str]] = ()
    options: ExplainOptions = field(default_factory=ExplainOptions)
    name: str = ""
    scenario: Optional[str] = None
    scale: Optional[int] = None
    text: Optional[str] = None
    #: Opt-in: when the "missing" answer is actually present (the question is
    #: ill-posed, e.g. after an insert satisfied it), return a typed
    #: :class:`SatisfiedResponse` instead of raising ``IllPosedQuestion``.
    satisfied_ok: bool = False

    def to_json(self) -> dict:
        """Encode as an ``explain-request`` wire document."""
        body: dict = {"options": self.options.to_json(), "name": self.name}
        if self.satisfied_ok:
            body["satisfied_ok"] = True
        if self.text is not None:
            if self.database is None:
                raise BadRequest("text request needs a database (name or inline)")
            body["text"] = self.text
            body["database"] = (
                self.database
                if isinstance(self.database, str)
                else database_to_json(self.database)
            )
        elif self.scenario is not None:
            body["scenario"] = self.scenario
            if self.scale is not None:
                body["scale"] = self.scale
        else:
            if self.query is None or self.database is None:
                raise BadRequest(
                    "request needs either a scenario name or query+nip+database"
                )
            body["query"] = query_to_json(self.query)
            body["nip"] = value_to_json(self.nip)
            body["alternatives"] = alternatives_to_json(self.alternatives)
            body["database"] = (
                self.database
                if isinstance(self.database, str)
                else database_to_json(self.database)
            )
        return envelope("explain-request", body)

    @classmethod
    def from_json(cls, data: dict) -> "ExplainRequest":
        """Decode :meth:`to_json` output (databases stay name refs/inline)."""
        check_envelope(data, "explain-request")
        options = ExplainOptions.from_json(data.get("options"))
        satisfied_ok = bool(data.get("satisfied_ok", False))
        if "text" in data:
            if not isinstance(data["text"], str):
                raise BadRequest("the 'text' field must be an .rq program string")
            db_field = data.get("database")
            if db_field is None:
                raise BadRequest("text request needs a database (name or inline)")
            return cls(
                text=data["text"],
                database=(
                    db_field
                    if isinstance(db_field, str)
                    else database_from_json(db_field)
                ),
                options=options,
                name=data.get("name", ""),
                satisfied_ok=satisfied_ok,
            )
        if "scenario" in data:
            return cls(
                scenario=data["scenario"],
                scale=data.get("scale"),
                options=options,
                name=data.get("name", ""),
                satisfied_ok=satisfied_ok,
            )
        try:
            query = query_from_json(data["query"])
            nip = value_from_json(data["nip"])
            db_field = data["database"]
        except KeyError as exc:
            raise BadRequest(f"explain-request is missing field {exc}") from None
        database = db_field if isinstance(db_field, str) else database_from_json(db_field)
        return cls(
            query=query,
            nip=nip,
            database=database,
            alternatives=alternatives_from_json(data.get("alternatives")),
            options=options,
            name=data.get("name", ""),
            satisfied_ok=satisfied_ok,
        )


@dataclass
class ExplainResponse:
    """One explain answer: the result plus serving metadata.

    ``cached`` is True when the response was served from the LRU without
    re-tracing; ``cache`` carries the service-wide hit/miss counters at
    response time.
    """

    result: WhyNotResult
    cached: bool
    cache: dict
    api_version: str = API_VERSION

    @property
    def explanations(self):
        """The ranked :class:`~repro.whynot.approximate.Explanation` list."""
        return self.result.explanations

    def explanation_sets(self) -> "list[frozenset[str]]":
        """Ranked explanations as label sets (the Table-8 comparison format)."""
        return [frozenset(e.labels) for e in self.result.explanations]

    def to_json(self) -> dict:
        """Encode as an ``explain-response`` wire document."""
        return envelope(
            "explain-response",
            {
                "api_version": self.api_version,
                "cached": self.cached,
                "cache": dict(self.cache),
                "result": result_to_json(self.result),
            },
        )


@dataclass
class SatisfiedResponse:
    """Typed "question satisfied" answer (opt-in via ``satisfied_ok``).

    Returned instead of a 4xx ``IllPosedQuestion`` error when the request
    sets ``satisfied_ok`` and the "missing" answer is actually present —
    the normal outcome after a mutation inserts a row that answers the
    question.  ``witnesses`` lists result tuples matching the NIP (at most
    three, like the error message).
    """

    witnesses: "list[Any]"
    cache: dict
    cached: bool = False
    satisfied: bool = True
    api_version: str = API_VERSION

    def to_json(self) -> dict:
        """Encode as an ``explain-response`` document with ``satisfied: true``."""
        return envelope(
            "explain-response",
            {
                "api_version": self.api_version,
                "cached": self.cached,
                "cache": dict(self.cache),
                "satisfied": True,
                "witnesses": [value_to_json(w) for w in self.witnesses],
            },
        )


class ExplanationService:
    """Stateful explanation server core (registry + cache + dispatch).

    Thread-safe: the registry and cache take an internal lock, and
    :meth:`submit` dispatches requests on a shared thread pool, so one
    service instance can back a threaded HTTP front end
    (:mod:`repro.api.http`) directly.
    """

    def __init__(
        self,
        databases: Optional[dict] = None,
        cache_size: int = 128,
        options: Optional[ExplainOptions] = None,
        max_concurrency: int = 4,
    ):
        self._lock = threading.Lock()
        self._databases: "OrderedDict[str, tuple[Database, int]]" = OrderedDict()
        self._registrations = 0
        self._cache: "OrderedDict[int, WhyNotResult]" = OrderedDict()
        #: Dependency map: cache key -> (database name, relations the cached
        #: query reads).  Lets :meth:`mutate_database` purge exactly the
        #: entries whose read set intersects the mutated relations.
        self._cache_deps: "dict[int, tuple[str, frozenset[str]]]" = {}
        self.cache_size = cache_size
        self.hits = 0
        self.misses = 0
        self.default_options = options or ExplainOptions()
        self._max_concurrency = max_concurrency
        self._pool: Optional[ThreadPoolExecutor] = None
        #: Small LRU of built scenario databases — bounded, because ``scale``
        #: arrives from the network and every distinct value builds a fresh
        #: database.
        self._scenario_dbs: "OrderedDict[tuple, Database]" = OrderedDict()
        self._scenario_db_limit = 16
        for name, db in (databases or {}).items():
            self.register_database(name, db)

    # -- registry -------------------------------------------------------------

    def register_database(self, name: str, db: Database) -> None:
        """Register (or replace) a named database for by-name requests."""
        with self._lock:
            self._registrations += 1
            self._databases[name] = (db, self._registrations)

    def database(self, name: str) -> Database:
        """Look up a registered database (``UnknownDatabase`` when absent)."""
        with self._lock:
            try:
                return self._databases[name][0]
            except KeyError:
                raise UnknownDatabase(
                    f"no database registered as {name!r}; "
                    f"have {sorted(self._databases)}"
                ) from None

    def databases(self) -> "list[str]":
        """Registered database names, in registration order."""
        with self._lock:
            return list(self._databases)

    def mutate_database(
        self,
        name: str,
        inserts: "Any | Mutation | None" = None,
        deletes: Optional[Any] = None,
    ) -> Database:
        """Advance the named database to its next version and return it.

        *inserts*/*deletes* are per-relation row mappings (or *inserts* a
        prebuilt :class:`~repro.engine.database.Mutation`); the new version
        is produced by ``Database.apply_mutations`` and replaces the name's
        registry entry **without** bumping the registration token, so cache
        keys stay comparable across versions.  Cached entries whose read set
        intersects the mutated relations are purged via the dependency map;
        every other entry (same or other databases) stays warm.

        Raises :class:`UnknownDatabase` for an unknown name and the
        underlying ``KeyError``/``ValueError`` for invalid mutations.
        """
        with self._lock:
            entry = self._databases.get(name)
            if entry is None:
                raise UnknownDatabase(
                    f"no database registered as {name!r}; "
                    f"have {sorted(self._databases)}"
                )
            db, token = entry
            new_db = db.apply_mutations(inserts, deletes)
            self._databases[name] = (new_db, token)
            mutated = set(new_db.last_mutation.tables())
            stale = [
                key
                for key, (dep_name, reads) in self._cache_deps.items()
                if dep_name == name and reads & mutated
            ]
            for key in stale:
                self._cache.pop(key, None)
                self._cache_deps.pop(key, None)
        return new_db

    def database_info(self, name: str) -> dict:
        """One registered database's ``database-info`` document
        (name, chain version id, per-table row counts and version stamps)."""
        return database_info_to_json(name, self.database(name))

    def database_listing(self) -> dict:
        """The ``GET /v1/databases`` body: every registered database's info."""
        return envelope(
            "database-listing",
            {"databases": [self.database_info(name) for name in self.databases()]},
        )

    def scenarios(self) -> "list[dict]":
        """Metadata of every registered paper scenario (for ``/v1/scenarios``)."""
        return scenarios_listing()

    # -- request lifecycle ----------------------------------------------------

    def prepare(self, request: ExplainRequest) -> "tuple[WhyNotQuestion, list, int]":
        """Resolve and validate a request into ``(question, alternatives, key)``.

        Raises :class:`BadRequest` for structurally invalid requests,
        :class:`UnknownDatabase` for unresolved database names, and
        :class:`~repro.whynot.question.IllPosedQuestion` when the "missing"
        answer is already present (Definition 5).
        """
        question, alternatives, key = self._resolve(request)
        question.validate()
        return question, alternatives, key

    def _resolve_database(self, request: ExplainRequest):
        """Resolve the request's database field into ``(db, cache_token)``."""
        if isinstance(request.database, str):
            db = self.database(request.database)
            with self._lock:
                token = self._databases[request.database][1]
            # The version-aware part of the key — the stamps of the relations
            # the query actually reads — is appended in ``_resolve`` once the
            # query is known.
            return db, ("named", request.database, token)
        db = request.database
        return db, ("inline", database_to_json(db))

    def _resolve(self, request: ExplainRequest):
        """Build the question and its cache key without validating it."""
        if request.options.summarize is not None:
            # Reject malformed summarize specs before any cache or engine
            # work — resolution is repeated (cheaply) after the explain run.
            try:
                resolve_summarize(request.options.summarize)
            except ValueError as exc:
                raise BadRequest(str(exc)) from None
        if request.text is not None:
            from repro.lang import compile_program

            if request.database is None:
                raise BadRequest("text request needs a database (name or inline)")
            db, cache_token = self._resolve_database(request)
            lowered = compile_program(request.text, database=db)
            if not lowered.has_question:
                raise BadRequest(
                    "the text program has no whynot block — use POST /v1/query "
                    "to evaluate a plain query"
                )
            question = WhyNotQuestion(
                lowered.query, db, lowered.nip, name=request.name or lowered.name
            )
            alternatives = list(lowered.alternatives)
        elif request.scenario is not None:
            from repro.scenarios import SCENARIOS, get_scenario

            try:
                scenario = get_scenario(request.scenario)
            except KeyError:
                raise BadRequest(
                    f"unknown scenario {request.scenario!r}; "
                    f"have {sorted(SCENARIOS)}"
                ) from None
            scale = request.scale if request.scale is not None else scenario.default_scale
            if not isinstance(scale, int) or isinstance(scale, bool) or scale < 1:
                raise BadRequest(f"scale must be a positive integer, got {scale!r}")
            if scale > MAX_SCENARIO_SCALE:
                raise BadRequest(
                    f"scale {scale} exceeds the serving limit {MAX_SCENARIO_SCALE}"
                )
            cache_token = ("scenario", scenario.name, scale)
            with self._lock:
                entry = self._scenario_dbs.get((scenario.name, scale))
                if entry is not None:
                    self._scenario_dbs.move_to_end((scenario.name, scale))
            if entry is None:
                entry = scenario.make_db(scale)
                with self._lock:
                    self._scenario_dbs[(scenario.name, scale)] = entry
                    while len(self._scenario_dbs) > self._scenario_db_limit:
                        self._scenario_dbs.popitem(last=False)
            question = WhyNotQuestion(
                scenario.make_query(), entry, scenario.make_nip(), name=scenario.name
            )
            alternatives = list(scenario.alternatives)
        else:
            if request.query is None or request.nip is None or request.database is None:
                raise BadRequest(
                    "request needs either a scenario name or query+nip+database"
                )
            db, cache_token = self._resolve_database(request)
            question = WhyNotQuestion(
                request.query, db, request.nip, name=request.name
            )
            alternatives = list(request.alternatives)
        if cache_token[0] == "named":
            # Version-aware keys: fold in the stamps of exactly the relations
            # the query reads.  Mutating any *other* relation of the same
            # database (or any other database) leaves this key — and hence
            # the cached entry — valid and warm.
            db = question.db
            stamps = tuple(
                (t, db.relation_stamp(t))
                for t in sorted(read_tables(question.query))
                if t in db
            )
            if not stamps:  # no reads resolved: be conservative, pin the version
                stamps = (("*", (db.version_id, db.version)),)
            cache_token = cache_token + (stamps,)
        key_doc = {
            "db": cache_token,
            "query": query_to_json(question.query),
            "nip": value_to_json(question.nip),
            "alternatives": alternatives_to_json(alternatives),
            "options": request.options.semantic_fields(),
        }
        key = stable_hash(json.dumps(key_doc, sort_keys=True, ensure_ascii=True))
        return question, alternatives, key

    def explain(
        self, request: ExplainRequest, use_cache: bool = True
    ) -> "ExplainResponse | SatisfiedResponse":
        """Answer one request (through the cache unless ``use_cache=False``).

        With ``request.satisfied_ok`` set, a question whose "missing" answer
        is already present returns a :class:`SatisfiedResponse` instead of
        raising ``IllPosedQuestion`` (satisfied answers are never cached).
        """
        question, alternatives, key = self._resolve(request)
        if use_cache and self.cache_size > 0:
            with self._lock:
                cached = self._cache.get(key)
                if cached is not None:
                    self._cache.move_to_end(key)
                    self.hits += 1
                    return ExplainResponse(cached, True, self._stats_locked())
                self.misses += 1
        try:
            question.validate()
        except IllPosedQuestion:
            if not request.satisfied_ok:
                raise
            witnesses = matching_tuples(question.result(), question.nip)[:3]
            with self._lock:
                return SatisfiedResponse(witnesses, self._stats_locked())
        options = request.options
        result = explain(
            question,
            alternatives=alternatives,
            use_schema_alternatives=options.use_schema_alternatives,
            revalidate=options.revalidate,
            max_sas=options.max_sas,
            validate=False,
            backend=options.backend or self.default_options.backend,
            workers=options.workers or self.default_options.workers,
            optimize=(
                options.optimize
                if options.optimize is not None
                else self.default_options.optimize
            ),
            engine=options.engine or self.default_options.engine,
        )
        if options.summarize is not None:
            hierarchy, max_summaries, sample = resolve_summarize(options.summarize)
            attach_summaries(
                result, hierarchy, max_summaries=max_summaries, sample=sample
            )
        if use_cache and self.cache_size > 0:
            with self._lock:
                self._cache[key] = result
                self._cache.move_to_end(key)
                if isinstance(request.database, str):
                    self._cache_deps[key] = (
                        request.database,
                        read_tables(question.query),
                    )
                while len(self._cache) > self.cache_size:
                    evicted, _ = self._cache.popitem(last=False)
                    self._cache_deps.pop(evicted, None)
        with self._lock:
            return ExplainResponse(result, False, self._stats_locked())

    def submit(self, request: ExplainRequest, use_cache: bool = True) -> "Future[ExplainResponse]":
        """Dispatch a request on the service thread pool (concurrent serving)."""
        with self._lock:
            if self._pool is None:
                self._pool = ThreadPoolExecutor(
                    max_workers=self._max_concurrency,
                    thread_name_prefix="repro-api",
                )
            pool = self._pool
        return pool.submit(self.explain, request, use_cache)

    def query(
        self,
        query: Any,
        database: "str | Database",
        options: Optional[ExplainOptions] = None,
    ) -> "tuple[Bag, ExecutionMetrics]":
        """Evaluate a plain query through the partitioned executor.

        Returns ``(result bag, execution metrics)``; ``options`` selects
        backend/workers/partitions/optimize for this run.
        """
        options = options or self.default_options
        db = self.database(database) if isinstance(database, str) else database
        executor = Executor(
            num_partitions=options.partitions or 4,
            backend=options.backend or self.default_options.backend,
            workers=options.workers or self.default_options.workers,
            optimize=(
                options.optimize
                if options.optimize is not None
                else self.default_options.optimize
            ),
            engine=options.engine or self.default_options.engine,
        )
        result = executor.execute(query, db)
        return result, executor.last_metrics

    # -- cache ----------------------------------------------------------------

    def _stats_locked(self) -> dict:
        return {"hits": self.hits, "misses": self.misses, "size": len(self._cache)}

    def cache_stats(self) -> dict:
        """Current cache counters: ``{"hits", "misses", "size"}``."""
        with self._lock:
            return self._stats_locked()

    def clear_cache(self) -> None:
        """Drop every cached result (counters keep accumulating)."""
        with self._lock:
            self._cache.clear()
            self._cache_deps.clear()

    def close(self) -> None:
        """Shut the dispatch pool down (idempotent)."""
        with self._lock:
            pool, self._pool = self._pool, None
        if pool is not None:
            pool.shutdown(wait=True)


#: Error types the HTTP layer maps to 4xx responses.
CLIENT_ERRORS = (BadRequest, UnknownDatabase, IllPosedQuestion, ValueError, KeyError)
