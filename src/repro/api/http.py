"""HTTP serving front end over the wire format (stdlib only).

``python -m repro serve --port 8080`` boots a
:class:`http.server.ThreadingHTTPServer` around one
:class:`~repro.api.service.ExplanationService`, so any HTTP client — not
just Python — can submit why-not questions end-to-end:

* ``POST /v1/explain`` — an ``explain-request`` wire document (explicit
  query+nip+database or the ``{"scenario": "Q1"}`` shorthand) →
  ``explain-response`` with the ranked explanations and cache counters;
* ``POST /v1/query`` — a ``query-request`` document → the result relation
  plus execution metrics;
* ``GET /v1/scenarios`` — the registered paper scenarios;
* ``GET /v1/health`` — liveness, versions, cache counters.

Errors come back as JSON ``{"error": {"type", "message"}}`` with 400 for
malformed/ill-posed requests, 404 for unknown routes, 405 for wrong
methods, and 500 for unexpected failures.  See ``docs/API.md`` for the
endpoint reference and curl examples.
"""

from __future__ import annotations

import json
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Optional

from repro import __version__
from repro.api.service import (
    API_VERSION,
    CLIENT_ERRORS,
    ExplainOptions,
    ExplainRequest,
    ExplanationService,
)
from repro.wire import (
    WIRE_VERSION,
    check_envelope,
    database_from_json,
    metrics_to_json,
    query_from_json,
    relation_to_json,
)

#: Request bodies larger than this are rejected up front (64 MiB).
MAX_BODY_BYTES = 64 * 1024 * 1024


class ApiServer(ThreadingHTTPServer):
    """A threading HTTP server bound to one :class:`ExplanationService`."""

    daemon_threads = True

    def __init__(self, address, service: ExplanationService, quiet: bool = True):
        self.service = service
        self.quiet = quiet
        super().__init__(address, _Handler)


class _Handler(BaseHTTPRequestHandler):
    """Routes ``/v1/...`` requests onto the bound service."""

    server: ApiServer  # narrowed type for the attribute lookups below

    # -- plumbing -------------------------------------------------------------

    def log_message(self, format, *args):  # noqa: A002 - stdlib signature
        """Suppress per-request stderr noise unless the server is verbose."""
        if not self.server.quiet:
            super().log_message(format, *args)

    def _send_json(self, status: int, document: dict) -> None:
        body = json.dumps(document, ensure_ascii=True).encode("ascii")
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def _send_error_json(self, status: int, exc: BaseException) -> None:
        self._send_json(
            status,
            {"error": {"type": type(exc).__name__, "message": str(exc)}},
        )

    def _read_body(self) -> dict:
        length = int(self.headers.get("Content-Length") or 0)
        if length <= 0:
            raise ValueError("request body required")
        if length > MAX_BODY_BYTES:
            raise ValueError(f"request body exceeds {MAX_BODY_BYTES} bytes")
        raw = self.rfile.read(length)
        try:
            return json.loads(raw)
        except json.JSONDecodeError as exc:
            raise ValueError(f"request body is not valid JSON: {exc}") from None

    # -- routes ---------------------------------------------------------------

    def do_GET(self) -> None:  # noqa: N802 - stdlib naming
        """Dispatch ``GET /v1/health`` and ``GET /v1/scenarios``."""
        try:
            if self.path == f"/{API_VERSION}/health":
                self._send_json(200, self._health())
            elif self.path == f"/{API_VERSION}/scenarios":
                self._send_json(
                    200,
                    {
                        "format": WIRE_VERSION,
                        "kind": "scenarios",
                        "scenarios": self.server.service.scenarios(),
                    },
                )
            elif self.path in (f"/{API_VERSION}/explain", f"/{API_VERSION}/query"):
                self._send_json(405, {"error": {"type": "MethodNotAllowed",
                                                "message": "use POST"}})
            else:
                self._send_json(404, {"error": {"type": "NotFound",
                                                "message": f"no route {self.path}"}})
        except Exception as exc:  # noqa: BLE001 - last-resort 500
            self._send_error_json(500, exc)

    def do_POST(self) -> None:  # noqa: N802 - stdlib naming
        """Dispatch ``POST /v1/explain`` and ``POST /v1/query``."""
        try:
            if self.path == f"/{API_VERSION}/explain":
                document = self._read_body()
                request = ExplainRequest.from_json(document)
                response = self.server.service.explain(request)
                self._send_json(200, response.to_json())
            elif self.path == f"/{API_VERSION}/query":
                self._send_json(200, self._run_query(self._read_body()))
            elif self.path in (f"/{API_VERSION}/health", f"/{API_VERSION}/scenarios"):
                self._send_json(405, {"error": {"type": "MethodNotAllowed",
                                                "message": "use GET"}})
            else:
                self._send_json(404, {"error": {"type": "NotFound",
                                                "message": f"no route {self.path}"}})
        except CLIENT_ERRORS as exc:
            self._send_error_json(400, exc)
        except Exception as exc:  # noqa: BLE001 - last-resort 500
            self._send_error_json(500, exc)

    def _health(self) -> dict:
        service = self.server.service
        return {
            "format": WIRE_VERSION,
            "kind": "health",
            "status": "ok",
            "version": __version__,
            "api_version": API_VERSION,
            "wire_format": WIRE_VERSION,
            "cache": service.cache_stats(),
            "databases": service.databases(),
        }

    def _run_query(self, document: dict) -> dict:
        check_envelope(document, "query-request")
        query = query_from_json(document["query"])
        db_field = document["database"]
        database = (
            db_field if isinstance(db_field, str) else database_from_json(db_field)
        )
        options = ExplainOptions.from_json(document.get("options"))
        result, metrics = self.server.service.query(query, database, options)
        return {
            "format": WIRE_VERSION,
            "kind": "query-response",
            "result": relation_to_json(result),
            "metrics": metrics_to_json(metrics),
        }


def make_server(
    service: Optional[ExplanationService] = None,
    host: str = "127.0.0.1",
    port: int = 0,
    quiet: bool = True,
) -> ApiServer:
    """Build a bound (but not yet serving) API server.

    ``port=0`` binds an ephemeral free port — read it back from
    ``server.server_address`` (the pattern the tests and the CI smoke
    script use).
    """
    return ApiServer((host, port), service or ExplanationService(), quiet=quiet)


def serve(
    host: str = "127.0.0.1",
    port: int = 8080,
    service: Optional[ExplanationService] = None,
    quiet: bool = False,
) -> int:
    """Run the serving front end until interrupted (the CLI entry point)."""
    server = make_server(service, host, port, quiet=quiet)
    bound_host, bound_port = server.server_address[:2]
    print(f"repro api {API_VERSION} (wire format {WIRE_VERSION}) "
          f"listening on http://{bound_host}:{bound_port}")
    print(f"  POST /{API_VERSION}/explain   POST /{API_VERSION}/query   "
          f"GET /{API_VERSION}/scenarios   GET /{API_VERSION}/health")
    try:
        server.serve_forever()
    except KeyboardInterrupt:
        pass
    finally:
        server.server_close()
        server.service.close()
    return 0
