"""HTTP serving front end over the wire format (stdlib only).

``python -m repro serve --port 8080`` boots a
:class:`http.server.ThreadingHTTPServer` around one
:class:`~repro.api.service.ExplanationService`, so any HTTP client — not
just Python — can submit why-not questions end-to-end:

* ``POST /v1/explain`` — an ``explain-request`` wire document (explicit
  query+nip+database or the ``{"scenario": "Q1"}`` shorthand) →
  ``explain-response`` with the ranked explanations and cache counters;
* ``POST /v1/query`` — a ``query-request`` document → the result relation
  plus execution metrics;
* ``GET /v1/databases`` — every registered database's name, version id and
  per-table row counts; ``GET /v1/databases/{name}`` — one database's info;
* ``PUT /v1/databases/{name}`` — register (or replace) a named database
  from a ``database`` document;
* ``POST /v1/databases/{name}/mutate`` — a ``mutation`` document of
  per-relation inserts/deletes: advances the named database to the next
  version of its chain (``docs/MUTATIONS.md``) and returns the new
  ``database-info``;
* ``GET /v1/scenarios`` — the registered paper scenarios;
* ``GET /v1/health`` — liveness, versions, cache counters;
* ``GET /v1/stats`` — serving metrics (request counters, QPS, latency
  percentiles; see :mod:`repro.api.stats`).

Both POST endpoints also accept the **textual** payload variant: a body
with a ``text`` field carrying an ``.rq`` program (grammar:
``docs/LANGUAGE.md``) plus a ``database``.  ``/v1/query`` evaluates the
program's query pipeline (a trailing ``whynot`` block is ignored there, so
checked-in scenario files run unmodified); ``/v1/explain`` requires the
``whynot`` block and answers it.

Errors come back as JSON ``{"error": {"type", "message"}}`` with 400 for
malformed/ill-posed requests, 404 for unknown routes, 405 for wrong
methods, and 500 for unexpected failures; parse/validation errors from
textual payloads additionally carry ``"position": {"line", "column"}``.
The multi-process variant of this front end (``--processes N``) lives in
:mod:`repro.api.sharded` and reuses :class:`JsonHandler` and
:func:`error_document`.  See ``docs/API.md`` for the endpoint reference
and ``docs/SERVING.md`` for the process model.
"""

from __future__ import annotations

import json
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from time import perf_counter
from typing import Optional

from repro import __version__
from repro.api.service import (
    API_VERSION,
    CLIENT_ERRORS,
    ExplainOptions,
    ExplainRequest,
    ExplanationService,
    UnknownDatabase,
    scenarios_listing,
)
from repro.api.stats import ServingCounters
from repro.wire import (
    WIRE_VERSION,
    check_envelope,
    database_from_json,
    metrics_to_json,
    mutation_from_json,
    query_from_json,
    relation_to_json,
    serving_stats_to_json,
)

#: Default cap on request bodies (64 MiB); servers take it as a knob so the
#: oversized-body 400 path is testable without building a 64 MiB payload.
MAX_BODY_BYTES = 64 * 1024 * 1024


def databases_route(path: str) -> "Optional[tuple[str, Optional[str]]]":
    """Parse a ``/v1/databases...`` path into ``(action, name)``.

    Returns ``("list", None)``, ``("info", name)`` or ``("mutate", name)``
    — or ``None`` when the path is not a databases route.  Shared by both
    front ends so the single-process and sharded servers expose identical
    URLs.
    """
    prefix = f"/{API_VERSION}/databases"
    if path == prefix:
        return ("list", None)
    if path.startswith(prefix + "/"):
        rest = path[len(prefix) + 1 :]
        if rest.endswith("/mutate"):
            name = rest[: -len("/mutate")]
            if name and "/" not in name:
                return ("mutate", name)
        elif rest and "/" not in rest:
            return ("info", rest)
    return None


def error_document(exc: BaseException) -> dict:
    """The JSON error body for one exception (shared by both front ends).

    Language errors (:class:`~repro.lang.errors.LangError`) carry a source
    position; it is surfaced as ``{"line", "column"}`` so HTTP clients get
    the same diagnostics the CLI and REPL render as carets.
    """
    error = {"type": type(exc).__name__, "message": str(exc)}
    position = getattr(exc, "position", None)
    if callable(position):
        error["position"] = position()
    return {"error": error}


class JsonHandler(BaseHTTPRequestHandler):
    """Shared JSON-over-HTTP plumbing for both serving front ends.

    Subclasses implement the routing (``do_GET``/``do_POST``) on top of the
    send/read helpers here; the bound server provides ``quiet`` (access-log
    suppression) and ``max_body_bytes`` (request-body cap) attributes.
    """

    def log_message(self, format, *args):  # noqa: A002 - stdlib signature
        """Suppress per-request stderr noise unless the server is verbose."""
        if not getattr(self.server, "quiet", True):
            super().log_message(format, *args)

    def _send_json(
        self, status: int, document: dict, headers: Optional[dict] = None
    ) -> None:
        body = json.dumps(document, ensure_ascii=True).encode("ascii")
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        for name, value in (headers or {}).items():
            self.send_header(name, str(value))
        self.end_headers()
        self.wfile.write(body)

    def _send_error_json(
        self, status: int, exc: BaseException, headers: Optional[dict] = None
    ) -> None:
        self._send_json(status, error_document(exc), headers)

    def _read_body(self) -> dict:
        limit = getattr(self.server, "max_body_bytes", MAX_BODY_BYTES)
        length = int(self.headers.get("Content-Length") or 0)
        if length <= 0:
            raise ValueError("request body required")
        if length > limit:
            raise ValueError(f"request body exceeds {limit} bytes")
        raw = self.rfile.read(length)
        try:
            document = json.loads(raw)
        except json.JSONDecodeError as exc:
            raise ValueError(f"request body is not valid JSON: {exc}") from None
        if not isinstance(document, dict):
            raise ValueError("request body must be a JSON object")
        return document


class ApiServer(ThreadingHTTPServer):
    """A threading HTTP server bound to one :class:`ExplanationService`."""

    daemon_threads = True

    def __init__(
        self,
        address,
        service: ExplanationService,
        quiet: bool = True,
        max_body_bytes: int = MAX_BODY_BYTES,
    ):
        self.service = service
        self.quiet = quiet
        self.max_body_bytes = max_body_bytes
        self.counters = ServingCounters()
        super().__init__(address, _Handler)


class _Handler(JsonHandler):
    """Routes ``/v1/...`` requests onto the bound service."""

    server: ApiServer  # narrowed type for the attribute lookups below

    # -- routes ---------------------------------------------------------------

    def do_GET(self) -> None:  # noqa: N802 - stdlib naming
        """Dispatch ``GET /v1/health``, ``/v1/scenarios``, ``/v1/stats`` and
        the ``/v1/databases`` listing/info routes."""
        route = databases_route(self.path)
        try:
            if self.path == f"/{API_VERSION}/health":
                self._send_json(200, self._health())
            elif self.path == f"/{API_VERSION}/stats":
                self._send_json(200, self._stats())
            elif self.path == f"/{API_VERSION}/scenarios":
                self._send_json(
                    200,
                    {
                        "format": WIRE_VERSION,
                        "kind": "scenarios",
                        "scenarios": scenarios_listing(),
                    },
                )
            elif route is not None and route[0] == "list":
                self._send_json(200, self.server.service.database_listing())
            elif route is not None and route[0] == "info":
                try:
                    self._send_json(200, self.server.service.database_info(route[1]))
                except UnknownDatabase as exc:
                    self._send_error_json(404, exc)
            elif route is not None:  # GET on .../mutate
                self._send_json(405, {"error": {"type": "MethodNotAllowed",
                                                "message": "use POST"}})
            elif self.path in (f"/{API_VERSION}/explain", f"/{API_VERSION}/query"):
                self._send_json(405, {"error": {"type": "MethodNotAllowed",
                                                "message": "use POST"}})
            else:
                self._send_json(404, {"error": {"type": "NotFound",
                                                "message": f"no route {self.path}"}})
        except Exception as exc:  # noqa: BLE001 - last-resort 500
            self._send_error_json(500, exc)

    def do_PUT(self) -> None:  # noqa: N802 - stdlib naming
        """Dispatch ``PUT /v1/databases/{name}`` (register a database)."""
        route = databases_route(self.path)
        try:
            if route is not None and route[0] == "info":
                db = database_from_json(self._read_body())
                self.server.service.register_database(route[1], db)
                self._send_json(200, self.server.service.database_info(route[1]))
            else:
                self._send_json(404, {"error": {"type": "NotFound",
                                                "message": f"no route {self.path}"}})
        except CLIENT_ERRORS as exc:
            self._send_error_json(400, exc)
        except Exception as exc:  # noqa: BLE001 - last-resort 500
            self._send_error_json(500, exc)

    def do_POST(self) -> None:  # noqa: N802 - stdlib naming
        """Dispatch ``POST /v1/explain``, ``/v1/query`` and
        ``/v1/databases/{name}/mutate``."""
        started = perf_counter()
        status = 500
        route = databases_route(self.path)
        try:
            if self.path == f"/{API_VERSION}/explain":
                document = self._read_body()
                request = ExplainRequest.from_json(document)
                response = self.server.service.explain(request)
                status = 200
                self._send_json(200, response.to_json())
            elif self.path == f"/{API_VERSION}/query":
                body = self._run_query(self._read_body())
                status = 200
                self._send_json(200, body)
            elif route is not None and route[0] == "mutate":
                mutation = mutation_from_json(self._read_body())
                try:
                    self.server.service.mutate_database(route[1], mutation)
                except UnknownDatabase as exc:
                    status = 404
                    self._send_error_json(404, exc)
                    return
                status = 200
                self._send_json(200, self.server.service.database_info(route[1]))
            elif route is not None:  # POST on /v1/databases[/{name}]
                self._send_json(405, {"error": {"type": "MethodNotAllowed",
                                                "message": "use GET or PUT"}})
                return
            elif self.path in (f"/{API_VERSION}/health", f"/{API_VERSION}/scenarios",
                               f"/{API_VERSION}/stats"):
                self._send_json(405, {"error": {"type": "MethodNotAllowed",
                                                "message": "use GET"}})
                return
            else:
                self._send_json(404, {"error": {"type": "NotFound",
                                                "message": f"no route {self.path}"}})
                return
        except CLIENT_ERRORS as exc:
            status = 400
            self._send_error_json(400, exc)
        except Exception as exc:  # noqa: BLE001 - last-resort 500
            self._send_error_json(500, exc)
        finally:
            if self.path in (f"/{API_VERSION}/explain", f"/{API_VERSION}/query") or (
                route is not None and route[0] == "mutate"
            ):
                self.server.counters.record_outcome(status, perf_counter() - started)

    def _health(self) -> dict:
        service = self.server.service
        return {
            "format": WIRE_VERSION,
            "kind": "health",
            "status": "ok",
            "version": __version__,
            "api_version": API_VERSION,
            "wire_format": WIRE_VERSION,
            "cache": service.cache_stats(),
            "databases": service.databases(),
        }

    def _stats(self) -> dict:
        cache = self.server.service.cache_stats()
        lookups = cache["hits"] + cache["misses"]
        cache["hit_rate"] = cache["hits"] / lookups if lookups else None
        serving = {"mode": "inprocess", "cache": cache}
        serving.update(self.server.counters.snapshot())
        return serving_stats_to_json(serving)

    def _run_query(self, document: dict) -> dict:
        return run_query_document(self.server.service, document)


def run_query_document(service: ExplanationService, document: dict) -> dict:
    """Evaluate a ``query-request`` wire document into a ``query-response``.

    Shared by the in-process handler and the sharded workers
    (:mod:`repro.api.sharded`) so both front ends answer ``POST /v1/query``
    identically.
    """
    check_envelope(document, "query-request")
    options = ExplainOptions.from_json(document.get("options"))
    if "text" in document:
        from repro.api.service import BadRequest
        from repro.lang import compile_program

        if not isinstance(document["text"], str):
            raise BadRequest("the 'text' field must be an .rq program string")
        db_field = document.get("database")
        if db_field is None:
            raise BadRequest("text query-request needs a database (name or inline)")
        database = (
            service.database(db_field)
            if isinstance(db_field, str)
            else database_from_json(db_field)
        )
        # A trailing whynot block is legal and ignored here: /v1/query
        # evaluates the query pipeline, /v1/explain answers the question.
        query = compile_program(document["text"], database=database).query
    else:
        query = query_from_json(document["query"])
        db_field = document["database"]
        database = (
            db_field if isinstance(db_field, str) else database_from_json(db_field)
        )
    result, metrics = service.query(query, database, options)
    return {
        "format": WIRE_VERSION,
        "kind": "query-response",
        "result": relation_to_json(result),
        "metrics": metrics_to_json(metrics),
    }


def make_server(
    service: Optional[ExplanationService] = None,
    host: str = "127.0.0.1",
    port: int = 0,
    quiet: bool = True,
    max_body_bytes: int = MAX_BODY_BYTES,
) -> ApiServer:
    """Build a bound (but not yet serving) API server.

    ``port=0`` binds an ephemeral free port — read it back from
    ``server.server_address`` (the pattern the tests and the CI smoke
    script use).
    """
    return ApiServer(
        (host, port),
        service or ExplanationService(),
        quiet=quiet,
        max_body_bytes=max_body_bytes,
    )


def serve(
    host: str = "127.0.0.1",
    port: int = 8080,
    service: Optional[ExplanationService] = None,
    quiet: bool = False,
) -> int:
    """Run the serving front end until interrupted (the CLI entry point)."""
    server = make_server(service, host, port, quiet=quiet)
    bound_host, bound_port = server.server_address[:2]
    print(f"repro api {API_VERSION} (wire format {WIRE_VERSION}) "
          f"listening on http://{bound_host}:{bound_port}")
    print(f"  POST /{API_VERSION}/explain   POST /{API_VERSION}/query   "
          f"GET /{API_VERSION}/scenarios   GET /{API_VERSION}/health   "
          f"GET /{API_VERSION}/stats")
    print(f"  GET/PUT /{API_VERSION}/databases[/{{name}}]   "
          f"POST /{API_VERSION}/databases/{{name}}/mutate")
    try:
        server.serve_forever()
    except KeyboardInterrupt:
        pass
    finally:
        server.server_close()
        server.service.close()
    return 0
