"""A small HTTP client for the serving front end (stdlib ``urllib`` only).

:class:`Client` speaks the versioned wire format against a running
``python -m repro serve`` instance, so a Python caller on another machine
gets the same typed objects the in-process API returns::

    from repro.api import Client
    client = Client("http://127.0.0.1:8080")
    client.health()["status"]                     # "ok"
    response = client.explain(scenario="Q1", scale=20)
    response.explanation_sets()                   # ranked label sets
    response.cached, response.cache               # LRU serving metadata

``explain`` also accepts a full :class:`~repro.api.service.ExplainRequest`
(inline database and all), and ``query`` evaluates a plain plan remotely,
returning the decoded result bag plus execution metrics.
"""

from __future__ import annotations

import json
import time
import urllib.error
import urllib.request
from dataclasses import dataclass, replace
from typing import Any, Optional, Sequence

from repro.api.service import API_VERSION, ExplainOptions, ExplainRequest
from repro.engine.metrics import ExecutionMetrics
from repro.nested.values import Bag
from repro.whynot.approximate import Explanation
from repro.wire import (
    check_envelope,
    database_info_from_json,
    database_to_json,
    explanation_from_json,
    metrics_from_json,
    mutation_to_json,
    query_to_json,
    relation_from_json,
    text_query_request,
)


class ApiError(RuntimeError):
    """A non-2xx response from the server (carries status + typed payload).

    ``retry_after`` holds the server's ``Retry-After`` hint in seconds when
    one was sent (backpressure 503s always carry it), else ``None``.
    ``position`` carries the server's ``{"line", "column"}`` source
    position when the error came from parsing/validating a textual ``.rq``
    payload, else ``None``.
    """

    def __init__(
        self,
        status: int,
        error_type: str,
        message: str,
        retry_after: "Optional[float]" = None,
        position: "Optional[dict]" = None,
    ):
        super().__init__(f"HTTP {status} {error_type}: {message}")
        self.status = status
        self.error_type = error_type
        self.retry_after = retry_after
        self.position = position


@dataclass
class RemoteExplainResponse:
    """A decoded ``explain-response`` document (client-side view).

    ``raw`` keeps the full wire document; the accessors decode the parts a
    caller compares against in-process results.
    """

    raw: dict

    @property
    def cached(self) -> bool:
        """True when the server answered from its LRU without re-tracing."""
        return self.raw["cached"]

    @property
    def satisfied(self) -> bool:
        """True for a typed "question satisfied" answer: the request opted
        in via ``satisfied_ok`` and the "missing" tuple is actually present
        (e.g. after a mutation inserted a row answering the question).  Such
        responses carry ``witnesses`` instead of ``result``."""
        return bool(self.raw.get("satisfied", False))

    @property
    def witnesses(self) -> "list[dict]":
        """Matching result tuples of a satisfied answer (wire-encoded)."""
        return self.raw.get("witnesses", [])

    @property
    def cache(self) -> dict:
        """Server-wide cache counters at response time (hits/misses/size)."""
        return self.raw["cache"]

    @property
    def n_sas(self) -> int:
        """Number of schema alternatives the server traced."""
        return self.raw["result"]["n_sas"]

    @property
    def timings(self) -> dict:
        """Per-step timings of the run that produced this result.

        A cache hit returns the stored result unchanged, so these describe
        the original (miss) run — use :attr:`cached` to tell the cases
        apart.
        """
        return self.raw["result"]["timings"]

    def explanations(self) -> "list[Explanation]":
        """The ranked explanations as value objects."""
        return [explanation_from_json(e) for e in self.raw["result"]["explanations"]]

    def explanation_sets(self) -> "list[frozenset[str]]":
        """Ranked explanations as label sets (byte-comparable to in-process)."""
        return [frozenset(e["labels"]) for e in self.raw["result"]["explanations"]]

    def summaries(self) -> "Optional[list]":
        """Decoded summary groups (``options.summarize`` requests them).

        Returns ``None`` when the response carries no ``summaries`` section
        (summarization was not requested), else the decoded
        :class:`~repro.whynot.summarize.ExplanationSummary` list.
        """
        from repro.wire import summary_from_json

        raw = self.raw["result"].get("summaries")
        if raw is None:
            return None
        return [summary_from_json(s) for s in raw]


class Client:
    """Synchronous wire-format client for one serving endpoint.

    ``timeout`` bounds every socket operation (connect + read).  With
    ``retries > 0`` the client re-issues a request after a ``503`` (waiting
    out the server's ``Retry-After`` hint, capped by ``max_retry_wait``) or
    after a transport-level failure (connection refused/reset while a
    sharded worker respawns), sleeping ``retry_backoff`` seconds between
    transport retries.  Anything else — 4xx, 500 — is never retried: those
    are deterministic answers, not transient load.
    """

    def __init__(
        self,
        base_url: str,
        timeout: float = 120.0,
        retries: int = 0,
        retry_backoff: float = 0.5,
        max_retry_wait: float = 30.0,
    ):
        self.base_url = base_url.rstrip("/")
        self.timeout = timeout
        self.retries = retries
        self.retry_backoff = retry_backoff
        self.max_retry_wait = max_retry_wait
        #: Attempts the most recent ``_request`` used (observability/tests).
        self.last_attempts = 0

    # -- transport ------------------------------------------------------------

    def _request_once(self, method: str, path: str, body: Optional[dict] = None) -> dict:
        url = f"{self.base_url}/{API_VERSION}{path}"
        data = None
        headers = {"Accept": "application/json"}
        if body is not None:
            data = json.dumps(body, ensure_ascii=True).encode("ascii")
            headers["Content-Type"] = "application/json"
        request = urllib.request.Request(url, data=data, headers=headers, method=method)
        try:
            with urllib.request.urlopen(request, timeout=self.timeout) as response:
                return json.loads(response.read())
        except urllib.error.HTTPError as exc:
            try:
                payload = json.loads(exc.read()).get("error", {})
            except Exception:  # noqa: BLE001 - error body may be anything
                payload = {}
            retry_after = exc.headers.get("Retry-After") if exc.headers else None
            raise ApiError(
                exc.code,
                payload.get("type", "Unknown"),
                payload.get("message", str(exc)),
                retry_after=float(retry_after) if retry_after else None,
                position=payload.get("position"),
            ) from None

    def _request(self, method: str, path: str, body: Optional[dict] = None) -> dict:
        attempts = self.retries + 1
        for attempt in range(1, attempts + 1):
            self.last_attempts = attempt
            try:
                return self._request_once(method, path, body)
            except ApiError as exc:
                if exc.status != 503 or attempt == attempts:
                    raise
                wait = exc.retry_after if exc.retry_after is not None else self.retry_backoff
                time.sleep(min(wait, self.max_retry_wait))
            except urllib.error.URLError:
                # Connection-level failure (refused/reset) — e.g. the server
                # is still booting or a sharded worker front end restarted.
                if attempt == attempts:
                    raise
                time.sleep(min(self.retry_backoff, self.max_retry_wait))

    # -- endpoints ------------------------------------------------------------

    def health(self) -> dict:
        """``GET /v1/health`` — liveness, versions and cache counters."""
        return self._request("GET", "/health")

    def scenarios(self) -> "list[dict]":
        """``GET /v1/scenarios`` — the server's registered paper scenarios."""
        return self._request("GET", "/scenarios")["scenarios"]

    def explain(
        self,
        request: Optional[ExplainRequest] = None,
        scenario: Optional[str] = None,
        scale: Optional[int] = None,
        options: Optional[ExplainOptions] = None,
        text: Optional[str] = None,
        database: "str | Any | None" = None,
        summarize: Any = None,
    ) -> RemoteExplainResponse:
        """``POST /v1/explain`` — answer a why-not question remotely.

        Pass a full :class:`ExplainRequest`, the scenario shorthand
        (``scenario=`` + optional ``scale=``/``options=``), or the textual
        form (``text=`` an ``.rq`` program with a ``whynot`` block,
        ``database=`` a registered name or inline database).  ``summarize``
        is a shorthand for ``ExplainOptions(summarize=...)`` — ``True`` or a
        spec object requests ontology-aware summary groups, retrievable via
        :meth:`RemoteExplainResponse.summaries`.
        """
        if summarize is not None:
            if request is not None:
                request = replace(
                    request, options=replace(request.options, summarize=summarize)
                )
            else:
                options = replace(options or ExplainOptions(), summarize=summarize)
        if request is None:
            if text is not None:
                if database is None:
                    raise ValueError("explain(text=...) needs a database")
                request = ExplainRequest(
                    text=text, database=database, options=options or ExplainOptions()
                )
            elif scenario is not None:
                request = ExplainRequest(
                    scenario=scenario, scale=scale, options=options or ExplainOptions()
                )
            else:
                raise ValueError(
                    "explain needs a request, a scenario name, or text="
                )
        document = self._request("POST", "/explain", request.to_json())
        check_envelope(document, "explain-response")
        return RemoteExplainResponse(document)

    def query(
        self,
        query: Any,
        database: "str | Any",
        options: Optional[ExplainOptions] = None,
    ) -> "tuple[Bag, ExecutionMetrics]":
        """``POST /v1/query`` — evaluate a plan remotely.

        ``database`` is a registered name or an inline
        :class:`~repro.engine.database.Database`; returns the decoded
        result bag and the server-side execution metrics.
        """
        body = {
            "format": 2,
            "kind": "query-request",
            "query": query_to_json(query),
            "database": (
                database if isinstance(database, str) else database_to_json(database)
            ),
            "options": (options or ExplainOptions()).to_json(),
        }
        document = self._request("POST", "/query", body)
        check_envelope(document, "query-response")
        return (
            relation_from_json(document["result"]),
            metrics_from_json(document["metrics"]),
        )

    def query_text(
        self,
        text: str,
        database: "str | Any",
        options: Optional[ExplainOptions] = None,
    ) -> "tuple[Bag, ExecutionMetrics]":
        """``POST /v1/query`` with a textual ``.rq`` program body.

        The server parses, validates and lowers *text* against *database*
        and evaluates its query pipeline (a trailing ``whynot`` block is
        ignored — use :meth:`explain` with ``text=`` to answer it).
        Returns the decoded result bag and execution metrics, exactly like
        :meth:`query`.
        """
        body = text_query_request(
            text, database, options=(options or ExplainOptions()).to_json()
        )
        document = self._request("POST", "/query", body)
        check_envelope(document, "query-response")
        return (
            relation_from_json(document["result"]),
            metrics_from_json(document["metrics"]),
        )

    # -- database registry -----------------------------------------------------

    def databases(self) -> "list[dict]":
        """``GET /v1/databases`` — every registered database's info doc.

        Each entry carries ``name``, ``version_id`` and per-table row counts
        plus relation version stamps (see :func:`database_info_to_json`).
        """
        document = self._request("GET", "/databases")
        check_envelope(document, "database-listing")
        return document["databases"]

    def database(self, name: str) -> dict:
        """``GET /v1/databases/{name}`` — one database's info document."""
        document = self._request("GET", f"/databases/{name}")
        check_envelope(document, "database-info")
        return database_info_from_json(document)

    def register_database(self, name: str, db: Any) -> dict:
        """``PUT /v1/databases/{name}`` — register *db* under *name*.

        Re-registering an existing name replaces its snapshot.  Returns the
        resulting info document.
        """
        document = self._request("PUT", f"/databases/{name}", database_to_json(db))
        check_envelope(document, "database-info")
        return database_info_from_json(document)

    def mutate(
        self,
        name: str,
        inserts: "Optional[dict]" = None,
        deletes: "Optional[dict]" = None,
        mutation: Optional[Any] = None,
    ) -> dict:
        """``POST /v1/databases/{name}/mutate`` — advance *name* one version.

        Pass per-relation row mappings (``inserts``/``deletes`` of plain
        dict rows, exactly like :meth:`Database.apply_mutations`) or a
        prebuilt :class:`~repro.engine.database.Mutation` via ``mutation=``.
        Returns the new version's info document; cached results for queries
        that read an untouched relation of *name* — and for every other
        database — stay warm on the server.
        """
        from repro.engine.database import Mutation

        if mutation is None:
            mutation = Mutation(inserts, deletes)
        document = self._request(
            "POST", f"/databases/{name}/mutate", mutation_to_json(mutation)
        )
        check_envelope(document, "database-info")
        return database_info_from_json(document)
