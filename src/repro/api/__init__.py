"""Stable public API: the request/response layer over the wire format.

Three pieces turn the in-process library into a serveable system:

* :class:`ExplanationService` — a stateful server core owning a database
  registry, request validation, a ``stable_hash``-keyed LRU result cache
  (hit/miss counters surfaced in every response) and concurrent dispatch
  (:mod:`repro.api.service`);
* the HTTP front ends — ``python -m repro serve`` exposes
  ``POST /v1/explain``, ``POST /v1/query``, ``GET /v1/scenarios``,
  ``GET /v1/health`` and ``GET /v1/stats`` over the versioned wire format
  of :mod:`repro.wire` (:mod:`repro.api.http`, stdlib
  ``ThreadingHTTPServer``), and ``--processes N`` swaps in the sharded
  multi-process front end (:mod:`repro.api.sharded`: consistent-hash
  routing, request coalescing, 503 backpressure, crash respawn — see
  ``docs/SERVING.md``);
* :class:`Client` — a small ``urllib`` client (with 503-aware retries) so
  Python callers on other machines get the same typed objects back
  (:mod:`repro.api.client`).

The in-process entry points (:func:`repro.explain`,
:func:`repro.scenarios.run_scenario`) are unchanged — the service wraps
them, and the differential fuzz oracle cross-checks both paths
(``docs/API.md`` documents the format and its compatibility policy).
"""

from repro.api.client import ApiError, Client, RemoteExplainResponse
from repro.api.service import (
    API_VERSION,
    BadRequest,
    ExplainOptions,
    ExplainRequest,
    ExplainResponse,
    ExplanationService,
    UnknownDatabase,
)
from repro.api.sharded import (
    Overloaded,
    ShardDispatcher,
    ShardedConfig,
    WorkerCrashed,
    routing_key,
)

__all__ = [
    "API_VERSION",
    "ApiError",
    "BadRequest",
    "Client",
    "ExplainOptions",
    "ExplainRequest",
    "ExplainResponse",
    "ExplanationService",
    "Overloaded",
    "RemoteExplainResponse",
    "ShardDispatcher",
    "ShardedConfig",
    "UnknownDatabase",
    "WorkerCrashed",
    "routing_key",
]
