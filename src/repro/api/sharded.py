"""Sharded multi-process serving front end (``python -m repro serve --processes N``).

The single-process server (:mod:`repro.api.http`) is GIL-capped at roughly
one core of explain throughput.  This module scales it out while keeping
the stdlib-only contract:

* **Pre-forked workers** — the front end spawns ``processes`` worker
  processes up front; each owns a private
  :class:`~repro.api.service.ExplanationService` (registry, validation,
  LRU result cache) and exchanges length-delimited pickled messages with
  the front end over a :func:`multiprocessing.Pipe`.
* **Consistent-hash routing** — every ``POST /v1/explain`` / ``/v1/query``
  document is reduced to a :func:`routing_key` (a
  :func:`~repro.engine.hashing.stable_hash` of the canonical document with
  display-only and execution-only fields stripped) and dispatched to
  ``workers[key % N]``.  Identical questions therefore always land on the
  same worker, so its LRU cache sees every repeat — cache capacity shards
  across processes instead of being duplicated.
* **Request coalescing** — identical in-flight documents share one
  computation: the first becomes the *leader*, duplicates attach to its
  pending slot and receive the leader's byte-identical response, counted
  in the ``coalesced`` stat.
* **Backpressure** — each worker accepts at most ``queue_depth`` in-flight
  leaders; beyond that the front end sheds load immediately with
  ``503`` + ``Retry-After`` instead of queueing without bound.
* **Fault tolerance** — a crashed worker is respawned automatically; its
  in-flight requests fail with a clean ``503`` (never a hang, never
  partial JSON) and subsequent requests hit the fresh worker.
* **Replicated database registry** — ``PUT /v1/databases/{name}`` and
  ``POST /v1/databases/{name}/mutate`` broadcast to **every** worker under
  the dispatch lock and are recorded in an ordered replay log; a respawned
  worker starts empty and replays the log, so per-worker registries stay
  convergent across crashes (mutate through any worker, read the new
  version through any other).  ``GET /v1/databases[/{name}]`` asks all
  workers and reports per-shard version ids plus a ``converged`` flag.

``GET /v1/health`` reports per-worker liveness and ``GET /v1/stats`` the
full serving metrics (QPS, queue depths, cache hit-rate, coalesce count,
latency percentiles — :mod:`repro.api.stats`, wire-encoded by
:func:`repro.wire.serving_stats_to_json`).  Correctness is gated by
``tests/api/test_sharded.py`` (byte-equality with in-process ``explain()``
under concurrency) and ``tests/api/test_sharded_faults.py`` (crash and
saturation behaviour); ``benchmarks/serve_load.py`` records throughput in
``BENCH_serving.json``.  See ``docs/SERVING.md``.
"""

from __future__ import annotations

import json
import multiprocessing
import os
import queue
import signal
import threading
import time
from dataclasses import dataclass, field
from http.server import ThreadingHTTPServer
from typing import Any, Optional

from repro import __version__
from repro.api.http import (
    MAX_BODY_BYTES,
    JsonHandler,
    databases_route,
    error_document,
    run_query_document,
)
from repro.api.service import (
    API_VERSION,
    CLIENT_ERRORS,
    ExplainOptions,
    ExplainRequest,
    ExplanationService,
    UnknownDatabase,
    scenarios_listing,
)
from repro.api.stats import LatencyWindow, ServingCounters
from repro.engine.hashing import stable_hash
from repro.wire import (
    WIRE_VERSION,
    database_from_json,
    mutation_from_json,
    serving_stats_to_json,
)

#: Option fields that change explanation *content*; everything else
#: (backend/workers/partitions/optimize/engine) is execution-only and is
#: stripped from explain routing keys so equivalent requests co-locate.
SEMANTIC_OPTION_FIELDS = ("use_schema_alternatives", "revalidate", "max_sas", "summarize")


class Overloaded(RuntimeError):
    """Raised when the target worker's queue is full (HTTP 503 + Retry-After)."""

    def __init__(self, message: str, retry_after: int = 1):
        super().__init__(message)
        self.retry_after = retry_after


class WorkerCrashed(RuntimeError):
    """Raised into pending requests whose worker process died mid-flight."""


@dataclass
class ShardedConfig:
    """Knobs of the sharded front end (all validated up front).

    ``processes`` is the worker count, ``queue_depth`` the per-worker
    in-flight leader bound before 503 backpressure fires, ``cache_size``
    each worker's LRU capacity, ``request_timeout`` the front-end wait
    bound per request (a stuck worker yields a 503, never a hang), and
    ``retry_after`` the hint sent with every 503.  ``options`` holds the
    default execution knobs each worker's service runs with
    (``backend``/``workers``/``optimize``/``engine``).
    """

    processes: int = 2
    queue_depth: int = 16
    cache_size: int = 128
    request_timeout: float = 120.0
    retry_after: int = 1
    options: dict = field(default_factory=dict)

    def __post_init__(self):
        if self.processes < 1:
            raise ValueError(f"processes must be positive, got {self.processes}")
        if self.queue_depth < 1:
            raise ValueError(f"queue_depth must be positive, got {self.queue_depth}")
        if self.cache_size < 0:
            raise ValueError(f"cache_size must be >= 0, got {self.cache_size}")
        if self.request_timeout <= 0:
            raise ValueError(
                f"request_timeout must be positive, got {self.request_timeout}"
            )


def routing_key(document: dict) -> int:
    """The shard/coalescing key of one ``/v1`` request document.

    Canonicalizes the parsed JSON document (sorted keys), strips the
    display-only ``name`` and — for explain requests — every execution-only
    option (the engine's equivalence guarantees make results independent of
    them), then applies :func:`~repro.engine.hashing.stable_hash`.  Two
    requests that must produce the same explanations therefore always get
    the same key: they route to the same worker (cache locality) and
    coalesce when concurrent.  Query requests keep their options verbatim
    because execution knobs are visible in their metrics payload.
    """
    doc = dict(document)
    doc.pop("name", None)
    if doc.get("kind") == "explain-request":
        options = doc.get("options")
        if isinstance(options, dict):
            doc["options"] = {
                k: options[k] for k in SEMANTIC_OPTION_FIELDS if k in options
            }
    return stable_hash(json.dumps(doc, sort_keys=True, ensure_ascii=True))


# -- worker process -----------------------------------------------------------


def _handle_job(service: ExplanationService, kind: str, document: dict) -> "tuple[int, dict]":
    """Answer one job inside a worker: ``(http status, response document)``.

    Mirrors the in-process handler's error mapping exactly, so a sharded
    server is byte-compatible with the single-process one on every path.
    """
    try:
        if kind == "explain":
            request = ExplainRequest.from_json(document)
            return 200, service.explain(request).to_json()
        if kind == "query":
            return 200, run_query_document(service, document)
        if kind == "register":
            db = database_from_json(document["database"])
            service.register_database(document["name"], db)
            return 200, service.database_info(document["name"])
        if kind in ("mutate", "database-info"):
            try:
                if kind == "mutate":
                    mutation = mutation_from_json(document["mutation"])
                    service.mutate_database(document["name"], mutation)
                return 200, service.database_info(document["name"])
            except UnknownDatabase as exc:
                return 404, error_document(exc)
        if kind == "databases":
            return 200, service.database_listing()
        raise ValueError(f"unknown job kind {kind!r}")
    except CLIENT_ERRORS as exc:
        return 400, error_document(exc)
    except Exception as exc:  # noqa: BLE001 - workers must always answer
        return 500, error_document(exc)


def _worker_main(
    conn, index: int, cache_size: int, options: dict, close_fds: tuple = ()
) -> None:
    """Entry point of one worker process.

    ``close_fds`` holds pipe fds duplicated into this process by ``fork``
    (our own pipe's front-end end, plus earlier-spawned siblings' ends).
    They must be closed first: a worker holding its own front-end end would
    never see EOF when the front-end process dies, and would linger as an
    orphan instead of exiting.

    The main thread reads messages off the pipe: ``stats`` probes are
    answered inline (so health checks never queue behind slow explains)
    while jobs go to a single executor thread — per-worker parallelism
    would only add GIL contention, the front end scales by adding workers.
    """
    for fd in close_fds:
        try:
            os.close(fd)
        except OSError:
            pass
    options = dict(options)
    if options.get("backend") is None:
        # The sharded front end parallelises across workers; inside one
        # worker the default is serial evaluation regardless of
        # REPRO_BACKEND.  A backend left unset would resolve from the
        # environment and nest a process pool inside a forked, threaded
        # worker — deadlock-prone and never faster than adding workers.
        # An explicitly configured backend (CLI flag or per-request
        # options) is still honoured.
        options["backend"] = "serial"
    service = ExplanationService(
        cache_size=cache_size, options=ExplainOptions(**options)
    )
    send_lock = threading.Lock()
    jobs: "queue.SimpleQueue" = queue.SimpleQueue()
    served = {"explain": 0, "query": 0, "errors": 0}  # registry kinds added lazily

    def send(message) -> None:
        with send_lock:
            conn.send(message)

    def run_jobs() -> None:
        while True:
            item = jobs.get()
            if item is None:
                return
            request_id, kind, document = item
            status, payload = _handle_job(service, kind, document)
            if status == 200:
                served[kind] = served.get(kind, 0) + 1
            else:
                served["errors"] += 1
            try:
                send(("result", request_id, status, payload))
            except (BrokenPipeError, OSError):
                return  # front end is gone; exit quietly

    executor = threading.Thread(target=run_jobs, daemon=True)
    executor.start()
    while True:
        try:
            message = conn.recv()
        except (EOFError, OSError):
            break
        if message[0] == "job":
            jobs.put(message[1:])
        elif message[0] == "stats":
            try:
                send(
                    (
                        "stats",
                        message[1],
                        {
                            "pid": os.getpid(),
                            "cache": service.cache_stats(),
                            "served": dict(served),
                            "databases": service.databases(),
                        },
                    )
                )
            except (BrokenPipeError, OSError):
                break
        elif message[0] == "shutdown":
            break
    jobs.put(None)
    executor.join(timeout=5.0)
    service.close()  # shut down backend pools so the process can exit
    conn.close()


# -- front end ----------------------------------------------------------------


class _Pending:
    """One in-flight request slot: leader computes, followers wait on it."""

    __slots__ = ("event", "status", "document", "headers")

    def __init__(self):
        self.event = threading.Event()
        self.status: Optional[int] = None
        self.document: Optional[dict] = None
        self.headers: Optional[dict] = None

    def resolve(self, status: int, document: dict, headers: Optional[dict] = None) -> None:
        """Publish the outcome and wake every waiter."""
        self.status = status
        self.document = document
        self.headers = headers
        self.event.set()


class _WorkerHandle:
    """Front-end bookkeeping for one worker process (respawnable)."""

    def __init__(self, index: int, ctx, config: ShardedConfig, leaked_fds=None):
        self.index = index
        self._ctx = ctx
        self._config = config
        self._leaked_fds = leaked_fds or (lambda: [])
        self.restarts = 0
        self.generation = 0
        self.latency = LatencyWindow()
        self.served_total = 0
        #: Monotonic across respawns: a job that raced a crash and reached
        #: the replacement process must never collide with a live request id.
        self.next_id = 0
        self.spawn()

    def spawn(self) -> None:
        """Start a fresh worker process with a fresh pipe and empty state."""
        parent_conn, child_conn = self._ctx.Pipe(duplex=True)
        close_fds: "tuple[int, ...]" = ()
        if self._ctx.get_start_method() == "fork":
            # fork copies every front-end pipe end into the child; hand the
            # child the fd numbers to close so EOF-on-parent-death works
            # (a spawn child inherits nothing, so nothing to close there).
            close_fds = tuple([parent_conn.fileno()] + list(self._leaked_fds()))
        # Not a daemon: a worker's service may itself use the process
        # backend (REPRO_BACKEND=process), and daemonic processes cannot
        # have children.  Lifetime is managed explicitly instead — EOF on
        # the pipe (front end gone) makes the worker exit, and
        # ``ShardDispatcher.close`` escalates shutdown → terminate → kill.
        self.process = self._ctx.Process(
            target=_worker_main,
            args=(child_conn, self.index, self._config.cache_size,
                  dict(self._config.options), close_fds),
            name=f"repro-shard-{self.index}",
        )
        self.process.start()
        child_conn.close()
        self.conn = parent_conn
        self.send_lock = threading.Lock()
        #: request_id -> (pending, routing key | None, started, is_stats)
        self.pending: "dict[int, tuple[_Pending, Optional[int], float, bool]]" = {}
        self.inflight = 0
        self.alive = True
        self.generation += 1

    def send(self, message) -> None:
        """Write one message to the worker (serialized against other senders)."""
        with self.send_lock:
            self.conn.send(message)

    def summary(self) -> dict:
        """Liveness snapshot used by ``/v1/health`` (no worker round-trip)."""
        return {
            "index": self.index,
            "pid": self.process.pid,
            "alive": self.alive and self.process.is_alive(),
            "restarts": self.restarts,
            "inflight": self.inflight,
        }


class ShardDispatcher:
    """Routes, coalesces and supervises requests across the worker pool.

    One instance backs one :class:`ShardedApiServer`; its public surface is
    :meth:`dispatch` (used by the HTTP handler), :meth:`health` /
    :meth:`stats` (the observability payloads) and :meth:`close`.
    """

    def __init__(self, config: Optional[ShardedConfig] = None):
        self.config = config or ShardedConfig()
        self.counters = ServingCounters()
        self._lock = threading.Lock()
        self._inflight: "dict[int, _Pending]" = {}
        #: Ordered register/mutate history; replayed into respawned workers
        #: so every worker's registry converges to the same version chain.
        self._replay: "list[tuple[str, dict]]" = []
        self._closed = False
        methods = multiprocessing.get_all_start_methods()
        self._ctx = multiprocessing.get_context(
            "fork" if "fork" in methods else "spawn"
        )
        self.workers: "list[_WorkerHandle]" = []
        for i in range(self.config.processes):
            self.workers.append(
                _WorkerHandle(i, self._ctx, self.config, self._open_pipe_fds)
            )
        for worker in self.workers:
            self._start_reader(worker)

    # -- supervision ----------------------------------------------------------

    def _open_pipe_fds(self) -> "list[int]":
        """Front-end pipe fds a forked child would inherit (to close there)."""
        fds = []
        for worker in self.workers:
            conn = getattr(worker, "conn", None)
            if conn is not None:
                try:
                    fds.append(conn.fileno())
                except OSError:
                    pass  # already closed (worker mid-respawn)
        return fds

    def _start_reader(self, worker: _WorkerHandle) -> None:
        thread = threading.Thread(
            target=self._read_loop,
            args=(worker, worker.generation),
            daemon=True,
            name=f"repro-shard-reader-{worker.index}",
        )
        thread.start()

    def _read_loop(self, worker: _WorkerHandle, generation: int) -> None:
        conn = worker.conn
        while True:
            try:
                message = conn.recv()
            except (EOFError, OSError):
                break
            if message[0] == "result":
                self._complete(worker, generation, message[1], message[2], message[3])
            elif message[0] == "stats":
                self._complete(worker, generation, message[1], 200, message[2])
        self._on_worker_exit(worker, generation)

    def _complete(self, worker, generation, request_id, status, payload) -> None:
        with self._lock:
            if worker.generation != generation:
                return
            entry = worker.pending.pop(request_id, None)
            if entry is None:
                return
            pending, key, started, is_stats = entry
            if not is_stats:
                worker.inflight -= 1
                worker.served_total += 1
                if self._inflight.get(key) is pending:
                    del self._inflight[key]
        if not is_stats:
            elapsed = time.perf_counter() - started
            worker.latency.record(elapsed)
            self.counters.record_outcome(status, elapsed)
        headers = {"Retry-After": self.config.retry_after} if status == 503 else None
        pending.resolve(status, payload, headers)

    def _on_worker_exit(self, worker: _WorkerHandle, generation: int) -> None:
        """Reader saw EOF: fail its in-flight work and respawn (unless closing)."""
        with self._lock:
            if self._closed or worker.generation != generation:
                return
            failures = list(worker.pending.values())
            worker.pending.clear()
            worker.inflight = 0
            for pending, key, _, is_stats in failures:
                if not is_stats and self._inflight.get(key) is pending:
                    del self._inflight[key]
            worker.alive = False
            worker.restarts += 1
            worker.spawn()
            self._replay_registry(worker)
            self._start_reader(worker)
        error = {
            "error": {
                "type": "WorkerCrashed",
                "message": f"worker {worker.index} died; request was not completed",
            }
        }
        headers = {"Retry-After": self.config.retry_after}
        for pending, key, started, is_stats in failures:
            if not is_stats:
                self.counters.record_outcome(503, time.perf_counter() - started)
            pending.resolve(503, error, headers)

    # -- request path ---------------------------------------------------------

    def dispatch(self, kind: str, document: dict) -> "tuple[int, dict, Optional[dict]]":
        """Route one request document; returns ``(status, body, headers)``.

        Raises :class:`Overloaded` when the target worker is saturated.  A
        worker crash or a request-timeout produce a ``503`` return (with
        ``Retry-After``), never an exception or a hang.
        """
        key = routing_key(document)
        leader = False
        worker = None
        request_id = None
        with self._lock:
            if self._closed:
                raise Overloaded("server is shutting down", self.config.retry_after)
            pending = self._inflight.get(key)
            if pending is not None:
                self.counters.record_coalesced()
            else:
                worker = self.workers[key % len(self.workers)]
                if worker.inflight >= self.config.queue_depth:
                    self.counters.record_rejected()
                    raise Overloaded(
                        f"worker {worker.index} is at its queue depth "
                        f"({self.config.queue_depth}); retry shortly",
                        self.config.retry_after,
                    )
                pending = _Pending()
                request_id = worker.next_id
                worker.next_id += 1
                worker.pending[request_id] = (pending, key, time.perf_counter(), False)
                worker.inflight += 1
                self._inflight[key] = pending
                leader = True
        if leader:
            try:
                worker.send(("job", request_id, kind, document))
            except (BrokenPipeError, OSError):
                pass  # the reader thread sees EOF and fails the pending cleanly
        if not pending.event.wait(self.config.request_timeout):
            self.counters.record_timeout()
            with self._lock:
                if self._inflight.get(key) is pending:
                    del self._inflight[key]
            return (
                503,
                {
                    "error": {
                        "type": "Timeout",
                        "message": (
                            f"request did not complete within "
                            f"{self.config.request_timeout}s"
                        ),
                    }
                },
                {"Retry-After": self.config.retry_after},
            )
        return pending.status, pending.document, pending.headers

    # -- database registry -----------------------------------------------------

    def _replay_registry(self, worker: _WorkerHandle) -> None:
        """Rebuild a fresh worker's registry (caller holds the lock).

        A respawned worker starts with an empty service; replaying the
        recorded register/mutate history in order rebuilds exactly the state
        the surviving workers hold.  Entries that failed when first applied
        fail identically on replay (the documents are deterministic), so
        they cannot fork shard state.  Replay answers are discarded.
        """
        for kind, document in self._replay:
            pending = _Pending()
            request_id = worker.next_id
            worker.next_id += 1
            worker.pending[request_id] = (pending, None, time.perf_counter(), True)
            try:
                worker.send(("job", request_id, kind, document))
            except (BrokenPipeError, OSError):
                break  # died again already; the next exit replays afresh

    def _broadcast_registry(
        self, kind: str, document: dict, record: bool = False
    ) -> "list[Optional[tuple[int, dict]]]":
        """Send one registry job to EVERY worker; per-worker ``(status, body)``.

        Holds the dispatcher lock across recording the document in the
        replay log (for ``record=True``, i.e. register/mutate) and writing
        it to every worker pipe.  Log order and pipe order therefore agree:
        a worker that crashes either never saw the job (its respawn replays
        the recorded document) or saw it before dying (its respawn rebuilds
        from the full history) — either way each worker applies the
        operation exactly once and shards converge even across crashes.
        ``None`` entries mark workers that did not answer in time.
        """
        probes: "list[Optional[_Pending]]" = []
        with self._lock:
            if self._closed:
                raise Overloaded("server is shutting down", self.config.retry_after)
            if record:
                self._replay.append((kind, document))
            for worker in self.workers:
                pending = _Pending()
                request_id = worker.next_id
                worker.next_id += 1
                worker.pending[request_id] = (pending, None, time.perf_counter(), True)
                try:
                    worker.send(("job", request_id, kind, document))
                    probes.append(pending)
                except (BrokenPipeError, OSError):
                    worker.pending.pop(request_id, None)
                    probes.append(None)
        deadline = time.monotonic() + self.config.request_timeout
        replies: "list[Optional[tuple[int, dict]]]" = []
        for pending in probes:
            if pending is None:
                replies.append(None)
                continue
            remaining = max(0.0, deadline - time.monotonic())
            if pending.event.wait(remaining):
                replies.append((pending.status, pending.document))
            else:
                replies.append(None)
        return replies

    def _registry_response(
        self, replies: "list[Optional[tuple[int, dict]]]"
    ) -> "tuple[int, dict, Optional[dict]]":
        """Fold per-worker replies into one HTTP answer ``(status, body, headers)``.

        Deterministic worker errors win (404 unknown name, 400 bad
        document — every worker answers them identically); a missing reply
        is a 503 with ``Retry-After``.  On success the body is worker 0's
        document plus per-shard version ids and a ``converged`` flag — the
        cross-worker proof the sharded serving tests assert on.
        """
        for reply in replies:
            if reply is not None and reply[0] != 200:
                status, payload = reply
                headers = (
                    {"Retry-After": self.config.retry_after} if status == 503 else None
                )
                return status, payload, headers
        if any(reply is None for reply in replies):
            return (
                503,
                {"error": {"type": "WorkerCrashed",
                           "message": "a worker did not answer; retry shortly"}},
                {"Retry-After": self.config.retry_after},
            )
        body = dict(replies[0][1])
        if "version_id" in body:
            shards = [
                {"index": worker.index, "version_id": reply[1]["version_id"]}
                for worker, reply in zip(self.workers, replies)
            ]
            body["shards"] = shards
            body["converged"] = len({s["version_id"] for s in shards}) == 1
        elif body.get("kind") == "database-listing":
            views = [
                {d["name"]: d["version_id"] for d in reply[1]["databases"]}
                for reply in replies
            ]
            body["converged"] = all(view == views[0] for view in views[1:])
        return 200, body, None

    def register_database_doc(
        self, name: str, database_doc: dict
    ) -> "tuple[int, dict, Optional[dict]]":
        """``PUT /v1/databases/{name}``: register *database_doc* on every worker."""
        replies = self._broadcast_registry(
            "register", {"name": name, "database": database_doc}, record=True
        )
        return self._registry_response(replies)

    def mutate_database_doc(
        self, name: str, mutation_doc: dict
    ) -> "tuple[int, dict, Optional[dict]]":
        """``POST .../mutate``: apply one mutation document on every worker."""
        replies = self._broadcast_registry(
            "mutate", {"name": name, "mutation": mutation_doc}, record=True
        )
        return self._registry_response(replies)

    def database_info(self, name: str) -> "tuple[int, dict, Optional[dict]]":
        """Convergence-checked ``database-info`` for *name* (asks every worker)."""
        replies = self._broadcast_registry("database-info", {"name": name})
        return self._registry_response(replies)

    def database_listing(self) -> "tuple[int, dict, Optional[dict]]":
        """The ``/v1/databases`` body with a cross-shard ``converged`` flag."""
        replies = self._broadcast_registry("databases", {})
        return self._registry_response(replies)

    # -- observability --------------------------------------------------------

    def _probe_workers(self, timeout: float) -> "list[Optional[dict]]":
        """Ask every worker for its stats; ``None`` where no reply in time."""
        probes: "list[tuple[_WorkerHandle, Optional[_Pending]]]" = []
        for worker in self.workers:
            pending = _Pending()
            with self._lock:
                request_id = worker.next_id
                worker.next_id += 1
                worker.pending[request_id] = (pending, None, time.perf_counter(), True)
            try:
                worker.send(("stats", request_id))
                probes.append((worker, pending))
            except (BrokenPipeError, OSError):
                with self._lock:
                    worker.pending.pop(request_id, None)
                probes.append((worker, None))
        deadline = time.monotonic() + timeout
        replies: "list[Optional[dict]]" = []
        for worker, pending in probes:
            if pending is None:
                replies.append(None)
                continue
            remaining = max(0.0, deadline - time.monotonic())
            if pending.event.wait(remaining) and pending.status == 200:
                replies.append(pending.document)
            else:
                replies.append(None)
        return replies

    def health(self, timeout: float = 2.0) -> dict:
        """The ``/v1/health`` document: ``ok`` only when every worker answers."""
        replies = self._probe_workers(timeout)
        workers = []
        cache = {"hits": 0, "misses": 0, "size": 0}
        databases: "list[str]" = []
        all_up = True
        for worker, reply in zip(self.workers, replies):
            info = worker.summary()
            if reply is None:
                all_up = False
            else:
                info["cache"] = reply["cache"]
                for field_name in cache:
                    cache[field_name] += reply["cache"][field_name]
                for name in reply.get("databases", []):
                    if name not in databases:
                        databases.append(name)
            workers.append(info)
            all_up = all_up and info["alive"]
        return {
            "format": WIRE_VERSION,
            "kind": "health",
            "status": "ok" if all_up else "degraded",
            "version": __version__,
            "api_version": API_VERSION,
            "wire_format": WIRE_VERSION,
            "processes": len(self.workers),
            "cache": cache,
            "workers": workers,
            "databases": databases,
        }

    def stats(self, timeout: float = 2.0) -> dict:
        """The ``/v1/stats`` document (see :func:`serving_stats_to_json`)."""
        replies = self._probe_workers(timeout)
        workers = []
        cache = {"hits": 0, "misses": 0, "size": 0}
        restarts = 0
        for worker, reply in zip(self.workers, replies):
            info = worker.summary()
            info["latency_ms"] = worker.latency.snapshot()
            info["served"] = worker.served_total
            restarts += worker.restarts
            if reply is not None:
                info["cache"] = reply["cache"]
                info["served_by_kind"] = reply["served"]
                for field_name in cache:
                    cache[field_name] += reply["cache"][field_name]
            workers.append(info)
        lookups = cache["hits"] + cache["misses"]
        serving = {
            "mode": "sharded",
            "processes": len(self.workers),
            "queue_depth": self.config.queue_depth,
            "restarts": restarts,
            "cache": dict(
                cache, hit_rate=(cache["hits"] / lookups if lookups else None)
            ),
        }
        serving.update(self.counters.snapshot())
        return serving_stats_to_json(serving, workers)

    # -- lifecycle ------------------------------------------------------------

    def close(self, timeout: float = 5.0) -> None:
        """Stop every worker (graceful, then forceful) and fail leftovers."""
        with self._lock:
            if self._closed:
                return
            self._closed = True
            failures = []
            for worker in self.workers:
                failures.extend(worker.pending.values())
                worker.pending.clear()
                worker.inflight = 0
            self._inflight.clear()
        for pending, _key, _started, _is_stats in failures:
            pending.resolve(
                503,
                {"error": {"type": "ShuttingDown", "message": "server is closing"}},
                {"Retry-After": self.config.retry_after},
            )
        for worker in self.workers:
            try:
                worker.send(("shutdown",))
            except (BrokenPipeError, OSError):
                pass
        deadline = time.monotonic() + timeout
        for worker in self.workers:
            worker.process.join(max(0.1, deadline - time.monotonic()))
            if worker.process.is_alive():
                worker.process.terminate()
                worker.process.join(1.0)
            if worker.process.is_alive():
                worker.process.kill()
                worker.process.join(1.0)
            worker.conn.close()


class ShardedApiServer(ThreadingHTTPServer):
    """A threading HTTP front end bound to one :class:`ShardDispatcher`.

    HTTP threads only parse/relay; every computation happens in a worker
    process, so the front end stays responsive even at saturation.
    """

    daemon_threads = True

    def __init__(
        self,
        address,
        dispatcher: ShardDispatcher,
        quiet: bool = True,
        max_body_bytes: int = MAX_BODY_BYTES,
    ):
        self.dispatcher = dispatcher
        self.quiet = quiet
        self.max_body_bytes = max_body_bytes
        super().__init__(address, _ShardedHandler)


class _ShardedHandler(JsonHandler):
    """Routes ``/v1/...`` requests onto the bound dispatcher."""

    server: ShardedApiServer  # narrowed type for the attribute lookups below

    def do_GET(self) -> None:  # noqa: N802 - stdlib naming
        """Dispatch ``GET /v1/health``, ``/v1/scenarios``, ``/v1/stats`` and
        the convergence-checked ``/v1/databases`` listing/info routes."""
        route = databases_route(self.path)
        try:
            if self.path == f"/{API_VERSION}/health":
                self._send_json(200, self.server.dispatcher.health())
            elif self.path == f"/{API_VERSION}/stats":
                self._send_json(200, self.server.dispatcher.stats())
            elif self.path == f"/{API_VERSION}/scenarios":
                self._send_json(
                    200,
                    {
                        "format": WIRE_VERSION,
                        "kind": "scenarios",
                        "scenarios": scenarios_listing(),
                    },
                )
            elif route is not None and route[0] == "list":
                status, body, headers = self.server.dispatcher.database_listing()
                self._send_json(status, body, headers)
            elif route is not None and route[0] == "info":
                status, body, headers = self.server.dispatcher.database_info(route[1])
                self._send_json(status, body, headers)
            elif route is not None:  # GET on .../mutate
                self._send_json(405, {"error": {"type": "MethodNotAllowed",
                                                "message": "use POST"}})
            elif self.path in (f"/{API_VERSION}/explain", f"/{API_VERSION}/query"):
                self._send_json(405, {"error": {"type": "MethodNotAllowed",
                                                "message": "use POST"}})
            else:
                self._send_json(404, {"error": {"type": "NotFound",
                                                "message": f"no route {self.path}"}})
        except Overloaded as exc:
            self._send_error_json(503, exc, {"Retry-After": exc.retry_after})
        except Exception as exc:  # noqa: BLE001 - last-resort 500
            self._send_error_json(500, exc)

    def do_PUT(self) -> None:  # noqa: N802 - stdlib naming
        """Broadcast ``PUT /v1/databases/{name}`` to every worker."""
        route = databases_route(self.path)
        try:
            if route is not None and route[0] == "info":
                try:
                    document = self._read_body()
                except ValueError as exc:
                    self._send_error_json(400, exc)
                    return
                status, body, headers = self.server.dispatcher.register_database_doc(
                    route[1], document
                )
                self._send_json(status, body, headers)
            else:
                self._send_json(404, {"error": {"type": "NotFound",
                                                "message": f"no route {self.path}"}})
        except Overloaded as exc:
            self._send_error_json(503, exc, {"Retry-After": exc.retry_after})
        except Exception as exc:  # noqa: BLE001 - last-resort 500
            self._send_error_json(500, exc)

    def do_POST(self) -> None:  # noqa: N802 - stdlib naming
        """Relay ``POST /v1/explain`` / ``/v1/query`` to one worker and
        broadcast ``POST /v1/databases/{name}/mutate`` to all of them."""
        route = databases_route(self.path)
        try:
            if self.path == f"/{API_VERSION}/explain":
                kind = "explain"
            elif self.path == f"/{API_VERSION}/query":
                kind = "query"
            elif route is not None and route[0] == "mutate":
                try:
                    document = self._read_body()
                except ValueError as exc:
                    self._send_error_json(400, exc)
                    return
                status, body, headers = self.server.dispatcher.mutate_database_doc(
                    route[1], document
                )
                self._send_json(status, body, headers)
                return
            elif route is not None:  # POST on /v1/databases[/{name}]
                self._send_json(405, {"error": {"type": "MethodNotAllowed",
                                                "message": "use GET or PUT"}})
                return
            elif self.path in (f"/{API_VERSION}/health", f"/{API_VERSION}/scenarios",
                               f"/{API_VERSION}/stats"):
                self._send_json(405, {"error": {"type": "MethodNotAllowed",
                                                "message": "use GET"}})
                return
            else:
                self._send_json(404, {"error": {"type": "NotFound",
                                                "message": f"no route {self.path}"}})
                return
            try:
                document = self._read_body()
            except ValueError as exc:
                self._send_error_json(400, exc)
                return
            status, body, headers = self.server.dispatcher.dispatch(kind, document)
            self._send_json(status, body, headers)
        except Overloaded as exc:
            self._send_error_json(503, exc, {"Retry-After": exc.retry_after})
        except Exception as exc:  # noqa: BLE001 - last-resort 500
            self._send_error_json(500, exc)


def make_sharded_server(
    config: Optional[ShardedConfig] = None,
    host: str = "127.0.0.1",
    port: int = 0,
    quiet: bool = True,
    max_body_bytes: int = MAX_BODY_BYTES,
) -> ShardedApiServer:
    """Build a bound sharded server (workers started, HTTP not yet serving).

    ``port=0`` binds an ephemeral free port — read it back from
    ``server.server_address``, as the tests and the load harness do.
    """
    dispatcher = ShardDispatcher(config or ShardedConfig())
    return ShardedApiServer(
        (host, port), dispatcher, quiet=quiet, max_body_bytes=max_body_bytes
    )


def serve_sharded(
    host: str = "127.0.0.1",
    port: int = 8080,
    config: Optional[ShardedConfig] = None,
    quiet: bool = False,
) -> int:
    """Run the sharded front end until interrupted (the CLI entry point)."""
    config = config or ShardedConfig()
    server = make_sharded_server(config, host, port, quiet=quiet)
    bound_host, bound_port = server.server_address[:2]
    print(
        f"repro api {API_VERSION} (wire format {WIRE_VERSION}) "
        f"listening on http://{bound_host}:{bound_port} "
        f"[{config.processes} worker processes, queue depth {config.queue_depth}]"
    )
    print(f"  POST /{API_VERSION}/explain   POST /{API_VERSION}/query   "
          f"GET /{API_VERSION}/scenarios   GET /{API_VERSION}/health   "
          f"GET /{API_VERSION}/stats")
    print(f"  GET/PUT /{API_VERSION}/databases[/{{name}}]   "
          f"POST /{API_VERSION}/databases/{{name}}/mutate")

    def _terminate(signum, frame):
        raise KeyboardInterrupt

    try:
        # SIGTERM (process managers, CI teardown) must shut the worker pool
        # down like Ctrl-C does, not strand orphan worker processes.
        signal.signal(signal.SIGTERM, _terminate)
    except ValueError:
        pass  # not the main thread (embedded use) — skip the handler
    try:
        server.serve_forever()
    except KeyboardInterrupt:
        pass
    finally:
        server.server_close()
        server.dispatcher.close()
    return 0
