"""Canonical pretty-printer for the ``.rq`` query language.

The printer is the parser's exact inverse: for every expressible plan ``Q``,
``parse(pretty(Q))`` lowers to a structurally identical plan — same operator
tree, same parameters, same explicit labels (and therefore identical result
bags and explanation sets).  The fuzz oracle's grammar round-trip check
(:mod:`repro.fuzz.oracle`) and the golden scenario files under ``queries/``
both pin this property.

Output is *canonical*: one fixed layout (two-space indent, one stage per
line, lowercase keywords, double-quoted strings) so golden files can be
byte-pinned.  The only plan the grammar cannot express is one containing a
:class:`~repro.algebra.operators.Map` (its parameter is an arbitrary Python
callable); printing such a plan raises :class:`~repro.lang.errors.PrettyError`.
"""

from __future__ import annotations

import re
from typing import Any, List, Optional, Sequence

from repro.algebra.operators import (
    BagDestroy,
    CartesianProduct,
    Deduplication,
    Difference,
    GroupAggregation,
    Join,
    NestedAggregation,
    Operator,
    Projection,
    Query,
    RelationFlatten,
    RelationNesting,
    Renaming,
    Selection,
    TableAccess,
    TupleFlatten,
    TupleNesting,
    Union,
)
from repro.algebra.expressions import (
    And,
    Arith,
    Attr,
    Cmp,
    Const,
    Contains,
    Expr,
    IsNull,
    Not,
    Or,
)
from repro.lang.errors import PrettyError
from repro.lang.lexer import KEYWORDS
from repro.nested.values import Bag, Tup, is_null
from repro.whynot.placeholders import Cond, HasValue, _Any, _Star

_INDENT = "  "
_PLAIN_IDENT = re.compile(r"[A-Za-z_][A-Za-z0-9_]*\Z")


# -- atoms --------------------------------------------------------------------


def _escape_char(ch: str, quote: str) -> str:
    if ch == quote:
        return "\\" + quote
    if ch == "\\":
        return "\\\\"
    if ch == "\n":
        return "\\n"
    if ch == "\t":
        return "\\t"
    if ch == "\r":
        return "\\r"
    code = ord(ch)
    if 0xD800 <= code <= 0xDFFF or not ch.isprintable():
        if code > 0xFFFF:
            return f"\\U{code:08x}"
        return f"\\u{code:04x}"
    return ch


def string_literal(text: str) -> str:
    """A double-quoted string literal (printable chars stay raw)."""
    return '"' + "".join(_escape_char(ch, '"') for ch in text) + '"'


def ident(name: str) -> str:
    """An identifier, backquoted when it collides with the grammar."""
    if _PLAIN_IDENT.match(name) and name.lower() not in KEYWORDS:
        return name
    return "`" + "".join(_escape_char(ch, "`") for ch in name) + "`"


def path_text(path: Sequence[str]) -> str:
    """A dotted path with per-step quoting."""
    return ".".join(ident(step) for step in path)


def dotted_text(dotted: str) -> str:
    """A dotted-string path (``table.attr``) with per-step quoting."""
    return path_text(dotted.split("."))


def literal(value: Any) -> str:
    """One literal value: number, string, boolean, null, nan, inf."""
    if is_null(value):
        return "null"
    if isinstance(value, bool):
        return "true" if value else "false"
    if isinstance(value, str):
        return string_literal(value)
    if isinstance(value, float):
        if value != value:
            return "nan"
        if value == float("inf"):
            return "inf"
        if value == float("-inf"):
            return "-inf"
        return repr(value)
    if isinstance(value, int):
        return repr(value)
    raise PrettyError(f"cannot print literal {value!r} of type {type(value).__name__}")


# -- expressions --------------------------------------------------------------

#: Precedence levels (higher binds tighter).
_LVL_OR, _LVL_AND, _LVL_NOT, _LVL_CMP, _LVL_ADD, _LVL_MUL, _LVL_ATOM = range(1, 8)


def _level(expr: Expr) -> int:
    if isinstance(expr, Or):
        return _LVL_OR
    if isinstance(expr, And):
        return _LVL_AND
    if isinstance(expr, Not):
        return _LVL_NOT
    if isinstance(expr, (Cmp, Contains, IsNull)):
        return _LVL_CMP
    if isinstance(expr, Arith):
        return _LVL_ADD if expr.op in ("+", "-") else _LVL_MUL
    return _LVL_ATOM


def _expr_at(expr: Expr, min_level: int) -> str:
    text = _expr(expr)
    if _level(expr) < min_level:
        return f"({text})"
    return text


def _expr(expr: Expr) -> str:
    if isinstance(expr, Attr):
        return path_text(expr.path)
    if isinstance(expr, Const):
        return literal(expr.value)
    if isinstance(expr, Or):
        return " or ".join(_expr_at(t, _LVL_AND) for t in expr.terms)
    if isinstance(expr, And):
        return " and ".join(_expr_at(t, _LVL_NOT) for t in expr.terms)
    if isinstance(expr, Not):
        return "not " + _expr_at(expr.term, _LVL_NOT)
    if isinstance(expr, Cmp):
        left = _expr_at(expr.left, _LVL_ADD)
        right = _expr_at(expr.right, _LVL_ADD)
        return f"{left} {expr.op} {right}"
    if isinstance(expr, Contains):
        needle = _expr_at(expr.needle, _LVL_ADD)
        haystack = _expr_at(expr.haystack, _LVL_ADD)
        return f"{needle} in {haystack}"
    if isinstance(expr, IsNull):
        return _expr_at(expr.term, _LVL_ADD) + " is null"
    if isinstance(expr, Arith):
        if expr.op in ("+", "-"):
            left = _expr_at(expr.left, _LVL_ADD)
            right = _expr_at(expr.right, _LVL_MUL)
        else:
            left = _expr_at(expr.left, _LVL_MUL)
            right = _expr_at(expr.right, _LVL_ATOM)
        return f"{left} {expr.op} {right}"
    raise PrettyError(f"cannot print expression node {type(expr).__name__}")


def expr_text(expr: Expr) -> str:
    """Render one expression in canonical concrete syntax."""
    return _expr(expr)


# -- why-not patterns ---------------------------------------------------------


def pattern_text(pattern: Any) -> str:
    """Render one why-not pattern (NIP component)."""
    if isinstance(pattern, _Any):
        return "?"
    if isinstance(pattern, _Star):
        return "*"
    if isinstance(pattern, Cond):
        return f"{pattern.op} {literal(pattern.bound)}"
    if isinstance(pattern, HasValue):
        return f"has {literal(pattern.needle)}"
    if isinstance(pattern, Tup):
        fields = ", ".join(
            f"{ident(name)}: {pattern_text(value)}" for name, value in pattern.items()
        )
        return "{" + fields + "}"
    if isinstance(pattern, Bag):
        elements: List[str] = []
        for element, count in pattern.items():
            elements.extend([pattern_text(element)] * count)
        return "[" + ", ".join(elements) + "]"
    return literal(pattern)


# -- operators ----------------------------------------------------------------


def _label_suffix(op: Operator) -> str:
    if op._label is None:
        return ""
    return ' @"' + "".join(_escape_char(ch, '"') for ch in op._label) + '"'


def _projection_col(name: str, expr: Expr) -> str:
    if isinstance(expr, Attr) and expr.path[-1] == name:
        return path_text(expr.path)
    return f"{ident(name)} = {_expr(expr)}"


def _group_key(out: str, src: Sequence[str]) -> str:
    if tuple(src) == (out,):
        return ident(out)
    return f"{ident(out)} = {path_text(src)}"


def _agg_spec(spec) -> str:
    if spec.expr is None:
        return f"{spec.func}(*) as {ident(spec.out)}"
    distinct = "distinct " if spec.distinct else ""
    return f"{spec.func}({distinct}{_expr(spec.expr)}) as {ident(spec.out)}"


def _pipeline_lines(op: Operator, indent: int) -> List[str]:
    """Linearize the left spine of *op* into ``from``/``|>`` lines."""
    pad = _INDENT * indent
    spine: List[Operator] = []
    current = op
    while not isinstance(current, TableAccess):
        if not current.children:
            raise PrettyError(
                f"cannot print operator {type(current).__name__} as a pipeline head"
            )
        spine.append(current)
        current = current.children[0]
    lines = [f"{pad}from {ident(current.table)}{_label_suffix(current)}"]
    for stage_op in reversed(spine):
        lines.extend(_stage_lines(stage_op, indent))
    return lines


def _binary_stage_lines(
    op: Operator, head: str, tail: str, indent: int
) -> List[str]:
    pad = _INDENT * indent
    lines = [f"{pad}|> {head} ("]
    lines.extend(_pipeline_lines(op.children[1], indent + 1))
    lines.append(f"{pad}){tail}{_label_suffix(op)}")
    return lines


def _stage_lines(op: Operator, indent: int) -> List[str]:
    pad = _INDENT * indent

    def one(text: str) -> List[str]:
        return [f"{pad}|> {text}{_label_suffix(op)}"]

    if isinstance(op, Selection):
        return one(f"select {_expr(op.pred)}")
    if isinstance(op, Projection):
        cols = ", ".join(_projection_col(n, e) for n, e in op.cols)
        return one(f"project [{cols}]")
    if isinstance(op, Renaming):
        pairs = ", ".join(f"{ident(n)} = {ident(o)}" for n, o in op.pairs)
        return one(f"rename [{pairs}]")
    if isinstance(op, Join):
        head = "join" if op.how == "inner" else f"join {op.how}"
        tail = ""
        if op.on:
            pairs = ", ".join(
                f"{path_text(l)} = {path_text(r)}" for l, r in op.on
            )
            tail += f" on {pairs}"
        if op.extra is not None:
            tail += f" extra ({_expr(op.extra)})"
        if op.drop_right_keys:
            tail += " drop"
        return _binary_stage_lines(op, head, tail, indent)
    if isinstance(op, Union):
        return _binary_stage_lines(op, "union", "", indent)
    if isinstance(op, Difference):
        return _binary_stage_lines(op, "except", "", indent)
    if isinstance(op, CartesianProduct):
        return _binary_stage_lines(op, "product", "", indent)
    if isinstance(op, TupleFlatten):
        alias = f" as {ident(op.alias)}" if op.alias else ""
        return one(f"flatten tuple {path_text(op.path)}{alias}")
    if isinstance(op, RelationFlatten):
        mode = "outer" if op.outer else "inner"
        alias = f" as {ident(op.alias)}" if op.alias else ""
        return one(f"flatten {mode} {path_text(op.path)}{alias}")
    if isinstance(op, TupleNesting):
        attrs = ", ".join(ident(a) for a in op.attrs)
        return one(f"nest tuple [{attrs}] as {ident(op.target)}")
    if isinstance(op, RelationNesting):
        attrs = ", ".join(ident(a) for a in op.attrs)
        return one(f"nest bag [{attrs}] as {ident(op.target)}")
    if isinstance(op, NestedAggregation):
        agg_field = f" field {ident(op.field)}" if op.field else ""
        return one(
            f"aggregate {op.func}({path_text(op.attr)}){agg_field} "
            f"as {ident(op.out)}"
        )
    if isinstance(op, GroupAggregation):
        keys = ", ".join(_group_key(out, src) for out, src in op.key_specs)
        aggs = ", ".join(_agg_spec(spec) for spec in op.aggs)
        return one(f"group by [{keys}] agg [{aggs}]")
    if isinstance(op, Deduplication):
        return one("distinct")
    if isinstance(op, BagDestroy):
        return one(f"destroy {ident(op.attr)}")
    raise PrettyError(
        f"operator {type(op).__name__} is not expressible in the query language"
    )


# -- entry points -------------------------------------------------------------


def pretty_query(query: Query, name: Optional[str] = None) -> str:
    """Render one query as a canonical ``query ... { ... }`` block."""
    text = query.name if name is None else name
    name = ""
    if text:
        name = ident(text) + " " if _is_bare_name(text) else (
            string_literal(text) + " "
        )
    lines = [f"query {name}{{"]
    lines.extend(_pipeline_lines(query.root, 1))
    lines.append("}")
    return "\n".join(lines)


def _is_bare_name(name: str) -> bool:
    return bool(_PLAIN_IDENT.match(name)) and name.lower() not in KEYWORDS


def _alt_sources(sources: Sequence[str]) -> str:
    return "[" + ", ".join(dotted_text(s) for s in sources) + "]"


def pretty_alternatives(alternatives: Sequence) -> str:
    """Render a ``with alternatives { ... }`` block.

    Accepts the repository's group shapes: a mutual group is a sequence of
    dotted source strings; a directed group is an ``(origin, targets)``
    pair.
    """
    lines = ["with alternatives {"]
    for group in alternatives:
        if (
            isinstance(group, tuple)
            and len(group) == 2
            and isinstance(group[0], str)
            and not isinstance(group[1], str)
        ):
            origin, targets = group
            lines.append(f"{_INDENT}{dotted_text(origin)} -> {_alt_sources(targets)}")
        else:
            lines.append(f"{_INDENT}{_alt_sources(list(group))}")
    lines.append("}")
    return "\n".join(lines)


def pretty_program(
    query: Query,
    nip: Any = None,
    alternatives: Sequence = (),
    name: Optional[str] = None,
) -> str:
    """Render a full ``.rq`` program (query + optional why-not question).

    ``name`` overrides the query's own name when given.  The output ends
    with a newline and reparses to a structurally identical program.
    """
    parts = [pretty_query(query, name=name)]
    if nip is not None:
        parts.append(f"whynot {pattern_text(nip)}")
        if alternatives:
            parts.append(pretty_alternatives(alternatives))
    return "\n\n".join(parts) + "\n"
