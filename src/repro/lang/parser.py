"""Recursive-descent parser for the ``.rq`` query language.

Grammar reference: ``docs/LANGUAGE.md``.  The parser consumes the token
stream of :mod:`repro.lang.lexer` and produces a :class:`repro.lang.ast.Program`
— a pipeline AST whose expressions are :mod:`repro.algebra.expressions`
nodes and whose why-not patterns are value-model ``Tup``/``Bag``/placeholder
objects.  Every syntax error is a position-carrying
:class:`~repro.lang.errors.LangError` (never a raw traceback).
"""

from __future__ import annotations

from typing import Any, List, Optional, Tuple

from repro.algebra.aggregates import AGGREGATE_FUNCTIONS, AggSpec
from repro.algebra.expressions import (
    And,
    Arith,
    Attr,
    Cmp,
    Const,
    Contains,
    Expr,
    IsNull,
    Not,
    Or,
)
from repro.lang import ast
from repro.lang.errors import LangError
from repro.lang.lexer import Token, tokenize
from repro.nested.values import NAN, NULL, Bag, Tup
from repro.whynot.placeholders import ANY, STAR, Cond, HasValue

#: Comparison punctuation accepted by ``Cmp`` and why-not ``Cond`` patterns.
_CMP_OPS = ("=", "!=", "<", "<=", ">", ">=")
_JOIN_HOWS = ("inner", "left", "right", "full")


class Parser:
    """Token cursor with the recursive-descent productions."""

    def __init__(self, source: str):
        self.source = source
        self.tokens = tokenize(source)
        self.pos = 0

    # -- cursor helpers -------------------------------------------------------

    def peek(self, ahead: int = 0) -> Token:
        """The token *ahead* positions from the cursor (clamped to eof)."""
        index = min(self.pos + ahead, len(self.tokens) - 1)
        return self.tokens[index]

    def advance(self) -> Token:
        """Consume and return the current token."""
        token = self.tokens[self.pos]
        if token.kind != "eof":
            self.pos += 1
        return token

    def at(self, kind: str) -> bool:
        """True when the current token has the given kind."""
        return self.peek().kind == kind

    def at_kw(self, *words: str) -> bool:
        """True when the current token is one of the given keywords."""
        token = self.peek()
        return token.kind == "kw" and token.value in words

    def error(self, message: str, token: Optional[Token] = None) -> LangError:
        """A :class:`LangError` anchored at *token* (default: current)."""
        token = token or self.peek()
        return LangError(message, token.line, token.column, source=self.source)

    def expect(self, kind: str, what: str = "") -> Token:
        """Consume a token of the given kind or fail with a diagnostic."""
        token = self.peek()
        if token.kind != kind:
            expected = what or f"'{kind}'"
            if token.kind == "eof":
                raise self.error(f"unexpected end of input, expected {expected}")
            raise self.error(f"expected {expected}, got {token.describe()}")
        return self.advance()

    def expect_kw(self, word: str) -> Token:
        """Consume one specific keyword or fail."""
        token = self.peek()
        if not self.at_kw(word):
            if token.kind == "eof":
                raise self.error(f"unexpected end of input, expected '{word}'")
            raise self.error(f"expected '{word}', got {token.describe()}")
        return self.advance()

    def ident(self, what: str = "identifier") -> str:
        """Consume an identifier and return its name."""
        return self.expect("ident", what).value

    # -- program --------------------------------------------------------------

    def program(self) -> ast.Program:
        """``program := query_block [whynot_block] [alternatives_block]``."""
        start = self.peek()
        self.expect_kw("query")
        name = ""
        if self.at("ident") or self.at("string"):
            name = self.advance().value
        self.expect("{", "'{' opening the query block")
        pipeline = self.pipeline()
        self.expect("}", "'}' closing the query block")
        program = ast.Program(
            name=name, pipeline=pipeline, pos=(start.line, start.column)
        )
        if self.at_kw("whynot"):
            nip_tok = self.advance()
            program.nip = self.tuple_pattern()
            program.nip_pos = (nip_tok.line, nip_tok.column)
        if self.at_kw("with"):
            if program.nip is None:
                raise self.error("'with alternatives' requires a whynot block")
            program.alternatives = self.with_alternatives()
        eof = self.peek()
        if eof.kind != "eof":
            raise self.error(f"unexpected {eof.describe()} after the program")
        return program

    def with_alternatives(self) -> List[ast.AltGroup]:
        """``with alternatives { group (, group)* }`` (cursor at ``with``)."""
        self.expect_kw("with")
        self.expect_kw("alternatives")
        return self.alternative_groups()

    def question(self) -> "Tuple[Any, ast.Pos, List[ast.AltGroup]]":
        """A standalone question: ``whynot pattern [with alternatives …]``.

        Used by the REPL to attach a why-not question to the previously run
        query.  Returns ``(nip, nip_pos, alternative_groups)``.
        """
        nip_tok = self.expect_kw("whynot")
        nip = self.tuple_pattern()
        groups: List[ast.AltGroup] = []
        if self.at_kw("with"):
            groups = self.with_alternatives()
        eof = self.peek()
        if eof.kind != "eof":
            raise self.error(f"unexpected {eof.describe()} after the question")
        return nip, (nip_tok.line, nip_tok.column), groups

    # -- pipelines and stages -------------------------------------------------

    def pipeline(self) -> ast.Pipeline:
        """``pipeline := from <table> [@label] ("|>" stage)*``."""
        start = self.peek()
        self.expect_kw("from")
        table = self.ident("table name")
        source = ast.Source(
            table=table, label=self.maybe_label(), pos=(start.line, start.column)
        )
        stages: List[ast.Stage] = []
        while self.at("|>"):
            self.advance()
            stages.append(self.stage())
        return ast.Pipeline(source=source, stages=stages)

    def maybe_label(self) -> Optional[str]:
        """An optional ``@"label"`` suffix."""
        if self.at("@"):
            self.advance()
            return self.expect("string", "label string after '@'").value
        return None

    def stage(self) -> ast.Stage:
        """Dispatch on the stage keyword."""
        token = self.peek()
        pos = (token.line, token.column)
        if token.kind != "kw":
            raise self.error(
                f"expected a pipeline stage keyword, got {token.describe()}"
            )
        handlers = {
            "select": self._stage_select,
            "project": self._stage_project,
            "rename": self._stage_rename,
            "join": self._stage_join,
            "union": self._stage_set,
            "except": self._stage_set,
            "product": self._stage_set,
            "flatten": self._stage_flatten,
            "nest": self._stage_nest,
            "aggregate": self._stage_aggregate,
            "group": self._stage_group,
            "distinct": self._stage_distinct,
            "destroy": self._stage_destroy,
        }
        handler = handlers.get(token.value)
        if handler is None:
            raise self.error(f"unknown pipeline stage keyword '{token.value}'")
        stage = handler()
        stage.pos = pos
        stage.label = self.maybe_label()
        return stage

    def _stage_select(self) -> ast.Stage:
        self.advance()
        return ast.SelectStage(pred=self.expr())

    def _stage_project(self) -> ast.Stage:
        self.advance()
        self.expect("[", "'[' opening the projection list")
        cols: List[Tuple[str, Expr]] = []
        while not self.at("]"):
            if cols:
                self.expect(",", "',' between projection columns")
            cols.append(self.projection_col())
        self.expect("]", "']' closing the projection list")
        if not cols:
            raise self.error("projection list must not be empty")
        return ast.ProjectStage(cols=cols)

    def projection_col(self) -> Tuple[str, Expr]:
        """``path`` (named by its last step) or ``out = expr``."""
        if self.at("ident") and self.peek(1).kind == "=":
            out = self.ident()
            self.advance()  # '='
            return (out, self.expr())
        path = self.path("projection column")
        return (path[-1], Attr(path))

    def _stage_rename(self) -> ast.Stage:
        self.advance()
        self.expect("[", "'[' opening the rename list")
        pairs: List[Tuple[str, str]] = []
        while not self.at("]"):
            if pairs:
                self.expect(",", "',' between renames")
            new = self.ident("new attribute name")
            self.expect("=", "'=' in rename (new = old)")
            pairs.append((new, self.ident("old attribute name")))
        self.expect("]", "']' closing the rename list")
        if not pairs:
            raise self.error("rename list must not be empty")
        return ast.RenameStage(pairs=pairs)

    def _stage_join(self) -> ast.Stage:
        self.advance()
        how = "inner"
        if self.at_kw(*_JOIN_HOWS):
            how = self.advance().value
        self.expect("(", "'(' opening the join's right-hand pipeline")
        right = self.pipeline()
        self.expect(")", "')' closing the join's right-hand pipeline")
        on: List[Tuple[str, str]] = []
        if self.at_kw("on"):
            self.advance()
            while True:
                left_path = self.dotted("join key path")
                self.expect("=", "'=' between join key paths")
                on.append((left_path, self.dotted("join key path")))
                if not self.at(","):
                    break
                self.advance()
        extra = None
        if self.at_kw("extra"):
            self.advance()
            self.expect("(", "'(' around the extra join predicate")
            extra = self.expr()
            self.expect(")", "')' closing the extra join predicate")
        drop = False
        if self.at_kw("drop"):
            self.advance()
            drop = True
        return ast.JoinStage(
            how=how, right=right, on=on, extra=extra, drop_right_keys=drop
        )

    def _stage_set(self) -> ast.Stage:
        kind = self.advance().value
        self.expect("(", f"'(' opening the {kind} right-hand pipeline")
        right = self.pipeline()
        self.expect(")", f"')' closing the {kind} right-hand pipeline")
        return ast.SetStage(kind=kind, right=right)

    def _stage_flatten(self) -> ast.Stage:
        self.advance()
        if not self.at_kw("inner", "outer", "tuple"):
            raise self.error(
                "flatten needs a mode: 'inner', 'outer' or 'tuple'"
            )
        mode = self.advance().value
        path = self.path("flatten path")
        alias = None
        if self.at_kw("as"):
            self.advance()
            alias = self.ident("flatten alias")
        return ast.FlattenStage(mode=mode, path=path, alias=alias)

    def _stage_nest(self) -> ast.Stage:
        self.advance()
        if not self.at_kw("bag", "tuple"):
            raise self.error("nest needs a mode: 'bag' or 'tuple'")
        mode = self.advance().value
        self.expect("[", "'[' opening the nested attribute list")
        attrs: List[str] = []
        while not self.at("]"):
            if attrs:
                self.expect(",", "',' between nested attributes")
            attrs.append(self.ident("attribute name"))
        self.expect("]", "']' closing the nested attribute list")
        self.expect_kw("as")
        return ast.NestStage(mode=mode, attrs=attrs, target=self.ident("target name"))

    def _stage_aggregate(self) -> ast.Stage:
        self.advance()
        func = self.agg_func()
        self.expect("(", "'(' after the aggregate function")
        path = self.path("aggregated bag path")
        self.expect(")", "')' closing the aggregate argument")
        agg_field = None
        if self.at_kw("field"):
            self.advance()
            agg_field = self.ident("aggregated field name")
        self.expect_kw("as")
        return ast.NestedAggStage(
            func=func, path=path, agg_field=agg_field, out=self.ident("output name")
        )

    def agg_func(self) -> str:
        """One of the registered aggregate function names."""
        token = self.expect("ident", "an aggregate function name")
        if token.value not in AGGREGATE_FUNCTIONS:
            raise self.error(
                f"unknown aggregate function '{token.value}'; expected one of "
                + ", ".join(AGGREGATE_FUNCTIONS),
                token,
            )
        return token.value

    def _stage_group(self) -> ast.Stage:
        self.advance()
        self.expect_kw("by")
        self.expect("[", "'[' opening the grouping key list")
        keys: List[Any] = []
        while not self.at("]"):
            if keys:
                self.expect(",", "',' between grouping keys")
            keys.append(self.group_key())
        self.expect("]", "']' closing the grouping key list")
        self.expect_kw("agg")
        self.expect("[", "'[' opening the aggregate list")
        aggs: List[AggSpec] = []
        while not self.at("]"):
            if aggs:
                self.expect(",", "',' between aggregates")
            aggs.append(self.agg_spec())
        self.expect("]", "']' closing the aggregate list")
        if not aggs:
            raise self.error("aggregate list must not be empty")
        return ast.GroupStage(keys=keys, aggs=aggs)

    def group_key(self) -> Any:
        """``name`` (plain key) or ``out = path`` (re-sourced key)."""
        out = self.ident("grouping key")
        if self.at("="):
            self.advance()
            return (out, self.dotted("grouping key source path"))
        return out

    def agg_spec(self) -> AggSpec:
        """``func([distinct] expr) as out`` with ``count(*)`` special-cased."""
        func = self.agg_func()
        self.expect("(", "'(' after the aggregate function")
        if self.at("*"):
            self.advance()
            self.expect(")", "')' closing the aggregate argument")
            self.expect_kw("as")
            if func != "count":
                raise self.error(f"only count(*) may aggregate '*', not {func}(*)")
            return AggSpec("count", None, self.ident("output name"))
        distinct = False
        if self.at_kw("distinct"):
            self.advance()
            distinct = True
        expr = self.expr()
        self.expect(")", "')' closing the aggregate argument")
        self.expect_kw("as")
        return AggSpec(func, expr, self.ident("output name"), distinct=distinct)

    def _stage_distinct(self) -> ast.Stage:
        self.advance()
        return ast.DistinctStage()

    def _stage_destroy(self) -> ast.Stage:
        self.advance()
        return ast.DestroyStage(attr=self.ident("bag attribute name"))

    # -- paths ----------------------------------------------------------------

    def path(self, what: str = "path") -> Tuple[str, ...]:
        """``ident ('.' ident)*`` as a path tuple."""
        steps = [self.ident(what)]
        while self.at("."):
            self.advance()
            steps.append(self.ident("path step"))
        return tuple(steps)

    def dotted(self, what: str = "path") -> str:
        """A path as its dotted-string spelling (constructor input form)."""
        return ".".join(self.path(what))

    # -- expressions ----------------------------------------------------------

    def expr(self) -> Expr:
        """``or_expr`` — the expression entry point."""
        return self._or_expr()

    def _or_expr(self) -> Expr:
        terms = [self._and_expr()]
        while self.at_kw("or"):
            self.advance()
            terms.append(self._and_expr())
        return terms[0] if len(terms) == 1 else Or(*terms)

    def _and_expr(self) -> Expr:
        terms = [self._not_expr()]
        while self.at_kw("and"):
            self.advance()
            terms.append(self._not_expr())
        return terms[0] if len(terms) == 1 else And(*terms)

    def _not_expr(self) -> Expr:
        if self.at_kw("not"):
            self.advance()
            return Not(self._not_expr())
        return self._cmp_expr()

    def _cmp_expr(self) -> Expr:
        left = self._add_expr()
        token = self.peek()
        if token.kind in _CMP_OPS:
            self.advance()
            return Cmp(token.kind, left, self._add_expr())
        if self.at_kw("in"):
            self.advance()
            return Contains(self._add_expr(), left)
        if self.at_kw("is"):
            self.advance()
            self.expect_kw("null")
            return IsNull(left)
        return left

    def _add_expr(self) -> Expr:
        left = self._mul_expr()
        while self.at("+") or self.at("-"):
            op = self.advance().kind
            left = Arith(op, left, self._mul_expr())
        return left

    def _mul_expr(self) -> Expr:
        left = self._primary()
        while self.at("*") or self.at("/"):
            op = self.advance().kind
            left = Arith(op, left, self._primary())
        return left

    def _primary(self) -> Expr:
        token = self.peek()
        if token.kind == "(":
            self.advance()
            inner = self.expr()
            self.expect(")", "')' closing the parenthesized expression")
            return inner
        if token.kind == "ident":
            return Attr(self.path("attribute path"))
        if self._at_literal():
            return Const(self.literal())
        if token.kind == "eof":
            raise self.error("unexpected end of input inside an expression")
        raise self.error(f"expected an expression, got {token.describe()}")

    # -- literals -------------------------------------------------------------

    def _at_literal(self) -> bool:
        token = self.peek()
        if token.kind in ("int", "float", "string"):
            return True
        if token.kind == "-":
            ahead = self.peek(1)
            return ahead.kind in ("int", "float") or (
                ahead.kind == "kw" and ahead.value == "inf"
            )
        return token.kind == "kw" and token.value in (
            "true", "false", "null", "nan", "inf",
        )

    def literal(self) -> Any:
        """One literal value: number, string, true/false, null, nan, inf."""
        token = self.peek()
        if token.kind == "-":
            self.advance()
            number = self.peek()
            if number.kind == "kw" and number.value == "inf":
                self.advance()
                return float("-inf")
            if number.kind not in ("int", "float"):
                raise self.error("expected a number after '-'")
            self.advance()
            return -number.value
        if token.kind in ("int", "float", "string"):
            return self.advance().value
        if token.kind == "kw":
            named = {
                "true": True,
                "false": False,
                "null": NULL,
                "nan": NAN,
                "inf": float("inf"),
            }
            if token.value in named:
                self.advance()
                return named[token.value]
        if token.kind == "eof":
            raise self.error("unexpected end of input, expected a literal")
        raise self.error(f"expected a literal, got {token.describe()}")

    # -- why-not patterns -----------------------------------------------------

    def tuple_pattern(self) -> Tup:
        """``{ field: pattern, ... }`` — a ``Tup`` of patterns/values."""
        self.expect("{", "'{' opening the tuple pattern")
        fields: List[Tuple[str, Any]] = []
        seen = set()
        while not self.at("}"):
            if fields:
                self.expect(",", "',' between tuple pattern fields")
            name_tok = self.expect("ident", "a field name")
            if name_tok.value in seen:
                raise self.error(
                    f"duplicate field '{name_tok.value}' in tuple pattern", name_tok
                )
            seen.add(name_tok.value)
            self.expect(":", "':' after the field name")
            fields.append((name_tok.value, self.pattern()))
        self.expect("}", "'}' closing the tuple pattern")
        return Tup(fields)

    def pattern(self) -> Any:
        """One why-not pattern: placeholder, condition, literal or nested."""
        token = self.peek()
        if token.kind == "?":
            self.advance()
            return ANY
        if token.kind == "{":
            return self.tuple_pattern()
        if token.kind == "[":
            return self.bag_pattern()
        if token.kind in _CMP_OPS:
            op = self.advance().kind
            return Cond(op, self.literal())
        if self.at_kw("has"):
            self.advance()
            return HasValue(self.literal())
        return self.literal()

    def bag_pattern(self) -> Bag:
        """``[ pattern-or-*, ... ]`` — a bag pattern (``*`` is STAR)."""
        self.expect("[", "'[' opening the bag pattern")
        elements: List[Any] = []
        while not self.at("]"):
            if elements:
                self.expect(",", "',' between bag pattern elements")
            if self.at("*"):
                self.advance()
                elements.append(STAR)
            else:
                elements.append(self.pattern())
        self.expect("]", "']' closing the bag pattern")
        return Bag(elements)

    # -- alternatives ---------------------------------------------------------

    def alternative_groups(self) -> List[ast.AltGroup]:
        """``{ group* }`` — mutual ``[a, b]`` and directed ``a -> [b]``."""
        self.expect("{", "'{' opening the alternatives block")
        groups: List[ast.AltGroup] = []
        while not self.at("}"):
            token = self.peek()
            pos = (token.line, token.column)
            if self.at("["):
                sources = self._alt_source_list()
                groups.append(ast.AltGroup(sources=sources, pos=pos))
            else:
                origin = self.dotted("alternative source path")
                self.expect("->", "'->' in a directed alternative group")
                targets = self._alt_source_list()
                groups.append(
                    ast.AltGroup(sources=targets, directed_from=origin, pos=pos)
                )
        self.expect("}", "'}' closing the alternatives block")
        return groups

    def _alt_source_list(self) -> List[str]:
        self.expect("[", "'[' opening the alternative source list")
        sources = [self.dotted("alternative source path")]
        while self.at(","):
            self.advance()
            sources.append(self.dotted("alternative source path"))
        self.expect("]", "']' closing the alternative source list")
        return sources


def parse_program(source: str) -> ast.Program:
    """Parse a full ``.rq`` program (query + optional why-not question)."""
    return Parser(source).program()


def parse_question(source: str):
    """Parse a standalone ``whynot …`` question (REPL continuation form).

    Returns ``(nip, nip_pos, alternative_groups)``.
    """
    return Parser(source).question()


def parse_alternatives(source: str) -> List[ast.AltGroup]:
    """Parse a standalone ``with alternatives { … }`` block (REPL form)."""
    parser = Parser(source)
    groups = parser.with_alternatives()
    eof = parser.peek()
    if eof.kind != "eof":
        raise parser.error(f"unexpected {eof.describe()} after the alternatives")
    return groups
