"""Lowering: ``.rq`` AST → :mod:`repro.algebra` operator trees.

:func:`lower_program` turns a parsed :class:`~repro.lang.ast.Program` into a
:class:`LoweredProgram` — the executable :class:`~repro.algebra.operators.Query`,
the why-not NIP and the alternative groups in the shapes the rest of the
reproduction consumes.  Constructor-level complaints (bad join type,
duplicate projection names, …) are re-raised as position-carrying
:class:`~repro.lang.errors.LangError` s anchored at the offending stage.

When a :class:`~repro.engine.database.Database` is supplied, the lowered
plan is additionally *validated* against its schemas: every operator's
output schema is inferred bottom-up and every expression's attribute paths
are resolved, so unknown attributes, paths into primitives and
bag-vs-primitive type mismatches fail here — with a source position — not
at evaluation time.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

from repro.algebra.expressions import (
    And,
    Arith,
    Attr,
    Cmp,
    Const,
    Contains,
    Expr,
    IsNull,
    Not,
    Or,
)
from repro.algebra.operators import (
    BagDestroy,
    CartesianProduct,
    Deduplication,
    Difference,
    GroupAggregation,
    Join,
    NestedAggregation,
    Operator,
    Projection,
    Query,
    RelationFlatten,
    RelationNesting,
    Renaming,
    Selection,
    TableAccess,
    TupleFlatten,
    TupleNesting,
    Union,
)
from repro.engine.database import Database
from repro.lang import ast
from repro.lang.errors import LangError
from repro.nested.types import BOOL, FLOAT, INT, STR, BagType, TupleType
from repro.nested.values import is_null

#: Expression types accepted by arithmetic.  BOOL rides along because the
#: value model keeps Python's numeric tower (``True == 1`` groups and joins
#: like ``1``), and the fuzz generator exercises exactly that.
_NUMERIC = (INT, FLOAT, BOOL)


@dataclass
class LoweredProgram:
    """The executable pieces of one ``.rq`` program."""

    query: Query
    nip: Any = None
    alternatives: List = field(default_factory=list)
    name: str = ""

    @property
    def has_question(self) -> bool:
        """True when the program carried a ``whynot`` block."""
        return self.nip is not None


class _Lowerer:
    """One lowering run: builds operators and records their positions."""

    def __init__(self, source: Optional[str] = None):
        self.source = source
        self.positions: Dict[int, ast.Pos] = {}

    def error(self, message: str, pos: ast.Pos) -> LangError:
        return LangError(message, pos[0], pos[1], source=self.source)

    def _construct(self, pos: ast.Pos, factory):
        """Run an operator constructor, re-raising errors with a position."""
        try:
            op = factory()
        except LangError:
            raise
        except (ValueError, KeyError, TypeError) as exc:
            raise self.error(str(exc), pos) from None
        self.positions[id(op)] = pos
        return op

    def pipeline(self, pipeline: ast.Pipeline) -> Operator:
        """Lower one pipeline into its operator chain."""
        source = pipeline.source
        op = self._construct(
            source.pos, lambda: TableAccess(source.table, label=source.label)
        )
        for stage in pipeline.stages:
            op = self.stage(op, stage)
        return op

    def stage(self, child: Operator, stage: ast.Stage) -> Operator:
        """Lower one stage onto its child operator."""
        pos, label = stage.pos, stage.label
        if isinstance(stage, ast.SelectStage):
            return self._construct(
                pos, lambda: Selection(child, stage.pred, label=label)
            )
        if isinstance(stage, ast.ProjectStage):
            return self._construct(
                pos, lambda: Projection(child, stage.cols, label=label)
            )
        if isinstance(stage, ast.RenameStage):
            return self._construct(
                pos, lambda: Renaming(child, stage.pairs, label=label)
            )
        if isinstance(stage, ast.JoinStage):
            right = self.pipeline(stage.right)
            return self._construct(
                pos,
                lambda: Join(
                    child,
                    right,
                    on=stage.on,
                    how=stage.how,
                    extra=stage.extra,
                    drop_right_keys=stage.drop_right_keys,
                    label=label,
                ),
            )
        if isinstance(stage, ast.SetStage):
            right = self.pipeline(stage.right)
            ctor = {
                "union": Union,
                "except": Difference,
                "product": CartesianProduct,
            }[stage.kind]
            return self._construct(pos, lambda: ctor(child, right, label=label))
        if isinstance(stage, ast.FlattenStage):
            if stage.mode == "tuple":
                return self._construct(
                    pos,
                    lambda: TupleFlatten(
                        child, stage.path, alias=stage.alias, label=label
                    ),
                )
            return self._construct(
                pos,
                lambda: RelationFlatten(
                    child,
                    stage.path,
                    alias=stage.alias,
                    outer=stage.mode == "outer",
                    label=label,
                ),
            )
        if isinstance(stage, ast.NestStage):
            ctor = TupleNesting if stage.mode == "tuple" else RelationNesting
            return self._construct(
                pos, lambda: ctor(child, stage.attrs, stage.target, label=label)
            )
        if isinstance(stage, ast.NestedAggStage):
            return self._construct(
                pos,
                lambda: NestedAggregation(
                    child,
                    stage.func,
                    stage.path,
                    stage.out,
                    field=stage.agg_field,
                    label=label,
                ),
            )
        if isinstance(stage, ast.GroupStage):
            return self._construct(
                pos,
                lambda: GroupAggregation(child, stage.keys, stage.aggs, label=label),
            )
        if isinstance(stage, ast.DistinctStage):
            return self._construct(pos, lambda: Deduplication(child, label=label))
        if isinstance(stage, ast.DestroyStage):
            return self._construct(
                pos, lambda: BagDestroy(child, stage.attr, label=label)
            )
        raise self.error(f"cannot lower stage {type(stage).__name__}", pos)


def lower_program(
    program: ast.Program,
    database: Optional[Database] = None,
    source: Optional[str] = None,
) -> LoweredProgram:
    """Lower a parsed program; validate against *database* when given."""
    lowerer = _Lowerer(source=source)
    root = lowerer.pipeline(program.pipeline)
    query = Query(root, name=program.name)
    if database is not None:
        _validate(query, database, lowerer, program)
    alternatives = lower_alternatives(program.alternatives)
    return LoweredProgram(
        query=query,
        nip=program.nip,
        alternatives=alternatives,
        name=program.name,
    )


def lower_alternatives(groups: List[ast.AltGroup]) -> List:
    """AST alternative groups → the shapes ``explain()`` consumes.

    Mutual groups become lists of dotted-path strings; directed groups
    become ``(origin, [targets])`` pairs.
    """
    return [
        (group.directed_from, list(group.sources))
        if group.directed_from is not None
        else list(group.sources)
        for group in groups
    ]


# -- schema validation --------------------------------------------------------


def _validate(
    query: Query, db: Database, lowerer: _Lowerer, program: ast.Program
) -> None:
    """Infer schemas bottom-up, checking expressions at each operator."""
    schemas: Dict[int, TupleType] = {}
    for op in query.ops:
        child_schemas = [schemas[id(child)] for child in op.children]
        pos = lowerer.positions.get(id(op), program.pos)
        if isinstance(op, TableAccess) and op.table not in db.tables():
            raise lowerer.error(
                f"unknown table {op.table!r}; available: "
                + ", ".join(db.tables()),
                pos,
            )
        _check_op_exprs(op, child_schemas, pos, lowerer)
        try:
            schemas[id(op)] = op.output_schema(child_schemas, db)
        except LangError:
            raise
        except (ValueError, KeyError, TypeError) as exc:
            message = str(exc) or type(exc).__name__
            raise lowerer.error(message.strip('"'), pos) from None


def _check_op_exprs(
    op: Operator, child_schemas: List[TupleType], pos: ast.Pos, lowerer: _Lowerer
) -> None:
    """Resolve every expression the operator holds against its input."""
    if isinstance(op, Selection):
        _expr_type(op.pred, child_schemas[0], pos, lowerer)
    elif isinstance(op, Projection):
        for _, expr in op.cols:
            _expr_type(expr, child_schemas[0], pos, lowerer)
    elif isinstance(op, Join) and op.extra is not None:
        combined = TupleType(
            tuple(child_schemas[0].fields) + tuple(child_schemas[1].fields)
        )
        _expr_type(op.extra, combined, pos, lowerer)
    elif isinstance(op, GroupAggregation):
        for spec in op.aggs:
            if spec.expr is not None:
                _expr_type(spec.expr, child_schemas[0], pos, lowerer)


def _attr_type(schema: TupleType, path: Tuple[str, ...], pos: ast.Pos,
               lowerer: _Lowerer):
    """The type an ``Attr`` path reaches — without crossing bag boundaries."""
    current: Any = schema
    for i, step in enumerate(path):
        if isinstance(current, BagType):
            raise lowerer.error(
                f"bad path '{'.'.join(path)}': cannot navigate step {step!r} "
                "through a bag-valued attribute; flatten it first",
                pos,
            )
        if not isinstance(current, TupleType):
            raise lowerer.error(
                f"bad path '{'.'.join(path)}': step {step!r} enters the "
                f"primitive attribute '{'.'.join(path[:i])}'",
                pos,
            )
        if not current.has_field(step):
            raise lowerer.error(
                f"unknown attribute '{'.'.join(path[: i + 1])}'; available: "
                + ", ".join(current.names),
                pos,
            )
        current = current.field(step)
    return current


def _expr_type(expr: Expr, schema: TupleType, pos: ast.Pos, lowerer: _Lowerer):
    """Best-effort expression typing for early, positioned diagnostics.

    Returns the resolved type, or ``None`` when it cannot be determined
    statically (e.g. a ⊥ constant).  Flags the two classes of mistakes the
    engine would otherwise only hit at run time: arithmetic over
    non-numeric operands and comparisons against bag/tuple-valued
    attributes.
    """
    if isinstance(expr, Attr):
        return _attr_type(schema, expr.path, pos, lowerer)
    if isinstance(expr, Const):
        value = expr.value
        if is_null(value):
            return None
        if isinstance(value, bool):
            return BOOL
        if isinstance(value, int):
            return INT
        if isinstance(value, float):
            return FLOAT
        if isinstance(value, str):
            return STR
        return None
    if isinstance(expr, Arith):
        for side in (expr.left, expr.right):
            side_type = _expr_type(side, schema, pos, lowerer)
            if side_type is not None and side_type not in _NUMERIC:
                raise lowerer.error(
                    f"type mismatch: arithmetic '{expr.op}' needs numeric "
                    f"operands, got {side_type!r}",
                    pos,
                )
        return FLOAT
    if isinstance(expr, Cmp):
        left = _expr_type(expr.left, schema, pos, lowerer)
        right = _expr_type(expr.right, schema, pos, lowerer)
        for side_type in (left, right):
            if isinstance(side_type, (BagType, TupleType)):
                raise lowerer.error(
                    f"type mismatch: comparison '{expr.op}' over a "
                    f"{'bag' if isinstance(side_type, BagType) else 'tuple'}-"
                    "valued operand",
                    pos,
                )
        return BOOL
    if isinstance(expr, (And, Or)):
        for term in expr.terms:
            _expr_type(term, schema, pos, lowerer)
        return BOOL
    if isinstance(expr, Not):
        _expr_type(expr.term, schema, pos, lowerer)
        return BOOL
    if isinstance(expr, IsNull):
        _expr_type(expr.term, schema, pos, lowerer)
        return BOOL
    if isinstance(expr, Contains):
        haystack = _expr_type(expr.haystack, schema, pos, lowerer)
        if haystack is not None and haystack != STR:
            raise lowerer.error(
                f"type mismatch: 'in' needs a string haystack, got {haystack!r}",
                pos,
            )
        _expr_type(expr.needle, schema, pos, lowerer)
        return BOOL
    return None
