"""Position-carrying diagnostics for the textual query language.

Every error raised while lexing, parsing or lowering an ``.rq`` program is a
:class:`LangError`: it knows the 1-based ``line``/``column`` it points at and
can render a caret snippet of the offending source line.  ``LangError``
subclasses :class:`ValueError` on purpose — the serving layer maps
``ValueError`` to HTTP 400 (see ``repro.api.service.CLIENT_ERRORS``), so a
malformed text payload becomes a client error with the position in the JSON
body instead of a 500 with a traceback.
"""

from __future__ import annotations

from typing import Optional


class LangError(ValueError):
    """A lexer/parser/lowering error anchored at a source position.

    ``str(exc)`` is a one-line message with the position appended;
    :meth:`render` adds the offending source line and a caret, which is what
    the CLI and the REPL print.
    """

    def __init__(
        self,
        message: str,
        line: int,
        column: int,
        source: Optional[str] = None,
    ):
        super().__init__(f"{message} (line {line}, column {column})")
        self.message = message
        self.line = line
        self.column = column
        self.source = source

    def position(self) -> dict:
        """The position as wire data (used in HTTP 400 error bodies)."""
        return {"line": self.line, "column": self.column}

    def render(self) -> str:
        """Multi-line diagnostic: message, source line and a caret."""
        header = f"line {self.line}, column {self.column}: {self.message}"
        if not self.source:
            return header
        lines = self.source.splitlines()
        if not (1 <= self.line <= len(lines)):
            return header
        snippet = lines[self.line - 1]
        caret = " " * (self.column - 1) + "^"
        return f"{header}\n  {snippet}\n  {caret}"


class PrettyError(ValueError):
    """Raised when a plan holds something the grammar cannot express.

    The only such operator today is :class:`~repro.algebra.operators.Map`,
    whose parameter is an arbitrary Python callable.
    """
