"""Interactive REPL for the ``.rq`` query language (``python -m repro repl``).

Reads programs line by line (input buffers until every ``{``/``(``/``[`` is
balanced, so multi-line queries paste naturally), runs them against the
currently loaded scenario database and prints result rows — or, when the
program carries a ``whynot`` block, the ranked explanation label sets.

Backslash commands::

    \\help            this summary
    \\scenarios       list the registered paper scenarios
    \\use NAME [N]    load scenario NAME's database (at scale N)
    \\schema          show the table schemas of the loaded database
    \\explain         re-run the why-not explanation of the last program
    \\summarize [FILE] [N]  roll the last explanations up into summary
                     groups (:mod:`repro.whynot.summarize`) — FILE is an
                     optional ``hierarchy`` wire document, N the group budget
    \\quit            exit (EOF / Ctrl-D also works)

Parse and lowering errors print their caret diagnostics and the input
buffer resets, so a typo never wedges the session.  When stdin is not a TTY
(scripted transcripts, ``tests/lang/test_repl.py``) every line read is
echoed after its prompt, which makes pinned transcripts self-contained.
"""

from __future__ import annotations

import sys
from typing import Optional

from repro.lang.errors import LangError
from repro.lang.lower import LoweredProgram
from repro.lang.parser import parse_program
from repro.lang.lexer import tokenize

#: Prompt for a fresh statement and for continuation lines.
PROMPT = "rq> "
CONTINUATION = "...> "
#: Result rows printed before eliding the remainder.
MAX_ROWS = 20


class Repl:
    """One interactive session: a current database plus the last program."""

    def __init__(self, scenario: Optional[str] = None, scale: Optional[int] = None,
                 options: Optional[dict] = None):
        self.db = None
        self.db_name: Optional[str] = None
        self.last: Optional[LoweredProgram] = None
        #: Full result of the last explanation run (feeds ``\summarize``).
        self.last_result = None
        self.options = options or {}
        self._buffer: list = []
        if scenario is not None:
            self._cmd_use([scenario] if scale is None else [scenario, str(scale)])

    # -- I/O ------------------------------------------------------------------

    def run(self) -> int:
        """The blocking read-eval-print loop (the ``repl`` subcommand)."""
        try:  # line editing when available; immaterial for piped stdin
            import readline  # noqa: F401
        except ImportError:  # pragma: no cover - platform-dependent
            pass
        try:
            return self._loop()
        except BrokenPipeError:  # stdout gone (e.g. piped into head) — quit
            try:
                sys.stdout.close()
            except BrokenPipeError:
                pass
            return 0

    def _loop(self) -> int:
        print("repro why-not REPL — nested algebra over SIGMOD'21 scenarios.")
        print("Type \\help for commands; queries run once braces balance.")
        echo = not sys.stdin.isatty()
        while True:
            prompt = CONTINUATION if self._buffer else PROMPT
            try:
                line = input(prompt)
            except EOFError:
                print("bye")
                return 0
            if echo:
                print(line)
            try:
                if not self.feed(line):
                    print("bye")
                    return 0
            except LangError as exc:
                print(exc.render())
                self._buffer = []
            except Exception as exc:  # noqa: BLE001 - REPL must not die
                print(f"error: {type(exc).__name__}: {exc}")
                self._buffer = []

    def feed(self, line: str) -> bool:
        """Process one input line; False means the session should end."""
        stripped = line.strip()
        if not self._buffer and not stripped:
            return True
        if not self._buffer and stripped.startswith("\\"):
            return self.command(stripped)
        self._buffer.append(line)
        text = "\n".join(self._buffer)
        if self._balanced(text):
            self._buffer = []
            self.execute(text)
        return True

    @staticmethod
    def _balanced(text: str) -> bool:
        """True when every bracket in *text* is closed (lexes it to check)."""
        try:
            tokens = tokenize(text)
        except LangError:
            return True  # let the parser report the real diagnostic
        depth = 0
        for token in tokens:
            if token.kind in ("{", "(", "["):
                depth += 1
            elif token.kind in ("}", ")", "]"):
                depth -= 1
        return depth <= 0

    # -- commands -------------------------------------------------------------

    def command(self, line: str) -> bool:
        """Dispatch one ``\\command`` line; False ends the session."""
        parts = line[1:].split()
        name, args = (parts[0] if parts else ""), parts[1:]
        if name in ("quit", "q", "exit"):
            return False
        handlers = {
            "help": self._cmd_help,
            "scenarios": self._cmd_scenarios,
            "use": self._cmd_use,
            "schema": self._cmd_schema,
            "explain": self._cmd_explain,
            "summarize": self._cmd_summarize,
        }
        handler = handlers.get(name)
        if handler is None:
            print(f"unknown command \\{name} — try \\help")
        else:
            handler(args)
        return True

    def _cmd_help(self, args=()) -> None:
        print("commands:")
        print("  \\scenarios       list registered scenarios")
        print("  \\use NAME [N]    load scenario NAME's database at scale N")
        print("  \\schema          show the loaded database's table schemas")
        print("  \\explain         re-run the last program's whynot question")
        print("  \\summarize [FILE] [N]  group the last explanations (FILE:")
        print("                   hierarchy JSON, N: summary budget)")
        print("  \\quit            exit")
        print("anything else is parsed as an .rq program (docs/LANGUAGE.md).")

    def _cmd_scenarios(self, args=()) -> None:
        from repro.scenarios import SCENARIOS

        width = max(len(name) for name in SCENARIOS)
        for name, scenario in SCENARIOS.items():
            print(f"  {name:<{width}}  {scenario.description}")

    def _cmd_use(self, args) -> None:
        from repro.scenarios import get_scenario

        if not args:
            print("usage: \\use NAME [SCALE]")
            return
        try:
            scenario = get_scenario(args[0])
        except KeyError:
            print(f"unknown scenario {args[0]!r} — try \\scenarios")
            return
        try:
            scale = int(args[1]) if len(args) > 1 else scenario.default_scale
        except ValueError:
            print(f"scale must be an integer, got {args[1]!r}")
            return
        self.db = scenario.make_db(scale)
        self.db_name = scenario.name
        tables = ", ".join(
            f"{name} ({self.db.size(name)} rows)" for name in self.db.tables()
        )
        print(f"database {scenario.name} (scale {scale}): {tables}")

    def _cmd_schema(self, args=()) -> None:
        if self.db is None:
            print("no database loaded — \\use a scenario first")
            return
        for name in self.db.tables():
            print(f"  {name}: {self.db.schema(name)}")

    def _cmd_explain(self, args=()) -> None:
        if self.last is None or not self.last.has_question:
            print("nothing to explain — run a program with a whynot block first")
            return
        self._explain(self.last)

    def _cmd_summarize(self, args=()) -> None:
        import json

        from repro.whynot.summarize import (
            ConceptHierarchy,
            HierarchyError,
            attach_summaries,
        )

        if self.last_result is None:
            print("nothing to summarize — run a whynot question first")
            return
        hierarchy = None
        max_summaries = 8
        for arg in args:
            if arg.isdigit():
                max_summaries = int(arg)
                continue
            try:
                with open(arg, encoding="utf-8") as fh:
                    hierarchy = ConceptHierarchy.from_json(json.load(fh))
            except (OSError, ValueError, HierarchyError) as exc:
                print(f"cannot load hierarchy {arg!r}: {exc}")
                return
        if max_summaries < 1:
            print("the summary budget must be at least 1")
            return
        summaries = attach_summaries(
            self.last_result, hierarchy, max_summaries=max_summaries
        )
        total = sum(s.count for s in summaries)
        print(f"-- summaries: {len(summaries)} group(s) covering {total} explanation(s)")
        for s in summaries:
            print(f"   {s.describe()}")
        if not summaries:
            print("   (no explanations to summarize)")

    # -- program execution ----------------------------------------------------

    def execute(self, text: str) -> None:
        """Parse, lower and run one complete input.

        Besides full programs, two continuation forms attach to the last
        query — ``whynot {…}`` asks a question of it, and a further
        ``with alternatives {…}`` refines that question — so pasting a
        ``.rq`` file block by block works naturally.
        """
        if self.db is None:
            print("no database loaded — \\use a scenario first (\\scenarios lists them)")
            return
        tokens = tokenize(text)
        first = tokens[0]
        if first.kind == "kw" and first.value in ("whynot", "with"):
            self._continuation(first.value, text)
            return
        program = parse_program(text)
        from repro.lang.lower import lower_program

        lowered = lower_program(program, database=self.db, source=text)
        self.last = lowered
        if lowered.has_question:
            self._explain(lowered)
        else:
            self._print_result(lowered)

    def _continuation(self, kind: str, text: str) -> None:
        """Attach a ``whynot`` / ``with alternatives`` block to the last query."""
        from repro.lang.lower import lower_alternatives
        from repro.lang.parser import parse_alternatives, parse_question

        if self.last is None:
            print(f"'{kind}' continues the previous query — run one first")
            return
        if kind == "whynot":
            nip, _, groups = parse_question(text)
            self.last = LoweredProgram(
                query=self.last.query,
                nip=nip,
                alternatives=lower_alternatives(groups),
                name=self.last.name,
            )
        else:
            if not self.last.has_question:
                print("'with alternatives' needs a whynot question — ask one first")
                return
            self.last = LoweredProgram(
                query=self.last.query,
                nip=self.last.nip,
                alternatives=lower_alternatives(parse_alternatives(text)),
                name=self.last.name,
            )
        self._explain(self.last)

    def _print_result(self, lowered: LoweredProgram) -> None:
        print_result(lowered, self.db)

    def _explain(self, lowered: LoweredProgram) -> None:
        self.last_result = print_explanation(lowered, self.db, self.options)


def print_result(lowered: LoweredProgram, db) -> None:
    """Evaluate the program's query and print its rows (REPL format).

    Shared by the REPL and ``python -m repro run --query-file`` so both
    surfaces render byte-identical listings.
    """
    from repro.lang.pretty import pattern_text

    result = lowered.query.evaluate(db)
    print(f"-- result: {len(result)} row(s)")
    for i, (row, count) in enumerate(result.items()):
        if i >= MAX_ROWS:
            print(f"   ... ({len(result) - MAX_ROWS} more)")
            break
        times = f" ×{count}" if count > 1 else ""
        print(f"   {pattern_text(row)}{times}")


def print_explanation(lowered: LoweredProgram, db, options: dict):
    """Run the program's why-not question and print the ranked label sets.

    Returns the full :class:`~repro.whynot.explain.WhyNotResult` (``None``
    for an ill-posed question), which the REPL keeps as ``last_result`` so
    ``\\summarize`` can roll the explanations up afterwards.
    """
    from repro.whynot.explain import explain
    from repro.whynot.question import IllPosedQuestion, WhyNotQuestion

    question = WhyNotQuestion(lowered.query, db, lowered.nip, name=lowered.name)
    try:
        result = explain(question, alternatives=lowered.alternatives, **options)
    except IllPosedQuestion as exc:
        print(f"ill-posed question: {exc}")
        return None
    print(
        f"-- explanations: {len(result.explanations)} "
        f"({result.n_sas} schema alternatives)"
    )
    for e in result.explanations:
        print(f"   {e.rank}. {{{', '.join(e.labels)}}}")
    if not result.explanations:
        print("   (none found)")
    return result


def run_repl(scenario: Optional[str] = None, scale: Optional[int] = None,
             options: Optional[dict] = None) -> int:
    """Entry point used by ``python -m repro repl``."""
    return Repl(scenario=scenario, scale=scale, options=options).run()
