"""``repro.lang`` — the textual ``.rq`` query language over the nested algebra.

A small concrete syntax (grammar: ``docs/LANGUAGE.md``) for everything the
reproduction's operator model expresses: pipelines of nested-algebra stages
(selection, projection, joins, group/aggregate, nesting/unnesting, computed
columns, dotted paths) plus Definition-5 why-not questions — ``whynot``
tuple patterns with placeholders and ``with alternatives`` mutual/directed
attribute-alternative groups.

The stack is lexer → recursive-descent parser → AST → algebra lowering
(:mod:`~repro.lang.lexer`, :mod:`~repro.lang.parser`, :mod:`~repro.lang.ast`,
:mod:`~repro.lang.lower`) with a canonical pretty-printer
(:mod:`~repro.lang.pretty`) that is the parser's exact inverse, and an
interactive REPL (:mod:`~repro.lang.repl`, ``python -m repro repl``).
Errors are position-carrying :class:`~repro.lang.errors.LangError` s.

Typical use::

    from repro.lang import compile_program, pretty_program

    lowered = compile_program('query { from orders |> select o_total > 10 }')
    result = lowered.query.evaluate(db)
"""

from repro.lang.errors import LangError, PrettyError
from repro.lang.lexer import tokenize
from repro.lang.lower import LoweredProgram, lower_program
from repro.lang.parser import parse_program
from repro.lang.pretty import pretty_alternatives, pretty_program, pretty_query


def compile_program(source: str, database=None) -> LoweredProgram:
    """Parse + lower an ``.rq`` program in one step.

    When *database* is given the lowered plan is validated against its
    schemas, so unknown attributes, bad paths and type mismatches raise a
    position-carrying :class:`LangError` here instead of failing later
    inside the engine.
    """
    program = parse_program(source)
    return lower_program(program, database=database, source=source)


__all__ = [
    "LangError",
    "LoweredProgram",
    "PrettyError",
    "compile_program",
    "lower_program",
    "parse_program",
    "pretty_alternatives",
    "pretty_program",
    "pretty_query",
    "tokenize",
]
