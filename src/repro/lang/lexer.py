"""Lexer for the ``.rq`` query language (``docs/LANGUAGE.md``).

Produces a flat list of :class:`Token` s with 1-based line/column positions.
Identifiers are ``[A-Za-z_][A-Za-z0-9_]*``; names that collide with a
keyword or contain other characters are written backquoted (```like this```)
— the pretty-printer quotes automatically, so *any* attribute or table name
round-trips.  Keywords are recognised in lowercase or full UPPERCASE
(``whynot`` / ``WHYNOT``); mixed case is an identifier.  ``--`` starts a
comment running to the end of the line.
"""

from __future__ import annotations

from typing import List, Optional

from repro.lang.errors import LangError

#: Reserved words of the grammar.  Aggregate function names (``sum`` …) are
#: deliberately *not* reserved: they are ordinary identifiers that the
#: parser interprets in function position, so columns may share their names.
KEYWORDS = frozenset(
    """
    agg aggregate alternatives and as bag by destroy distinct drop except
    extra field flatten from full group has in inner is join left nest not
    null on or outer product project query rename right select tuple union
    where whynot with
    true false nan inf
    """.split()
)

#: Multi-character punctuation, longest first (matched before single chars).
_PUNCT2 = ("|>", "->", "!=", "<=", ">=")
_PUNCT1 = "@=<>()[]{},.:*?+-/"

_IDENT_START = frozenset(
    "abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ_"
)
_IDENT_CONT = _IDENT_START | frozenset("0123456789")
_DIGITS = frozenset("0123456789")
_HEX = frozenset("0123456789abcdefABCDEF")


class Token:
    """One lexed token: ``kind`` + decoded ``value`` + source position.

    ``kind`` is ``"ident"``, ``"string"``, ``"int"``, ``"float"``, ``"kw"``,
    ``"eof"`` or the punctuation lexeme itself (``"|>"``, ``"("``, …).
    """

    __slots__ = ("kind", "value", "line", "column")

    def __init__(self, kind: str, value, line: int, column: int):
        self.kind = kind
        self.value = value
        self.line = line
        self.column = column

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"Token({self.kind!r}, {self.value!r}, {self.line}:{self.column})"

    def describe(self) -> str:
        """Human-readable rendering for error messages."""
        if self.kind == "eof":
            return "end of input"
        if self.kind == "kw":
            return f"keyword '{self.value}'"
        if self.kind in ("ident", "int", "float"):
            return repr(self.value)
        if self.kind == "string":
            return f"string {self.value!r}"
        return f"'{self.kind}'"


class _Scanner:
    """Character cursor with line/column tracking."""

    def __init__(self, source: str):
        self.source = source
        self.pos = 0
        self.line = 1
        self.column = 1

    def peek(self, ahead: int = 0) -> str:
        index = self.pos + ahead
        return self.source[index] if index < len(self.source) else ""

    def advance(self) -> str:
        ch = self.source[self.pos]
        self.pos += 1
        if ch == "\n":
            self.line += 1
            self.column = 1
        else:
            self.column += 1
        return ch

    def error(self, message: str, line: Optional[int] = None,
              column: Optional[int] = None) -> LangError:
        return LangError(
            message,
            self.line if line is None else line,
            self.column if column is None else column,
            source=self.source,
        )


def _scan_escape(scanner: _Scanner, quote: str) -> str:
    """Decode one backslash escape (cursor is past the backslash)."""
    if not scanner.peek():
        raise scanner.error("unterminated escape sequence")
    ch = scanner.advance()
    simple = {"n": "\n", "t": "\t", "r": "\r", "\\": "\\", quote: quote}
    if ch in simple:
        return simple[ch]
    if ch in ("u", "U"):
        width = 4 if ch == "u" else 8
        digits = ""
        for _ in range(width):
            if scanner.peek() not in _HEX:
                raise scanner.error(
                    f"\\{ch} escape needs exactly {width} hex digits"
                )
            digits += scanner.advance()
        return chr(int(digits, 16))
    raise scanner.error(f"unknown escape sequence \\{ch}")


def _scan_quoted(scanner: _Scanner, quote: str, what: str) -> str:
    """Scan a quoted run (string literal or backquoted identifier)."""
    line, column = scanner.line, scanner.column
    scanner.advance()  # opening quote
    parts = []
    while True:
        ch = scanner.peek()
        if ch == "" or ch == "\n":
            raise scanner.error(f"unterminated {what}", line, column)
        scanner.advance()
        if ch == quote:
            return "".join(parts)
        if ch == "\\":
            parts.append(_scan_escape(scanner, quote))
        else:
            parts.append(ch)


def _scan_number(scanner: _Scanner) -> Token:
    line, column = scanner.line, scanner.column
    text = ""
    while scanner.peek() in _DIGITS:
        text += scanner.advance()
    is_float = False
    if scanner.peek() == "." and scanner.peek(1) in _DIGITS:
        is_float = True
        text += scanner.advance()
        while scanner.peek() in _DIGITS:
            text += scanner.advance()
    if scanner.peek() in ("e", "E") and (
        scanner.peek(1) in _DIGITS
        or (scanner.peek(1) in ("+", "-") and scanner.peek(2) in _DIGITS)
    ):
        is_float = True
        text += scanner.advance()
        if scanner.peek() in ("+", "-"):
            text += scanner.advance()
        while scanner.peek() in _DIGITS:
            text += scanner.advance()
    if is_float:
        return Token("float", float(text), line, column)
    return Token("int", int(text), line, column)


def tokenize(source: str) -> List[Token]:
    """Lex *source* into tokens (ending with one ``eof`` token).

    Raises :class:`LangError` on the first lexical problem (unterminated
    string, stray character, bad escape).
    """
    scanner = _Scanner(source)
    tokens: List[Token] = []
    while scanner.pos < len(scanner.source):
        ch = scanner.peek()
        if ch in (" ", "\t", "\r", "\n"):
            scanner.advance()
            continue
        if ch == "-" and scanner.peek(1) == "-":
            while scanner.peek() and scanner.peek() != "\n":
                scanner.advance()
            continue
        line, column = scanner.line, scanner.column
        if ch == '"':
            value = _scan_quoted(scanner, '"', "string literal")
            tokens.append(Token("string", value, line, column))
            continue
        if ch == "`":
            value = _scan_quoted(scanner, "`", "quoted identifier")
            if not value:
                raise scanner.error("empty quoted identifier", line, column)
            tokens.append(Token("ident", value, line, column))
            continue
        if ch in _DIGITS:
            tokens.append(_scan_number(scanner))
            continue
        if ch in _IDENT_START:
            text = ""
            while scanner.peek() in _IDENT_CONT:
                text += scanner.advance()
            lowered = text.lower()
            if lowered in KEYWORDS and text in (lowered, text.upper()):
                tokens.append(Token("kw", lowered, line, column))
            else:
                tokens.append(Token("ident", text, line, column))
            continue
        two = ch + scanner.peek(1)
        if two in _PUNCT2:
            scanner.advance()
            scanner.advance()
            tokens.append(Token(two, two, line, column))
            continue
        if ch in _PUNCT1:
            scanner.advance()
            tokens.append(Token(ch, ch, line, column))
            continue
        raise scanner.error(f"unexpected character {ch!r}")
    tokens.append(Token("eof", None, scanner.line, scanner.column))
    return tokens
