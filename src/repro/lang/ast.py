"""AST for the ``.rq`` query language.

The parser (:mod:`repro.lang.parser`) produces these nodes; the lowering
pass (:mod:`repro.lang.lower`) turns them into :mod:`repro.algebra`
operator trees and why-not questions.  Every node carries the ``(line,
column)`` position of its first token so lowering errors (unknown
attribute, type mismatch, bad path) point back into the source text.

Expressions and why-not patterns are *not* mirrored here: the algebra's
:class:`~repro.algebra.expressions.Expr` nodes and the value-model
``Tup``/``Bag``/placeholder objects are already pure structural ASTs, so
the parser builds them directly and semantic errors anchor at the enclosing
stage's position.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, List, Optional, Sequence, Tuple

#: A 1-based (line, column) source position.
Pos = Tuple[int, int]


@dataclass
class Source:
    """The pipeline head ``from <table>`` — a table access."""

    table: str
    label: Optional[str] = None
    pos: Pos = (1, 1)


@dataclass
class Stage:
    """Base class for one ``|>`` pipeline stage."""

    label: Optional[str] = None
    pos: Pos = (1, 1)


@dataclass
class SelectStage(Stage):
    """``select <pred>`` — σ."""

    pred: Any = None


@dataclass
class ProjectStage(Stage):
    """``project [col, out = expr, ...]`` — π with computed columns.

    ``cols`` holds ``(out_name, expr)`` pairs in source order.
    """

    cols: Sequence = ()


@dataclass
class RenameStage(Stage):
    """``rename [new = old, ...]`` — ρ."""

    pairs: Sequence = ()


@dataclass
class JoinStage(Stage):
    """``join [how] (<pipeline>) on l = r, ... [extra (<pred>)] [drop]``."""

    how: str = "inner"
    right: Any = None  #: the right-hand :class:`Pipeline`
    on: Sequence = ()  #: ``(left_path, right_path)`` dotted-path pairs
    extra: Any = None
    drop_right_keys: bool = False


@dataclass
class SetStage(Stage):
    """``union (P)`` / ``except (P)`` / ``product (P)`` binary stages."""

    kind: str = "union"  #: "union" | "except" | "product"
    right: Any = None


@dataclass
class FlattenStage(Stage):
    """``flatten inner|outer|tuple <path> [as <alias>]`` — μ/F variants."""

    mode: str = "inner"  #: "inner" | "outer" | "tuple"
    path: Tuple[str, ...] = ()
    alias: Optional[str] = None


@dataclass
class NestStage(Stage):
    """``nest bag|tuple [attrs] as <target>`` — ν / tuple-nesting."""

    mode: str = "bag"  #: "bag" | "tuple"
    attrs: Sequence = ()
    target: str = ""


@dataclass
class NestedAggStage(Stage):
    """``aggregate func(<path>) [field <f>] as <out>`` — Φ on a nested bag."""

    func: str = "count"
    path: Tuple[str, ...] = ()
    out: str = ""
    agg_field: Optional[str] = None


@dataclass
class GroupStage(Stage):
    """``group by [keys] agg [specs]`` — γ."""

    keys: Sequence = ()  #: key specs: ``(out, path)`` pairs or plain names
    aggs: Sequence = ()  #: :class:`~repro.algebra.aggregates.AggSpec` list


@dataclass
class DistinctStage(Stage):
    """``distinct`` — δ."""


@dataclass
class DestroyStage(Stage):
    """``destroy <attr>`` — bag destroy (unnest-discard)."""

    attr: str = ""


@dataclass
class Pipeline:
    """A source plus a stage chain — the left spine of an operator tree."""

    source: Source
    stages: List[Stage] = field(default_factory=list)


@dataclass
class AltGroup:
    """One ``with alternatives`` group (Definition 5).

    ``sources`` are dotted ``table.path`` strings.  A mutual group has
    ``directed_from is None``; a directed group reads
    ``from -> [targets]``.
    """

    sources: List[str]
    directed_from: Optional[str] = None
    pos: Pos = (1, 1)


@dataclass
class Program:
    """A whole ``.rq`` program: query + optional why-not question."""

    name: str
    pipeline: Pipeline
    nip: Any = None  #: the ``whynot`` tuple pattern (None when absent)
    alternatives: List[AltGroup] = field(default_factory=list)
    pos: Pos = (1, 1)
    nip_pos: Pos = (1, 1)
