"""Nested databases: named nested relations with inferred schemas.

Databases are **versioned**: every :class:`Database` instance is an
immutable snapshot, and :meth:`Database.apply_mutations` produces the next
version in the chain — a new instance that structurally shares every
unchanged relation (the same :class:`~repro.nested.values.Bag` objects) and
rebuilds only the mutated ones.  Each version records

* ``version_id`` — its position in the chain (the root snapshot is 0),
* ``parent`` — the previous version (``None`` for the root),
* ``last_mutation`` — the :class:`Mutation` that produced it,
* per-relation **version stamps** (:meth:`relation_version`) — the
  ``version_id`` at which each relation last changed, which is what the
  serving layer's version-aware result cache keys on (a query's cache entry
  stays valid as long as the relations it *reads* are unchanged).

The delta-incremental evaluator (:mod:`repro.engine.deltas`) consumes the
same chain: the signed row deltas of a :class:`Mutation` are exactly what it
propagates through memoized operator state.
"""

from __future__ import annotations

from typing import Any, Iterable, Mapping, Optional

from repro.nested.types import ANY_TYPE, NestedType, TupleType, type_of, unify
from repro.nested.values import Bag, Tup, canonicalize_value


class Mutation:
    """One batch of row edits: per-relation inserted and deleted bags.

    Rows are converted and canonicalized exactly like :meth:`Database.add`
    input (dicts become :class:`~repro.nested.values.Tup`, every NaN maps to
    the canonical ``NAN`` object), so a delete expressed as ``2`` removes a
    row stored as ``2.0`` and a freshly computed ``float('nan')`` hits the
    canonical NaN row — mutations in any canonical-equal form address the
    same rows.
    """

    __slots__ = ("inserts", "deletes")

    def __init__(
        self,
        inserts: Optional[Mapping[str, Iterable[Any]]] = None,
        deletes: Optional[Mapping[str, Iterable[Any]]] = None,
    ):
        self.inserts: dict[str, Bag] = {
            name: _to_bag(rows) for name, rows in (inserts or {}).items()
        }
        self.deletes: dict[str, Bag] = {
            name: _to_bag(rows) for name, rows in (deletes or {}).items()
        }

    def tables(self) -> list[str]:
        """Every relation this mutation touches (deterministic order)."""
        out = list(self.inserts)
        out.extend(name for name in self.deletes if name not in self.inserts)
        return out

    def is_empty(self) -> bool:
        """True when no relation gains or loses any row."""
        return not any(len(b) for b in self.inserts.values()) and not any(
            len(b) for b in self.deletes.values()
        )

    def signed_delta(self, name: str) -> "dict[Tup, int]":
        """Net row delta of one relation: ``row -> signed count`` (no zeros)."""
        delta: dict[Tup, int] = {}
        for row, count in self.inserts.get(name, Bag()).items():
            delta[row] = delta.get(row, 0) + count
        for row, count in self.deletes.get(name, Bag()).items():
            delta[row] = delta.get(row, 0) - count
        return {row: count for row, count in delta.items() if count}

    def __repr__(self) -> str:
        parts = []
        for name in self.tables():
            ins = len(self.inserts.get(name, Bag()))
            dels = len(self.deletes.get(name, Bag()))
            parts.append(f"{name}(+{ins}/-{dels})")
        return f"Mutation({', '.join(parts)})"


def _to_bag(rows: Any) -> Bag:
    bag = rows if isinstance(rows, Bag) else Bag(Database._to_tup(r) for r in rows)
    return canonicalize_value(bag)


class Database:
    """A nested database ``D``: a catalog of named nested relations.

    Relations may be given as bags, lists of tuples, or lists of dicts
    (converted to :class:`Tup` preserving attribute order).  Row schemas are
    inferred from the data by unifying all tuples' types; an explicit schema
    overrides inference (needed for empty relations).

    Instances are snapshots in a version chain — see the module docstring
    and :meth:`apply_mutations`.
    """

    def __init__(
        self,
        relations: Mapping[str, Iterable[Any]] | None = None,
        schemas: Optional[Mapping[str, TupleType]] = None,
    ):
        self._relations: dict[str, Bag] = {}
        self._schemas: dict[str, TupleType] = {}
        #: bumped on every ``add``; lets schema-inference caches detect staleness.
        self.version: int = 0
        #: position in the version chain (0 for a freshly built snapshot).
        self.version_id: int = 0
        #: the previous version, or ``None`` for a chain root.
        self.parent: "Optional[Database]" = None
        #: the mutation that produced this version (``None`` for a root).
        self.last_mutation: Optional[Mutation] = None
        self._relation_versions: dict[str, int] = {}
        self._relation_epochs: dict[str, int] = {}
        if relations:
            for name, rows in relations.items():
                self.add(name, rows, schema=(schemas or {}).get(name))

    @staticmethod
    def _to_tup(row: Any) -> Tup:
        if isinstance(row, Tup):
            return row
        if isinstance(row, Mapping):
            return Tup((k, Database._convert(v)) for k, v in row.items())
        raise TypeError(f"cannot convert row {row!r} into a tuple")

    @staticmethod
    def _convert(value: Any) -> Any:
        if isinstance(value, Mapping):
            return Tup((k, Database._convert(v)) for k, v in value.items())
        if isinstance(value, (list, set)):
            return Bag(Database._convert(v) for v in value)
        return value

    def add(self, name: str, rows: Iterable[Any], schema: Optional[TupleType] = None) -> None:
        """Register relation *name* with the given rows.

        Every NaN in the data is mapped to the canonical
        :data:`~repro.nested.values.NAN` object on the way in (a no-op for
        NaN-free rows), establishing the single-NaN invariant the engine's
        grouping/joining/partitioning relies on.
        """
        bag = rows if isinstance(rows, Bag) else Bag(self._to_tup(r) for r in rows)
        bag = canonicalize_value(bag)
        self._relations[name] = bag
        self.version += 1
        self._relation_versions[name] = self.version_id
        self._relation_epochs[name] = self.version
        if schema is not None:
            self._schemas[name] = schema
        else:
            inferred: NestedType = ANY_TYPE
            for row in bag.distinct():
                inferred = unify(inferred, type_of(row))
            if not isinstance(inferred, TupleType):
                raise ValueError(
                    f"cannot infer a tuple schema for relation {name!r}; "
                    "provide an explicit schema"
                )
            self._schemas[name] = inferred

    # -- versioning -----------------------------------------------------------

    def apply_mutations(
        self,
        inserts: "Mapping[str, Iterable[Any]] | Mutation | None" = None,
        deletes: Optional[Mapping[str, Iterable[Any]]] = None,
    ) -> "Database":
        """The next version: this snapshot with *inserts* added and *deletes*
        removed.

        Accepts per-relation row mappings (or a prebuilt :class:`Mutation` as
        the first argument).  Returns a **new** :class:`Database` that shares
        every untouched relation's bag and schema with this one; this
        instance is left unchanged.  Raises ``KeyError`` for an unknown
        relation or a delete of a row that is not present (after the batch's
        own inserts), and ``ValueError`` when an inserted row cannot be
        unified with the relation's schema.
        """
        mutation = (
            inserts if isinstance(inserts, Mutation) else Mutation(inserts, deletes)
        )
        child = Database.__new__(Database)
        child._relations = dict(self._relations)
        child._schemas = dict(self._schemas)
        child.version = self.version + 1
        child.version_id = self.version_id + 1
        child.parent = self
        child.last_mutation = mutation
        child._relation_versions = dict(self._relation_versions)
        child._relation_epochs = dict(self._relation_epochs)
        for name in mutation.tables():
            if name not in self._relations:
                raise KeyError(
                    f"cannot mutate unknown relation {name!r}; "
                    f"have {sorted(self._relations)}"
                )
            ins = mutation.inserts.get(name, Bag())
            dels = mutation.deletes.get(name, Bag())
            merged = self._relations[name].union(ins)
            for row, count in dels.items():
                if merged.mult(row) < count:
                    raise KeyError(
                        f"cannot delete {count} × {row!r} from relation "
                        f"{name!r}: only {merged.mult(row)} present"
                    )
            child._relations[name] = merged.difference(dels)
            schema: NestedType = self._schemas[name]
            for row in ins.distinct():
                schema = unify(schema, type_of(row))
            if not isinstance(schema, TupleType):
                raise ValueError(
                    f"inserted rows do not fit a tuple schema for {name!r}"
                )
            child._schemas[name] = schema
            child._relation_versions[name] = child.version_id
            child._relation_epochs[name] = child.version
        return child

    def relation_version(self, name: str) -> int:
        """The ``version_id`` at which the named relation last changed."""
        if name not in self._relations:
            raise KeyError(f"no relation named {name!r}; have {sorted(self._relations)}")
        return self._relation_versions.get(name, 0)

    def relation_stamp(self, name: str) -> "tuple[int, int]":
        """Cache stamp of one relation: ``(relation_version, add epoch)``.

        The second component is the ``version`` counter at the relation's
        last ``add``/mutation, so even an in-place re-``add`` on a registered
        snapshot (which leaves ``version_id`` alone) changes the stamp.  The
        serving layer's version-aware result cache folds the stamps of a
        query's read relations into its keys.
        """
        if name not in self._relations:
            raise KeyError(f"no relation named {name!r}; have {sorted(self._relations)}")
        return (self._relation_versions.get(name, 0), self._relation_epochs.get(name, 0))

    # -- lookups --------------------------------------------------------------

    def relation(self, name: str) -> Bag:
        """The named relation as a :class:`~repro.nested.values.Bag` of tuples."""
        try:
            return self._relations[name]
        except KeyError:
            raise KeyError(f"no relation named {name!r}; have {sorted(self._relations)}")

    def schema(self, name: str) -> TupleType:
        """The inferred row schema (``TupleType``) of a named relation."""
        return self._schemas[name]

    def tables(self) -> list[str]:
        """All table names in deterministic (insertion) order."""
        return list(self._relations)

    def size(self, name: str) -> int:
        """Number of tuples (with multiplicities) in the named relation."""
        return len(self._relations[name])

    def __contains__(self, name: str) -> bool:
        return name in self._relations

    def __repr__(self) -> str:
        inner = ", ".join(f"{name}[{len(bag)}]" for name, bag in self._relations.items())
        return f"Database(v{self.version_id}: {inner})"
