"""Nested databases: named nested relations with inferred schemas."""

from __future__ import annotations

from typing import Any, Iterable, Mapping, Optional

from repro.nested.types import ANY_TYPE, NestedType, TupleType, type_of, unify
from repro.nested.values import Bag, Tup, canonicalize_value


class Database:
    """A nested database ``D``: a catalog of named nested relations.

    Relations may be given as bags, lists of tuples, or lists of dicts
    (converted to :class:`Tup` preserving attribute order).  Row schemas are
    inferred from the data by unifying all tuples' types; an explicit schema
    overrides inference (needed for empty relations).
    """

    def __init__(
        self,
        relations: Mapping[str, Iterable[Any]] | None = None,
        schemas: Optional[Mapping[str, TupleType]] = None,
    ):
        self._relations: dict[str, Bag] = {}
        self._schemas: dict[str, TupleType] = {}
        #: bumped on every ``add``; lets schema-inference caches detect staleness.
        self.version: int = 0
        if relations:
            for name, rows in relations.items():
                self.add(name, rows, schema=(schemas or {}).get(name))

    @staticmethod
    def _to_tup(row: Any) -> Tup:
        if isinstance(row, Tup):
            return row
        if isinstance(row, Mapping):
            return Tup((k, Database._convert(v)) for k, v in row.items())
        raise TypeError(f"cannot convert row {row!r} into a tuple")

    @staticmethod
    def _convert(value: Any) -> Any:
        if isinstance(value, Mapping):
            return Tup((k, Database._convert(v)) for k, v in value.items())
        if isinstance(value, (list, set)):
            return Bag(Database._convert(v) for v in value)
        return value

    def add(self, name: str, rows: Iterable[Any], schema: Optional[TupleType] = None) -> None:
        """Register relation *name* with the given rows.

        Every NaN in the data is mapped to the canonical
        :data:`~repro.nested.values.NAN` object on the way in (a no-op for
        NaN-free rows), establishing the single-NaN invariant the engine's
        grouping/joining/partitioning relies on.
        """
        bag = rows if isinstance(rows, Bag) else Bag(self._to_tup(r) for r in rows)
        bag = canonicalize_value(bag)
        self._relations[name] = bag
        self.version += 1
        if schema is not None:
            self._schemas[name] = schema
        else:
            inferred: NestedType = ANY_TYPE
            for row in bag.distinct():
                inferred = unify(inferred, type_of(row))
            if not isinstance(inferred, TupleType):
                raise ValueError(
                    f"cannot infer a tuple schema for relation {name!r}; "
                    "provide an explicit schema"
                )
            self._schemas[name] = inferred

    def relation(self, name: str) -> Bag:
        """The named relation as a :class:`~repro.nested.values.Bag` of tuples."""
        try:
            return self._relations[name]
        except KeyError:
            raise KeyError(f"no relation named {name!r}; have {sorted(self._relations)}")

    def schema(self, name: str) -> TupleType:
        """The inferred row schema (``TupleType``) of a named relation."""
        return self._schemas[name]

    def tables(self) -> list[str]:
        """All table names in deterministic (insertion) order."""
        return list(self._relations)

    def size(self, name: str) -> int:
        """Number of tuples (with multiplicities) in the named relation."""
        return len(self._relations[name])

    def __contains__(self, name: str) -> bool:
        return name in self._relations

    def __repr__(self) -> str:
        inner = ", ".join(f"{name}[{len(bag)}]" for name, bag in self._relations.items())
        return f"Database({inner})"
