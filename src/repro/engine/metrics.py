"""Per-operator execution metrics (the reproduction's mini Spark UI).

Metrics are collected by the partitioned executor and merged across whatever
backend ran the tasks: with the serial backend every counter comes from the
driver; with the process backend the per-task counters (rows in/out, compute
seconds) are measured inside the workers, shipped back with each task result
and merged here.  Row and shuffle counts are backend-invariant — the
cross-backend regression tests assert they match the serial execution
exactly; only the timing fields differ.

Timing semantics:

* ``OperatorMetrics.wall_seconds`` — driver-observed elapsed time for the
  operator's stage (shuffle + dispatch + collect).
* ``OperatorMetrics.cpu_seconds`` — summed task compute time across all
  workers (equals elapsed time for the serial backend, can exceed
  ``wall_seconds`` under real parallelism).
* ``ExecutionMetrics.wall_seconds`` — end-to-end driver wall time.
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass
class OperatorMetrics:
    """Counters collected for one operator during execution.

    ``origins`` names the user-plan operator ids an optimizer-rewritten
    operator derives from (empty: the executed operator *is* the user
    operator, or was synthesized by a rewrite rule).
    """

    op_id: int
    label: str
    rows_in: int = 0
    rows_out: int = 0
    shuffled_rows: int = 0
    partitions: int = 1
    tasks: int = 0
    wall_seconds: float = 0.0
    cpu_seconds: float = 0.0
    origins: "tuple[int, ...]" = ()

    def absorb_task(self, rows_in: int, rows_out: int, seconds: float) -> None:
        """Merge one worker task's counters into this operator's totals."""
        self.rows_in += rows_in
        self.rows_out += rows_out
        self.cpu_seconds += seconds
        self.tasks += 1


@dataclass
class ExecutionMetrics:
    """Counters for one plan execution.

    When the logical optimizer ran, ``optimizer`` holds its summary — the
    per-rule fire counts plus operator counts before/after rewriting (see
    :meth:`repro.engine.optimizer.OptimizationReport.summary`) plus
    ``rewrite_seconds``, the time the fixpoint rewrite itself took; ``None``
    means the plan executed as written.

    ``engine`` names the chain-evaluation engine (``row`` or ``columnar``);
    with the columnar engine, ``kernels`` holds the kernel-cache
    observability counters (``hits``/``misses``/``fallbacks``/
    ``codegen_seconds``) merged across every chain task.
    """

    operators: dict[int, OperatorMetrics] = field(default_factory=dict)
    wall_seconds: float = 0.0
    backend: str = "serial"
    workers: int = 1
    optimizer: "dict | None" = None
    engine: str = "row"
    kernels: "dict | None" = None

    def total_rows_processed(self) -> int:
        """Sum of ``rows_in`` across all operators."""
        return sum(m.rows_in for m in self.operators.values())

    def total_shuffled_rows(self) -> int:
        """Sum of shuffled rows across all operators."""
        return sum(m.shuffled_rows for m in self.operators.values())

    def total_cpu_seconds(self) -> float:
        """Summed per-task compute time across all operators and workers."""
        return sum(m.cpu_seconds for m in self.operators.values())

    def report(self) -> str:
        """Human-readable per-operator execution summary (mini Spark UI)."""
        lines = [
            f"total wall time: {self.wall_seconds:.4f}s "
            f"(backend={self.backend}, workers={self.workers}, "
            f"engine={self.engine}, cpu={self.total_cpu_seconds():.4f}s)"
        ]
        if self.kernels is not None:
            k = self.kernels
            lines.append(
                f"kernels: hits={k.get('hits', 0)} misses={k.get('misses', 0)} "
                f"fallbacks={k.get('fallbacks', 0)} "
                f"codegen={k.get('codegen_seconds', 0.0):.4f}s"
            )
        if self.optimizer is not None:
            fires = ", ".join(
                f"{name}×{count}"
                for name, count in self.optimizer.get("rule_fires", {}).items()
            )
            lines.append(
                f"optimizer: {fires or 'no rewrites'} "
                f"(ops {self.optimizer.get('ops_before')}→{self.optimizer.get('ops_after')})"
            )
        for m in self.operators.values():
            origin = (
                " ⟵ " + ",".join(f"#{i}" for i in m.origins) if m.origins else ""
            )
            lines.append(
                f"  #{m.op_id} {m.label}: in={m.rows_in} out={m.rows_out} "
                f"shuffle={m.shuffled_rows} parts={m.partitions} "
                f"tasks={m.tasks} t={m.wall_seconds:.4f}s{origin}"
            )
        return "\n".join(lines)
