"""Per-operator execution metrics (the reproduction's mini Spark UI)."""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass
class OperatorMetrics:
    """Counters collected for one operator during execution."""

    op_id: int
    label: str
    rows_in: int = 0
    rows_out: int = 0
    shuffled_rows: int = 0
    partitions: int = 1
    wall_seconds: float = 0.0


@dataclass
class ExecutionMetrics:
    """Counters for one plan execution."""

    operators: dict[int, OperatorMetrics] = field(default_factory=dict)
    wall_seconds: float = 0.0

    def total_rows_processed(self) -> int:
        return sum(m.rows_in for m in self.operators.values())

    def total_shuffled_rows(self) -> int:
        return sum(m.shuffled_rows for m in self.operators.values())

    def report(self) -> str:
        lines = [f"total wall time: {self.wall_seconds:.4f}s"]
        for m in self.operators.values():
            lines.append(
                f"  #{m.op_id} {m.label}: in={m.rows_in} out={m.rows_out} "
                f"shuffle={m.shuffled_rows} parts={m.partitions} t={m.wall_seconds:.4f}s"
            )
        return "\n".join(lines)
