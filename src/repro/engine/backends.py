"""Pluggable execution backends: serial (in-process) and multi-core (process).

The partitioned executor (:mod:`repro.engine.executor`) and the SA-shared
tracer (:mod:`repro.whynot.tracing`) both decompose their work into *tasks* —
pure functions of (operator id, row payload) that can run anywhere.  A
backend decides where:

* :class:`SerialBackend` runs every task inline in the driver process.  It is
  the default and the correctness oracle: the process backend must produce
  exactly its results for every plan and every partitioning.
* :class:`ProcessBackend` fans tasks out to a pool of worker processes
  (``concurrent.futures.ProcessPoolExecutor``).  Workers receive a pickled
  :class:`TaskContext` (query plan, database, and — for tracing — the per-SA
  reparameterized queries) once per context and cache it; closures are *not*
  shipped.  Compiled expressions, key functions and interned layouts are
  re-derived lazily on the worker: unpickling strips ``_compiled_*`` caches
  (see ``Operator.__getstate__``) and re-interns tuple layouts (see
  ``Layout.__reduce__``), so a worker's first touch of an operator compiles
  exactly what the driver would have compiled.

Task shapes understood by :func:`run_task`:

``("chain", op_ids, rows)``
    Run a fused chain of narrow operators over one partition; returns the
    final rows plus per-operator ``(op_id, rows_in, rows_out, seconds)``
    stats so the driver can merge metrics across workers.
``("kchain", op_ids, rows)``
    The columnar engine's variant of ``chain``: the partition runs through
    one generated-and-cached kernel when possible, with a per-partition
    row-path fallback (see :mod:`repro.engine.columnar`); returns
    ``(rows, stats, kernel_info)``.
``("rows", op_id, child_rows)``
    Generic ``eval_rows`` call (deduplication, difference, global
    aggregation).
``("join_keyed", op_id, left_pairs, right_pairs)`` / ``("group_keyed",
op_id, pairs)``
    Per-partition evaluation of a shuffled wide operator with precomputed
    keys.
``("trace_narrow" | "trace_flatten" | "trace_join" | "trace_group", sa, op_id,
...)``
    One schema-alternative group's share of a traced operator (see the
    work-sharing notes in :mod:`repro.whynot.tracing`); the driver merges
    the per-group results back into bitmask-flagged rows.

Select a backend with ``Executor(backend="process", workers=4)``,
``explain(..., backend="process")``, the CLI's ``--backend/--workers`` flags,
or globally via the ``REPRO_BACKEND`` / ``REPRO_WORKERS`` environment
variables (used by CI to run the tier-1 suite on both backends).
"""

from __future__ import annotations

import atexit
import itertools
import os
import pickle
import time
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from functools import partial
from typing import Any, Optional, Sequence

from repro.algebra.operators import EvalContext, Query, RelationNesting
from repro.engine.columnar import task_kernel_chain
from repro.nested.values import NAN, Bag, Layout, Tup

#: Environment variables consulted when no explicit backend/workers is given.
BACKEND_ENV = "REPRO_BACKEND"
WORKERS_ENV = "REPRO_WORKERS"

BACKEND_NAMES = ("serial", "process")

_context_ids = itertools.count(1)


def default_backend_name() -> str:
    """The backend used when none is requested (``REPRO_BACKEND`` or serial)."""
    name = os.environ.get(BACKEND_ENV, "serial")
    if name not in BACKEND_NAMES:
        raise ValueError(f"{BACKEND_ENV}={name!r}; expected one of {BACKEND_NAMES}")
    return name


def default_workers() -> int:
    """Worker count used when none is requested (``REPRO_WORKERS`` or #cores)."""
    env = os.environ.get(WORKERS_ENV)
    if env:
        return max(1, int(env))
    return os.cpu_count() or 1


class TaskContext:
    """Everything workers need for one execution: query, db, SA queries.

    The pickled payload is built once and cached; workers cache the unpacked
    :class:`WorkerState` keyed by ``ctx_id``, so repeated task batches for the
    same execution ship only their row payloads.
    """

    __slots__ = ("ctx_id", "query", "db", "sa_queries", "_payload", "_state")

    def __init__(self, query: Query, db, sa_queries: Optional[Sequence[Query]] = None):
        self.ctx_id = f"{os.getpid()}-{next(_context_ids)}"
        self.query = query
        self.db = db
        self.sa_queries = tuple(sa_queries) if sa_queries is not None else None
        self._payload: Optional[bytes] = None
        self._state: Optional[WorkerState] = None

    def payload(self) -> bytes:
        """The pickled ``(query, db, sa_queries)`` blob shipped to workers (cached)."""
        if self._payload is None:
            try:
                self._payload = pickle.dumps(
                    (self.query, self.db, self.sa_queries),
                    protocol=pickle.HIGHEST_PROTOCOL,
                )
            except Exception as exc:  # e.g. a Map operator holding a lambda
                raise ValueError(
                    "query/database cannot be shipped to worker processes "
                    f"({exc}); use backend='serial' for plans with "
                    "unpicklable parameters"
                ) from exc
        return self._payload

    def local_state(self) -> "WorkerState":
        """The driver-side :class:`WorkerState` for inline (serial) evaluation."""
        if self._state is None:
            self._state = WorkerState(self.query, self.db, self.sa_queries)
            self._state.local = True
        return self._state


class WorkerState:
    """Per-process view of a :class:`TaskContext` with lazy eval contexts.

    ``local`` is True only for the driver-side state of the serial backend:
    its task payloads never cross a pickle boundary, so NaN re-canonical-
    ization of driver-computed keys can be skipped (the value model keeps
    in-process NaNs canonical by construction).
    """

    def __init__(self, query: Query, db, sa_queries: Optional[Sequence[Query]] = None):
        self.query = query
        self.db = db
        self.sa_queries = sa_queries
        self.local = False
        self._ctx: Optional[EvalContext] = None
        self._sa_ctxs: dict[int, EvalContext] = {}

    def ctx(self) -> EvalContext:
        """Lazily built evaluation context for the main query."""
        if self._ctx is None:
            self._ctx = EvalContext(self.db, self.query.infer_schemas(self.db))
        return self._ctx

    def op(self, op_id: int):
        """The main query's operator with the given id."""
        return self.query.op(op_id)

    def sa_op(self, sa: int, op_id: int):
        """Operator *op_id* as parameterized by schema alternative *sa*."""
        return self.sa_queries[sa].op(op_id)

    def sa_ctx(self, sa: int) -> EvalContext:
        """Lazily built evaluation context for one schema alternative's query."""
        ctx = self._sa_ctxs.get(sa)
        if ctx is None:
            sa_query = self.sa_queries[sa]
            ctx = EvalContext(self.db, sa_query.infer_schemas(self.db))
            self._sa_ctxs[sa] = ctx
        return ctx


# -- task evaluation (identical for every backend) ---------------------------


def _task_chain(state: WorkerState, op_ids: "tuple[int, ...]", rows: list) -> Any:
    ctx = state.ctx()
    stats = []
    for op_id in op_ids:
        op = state.op(op_id)
        started = time.perf_counter()
        out = op.eval_rows([rows], ctx)
        stats.append((op_id, len(rows), len(out), time.perf_counter() - started))
        rows = out
    return rows, stats


def _task_rows(state: WorkerState, op_id: int, child_rows: list) -> Any:
    op = state.op(op_id)
    started = time.perf_counter()
    out = op.eval_rows(child_rows, state.ctx())
    n_in = sum(len(rows) for rows in child_rows)
    return out, [(op_id, n_in, len(out), time.perf_counter() - started)]


def _canonicalize_key_nans(pairs: list) -> None:
    """Re-canonicalize NaNs inside precomputed join-key tuples, in place.

    Rows re-canonicalize their NaNs on unpickle (``Tup._unpickle``), but the
    driver-computed shuffle keys for joins are plain Python tuples, which
    unpickle natively — so a canonical NaN key arrives as a fresh float per
    task and would no longer match its partner side's key (found by the
    differential fuzzer, seed 9: NaN equi-join keys matched on the serial
    backend but not on the process backend).
    """
    for i, (key, row) in enumerate(pairs):
        if key is not None and any(type(v) is float and v != v for v in key):
            pairs[i] = (
                tuple(NAN if (type(v) is float and v != v) else v for v in key),
                row,
            )


def _task_join_keyed(state: WorkerState, op_id: int, left_pairs: list, right_pairs: list) -> Any:
    op = state.op(op_id)
    started = time.perf_counter()
    if not state.local:
        _canonicalize_key_nans(left_pairs)
        _canonicalize_key_nans(right_pairs)
    out = op.eval_keyed(left_pairs, right_pairs, state.ctx())
    n_in = len(left_pairs) + len(right_pairs)
    return out, [(op_id, n_in, len(out), time.perf_counter() - started)]


def _task_group_keyed(state: WorkerState, op_id: int, pairs: list) -> Any:
    op = state.op(op_id)
    started = time.perf_counter()
    out = op.eval_keyed(pairs, state.ctx())
    return out, [(op_id, len(pairs), len(out), time.perf_counter() - started)]


def _task_trace_narrow(state: WorkerState, sa: int, op_id: int, parent_vals: list) -> Any:
    """One SA group's outputs for a non-filtering unary operator.

    Mirrors the per-row relaxed evaluation of ``Tracer._trace_narrow``: each
    parent tuple that exists under this group's representative SA is pushed
    through the SA's operator; missing parents stay missing.
    """
    sa_op = state.sa_op(sa, op_id)
    ctx = state.sa_ctx(sa)
    outs: list = []
    for v in parent_vals:
        if v is None:
            outs.append(None)
        else:
            produced = sa_op.eval_rows([[v]], ctx)
            outs.append(produced[0] if produced else None)
    return outs


def _task_trace_flatten(state: WorkerState, sa: int, op_id: int, parent_vals: list) -> Any:
    """One SA group's outer-flatten expansions, one list per parent row.

    Each expansion entry is ``(tuple, retained)``; a padded expansion is
    retained only when the SA's own flatten is the outer variant.
    """
    sa_op = state.sa_op(sa, op_id)
    ctx = state.sa_ctx(sa)
    outer = sa_op.outer
    expansions: list = []
    for v in parent_vals:
        if v is None:
            expansions.append([])
            continue
        expanded, padded = sa_op.expand(v, ctx)
        if padded:
            expansions.append([(expanded[0], outer)])
        else:
            expansions.append([(t, True) for t in expanded])
    return expansions


def _task_trace_join(
    state: WorkerState, sa: int, op_id: int, left_vals: list, right_vals: list
) -> Any:
    """One SA group's join matches: {(left_idx, right_idx): combined} plus
    the matched index sets (for outer padding back in the driver)."""
    sa_op = state.sa_op(sa, op_id)
    left_key, right_key = sa_op.key_fns()
    extra = sa_op.extra.compile() if sa_op.extra is not None else None
    combine = sa_op._combine
    index: dict = {}
    for jdx, v in enumerate(right_vals):
        if v is None:
            continue
        key = right_key(v)
        if key is not None:
            index.setdefault(key, []).append(jdx)
    matches: dict = {}
    left_matched: set[int] = set()
    right_matched: set[int] = set()
    empty: tuple[int, ...] = ()
    for ldx, v in enumerate(left_vals):
        if v is None:
            continue
        key = left_key(v)
        if key is None:
            continue
        for jdx in index.get(key, empty):
            combined = combine(v, right_vals[jdx])
            if extra is not None and not extra(combined):
                continue
            matches[(ldx, jdx)] = combined
            left_matched.add(ldx)
            right_matched.add(jdx)
    return matches, left_matched, right_matched


def _task_trace_group(state: WorkerState, sa: int, op_id: int, parent_vals: list) -> Any:
    """One SA group's nesting/aggregation buckets as ``(key, out, indices)``.

    Indices point into *parent_vals*; the driver maps them back to traced-row
    ids when it merges groups full-outer-join-style on the group key.
    """
    sa_op = state.sa_op(sa, op_id)
    nesting = isinstance(sa_op, RelationNesting)
    buckets: dict = {}
    if not nesting and not sa_op.key_specs:
        buckets[Tup()] = [i for i, v in enumerate(parent_vals) if v is not None]
    else:
        key_fn = sa_op.group_key if nesting else sa_op.key_fn()
        for i, v in enumerate(parent_vals):
            if v is None:
                continue
            buckets.setdefault(key_fn(v), []).append(i)
    out = []
    if nesting:
        target_layout = Layout.of((sa_op.target,))
        for key, idxs in buckets.items():
            nested = Bag(parent_vals[i].project(sa_op.attrs) for i in idxs)
            out.append((key, key.concat(Tup.from_layout(target_layout, (nested,))), idxs))
    else:
        for key, idxs in buckets.items():
            out.append(
                (key, key.concat(sa_op.aggregate_tuple([parent_vals[i] for i in idxs])), idxs)
            )
    return out


_TASK_HANDLERS = {
    "chain": _task_chain,
    "kchain": task_kernel_chain,
    "rows": _task_rows,
    "join_keyed": _task_join_keyed,
    "group_keyed": _task_group_keyed,
    "trace_narrow": _task_trace_narrow,
    "trace_flatten": _task_trace_flatten,
    "trace_join": _task_trace_join,
    "trace_group": _task_trace_group,
}


def run_task(state: WorkerState, task: tuple) -> Any:
    """Evaluate one task against a worker state (backend-independent)."""
    return _TASK_HANDLERS[task[0]](state, *task[1:])


# -- backends ----------------------------------------------------------------


class ExecutionBackend:
    """Strategy for evaluating a batch of tasks for one execution context."""

    name = "?"
    workers = 1

    def run(self, context: TaskContext, tasks: "Sequence[tuple]") -> list:
        """Evaluate *tasks* in order; result i corresponds to task i."""
        raise NotImplementedError

    def close(self) -> None:
        """Release any held resources (idempotent)."""


class SerialBackend(ExecutionBackend):
    """Runs every task inline — today's behaviour and the correctness oracle."""

    name = "serial"
    workers = 1

    def run(self, context: TaskContext, tasks: "Sequence[tuple]") -> list:
        state = context.local_state()
        return [run_task(state, task) for task in tasks]


# Worker-side cache of unpacked contexts.  Bounded: executions come and go
# (every scenario run builds a fresh database), workers only ever need the
# few most recent.
_WORKER_STATES: "dict[str, WorkerState]" = {}
_WORKER_STATE_LIMIT = 4


class _ContextMiss(Exception):
    """A worker was asked to run a task for a context it has not cached."""


def _worker_run(ctx_id: str, payload: Optional[bytes], task: tuple) -> Any:
    state = _WORKER_STATES.get(ctx_id)
    if state is None:
        if payload is None:
            raise _ContextMiss(ctx_id)
        query, db, sa_queries = pickle.loads(payload)
        state = WorkerState(query, db, sa_queries)
        while len(_WORKER_STATES) >= _WORKER_STATE_LIMIT:
            _WORKER_STATES.pop(next(iter(_WORKER_STATES)))
        _WORKER_STATES[ctx_id] = state
    return run_task(state, task)


class ProcessBackend(ExecutionBackend):
    """Multi-core backend over a long-lived ``ProcessPoolExecutor``.

    The pool is created lazily on first use and reused across executions;
    each task carries the context id plus (cheaply, per chunk) the pickled
    context payload, and workers re-intern/re-compile on first touch.
    """

    name = "process"

    def __init__(self, workers: Optional[int] = None):
        self.workers = workers if workers is not None else default_workers()
        if self.workers < 1:
            raise ValueError("need at least one worker")
        self._pool: Optional[ProcessPoolExecutor] = None
        # Contexts whose payload has been shipped to the pool at least once.
        # Later batches for the same context send only the context id; a
        # worker that never saw the payload raises _ContextMiss and the
        # batch is replayed once with the payload attached (tasks are pure,
        # so a replay is safe).
        self._shipped: dict[str, None] = {}

    def _ensure_pool(self) -> ProcessPoolExecutor:
        if self._pool is None:
            self._pool = ProcessPoolExecutor(max_workers=self.workers)
            self._shipped.clear()
        return self._pool

    def run(self, context: TaskContext, tasks: "Sequence[tuple]") -> list:
        if not tasks:
            return []
        pool = self._ensure_pool()
        chunksize = max(1, len(tasks) // (self.workers * 4))
        payload = None if context.ctx_id in self._shipped else context.payload()
        try:
            try:
                fn = partial(_worker_run, context.ctx_id, payload)
                results = list(pool.map(fn, tasks, chunksize=chunksize))
            except _ContextMiss:
                fn = partial(_worker_run, context.ctx_id, context.payload())
                results = list(pool.map(fn, tasks, chunksize=chunksize))
        except BrokenProcessPool:
            self.close()
            raise RuntimeError(
                "worker pool died while evaluating tasks; re-run with "
                "backend='serial' to reproduce the failure in-process"
            ) from None
        while len(self._shipped) >= _WORKER_STATE_LIMIT:
            self._shipped.pop(next(iter(self._shipped)))
        self._shipped[context.ctx_id] = None
        return results

    def close(self) -> None:
        if self._pool is not None:
            self._pool.shutdown()
            self._pool = None
            self._shipped.clear()


_SERIAL = SerialBackend()
_PROCESS_BACKENDS: "dict[int, ProcessBackend]" = {}


def get_backend(
    backend: "str | ExecutionBackend | None" = None, workers: Optional[int] = None
) -> ExecutionBackend:
    """Resolve a backend name (or pass an instance through).

    ``None`` uses ``REPRO_BACKEND`` (default serial).  Process backends are
    cached per worker count so their pools persist across executions.
    """
    if isinstance(backend, ExecutionBackend):
        return backend
    name = backend if backend is not None else default_backend_name()
    if name == "serial":
        return _SERIAL
    if name == "process":
        n = workers if workers is not None else default_workers()
        cached = _PROCESS_BACKENDS.get(n)
        if cached is None:
            cached = ProcessBackend(n)
            _PROCESS_BACKENDS[n] = cached
        return cached
    raise ValueError(f"unknown backend {name!r}; expected one of {BACKEND_NAMES}")


def close_backends() -> None:
    """Shut down all cached process pools (safe to call repeatedly)."""
    for backend in _PROCESS_BACKENDS.values():
        backend.close()
    _PROCESS_BACKENDS.clear()


atexit.register(close_backends)
