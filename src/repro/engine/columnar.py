"""Columnar batch evaluation: engine selection, kernel tasks, key batches.

This module is the glue between the executor's backend seam and the kernel
code generator (:mod:`repro.engine.kernels`):

* **Engine knob.**  ``Executor(engine=...)``, ``explain(engine=...)``, the
  CLI's ``--engine`` flag and the ``REPRO_ENGINE`` environment variable pick
  between the ``row`` engine (the row-at-a-time oracle path) and the
  ``columnar`` engine.  Results are bit-identical either way — the
  differential fuzzer and the scenario equivalence suites enforce it.
* **Kernel chain task.**  ``("kchain", op_ids, rows)`` replaces the row
  path's ``("chain", ...)`` task when the columnar engine is active: the
  partition is checked for a uniform row layout, lowered to (or fetched
  from the cache as) one compiled kernel, and executed in a single call;
  any :class:`~repro.engine.kernels.KernelBailout`, unsupported operator or
  heterogeneous layout falls back to the row path *for that partition*,
  which also reproduces the row path's exact error behaviour.
* **Scatter shuffles.**  Wide operators keep their shuffle-based plans, but
  the per-row key closures are replaced by one-pass scatter routines that
  read the key columns straight out of the shared ``Layout`` positions,
  hash them column-at-a-time and place each ``(key, row)`` pair directly in
  its destination partition — producing bit-identical partition targets.

``docs/KERNELS.md`` is the full walkthrough (batch layout, codegen
contract, cache keying, bailout semantics, scatter shuffles, operator-hook
checklist).
"""

from __future__ import annotations

import os
import time
from typing import Any, Callable, Optional

from repro.algebra.operators import GroupAggregation, RelationNesting
from repro.engine.hashing import column_hashes, layout_hash, stable_hash
from repro.engine.kernels import KernelBailout, chain_kernel
from repro.nested.paths import Path
from repro.nested.values import Layout, NULL, Tup

#: Environment variable consulted when no explicit engine is given.
ENGINE_ENV = "REPRO_ENGINE"

ENGINE_NAMES = ("row", "columnar")


def default_engine() -> str:
    """The engine used when none is requested (``REPRO_ENGINE`` or row)."""
    name = os.environ.get(ENGINE_ENV, "row")
    if name not in ENGINE_NAMES:
        raise ValueError(f"{ENGINE_ENV}={name!r}; expected one of {ENGINE_NAMES}")
    return name


def resolve_engine(engine: Optional[str]) -> str:
    """Resolve an explicit engine name, falling back to the environment."""
    if engine is None:
        return default_engine()
    if engine not in ENGINE_NAMES:
        raise ValueError(f"unknown engine {engine!r}; expected one of {ENGINE_NAMES}")
    return engine


def new_kernel_info() -> dict:
    """A fresh kernel observability counter dict (``ExecutionMetrics.kernels``)."""
    return {"hits": 0, "misses": 0, "fallbacks": 0, "codegen_seconds": 0.0}


def merge_kernel_info(total: dict, part: dict) -> None:
    """Accumulate one task's kernel counters into the execution totals."""
    for key, value in part.items():
        total[key] = total.get(key, 0) + value


def _row_chain(ops: list, rows: list, ctx) -> "tuple[list, list]":
    """The row-at-a-time chain evaluation (the kernel fallback path).

    Byte-identical to the ``("chain", ...)`` task in
    :mod:`repro.engine.backends` — reimplemented here so the backends module
    can depend on this one without a cycle.
    """
    stats = []
    for op in ops:
        started = time.perf_counter()
        out = op.eval_rows([rows], ctx)
        stats.append((op.op_id, len(rows), len(out), time.perf_counter() - started))
        rows = out
    return rows, stats


def task_kernel_chain(state, op_ids: "tuple[int, ...]", rows: list) -> Any:
    """Evaluate a fused narrow chain over one partition, kernels first.

    Returns ``(rows, stats, info)`` — the row path's ``(rows, stats)`` plus
    the kernel counter dict.  Empty partitions always take the row path (it
    raises schema-resolution errors even on empty input, and kernels must
    not mask them); populated partitions take it when the layout is not
    uniform, the chain cannot be lowered, or the kernel bails out on a value
    shape it cannot reproduce bit-identically.
    """
    info = new_kernel_info()
    ops = [state.op(op_id) for op_id in op_ids]
    ctx = state.ctx()
    if rows:
        layout = rows[0]._layout
        if all(t._layout is layout for t in rows):
            # Per-state memo: partitions of one execution share the plan, so
            # the (semantic) global cache key is built once per chain+layout
            # and every further partition resolves by identity.  Memo hits
            # still count as cache hits — the compiled kernel was reused.
            memo = getattr(state, "_kernel_memo", None)
            if memo is None:
                memo = state._kernel_memo = {}
            mkey = (op_ids, layout)
            if mkey in memo:
                kernel = memo[mkey]
                info["hits"] += 1
            else:
                kernel = memo[mkey] = chain_kernel(ops, layout, ctx, info)
            if kernel is not None:
                try:
                    out, stats = kernel.run(rows, ops)
                    return out, stats, info
                except KernelBailout:
                    pass
        info["fallbacks"] += 1
    out, stats = _row_chain(ops, rows, ctx)
    return out, stats, info


# -- vectorized shuffle-key extraction ---------------------------------------


def _scatter_pairs(
    key_fn: Callable[[Tup], Any], rows: list, nparts: int, out: list
) -> int:
    """The generic per-row shuffle: compute, hash and place each key.

    Byte-identical to the executor's row-path shuffle loop (``None`` keys go
    to partition 0); the scatter fast paths below fall back to this whenever
    a partition's shape defeats column extraction.
    """
    for t in rows:
        key = key_fn(t)
        target = 0 if key is None else stable_hash(key) % nparts
        out[target].append((key, t))
    return len(rows)


def join_key_scatter(
    paths: "tuple[Path, ...]", key_fn: Callable[[Tup], Optional[tuple]]
) -> "Callable[[list, int, list], int]":
    """A one-pass shuffle scatter for one join side.

    Reads single-step key columns straight out of the shared layout
    positions, hashes them column-at-a-time and appends ``(key, row)`` to
    the destination partition, producing exactly the pairs and targets of
    the per-row ``key_fn`` + :func:`stable_hash` loop (⊥-containing keys map
    to ``None`` and land in partition 0, per Table 1).  Multi-step paths,
    missing columns and mixed layouts fall back to that row loop.
    """
    single = all(len(p) == 1 for p in paths)
    names = tuple(p[0] for p in paths) if single else ()

    def scatter(rows: list, nparts: int, out: list) -> int:
        if not rows or not single or len(names) != 1:
            return _scatter_pairs(key_fn, rows, nparts, out)
        layout = rows[0]._layout
        i0 = layout.index.get(names[0])
        if i0 is None or not all(t._layout is layout for t in rows):
            return _scatter_pairs(key_fn, rows, nparts, out)
        column = [t._values[i0] for t in rows]
        hashes = column_hashes(column)
        nulls = out[0]
        for t, v, h in zip(rows, column, hashes):
            if v is NULL or v is None:
                nulls.append((None, t))
            else:
                # stable_hash((v,)) == hash((stable_hash(v),))
                out[hash((h,)) % nparts].append(((v,), t))
        return len(rows)

    return scatter


def group_key_scatter(op) -> "Callable[[list, int, list], int]":
    """A one-pass shuffle scatter for a grouping wide operator.

    Mirrors ``GroupAggregation.key_fn()`` (interned key layout over the
    source-path values) and ``RelationNesting.group_key`` (the row minus the
    nested attributes) using shared-layout positions, hashing the key column
    in one sweep; anything irregular falls back to the operator's own key
    function.  Group keys are ``Tup``s, which hash as
    ``hash((layout_hash, *value hashes))`` — reproduced literally here.
    """
    key_fn = op.key_fn()
    if isinstance(op, GroupAggregation):
        specs = op.key_specs
        single = all(len(src) == 1 for _, src in specs)
        names = tuple(src[0] for _, src in specs) if single else ()
        key_layout = Layout.of(out for out, _ in specs)

        def scatter(rows: list, nparts: int, out: list) -> int:
            if not rows or not single or len(names) != 1:
                return _scatter_pairs(key_fn, rows, nparts, out)
            layout = rows[0]._layout
            i0 = layout.index.get(names[0])
            if i0 is None or not all(t._layout is layout for t in rows):
                return _scatter_pairs(key_fn, rows, nparts, out)
            column = [t._values[i0] for t in rows]
            hashes = column_hashes(column)
            lh = layout_hash(key_layout)
            mk = Tup.from_layout
            for t, v, h in zip(rows, column, hashes):
                out[hash((lh, h)) % nparts].append((mk(key_layout, (v,)), t))
            return len(rows)

        return scatter
    if isinstance(op, RelationNesting):
        attrs = op.attrs

        def scatter(rows: list, nparts: int, out: list) -> int:
            if not rows:
                return 0
            layout = rows[0]._layout
            if not all(t._layout is layout for t in rows):
                return _scatter_pairs(key_fn, rows, nparts, out)
            kept_layout, _, gather = layout.drop(attrs)
            lh = layout_hash(kept_layout)
            mk = Tup.from_layout
            for t in rows:
                key_values = gather(t._values)
                key = mk(kept_layout, key_values)
                h = hash((lh,) + tuple(column_hashes(list(key_values))))
                out[h % nparts].append((key, t))
            return len(rows)

        return scatter

    def scatter(rows: list, nparts: int, out: list) -> int:
        return _scatter_pairs(key_fn, rows, nparts, out)

    return scatter
