"""Execution engine: database catalog, partitioned executor, DataFrame API.

This is the reproduction's stand-in for Apache Spark (paper §6.1): a pure
Python, partition-aware evaluator for NRAB plans with per-operator metrics,
plus a Spark-like DataFrame façade for building plans fluently.  Execution
is dispatched through pluggable backends (:mod:`repro.engine.backends`):
``serial`` runs tasks inline, ``process`` fans them out across CPU cores
with identical results.  Before execution, plans can pass through the
explanation-preserving logical optimizer (:mod:`repro.engine.optimizer`):
rule-based rewrites with provenance links back to the user's operators,
identical results and identical why-not explanations guaranteed.
"""

from repro.engine.backends import ExecutionBackend, get_backend
from repro.engine.database import Database
from repro.engine.executor import Executor, ExecutionMetrics
from repro.engine.dataframe import DataFrame, Session
from repro.engine.optimizer import OptimizationReport, optimize_query

__all__ = [
    "Database",
    "Executor",
    "ExecutionMetrics",
    "ExecutionBackend",
    "get_backend",
    "DataFrame",
    "Session",
    "OptimizationReport",
    "optimize_query",
]
