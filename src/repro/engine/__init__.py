"""Execution engine: database catalog, partitioned executor, DataFrame API.

This is the reproduction's stand-in for Apache Spark (paper §6.1): a pure
Python, partition-aware evaluator for NRAB plans with per-operator metrics,
plus a Spark-like DataFrame façade for building plans fluently.
"""

from repro.engine.database import Database
from repro.engine.executor import Executor, ExecutionMetrics
from repro.engine.dataframe import DataFrame, Session

__all__ = ["Database", "Executor", "ExecutionMetrics", "DataFrame", "Session"]
