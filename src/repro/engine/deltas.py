"""Delta-incremental evaluation and explanation maintenance over versions.

This module is the executor's **delta mode**: given a base
:class:`~repro.engine.database.Database` version and the memoized
per-operator partition state of one query plan, it propagates the signed row
deltas of a :class:`~repro.engine.database.Mutation` through the plan so
that only affected partitions and operators re-run.

How state is kept, per segment kind of :func:`repro.engine.executor.build_segments`:

* **source** — nothing memoized; the mutation's per-relation signed delta
  (``row -> ±count``) *is* the operator's output delta.
* **chain** — nothing memoized.  Narrow operators are per-row linear
  (``out(bag) = Σ out(row)``), so the chain's output delta is the chain run
  over the inserted rows minus the chain run over the deleted rows — two
  backend tasks regardless of base size.
* **wide** (join, keyed grouping/nesting, dedup, difference) — the keyed
  executor's shuffle is replayed on the delta only: each delta row is routed
  with the same ``stable_hash`` rule the executor uses (``None`` keys to
  partition 0, whole-row hash for dedup/difference), the memoized
  per-partition *input* multiset is updated, and **only the partitions that
  received a delta row** are re-evaluated through the normal backend task
  (``join_keyed`` / ``group_keyed`` / ``rows``).  Diffing the fresh
  partition output against the memoized one yields the downstream delta.
* **union** — child deltas are summed.
* **driver** (cartesian product) and keyless aggregation — the gathered
  input multiset is memoized and the operator re-runs whole when any delta
  reaches it (these operators are global by nature).

The non-negotiable invariant — enforced by the mutation fuzz oracle
(``python -m repro fuzz --mutations``) — is **incremental ≡ from-scratch**:
after every mutation, :meth:`DeltaEvaluator.result` equals a fresh
``Executor().execute(query, db)`` bag exactly, and
:meth:`IncrementalExplainer.apply` returns the same explanation sets as a
fresh :func:`repro.whynot.explain.explain` on the mutated version.
Whenever the incremental path cannot be trusted — an unrelated database
object, a schema widened by inserts, a memo inconsistency — it falls back
to a full :meth:`DeltaEvaluator.rebase` (correct by construction, recorded
in ``last_stats["mode"]``).
"""

from __future__ import annotations

import time
from typing import Any, Callable, Optional

from repro.algebra.operators import (
    CartesianProduct,
    Deduplication,
    Difference,
    EvalContext,
    GroupAggregation,
    Join,
    Operator,
    Query,
    RelationNesting,
    TableAccess,
)
from repro.engine.backends import ExecutionBackend, TaskContext, get_backend
from repro.engine.columnar import resolve_engine
from repro.engine.database import Database, Mutation
from repro.engine.executor import build_segments
from repro.engine.hashing import stable_hash
from repro.engine.optimizer import optimize_query, resolve_optimize
from repro.nested.values import Bag, Tup

#: A signed row multiset: ``row -> count`` where counts may be negative
#: (net deletions) but never zero.
SignedCounts = "dict[Tup, int]"


class DeltaInconsistency(RuntimeError):
    """A memoized input multiset would go negative — the delta does not fit
    the memo (e.g. the caller skipped a version).  Callers rebase on this."""


def read_tables(query: Query) -> "frozenset[str]":
    """The relations *query* reads: every ``TableAccess`` table in the plan.

    This is the dependency set the version-aware result cache keys on — a
    cached entry stays valid while all of its read relations are unchanged.
    """
    return frozenset(
        op.table for op in query.ops if isinstance(op, TableAccess)
    )


def mutation_steps(
    base: Database, target: Database
) -> "Optional[list[Database]]":
    """The version-chain path from *base* (exclusive) to *target* (inclusive).

    Returns the intermediate versions oldest-first — each carries its
    ``last_mutation`` — or ``None`` when *target* does not descend from
    *base* (callers must then rebase).  ``base is target`` yields ``[]``.
    """
    steps: list[Database] = []
    node: Optional[Database] = target
    while node is not None and node is not base:
        if node.last_mutation is None:
            return None
        steps.append(node)
        node = node.parent
    if node is not base:
        return None
    steps.reverse()
    return steps


def _counter(rows: "list[Tup]") -> "dict[Tup, int]":
    counts: dict[Tup, int] = {}
    for row in rows:
        counts[row] = counts.get(row, 0) + 1
    return counts


def _expand(counts: "dict[Tup, int]") -> "list[Tup]":
    return [row for row, c in counts.items() for _ in range(c)]


def _merge(into: "dict[Tup, int]", delta: "dict[Tup, int]") -> None:
    for row, c in delta.items():
        nc = into.get(row, 0) + c
        if nc:
            into[row] = nc
        else:
            into.pop(row, None)


def _bump(counts: "dict[Tup, int]", row: Tup, c: int) -> None:
    nc = counts.get(row, 0) + c
    if nc < 0:
        raise DeltaInconsistency(f"memoized multiset short {nc} of {row!r}")
    if nc:
        counts[row] = nc
    else:
        counts.pop(row, None)


def _diff(new: "dict[Tup, int]", old: "dict[Tup, int]") -> "dict[Tup, int]":
    out: dict[Tup, int] = {}
    for row, c in new.items():
        d = c - old.get(row, 0)
        if d:
            out[row] = d
    for row, c in old.items():
        if row not in new:
            out[row] = -c
    return out


def _pairs(counts: "dict[Tup, int]", key_fn: Callable[[Tup], Any]) -> list:
    pairs: list = []
    for row, c in counts.items():
        key = key_fn(row)
        pairs.extend([(key, row)] * c)
    return pairs


class DeltaEvaluator:
    """Maintains one query's result across a database version chain.

    Construction runs a full **rebase** on the base version (memoizing the
    per-operator partition state described in the module docstring); every
    subsequent :meth:`update` walks the version chain from the current
    version to the target and applies each step's mutation incrementally.
    ``last_stats`` records what the last update actually did::

        {"mode": "delta" | "rebase" | "noop", "steps": int,
         "tasks": int, "partitions_recomputed": int,
         "ops_recomputed": int, "wall_seconds": float}

    The evaluator mirrors the partitioned executor exactly — same segment
    plan, same ``stable_hash`` routing, same backend task kinds — so its
    maintained bag is identical to a from-scratch
    :class:`~repro.engine.executor.Executor` run on every version (the
    mutation fuzz oracle enforces this across serial/process backends and
    row/columnar engines).
    """

    def __init__(
        self,
        query: Query,
        db: Database,
        num_partitions: int = 4,
        backend: "str | ExecutionBackend | None" = None,
        workers: Optional[int] = None,
        optimize: Optional[bool] = None,
        engine: Optional[str] = None,
    ):
        if num_partitions < 1:
            raise ValueError("need at least one partition")
        self.query = query
        self.num_partitions = num_partitions
        self.backend = get_backend(backend, workers)
        self.optimize = resolve_optimize(optimize)
        self.engine = resolve_engine(engine)
        self.last_stats: dict[str, Any] = {}
        self.rebases = 0
        self.updates = 0
        self.rebase(db)

    # -- public API ----------------------------------------------------------

    def result(self) -> Bag:
        """The maintained result bag ``Q(D)`` for the current version."""
        return Bag.from_counts(self._result.items())

    @property
    def db(self) -> Database:
        """The version the maintained result currently corresponds to."""
        return self._db

    @property
    def reads(self) -> "frozenset[str]":
        """The relations the (possibly optimized) plan reads."""
        return self._reads

    def update(self, new_db: Database) -> Bag:
        """Advance the maintained result to *new_db* and return it.

        Walks the version chain from the current version to *new_db*,
        applying each step's mutation delta-incrementally.  Falls back to a
        full :meth:`rebase` when *new_db* is not a descendant of the current
        version, when a mutation widened the schema of a relation the plan
        reads, or when a memo inconsistency is detected.
        """
        started = time.perf_counter()
        if new_db is self._db:
            self.last_stats = {"mode": "noop", "steps": 0, "tasks": 0,
                               "partitions_recomputed": 0, "ops_recomputed": 0,
                               "wall_seconds": time.perf_counter() - started}
            return self.result()
        steps = mutation_steps(self._db, new_db)
        if steps is None or any(
            new_db.schema(t) != self._schemas[t]
            for t in self._reads
            if t in new_db
        ):
            return self._full_rebase(new_db, started)
        tasks = parts = ops = 0
        try:
            for step in steps:
                t, p, o = self._apply_mutation(step, step.last_mutation)
                tasks += t
                parts += p
                ops += o
        except DeltaInconsistency:
            return self._full_rebase(new_db, started)
        self.updates += 1
        self.last_stats = {
            "mode": "delta", "steps": len(steps), "tasks": tasks,
            "partitions_recomputed": parts, "ops_recomputed": ops,
            "wall_seconds": time.perf_counter() - started,
        }
        return self.result()

    def rebase(self, db: Database) -> Bag:
        """Full recompute on *db*, refreshing every memo; returns the bag."""
        plan = self.query
        if self.optimize:
            plan = optimize_query(self.query, db).optimized
        self._plan = plan
        self._segments = build_segments(plan)
        self._reads = read_tables(plan) | read_tables(self.query)
        ctx = EvalContext(db, plan.infer_schemas(db))
        self._wide_inputs: dict[int, list[list[dict[Tup, int]]]] = {}
        self._wide_outputs: dict[int, list[dict[Tup, int]]] = {}
        self._global_inputs: dict[int, list[dict[Tup, int]]] = {}
        self._global_outputs: dict[int, dict[Tup, int]] = {}
        flow: dict[int, list[Tup]] = {}
        for segment in self._segments:
            ops = segment.ops
            op = ops[0]
            out_id = ops[-1].op_id
            if segment.kind == "source":
                rows = op.eval_rows([], ctx)
            elif segment.kind == "chain":
                rows = flow[op.children[0].op_id]
                for o in ops:
                    rows = o.eval_rows([rows], ctx)
            elif segment.kind == "union":
                left, right = (flow[c.op_id] for c in op.children)
                rows = left + right
            elif segment.kind == "wide":
                rows = self._rebase_wide(
                    op, [flow[c.op_id] for c in op.children], ctx
                )
            else:  # driver: gather + global evaluation, memoized whole
                gathered = [flow[c.op_id] for c in op.children]
                self._global_inputs[op.op_id] = [_counter(g) for g in gathered]
                rows = op.eval_rows(gathered, ctx)
                self._global_outputs[op.op_id] = _counter(rows)
            flow[out_id] = rows
        self._result = _counter(flow[plan.root.op_id])
        self._db = db
        self._schemas = {t: db.schema(t) for t in self._reads if t in db}
        self.rebases += 1
        return self.result()

    # -- internals -----------------------------------------------------------

    def _full_rebase(self, new_db: Database, started: float) -> Bag:
        out = self.rebase(new_db)
        self.updates += 1
        self.last_stats = {
            "mode": "rebase", "steps": 0, "tasks": 0,
            "partitions_recomputed": self.num_partitions,
            "ops_recomputed": len(self._plan.ops),
            "wall_seconds": time.perf_counter() - started,
        }
        return out

    def _is_global(self, op: Operator) -> bool:
        return isinstance(op, GroupAggregation) and not op.key_specs

    def _rebase_wide(
        self, op: Operator, child_rows: "list[list[Tup]]", ctx: EvalContext
    ) -> "list[Tup]":
        n = self.num_partitions
        if self._is_global(op):
            self._global_inputs[op.op_id] = [_counter(child_rows[0])]
            rows = op.eval_rows([child_rows[0]], ctx)
            self._global_outputs[op.op_id] = _counter(rows)
            return rows
        routers = self._routers(op)
        inputs = [[{} for _ in range(n)] for _ in child_rows]
        for side, rows in enumerate(child_rows):
            route = routers[side]
            for row in rows:
                _bump(inputs[side][route(row)], row, 1)
        self._wide_inputs[op.op_id] = inputs
        outputs: list[dict[Tup, int]] = []
        out_rows: list[Tup] = []
        for p in range(n):
            rows = self._eval_partition(op, p, ctx)
            outputs.append(_counter(rows))
            out_rows.extend(rows)
        self._wide_outputs[op.op_id] = outputs
        return out_rows

    def _routers(self, op: Operator) -> "list[Callable[[Tup], int]]":
        """Per-child partition routers replaying the executor's shuffle."""
        n = self.num_partitions

        def by_key(key_fn):
            def route(row):
                key = key_fn(row)
                return 0 if key is None else stable_hash(key) % n

            return route

        if isinstance(op, Join):
            left_key, right_key = op.key_fns()
            return [by_key(left_key), by_key(right_key)]
        if isinstance(op, (GroupAggregation, RelationNesting)):
            return [by_key(op.key_fn())]
        # Deduplication / Difference: whole-row shuffle.
        return [lambda row: stable_hash(row) % n for _ in op.children]

    def _eval_partition(self, op: Operator, p: int, ctx: EvalContext) -> "list[Tup]":
        """Evaluate one partition of a wide op from its memoized inputs."""
        inputs = self._wide_inputs[op.op_id]
        if isinstance(op, Join):
            left_key, right_key = op.key_fns()
            return op.eval_keyed(
                _pairs(inputs[0][p], left_key), _pairs(inputs[1][p], right_key), ctx
            )
        if isinstance(op, (GroupAggregation, RelationNesting)):
            return op.eval_keyed(_pairs(inputs[0][p], op.key_fn()), ctx)
        return op.eval_rows([_expand(side[p]) for side in inputs], ctx)

    def _partition_task(self, op: Operator, p: int) -> tuple:
        """The backend task recomputing one partition of a wide op."""
        inputs = self._wide_inputs[op.op_id]
        if isinstance(op, Join):
            left_key, right_key = op.key_fns()
            return (
                "join_keyed", op.op_id,
                _pairs(inputs[0][p], left_key), _pairs(inputs[1][p], right_key),
            )
        if isinstance(op, (GroupAggregation, RelationNesting)):
            return ("group_keyed", op.op_id, _pairs(inputs[0][p], op.key_fn()))
        return ("rows", op.op_id, [_expand(side[p]) for side in inputs])

    def _apply_mutation(
        self, new_db: Database, mutation: Mutation
    ) -> "tuple[int, int, int]":
        """Propagate one mutation's deltas bottom-up; returns
        ``(tasks, partitions_recomputed, ops_recomputed)``."""
        plan = self._plan
        ctx = EvalContext(new_db, plan.infer_schemas(new_db))
        context = TaskContext(plan, new_db)
        mutated = set(mutation.tables())
        deltas: dict[int, dict[Tup, int]] = {}
        n_tasks = n_parts = n_ops = 0
        for segment in self._segments:
            ops = segment.ops
            op = ops[0]
            out_id = ops[-1].op_id
            if segment.kind == "source":
                deltas[out_id] = (
                    mutation.signed_delta(op.table) if op.table in mutated else {}
                )
                continue
            if segment.kind == "chain":
                din = deltas[op.children[0].op_id]
                if not din:
                    deltas[out_id] = {}
                    continue
                dout, t = self._chain_delta(ops, din, context)
                deltas[out_id] = dout
                n_tasks += t
                n_ops += len(ops)
                continue
            if segment.kind == "union":
                merged: dict[Tup, int] = {}
                for child in op.children:
                    _merge(merged, deltas[child.op_id])
                deltas[out_id] = merged
                continue
            child_deltas = [deltas[c.op_id] for c in op.children]
            if not any(child_deltas):
                deltas[out_id] = {}
                continue
            n_ops += 1
            if segment.kind == "driver" or self._is_global(op):
                deltas[out_id] = self._global_delta(op, child_deltas, ctx)
                n_parts += 1
                continue
            dout, t, p = self._wide_delta(op, child_deltas, context)
            deltas[out_id] = dout
            n_tasks += t
            n_parts += p
        root_delta = deltas[plan.root.op_id]
        for row, c in root_delta.items():
            _bump(self._result, row, c)
        self._db = new_db
        self._schemas = {t: new_db.schema(t) for t in self._reads if t in new_db}
        return n_tasks, n_parts, n_ops

    def _chain_delta(
        self, ops: "list[Operator]", din: "dict[Tup, int]", context: TaskContext
    ) -> "tuple[dict[Tup, int], int]":
        pos = [row for row, c in din.items() if c > 0 for _ in range(c)]
        neg = [row for row, c in din.items() if c < 0 for _ in range(-c)]
        kind = "kchain" if self.engine == "columnar" else "chain"
        op_ids = tuple(op.op_id for op in ops)
        tasks = []
        if pos:
            tasks.append((kind, op_ids, pos))
        if neg:
            tasks.append((kind, op_ids, neg))
        results = self.backend.run(context, tasks)
        out: dict[Tup, int] = {}
        index = 0
        if pos:
            for row in results[0][0]:
                out[row] = out.get(row, 0) + 1
            index = 1
        if neg:
            for row in results[index][0]:
                out[row] = out.get(row, 0) - 1
        return {row: c for row, c in out.items() if c}, len(tasks)

    def _wide_delta(
        self,
        op: Operator,
        child_deltas: "list[dict[Tup, int]]",
        context: TaskContext,
    ) -> "tuple[dict[Tup, int], int, int]":
        inputs = self._wide_inputs[op.op_id]
        outputs = self._wide_outputs[op.op_id]
        routers = self._routers(op)
        affected: set[int] = set()
        for side, delta in enumerate(child_deltas):
            route = routers[side]
            for row, c in delta.items():
                p = route(row)
                _bump(inputs[side][p], row, c)
                affected.add(p)
        parts = sorted(affected)
        tasks = [self._partition_task(op, p) for p in parts]
        results = self.backend.run(context, tasks)
        dout: dict[Tup, int] = {}
        for p, result in zip(parts, results):
            fresh = _counter(result[0])
            _merge(dout, _diff(fresh, outputs[p]))
            outputs[p] = fresh
        return dout, len(tasks), len(parts)

    def _global_delta(
        self,
        op: Operator,
        child_deltas: "list[dict[Tup, int]]",
        ctx: EvalContext,
    ) -> "dict[Tup, int]":
        inputs = self._global_inputs[op.op_id]
        for side, delta in enumerate(child_deltas):
            for row, c in delta.items():
                _bump(inputs[side], row, c)
        rows = op.eval_rows([_expand(side) for side in inputs], ctx)
        fresh = _counter(rows)
        dout = _diff(fresh, self._global_outputs[op.op_id])
        self._global_outputs[op.op_id] = fresh
        return dout


class IncrementalExplainer:
    """Maintains a why-not explanation across database versions.

    The base construction runs the full Algorithm 1 pipeline once and
    retains every piece that is data-independent or delta-maintainable:

    * the schema backtrace and the enumerated schema alternatives are
      **schema-level** artifacts — they are reused verbatim across versions
      (and invalidated only when a mutation widens a read relation's schema);
    * the answer path ``Q(D)`` is maintained by a :class:`DeltaEvaluator`;
    * the data trace is re-run **only for operators whose transitive reads
      intersect the mutated relations** — every other operator's annotated
      rows (with their per-SA validity/consistency bitmasks) are merged from
      the retained base trace via the tracer's ``reuse`` parameter.

    :meth:`apply` raises
    :class:`~repro.whynot.question.IllPosedQuestion` when a mutation inserts
    a row that satisfies the why-not question — exactly like a from-scratch
    ``explain`` on the mutated version would (the service layer turns this
    into its typed "question satisfied" response).
    """

    def __init__(
        self,
        question,
        alternatives=(),
        use_schema_alternatives: bool = True,
        revalidate: bool = True,
        max_sas: int = 64,
        backend: "str | ExecutionBackend | None" = None,
        workers: Optional[int] = None,
        num_partitions: int = 4,
        validate: bool = True,
    ):
        from repro.whynot.alternatives import enumerate_schema_alternatives
        from repro.whynot.approximate import approximate_msrs
        from repro.whynot.backtrace import backtrace
        from repro.whynot.explain import WhyNotResult
        from repro.whynot.tracing import trace

        self.question = question
        self.alternatives = alternatives
        self.use_schema_alternatives = use_schema_alternatives
        self.revalidate = revalidate
        self.max_sas = max_sas
        self.backend = get_backend(backend, workers)
        self.evaluator = DeltaEvaluator(
            question.query,
            question.db,
            num_partitions=num_partitions,
            backend=self.backend,
            optimize=False,
        )
        if question._result_cache is None:
            question._result_cache = self.evaluator.result()
        if validate:
            question.validate()
        query, db, nip = question.query, question.db, question.nip
        self._reads_of = self._compute_reads(query)
        self._all_reads = read_tables(query)
        self._base_schemas = {t: db.schema(t) for t in self._all_reads if t in db}
        base = backtrace(query, db, nip)
        groups = alternatives if use_schema_alternatives else ()
        sas = enumerate_schema_alternatives(
            query, db, nip, base, groups=groups, max_sas=max_sas
        )
        traced = trace(query, db, sas, revalidate=revalidate, backend=self.backend)
        explanations = approximate_msrs(question, sas, traced)
        self.backtrace = base
        self.sas = sas
        self.trace = traced
        self.last_result = WhyNotResult(question, explanations, sas, base, traced, {})
        #: tables mutated since the last successfully retained trace.
        self._stale_tables: set[str] = set()
        self._trace_db = db
        self.retraces = 0
        self.full_explains = 0
        self.last_stats: dict[str, Any] = {"mode": "base"}

    @staticmethod
    def _compute_reads(query: Query) -> "dict[int, frozenset[str]]":
        """Bottom-up transitive read sets, per operator id."""
        reads: dict[int, frozenset[str]] = {}
        for op in query.ops:
            acc: frozenset[str] = frozenset()
            if isinstance(op, TableAccess):
                acc = frozenset((op.table,))
            for child in op.children:
                acc |= reads[child.op_id]
            reads[op.op_id] = acc
        return reads

    def apply(self, new_db: Database):
        """Re-explain against *new_db*, reusing everything still valid.

        Returns a :class:`~repro.whynot.explain.WhyNotResult` identical to a
        from-scratch ``explain`` on *new_db* (the mutation fuzz oracle
        compares explanation sets).  Raises ``IllPosedQuestion`` when the
        mutated data now answers the question.
        """
        from repro.whynot.approximate import approximate_msrs
        from repro.whynot.explain import WhyNotResult, explain
        from repro.whynot.question import WhyNotQuestion
        from repro.whynot.tracing import trace

        started = time.perf_counter()
        result_bag = self.evaluator.update(new_db)
        steps = mutation_steps(self._trace_db, new_db)
        question = WhyNotQuestion(
            self.question.query, new_db, self.question.nip, name=self.question.name
        )
        question._result_cache = result_bag
        full = steps is None or any(
            new_db.schema(t) != self._base_schemas.get(t)
            for t in self._all_reads
            if t in new_db
        )
        stale = set(self._stale_tables)
        if steps:
            for step in steps:
                stale.update(step.last_mutation.tables())
        try:
            question.validate()
        except Exception:
            # Leave the retained trace marked stale for these tables so the
            # next successful apply re-traces them; the caller handles the
            # (typed) ill-posed outcome.
            self._stale_tables = stale
            self._trace_db = new_db if steps is not None else self._trace_db
            raise
        if full:
            self.full_explains += 1
            out = explain(
                question,
                alternatives=self.alternatives,
                use_schema_alternatives=self.use_schema_alternatives,
                revalidate=self.revalidate,
                max_sas=self.max_sas,
                validate=False,
                backend=self.backend,
                optimize=False,
            )
            self.backtrace = out.backtrace
            self.sas = out.sas
            self.trace = out.trace
            self._base_schemas = {
                t: new_db.schema(t) for t in self._all_reads if t in new_db
            }
            self.last_stats = {"mode": "full", "ops_retraced": len(question.query.ops)}
        else:
            reuse = {
                op.op_id: self.trace.traces[op.op_id]
                for op in question.query.ops
                if not (self._reads_of[op.op_id] & stale)
            }
            rid_start = max(self.trace.rows_by_rid, default=0)
            traced = trace(
                question.query,
                new_db,
                self.sas,
                revalidate=self.revalidate,
                backend=self.backend,
                reuse=reuse,
                rid_start=rid_start,
            )
            explanations = approximate_msrs(question, self.sas, traced)
            self.trace = traced
            self.retraces += 1
            self.last_stats = {
                "mode": "delta",
                "ops_retraced": len(question.query.ops) - len(reuse),
                "ops_reused": len(reuse),
            }
            out = WhyNotResult(
                question, explanations, self.sas, self.backtrace, traced,
                {"total": time.perf_counter() - started},
            )
        self.question = question
        self._stale_tables = set()
        self._trace_db = new_db
        self.last_result = out
        self.last_stats["wall_seconds"] = time.perf_counter() - started
        return out
