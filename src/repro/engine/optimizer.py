"""Explanation-preserving logical plan optimizer.

A rule-based rewriter that restructures a :class:`~repro.algebra.operators.Query`
before execution while keeping the *explanation identity* of the why-not
pipeline intact.  The tension it resolves: the paper's holistic algorithm
traces and reparameterizes the **user's** plan — explanations are sets of
user-operator ids (Def. 9), schema alternatives are reparameterizations of the
user's operators (Def. 7) — so the plan the user wrote must stay the anchor of
every explanation.  The optimizer therefore never touches the tracing path; it
produces a *separate, provenance-linked* plan for the answer path:

* every rewritten operator carries ``origins`` — the ids of the user-plan
  operators it derives from (synthesized operators carry ``()``);
* optimized and unoptimized evaluation produce **equal result bags** for every
  plan (enforced for every registered scenario, both backends, 1/3/7
  partitions in ``tests/engine/test_optimizer.py``);
* ``explain``/tracing/reparameterization always run against the original
  query, so explanation sets, SA enumerations and side-effect bounds are
  byte-for-byte independent of the optimizer flag.

Rule catalog (see ``docs/OPTIMIZER.md`` for worked examples):

``fuse-selections``
    Adjacent selections merge into one conjunctive selection
    (σ_p(σ_q(R)) → σ_{q∧p}(R)), so a fused chain evaluates one predicate
    closure per row instead of materializing intermediate row lists.
``pushdown-projection`` / ``pushdown-rename``
    A selection moves below a projection/renaming when every referenced
    attribute is a pass-through column; the predicate is rewritten through
    the column mapping.
``pushdown-join``
    Conjunct terms of a selection above a join move into the join input they
    reference: both sides for inner joins, the preserved side only for
    left/right outer joins, never for full outer joins.
``pushdown-nesting``
    A selection on the carried-through attributes commutes with tuple and
    relation nesting (for ``N^R`` the predicate must only reference group-key
    attributes: filtered rows then form exactly the filtered-out groups).
``reorder-join``
    Inner-join inputs swap when the estimated build side is much larger than
    the probe side, so the hash index is built over the smaller input; a
    synthesized projection restores the original column order (tuple equality
    is attribute-order-sensitive, so results stay byte-identical).
``prune-columns``
    Schema-driven column liveness: a synthesized projection directly above a
    table access drops columns that provably never influence the final
    result (grouping keys, join keys, predicate and aggregate inputs are
    always live; operators that compare whole rows — deduplication,
    difference, relation nesting — keep everything below them live).

The pass runs to a fixpoint (rules enable each other: fusing selections turns
a stack into conjuncts the join rule can split), records per-rule fire counts,
and returns an :class:`OptimizationReport` whose :meth:`~OptimizationReport.describe`
renders the original vs. optimized plans with per-operator provenance
annotations (the CLI's ``--show-plan``).
"""

from __future__ import annotations

import os
import time
from typing import Any, Callable, Optional

from repro.algebra.expressions import And, Attr, Expr
from repro.algebra.operators import (
    CartesianProduct,
    Deduplication,
    Difference,
    GroupAggregation,
    Join,
    NestedAggregation,
    Operator,
    Projection,
    Query,
    RelationFlatten,
    RelationNesting,
    Renaming,
    Selection,
    TableAccess,
    TupleFlatten,
    TupleNesting,
    Union,
)
from repro.nested.paths import Path
from repro.nested.types import TupleType

#: Environment variable consulted when no explicit optimize flag is given.
OPTIMIZE_ENV = "REPRO_OPTIMIZE"

#: Stable names of the rewrite rules (the keys of ``rule_fires``).
RULE_NAMES = (
    "fuse-selections",
    "pushdown-projection",
    "pushdown-rename",
    "pushdown-join",
    "pushdown-nesting",
    "reorder-join",
    "prune-columns",
)

#: Estimated-cardinality ratio above which an inner join's inputs swap.
_REORDER_FACTOR = 2.0

#: Fixpoint safety cap; every rule strictly shrinks or sinks work, so real
#: plans converge in two or three rounds.
_MAX_ROUNDS = 10


def default_optimize() -> bool:
    """The optimizer default when none is requested (``REPRO_OPTIMIZE``)."""
    return os.environ.get(OPTIMIZE_ENV, "").strip().lower() in ("1", "true", "on", "yes")


def resolve_optimize(flag: Optional[bool]) -> bool:
    """Resolve an explicit on/off flag, falling back to the environment."""
    return default_optimize() if flag is None else bool(flag)


def _stamp(op: Operator, origins: "tuple[int, ...]", rules: "tuple[str, ...]" = ()) -> Operator:
    """Attach provenance (user-plan op ids) and rule annotations to *op*."""
    op._origins = origins
    if rules:
        op._rules = tuple(dict.fromkeys(getattr(op, "_rules", ()) + rules))
    return op


def _rules_of(op: Operator) -> "tuple[str, ...]":
    return getattr(op, "_rules", ())


class OptimizationReport:
    """Outcome of one optimizer run: the rewritten plan plus its provenance.

    ``origin_of`` maps every optimized operator id to the originating
    user-plan operator ids (empty tuple: synthesized by a rule), which is what
    keeps metrics and plan renderings reportable against the plan the user
    wrote.

    ``rewrite_seconds`` is the wall time the fixpoint rewrite itself took
    (0.0 when the report came out of the per-query plan cache); the executor
    surfaces it as ``metrics.optimizer["rewrite_seconds"]``.  It is kept out
    of :meth:`summary` so summaries stay deterministic.
    """

    def __init__(self, original: Query, optimized: Query, rule_fires: "dict[str, int]"):
        self.original = original
        self.optimized = optimized
        self.rule_fires = dict(rule_fires)
        self.rewrite_seconds = 0.0
        self.origin_of: dict[int, tuple[int, ...]] = {
            op.op_id: op.origins for op in optimized.ops
        }
        self.rules_of: dict[int, tuple[str, ...]] = {
            op.op_id: _rules_of(op) for op in optimized.ops
        }

    @property
    def changed(self) -> bool:
        """True when at least one rewrite rule fired."""
        return any(self.rule_fires.values())

    def total_fires(self) -> int:
        """Total number of rule applications across the fixpoint run."""
        return sum(self.rule_fires.values())

    def summary(self) -> dict:
        """JSON-ready summary (embedded in execution metrics and benchmarks)."""
        return {
            "rule_fires": {k: v for k, v in self.rule_fires.items() if v},
            "ops_before": len(self.original.ops),
            "ops_after": len(self.optimized.ops),
        }

    def describe(self) -> str:
        """Render original vs. optimized plans with per-rule annotations."""
        fired = ", ".join(
            f"{name}×{count}" for name, count in self.rule_fires.items() if count
        )
        lines = [
            f"plan optimization for {self.original.name or '(unnamed)'}: "
            f"{self.total_fires()} rewrite{'s' if self.total_fires() != 1 else ''}"
            + (f" ({fired})" if fired else ""),
            "",
            "original plan:",
            self.original.explain_plan(),
            "",
            "optimized plan:",
            self.optimized.explain_plan(annotate=True),
        ]
        return "\n".join(lines)


def optimize_query(query: Query, db) -> OptimizationReport:
    """Run the rewrite rules over *query* to a fixpoint.

    *db* supplies table cardinalities (join reordering) and table schemas
    (column liveness); the input query is never mutated.  The resulting
    report is cached on the query instance keyed by database identity and
    version (the same single-entry scheme as ``Query.infer_schemas``), so
    re-executing the same query — the benchmark harness and ``explain`` both
    do — pays the fixpoint rewrite once, not per run.
    """
    version = getattr(db, "version", None)
    entry = getattr(query, "_optimize_cache", None)
    if entry is not None and entry[0] is db and entry[1] == version:
        return entry[2]
    started = time.perf_counter()
    fires = {name: 0 for name in RULE_NAMES}
    root = _clone_with_origins(query.root)
    for _ in range(_MAX_ROUNDS):
        before = dict(fires)
        schemas: dict[int, TupleType] = {}
        estimates: dict[int, float] = {}
        root = _fuse_selections(root, fires)
        root = _push_selections(root, db, schemas, fires)
        root = _reorder_joins(root, db, schemas, estimates, fires)
        root = _prune_columns(root, None, db, schemas, fires)
        if fires == before:
            break
    optimized = Query(root, name=query.name)
    report = OptimizationReport(query, optimized, fires)
    report.rewrite_seconds = time.perf_counter() - started
    query._optimize_cache = (db, version, report)
    return report


# ---------------------------------------------------------------------------
# Provenance-preserving tree plumbing
# ---------------------------------------------------------------------------


def _clone_with_origins(op: Operator) -> Operator:
    """Deep-clone the user tree, stamping every clone with its origin id."""
    children = [_clone_with_origins(c) for c in op.children]
    return _stamp(op.clone(children), (op.op_id,))


def _rebuild(op: Operator, children: "list[Operator]") -> Operator:
    """Clone *op* onto new children, carrying provenance annotations along."""
    new = op.clone(children)
    return _stamp(new, op.origins, _rules_of(op))


def _transform_children(op: Operator, fn: "Callable[[Operator], Operator]") -> Operator:
    """Apply *fn* to every child; rebuild the node only when a child changed."""
    children = [fn(c) for c in op.children]
    if all(new is old for new, old in zip(children, op.children)):
        return op
    return _rebuild(op, children)


def _schema_of(op: Operator, db, memo: "dict[int, TupleType]") -> TupleType:
    """Output row schema of *op*, memoised by operator identity."""
    schema = memo.get(id(op))
    if schema is None:
        child_schemas = [_schema_of(c, db, memo) for c in op.children]
        schema = op.output_schema(child_schemas, db)
        memo[id(op)] = schema
    return schema


# ---------------------------------------------------------------------------
# fuse-selections
# ---------------------------------------------------------------------------


def _fuse_selections(op: Operator, fires: "dict[str, int]") -> Operator:
    op = _transform_children(op, lambda c: _fuse_selections(c, fires))
    if isinstance(op, Selection) and isinstance(op.children[0], Selection):
        inner = op.children[0]
        fused = Selection(inner.children[0], And(inner.pred, op.pred))
        fires["fuse-selections"] += 1
        return _stamp(
            fused,
            tuple(dict.fromkeys(inner.origins + op.origins)),
            tuple(dict.fromkeys(_rules_of(inner) + _rules_of(op) + ("fuse-selections",))),
        )
    return op


# ---------------------------------------------------------------------------
# selection pushdown
# ---------------------------------------------------------------------------


def _attr_roots(expr: Expr) -> "set[str]":
    return {path[0] for path in expr.attr_paths()}


def _push_selections(
    op: Operator, db, schemas: "dict[int, TupleType]", fires: "dict[str, int]"
) -> Operator:
    op = _transform_children(op, lambda c: _push_selections(c, db, schemas, fires))
    if not isinstance(op, Selection):
        return op
    pushed = _push_one_selection(op, db, schemas, fires)
    return op if pushed is None else pushed


def _push_one_selection(
    sel: Selection, db, schemas: "dict[int, TupleType]", fires: "dict[str, int]"
) -> Optional[Operator]:
    """One pushdown step for *sel*, or None when every rule declines."""
    child = sel.children[0]
    if isinstance(child, Projection):
        return _push_through_projection(sel, child, fires)
    if isinstance(child, Renaming):
        return _push_through_renaming(sel, child, fires)
    if isinstance(child, Join):
        return _push_into_join(sel, child, db, schemas, fires)
    if isinstance(child, (TupleNesting, RelationNesting)):
        return _push_through_nesting(sel, child, fires)
    return None


def _push_through_projection(
    sel: Selection, proj: Projection, fires: "dict[str, int]"
) -> Optional[Operator]:
    """σ(π(R)) → π(σ'(R)) when every referenced column is a pass-through
    attribute; computed columns cannot be inverted, so they decline."""
    if not proj.origins:
        # Synthesized (pruning / column-restoring) projections sit exactly
        # where the optimizer wants them; pushing a selection through would
        # re-trigger insertion rules and ping-pong the plan.
        return None
    col_exprs = dict(proj.cols)
    mapping: dict[str, Path] = {}
    for path in sel.pred.attr_paths():
        expr = col_exprs.get(path[0])
        if not isinstance(expr, Attr):
            return None
        mapping[path[0]] = expr.path

    def rewrite(path: Path) -> Path:
        return mapping[path[0]] + path[1:]

    inner = Selection(proj.children[0], sel.pred.map_attrs(rewrite))
    _stamp(inner, sel.origins, _rules_of(sel) + ("pushdown-projection",))
    fires["pushdown-projection"] += 1
    return _rebuild(proj, [inner])


def _push_through_renaming(
    sel: Selection, ren: Renaming, fires: "dict[str, int]"
) -> Operator:
    """σ(ρ(R)) → ρ(σ'(R)); attribute roots map back through the renaming."""
    reverse = {new: old for new, old in ren.pairs}

    def rewrite(path: Path) -> Path:
        return (reverse.get(path[0], path[0]),) + path[1:]

    inner = Selection(ren.children[0], sel.pred.map_attrs(rewrite))
    _stamp(inner, sel.origins, _rules_of(sel) + ("pushdown-rename",))
    fires["pushdown-rename"] += 1
    return _rebuild(ren, [inner])


def _push_into_join(
    sel: Selection,
    join: Join,
    db,
    schemas: "dict[int, TupleType]",
    fires: "dict[str, int]",
) -> Optional[Operator]:
    """Move conjunct terms into the join side they reference.

    Outer joins only accept pushes into their *preserved* side: filtering the
    null-padded side below the join would turn eliminated rows into padded
    ones (and vice versa), so those terms stay above.
    """
    push_left = join.how in ("inner", "left")
    push_right = join.how in ("inner", "right")
    if not (push_left or push_right):
        return None
    left_names = set(_schema_of(join.children[0], db, schemas).names)
    right_names = set(_schema_of(join.children[1], db, schemas).names)
    if join.drop_right_keys:
        # With dropped right keys, a key-named output column is the *left*
        # side's copy (⊥-padded on unmatched right rows under ``right``/
        # ``full``): classify such terms by the left side only.
        right_names -= {path[0] for _, path in join.on if len(path) == 1}
    terms = list(sel.pred.terms) if isinstance(sel.pred, And) else [sel.pred]
    left_terms: list[Expr] = []
    right_terms: list[Expr] = []
    rest: list[Expr] = []
    for term in terms:
        roots = _attr_roots(term)
        if push_left and roots <= left_names:
            left_terms.append(term)
        elif push_right and roots <= right_names:
            right_terms.append(term)
        else:
            rest.append(term)
    if not left_terms and not right_terms:
        return None

    def side(child: Operator, side_terms: "list[Expr]") -> Operator:
        if not side_terms:
            return child
        pred = side_terms[0] if len(side_terms) == 1 else And(*side_terms)
        fires["pushdown-join"] += 1
        return _stamp(
            Selection(child, pred), sel.origins, _rules_of(sel) + ("pushdown-join",)
        )

    new_join = _rebuild(
        join,
        [side(join.children[0], left_terms), side(join.children[1], right_terms)],
    )
    if not rest:
        return new_join
    residual = Selection(new_join, rest[0] if len(rest) == 1 else And(*rest))
    return _stamp(residual, sel.origins, _rules_of(sel))


def _push_through_nesting(
    sel: Selection, nest: "TupleNesting | RelationNesting", fires: "dict[str, int]"
) -> Optional[Operator]:
    """σ(N(R)) → N(σ(R)) when the predicate only touches carried attributes.

    For ``N^R`` the carried attributes are exactly the group key, so rows
    removed below the nesting are precisely the members of the groups the
    selection would have removed above it.
    """
    roots = _attr_roots(sel.pred)
    if nest.target in roots or roots & set(nest.attrs):
        return None
    if any(len(path) > 1 and path[0] == nest.target for path in sel.pred.attr_paths()):
        return None
    inner = Selection(nest.children[0], sel.pred)
    _stamp(inner, sel.origins, _rules_of(sel) + ("pushdown-nesting",))
    fires["pushdown-nesting"] += 1
    return _rebuild(nest, [inner])


# ---------------------------------------------------------------------------
# reorder-join
# ---------------------------------------------------------------------------


def _estimate(op: Operator, db, memo: "dict[int, float]") -> float:
    """Crude cardinality estimate driving the join-reorder decision.

    Table cardinalities are exact; selections keep a third of their input,
    relation flattens quadruple it, grouping/deduplication halves it.  Only
    the *relative* order of estimates matters.
    """
    est = memo.get(id(op))
    if est is not None:
        return est
    if isinstance(op, TableAccess):
        est = float(len(db.relation(op.table)))
    elif isinstance(op, Selection):
        est = max(1.0, _estimate(op.children[0], db, memo) / 3.0)
    elif isinstance(op, Join):
        left = _estimate(op.children[0], db, memo)
        right = _estimate(op.children[1], db, memo)
        est = max(left, right) if op.how == "inner" else left + right
    elif isinstance(op, CartesianProduct):
        est = _estimate(op.children[0], db, memo) * _estimate(op.children[1], db, memo)
    elif isinstance(op, (Union, Difference)):
        est = sum(_estimate(c, db, memo) for c in op.children)
    elif isinstance(op, RelationFlatten):
        est = 4.0 * _estimate(op.children[0], db, memo)
    elif isinstance(op, (GroupAggregation, RelationNesting, Deduplication)):
        est = max(1.0, _estimate(op.children[0], db, memo) / 2.0)
    elif op.children:
        est = _estimate(op.children[0], db, memo)
    else:
        est = 1.0
    memo[id(op)] = est
    return est


def _reorder_joins(
    op: Operator,
    db,
    schemas: "dict[int, TupleType]",
    estimates: "dict[int, float]",
    fires: "dict[str, int]",
) -> Operator:
    op = _transform_children(
        op, lambda c: _reorder_joins(c, db, schemas, estimates, fires)
    )
    if not isinstance(op, Join) or op.how != "inner" or op.drop_right_keys:
        return op
    if op.extra is not None:
        return op  # residual predicates are written against the l++r order
    left, right = op.children
    if _estimate(right, db, estimates) <= _REORDER_FACTOR * _estimate(left, db, estimates):
        return op
    out_names = _schema_of(op, db, schemas).names
    if len(set(out_names)) != len(out_names):
        return op
    swapped = Join(
        right,
        left,
        [(r, l) for l, r in op.on],
        how="inner",
        label=op._label,
    )
    _stamp(swapped, op.origins, _rules_of(op) + ("reorder-join",))
    restore = Projection(swapped, list(out_names))
    _stamp(restore, (), ("reorder-join",))
    fires["reorder-join"] += 1
    return restore


# ---------------------------------------------------------------------------
# prune-columns
# ---------------------------------------------------------------------------

#: ``None`` in liveness positions means "all columns live" (the conservative
#: answer, and the requirement at the query root: output must be identical).
Live = Optional[frozenset]


def _child_liveness(
    op: Operator, live: Live, db, schemas: "dict[int, TupleType]"
) -> "list[Live]":
    """Per-child live top-level column sets, given this op's live output set."""
    if isinstance(op, Projection):
        roots = {path[0] for _, expr in op.cols for path in expr.attr_paths()}
        return [frozenset(roots)]
    if isinstance(op, Selection):
        if live is None:
            return [None]
        return [live | _attr_roots(op.pred)]
    if isinstance(op, Renaming):
        if live is None:
            return [None]
        reverse = {new: old for new, old in op.pairs}
        return [frozenset(reverse.get(name, name) for name in live)]
    if isinstance(op, Join):
        left_keys = {l[0] for l, _ in op.on}
        right_keys = {r[0] for _, r in op.on}
        if op.extra is not None or live is None:
            # ``extra`` sees the concatenated row; stay conservative.
            return [None, None]
        left_names = set(_schema_of(op.children[0], db, schemas).names)
        right_names = set(_schema_of(op.children[1], db, schemas).names)
        return [
            frozenset((live & left_names) | left_keys),
            frozenset((live & right_names) | right_keys),
        ]
    if isinstance(op, GroupAggregation):
        roots = {src[0] for _, src in op.key_specs}
        for spec in op.aggs:
            if spec.expr is not None:
                roots |= _attr_roots(spec.expr)
        return [frozenset(roots)]
    if isinstance(op, NestedAggregation):
        if live is None:
            return [None]
        return [(live - {op.out}) | {op.attr[0]}]
    if isinstance(op, (TupleFlatten, RelationFlatten)):
        if live is None:
            return [None]
        child_names = set(_schema_of(op.children[0], db, schemas).names)
        if op.alias is not None:
            return [frozenset(((live - {op.alias}) & child_names) | {op.path[0]})]
        return [frozenset((live & child_names) | {op.path[0]})]
    if isinstance(op, TupleNesting):
        if live is None:
            return [None]
        # The operator unconditionally drops + re-projects ``attrs``, so they
        # must stay live even when the packed target column is dead.
        return [frozenset((live - {op.target}) | set(op.attrs))]
    if isinstance(op, Union):
        return [live, live]
    # RelationNesting groups on *all* remaining columns; Deduplication,
    # Difference and the NRAB₀ operators compare whole rows: everything below
    # them stays live.
    return [None] * len(op.children)


def _prune_columns(
    op: Operator, live: Live, db, schemas: "dict[int, TupleType]", fires: "dict[str, int]"
) -> Operator:
    child_live = _child_liveness(op, live, db, schemas)
    children: list[Operator] = []
    changed = False
    for child, needed in zip(op.children, child_live):
        new_child = _prune_columns(child, needed, db, schemas, fires)
        if (
            isinstance(new_child, TableAccess)
            and needed is not None
            and not isinstance(op, Projection)
        ):
            table_names = _schema_of(new_child, db, schemas).names
            keep = [name for name in table_names if name in needed]
            if len(keep) < len(table_names):
                pruned = Projection(new_child, keep)
                _stamp(pruned, (), ("prune-columns",))
                fires["prune-columns"] += 1
                new_child = pruned
        children.append(new_child)
        changed = changed or new_child is not child
    return _rebuild(op, children) if changed else op
