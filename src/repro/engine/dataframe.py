"""Spark-like DataFrame façade for building NRAB plans fluently.

The paper implements its approach over Spark's DataFrames (§6.1); this module
provides the equivalent front end so that examples read like the Spark
programs the paper debugs::

    session = Session(db)
    result = (session.table("person")
                     .explode("address2")
                     .filter(col("year").ge(2019))
                     .select("name", "city")
                     .nest(["name"], "nList")
                     .collect())
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.algebra.aggregates import AggSpec
from repro.algebra.expressions import Expr
from repro.algebra.operators import (
    Deduplication,
    Difference,
    GroupAggregation,
    InnerFlatten,
    Join,
    NestedAggregation,
    Operator,
    OuterFlatten,
    Projection,
    Query,
    RelationNesting,
    Renaming,
    Selection,
    TableAccess,
    TupleFlatten,
    TupleNesting,
    Union,
)
from repro.engine.database import Database
from repro.engine.executor import Executor
from repro.nested.values import Bag


class DataFrame:
    """An immutable plan builder; every method returns a new DataFrame."""

    def __init__(self, plan: Operator, session: "Session"):
        self._plan = plan
        self._session = session

    # -- transformations (Spark vocabulary → NRAB operators) ----------------

    def filter(self, pred: Expr, label: Optional[str] = None) -> "DataFrame":
        """Selection σ: keep rows satisfying *pred*."""
        return self._wrap(Selection(self._plan, pred, label=label))

    where = filter

    def select(self, *cols, label: Optional[str] = None) -> "DataFrame":
        """Projection π: plain column names or ``(name, expr)`` computed columns."""
        return self._wrap(Projection(self._plan, list(cols), label=label))

    def with_column(self, name: str, expr, label: Optional[str] = None) -> "DataFrame":
        """Extract a nested field / computed value into a top-level column.

        For a dotted path this is the paper's tuple flatten ``F^T``.
        """
        if isinstance(expr, str):
            return self._wrap(TupleFlatten(self._plan, expr, alias=name, label=label))
        raise TypeError(
            "with_column takes a dotted path; use select((name, expr), ...) for "
            "computed columns"
        )

    def explode(
        self, path: str, alias: Optional[str] = None, label: Optional[str] = None
    ) -> "DataFrame":
        """Inner relation flatten ``F^I`` (Spark's ``explode``)."""
        return self._wrap(InnerFlatten(self._plan, path, alias=alias, label=label))

    def explode_outer(
        self, path: str, alias: Optional[str] = None, label: Optional[str] = None
    ) -> "DataFrame":
        """Outer relation flatten ``F^O`` (Spark's ``explode_outer``)."""
        return self._wrap(OuterFlatten(self._plan, path, alias=alias, label=label))

    def join(
        self,
        other: "DataFrame",
        on: Sequence[tuple],
        how: str = "inner",
        drop_right_keys: bool = False,
        label: Optional[str] = None,
    ) -> "DataFrame":
        """Equi-join with another DataFrame (``how``: inner/left/right/full)."""
        return self._wrap(
            Join(
                self._plan,
                other._plan,
                on,
                how=how,
                drop_right_keys=drop_right_keys,
                label=label,
            )
        )

    def nest(self, attrs: Sequence[str], target: str, label: Optional[str] = None) -> "DataFrame":
        """Relation nesting ``N^R_{A→C}`` (group on the remaining attributes)."""
        return self._wrap(RelationNesting(self._plan, attrs, target, label=label))

    def nest_tuple(
        self, attrs: Sequence[str], target: str, label: Optional[str] = None
    ) -> "DataFrame":
        """Tuple nesting ``N^T``: pack *attrs* into a tuple column *target*."""
        return self._wrap(TupleNesting(self._plan, attrs, target, label=label))

    def group_by(self, *keys: str) -> "GroupedDataFrame":
        """Start a group-by aggregation; finish with :meth:`GroupedDataFrame.agg`."""
        return GroupedDataFrame(self, list(keys))

    def agg_nested(
        self,
        func: str,
        attr: str,
        out: str,
        field: Optional[str] = None,
        label: Optional[str] = None,
    ) -> "DataFrame":
        """Per-tuple aggregation over a nested relation attribute."""
        return self._wrap(
            NestedAggregation(self._plan, func, attr, out, field=field, label=label)
        )

    def rename(self, pairs: Sequence[tuple[str, str]], label: Optional[str] = None) -> "DataFrame":
        """Attribute renaming ρ; *mapping* maps old names to new names."""
        return self._wrap(Renaming(self._plan, pairs, label=label))

    def union(self, other: "DataFrame", label: Optional[str] = None) -> "DataFrame":
        """Additive bag union with another DataFrame."""
        return self._wrap(Union(self._plan, other._plan, label=label))

    def subtract(self, other: "DataFrame", label: Optional[str] = None) -> "DataFrame":
        """Bag difference: multiplicities subtract, floored at zero."""
        return self._wrap(Difference(self._plan, other._plan, label=label))

    def distinct(self, label: Optional[str] = None) -> "DataFrame":
        """Duplicate elimination: every multiplicity becomes one."""
        return self._wrap(Deduplication(self._plan, label=label))

    # -- actions -------------------------------------------------------------

    @property
    def plan(self) -> Operator:
        """The underlying operator tree (without wrapping it in a Query)."""
        return self._plan

    def query(self, name: str = "") -> Query:
        """Freeze the plan into a named :class:`~repro.algebra.operators.Query`."""
        return Query(self._plan, name=name)

    def collect(self) -> Bag:
        """Evaluate the plan and return the result bag."""
        return self._session.run(self.query())

    def count(self) -> int:
        """Number of result rows (with multiplicities)."""
        return len(self.collect())

    def show(self, max_rows: int = 20) -> None:
        """Print the result relation (pretty-printed, up to *n* rows)."""
        from repro.nested.pretty import print_relation

        print_relation(self.collect(), max_rows=max_rows)

    def _wrap(self, plan: Operator) -> "DataFrame":
        return DataFrame(plan, self._session)


class GroupedDataFrame:
    """Intermediate of ``group_by``; finish with ``agg``."""

    def __init__(self, df: DataFrame, keys: list[str]):
        self._df = df
        self._keys = keys

    def agg(self, *specs: AggSpec, label: Optional[str] = None) -> DataFrame:
        """Apply aggregate columns to the grouped rows (``AggSpec`` or pairs)."""
        return self._df._wrap(
            GroupAggregation(self._df._plan, self._keys, list(specs), label=label)
        )


class Session:
    """Entry point binding a database and an executor together."""

    def __init__(self, db: Database, executor: Optional[Executor] = None):
        self.db = db
        self.executor = executor or Executor()

    def table(self, name: str, label: Optional[str] = None) -> DataFrame:
        """Start a DataFrame from a named table of the session's database."""
        if name not in self.db:
            raise KeyError(f"no table {name!r} in database")
        return DataFrame(TableAccess(name, label=label), self)

    def run(self, query: Query) -> Bag:
        """Evaluate a finished query through the session's executor."""
        return self.executor.execute(query, self.db)
