"""Per-chain kernel code generation for the columnar engine.

The row-at-a-time path evaluates a fused narrow chain by calling one
compiled closure per operator per row and materializing a full
:class:`~repro.nested.values.Tup` between every pair of operators.  This
module instead lowers the whole chain to a single Python function *source
string* — one loop over the partition, selective column extraction at the
top, inlined per-operator statements in the body, one output-row
materialization at the bottom — and compiles it once per
``(chain semantics, input layout)``.

Contract (see ``docs/KERNELS.md`` for the full walkthrough):

* **Bit-equivalence.**  A kernel must produce exactly the rows the row path
  produces — same values, same canonical-NaN/⊥ handling, same output
  ``Layout`` (column names *and* order), same multiplicities and row order.
  Operator/expression hooks that cannot guarantee this raise
  :class:`~repro.algebra.expressions.KernelUnsupported` at build time, and
  generated code raises :class:`KernelBailout` at run time for value shapes
  it cannot reproduce (heterogeneous nested layouts, type errors); both make
  the caller rerun the partition on the row path, which also recreates the
  row path's exact error messages.
* **Caching.**  Kernels are cached globally, keyed by the tuple of
  per-operator :meth:`~repro.algebra.operators.Operator.kernel_key` values
  plus the input layout's name tuple — a *semantic* key, so structurally
  fresh but equivalent ``Query`` objects (every benchmark round builds new
  ones) hit the cache.  Failed builds are cached as ``None`` (negative
  entries) so unsupported chains don't retry codegen per task.
* **Stats parity.**  A kernel returns per-operator row counters so the
  executor reports the same ``rows_in``/``rows_out``/``tasks`` metrics as
  the row path; only cardinality-changing operators
  (``kernel_changes_cardinality``) need live counters, every other operator
  is 1:1.
"""

from __future__ import annotations

import time
from typing import Any, Callable, Optional, Sequence

from repro.algebra.expressions import KernelUnsupported
from repro.nested.paths import Path, parse_path
from repro.nested.values import NAN, NULL, Bag, Layout, Tup, is_null


class KernelBailout(Exception):
    """Raised inside a generated kernel for shapes it cannot reproduce.

    Bailing out is never an error: the caller reruns the partition through
    the row-at-a-time path, which either succeeds (e.g. heterogeneous nested
    tuple layouts the columnar representation cannot hold) or raises the
    genuine row-path exception with its exact message.
    """


def _rest_getter(rest: Path) -> Callable[[Any], Any]:
    """A value→value getter for the non-head steps of a multi-step path.

    Replicates :func:`repro.nested.paths.compile_path`'s ``get_chain``
    semantics (and error messages) from the second step on: the head step is
    resolved by the kernel as a column variable, the rest navigates the
    value.
    """

    def get_rest(current: Any, _rest: Path = rest) -> Any:
        for step in _rest:
            if is_null(current):
                return NULL
            if isinstance(current, Tup):
                i = current._index.get(step)
                if i is None:
                    raise KeyError(
                        f"path step {step!r} not in tuple attrs {current.attrs}"
                    )
                current = current._values[i]
            elif isinstance(current, Bag):
                raise TypeError(
                    f"cannot navigate path step {step!r} through a bag; flatten first"
                )
            else:
                raise TypeError(
                    f"cannot navigate path step {step!r} through primitive {current!r}"
                )
        return current

    return get_rest


_REST_GETTERS: "dict[Path, Callable[[Any], Any]]" = {}


class KernelBuilder:
    """Accumulates the body of one chain kernel during codegen.

    The builder tracks the *logical row* as an ordered ``name → variable``
    map: input columns start as ``_c{i}_`` loop variables, operator hooks
    rewrite the map (project, rename, append, drop) and emit statements via
    :meth:`emit` at the current :attr:`indent`.  ``_g{n}`` names bind Python
    objects (layouts, pads, bound methods, non-literal constants) into the
    kernel's globals so generated code shares the row path's exact objects.
    """

    def __init__(self, layout: Layout):
        self.lines: list[str] = []
        self.indent = 2  # function body is one level, loop body two
        self._tmp = 0
        self._cols: "dict[str, str]" = {
            name: f"_c{i}_" for i, name in enumerate(layout.names)
        }
        self.globals: dict[str, Any] = {
            "_NULL": NULL,
            "_NAN": NAN,
            "_Tup": Tup,
            "_Bag": Bag,
            "_mk": Tup.from_layout,
            "_Bailout": KernelBailout,
        }
        self._bound: dict[int, str] = {}

    # -- statement emission --------------------------------------------------

    def emit(self, line: str) -> None:
        """Append one statement at the current indentation level."""
        self.lines.append("    " * self.indent + line)

    def tmp(self) -> str:
        """A fresh local variable name (deterministic per build)."""
        self._tmp += 1
        return f"_t{self._tmp}_"

    def capture(self, expr: str) -> str:
        """Ensure *expr* is a plain variable: assign to a temp if needed."""
        if expr.isidentifier():
            return expr
        var = self.tmp()
        self.emit(f"{var} = {expr}")
        return var

    def bind(self, obj: Any) -> str:
        """Bind *obj* into the kernel globals, returning its ``_g{n}`` name."""
        key = id(obj)
        name = self._bound.get(key)
        if name is None:
            name = f"_g{len(self._bound)}"
            self._bound[key] = name
            self.globals[name] = obj
        return name

    def null_test(self, var: str) -> str:
        """The ⊥ test for a captured variable (mirrors ``is_null``)."""
        return f"{var} is _NULL or {var} is None"

    # -- logical-row columns -------------------------------------------------

    def columns(self) -> "list[tuple[str, str]]":
        """The current logical row as ordered ``(name, variable)`` pairs."""
        return list(self._cols.items())

    def col(self, name: str) -> str:
        """The variable holding column *name* (KernelUnsupported: absent)."""
        var = self._cols.get(name)
        if var is None:
            raise KernelUnsupported(f"column {name!r} not in kernel row")
        return var

    def set_cols(self, pairs: "Sequence[tuple[str, str]]") -> None:
        """Replace the logical row wholesale (projection, renaming)."""
        names = [name for name, _ in pairs]
        if len(set(names)) != len(names):
            raise KernelUnsupported(f"duplicate column names {names}")
        self._cols = dict(pairs)

    def append_col(self, name: str, var: str) -> None:
        """Append a new column (KernelUnsupported on a name clash, matching
        the row path's per-row ``Layout.of`` duplicate error via fallback)."""
        if name in self._cols:
            raise KernelUnsupported(f"duplicate column {name!r}")
        self._cols[name] = var

    def replace_or_append(self, name: str, var: str) -> None:
        """``Tup.with_attr`` semantics: replace in place or append at the end."""
        self._cols[name] = var

    def drop_cols(self, names: "Sequence[str]") -> None:
        """Drop columns by name (absent names are ignored, like ``Tup.drop``)."""
        dropped = set(names)
        self._cols = {n: v for n, v in self._cols.items() if n not in dropped}

    def path_value(self, path: "str | Path") -> str:
        """An expression string for the value at *path* in the current row.

        The head step must be a live column; later steps navigate the value
        through an interned rest-getter with ``get_chain`` semantics.
        """
        steps = parse_path(path)
        first = self.col(steps[0])
        if len(steps) == 1:
            return first
        rest = steps[1:]
        getter = _REST_GETTERS.get(rest)
        if getter is None:
            getter = _REST_GETTERS[rest] = _rest_getter(rest)
        return f"{self.bind(getter)}({first})"


class CompiledKernel:
    """One compiled chain kernel plus the metadata to derive per-op stats."""

    __slots__ = ("fn", "source", "changes", "last_changer")

    def __init__(
        self,
        fn: Callable,
        source: str,
        changes: "tuple[bool, ...]",
        last_changer: int,
    ):
        self.fn = fn
        self.source = source
        self.changes = changes
        self.last_changer = last_changer

    def run(self, rows: list, ops: "Sequence[Any]") -> "tuple[list, list]":
        """Execute over one partition; returns rows plus row-path-shaped stats.

        Stats are ``(op_id, rows_in, rows_out, seconds)`` per operator, with
        the measured kernel time split evenly across the fused operators
        (individual operators are not separable inside one fused loop).
        """
        started = time.perf_counter()
        out, counts = self.fn(rows)
        seconds = time.perf_counter() - started
        per = seconds / len(ops)
        stats = []
        n = len(rows)
        k = 0
        for i, op in enumerate(ops):
            n_in = n
            if self.changes[i]:
                if i == self.last_changer:
                    n = len(out)
                else:
                    n = counts[k]
                    k += 1
            stats.append((op.op_id, n_in, n, per))
        return out, stats


def build_kernel(ops: "Sequence[Any]", layout: Layout, ctx) -> CompiledKernel:
    """Generate and compile the kernel for *ops* over input *layout*.

    Raises :class:`~repro.algebra.expressions.KernelUnsupported` (or any
    other exception) when the chain cannot be lowered; callers treat every
    build failure as "use the row path".
    """
    kb = KernelBuilder(layout)
    changer_idxs = [i for i, op in enumerate(ops) if op.kernel_changes_cardinality]
    counters: list[str] = []
    for i, op in enumerate(ops):
        op.emit_kernel(kb, ctx)
        if op.kernel_changes_cardinality and i != changer_idxs[-1]:
            var = f"_k{len(counters)}"
            counters.append(var)
            kb.emit(f"{var} += 1")
    out_layout = Layout.of(tuple(kb._cols))
    values = list(kb._cols.values())
    inner = ", ".join(values) + ("," if values else "")
    kb.emit(f"_append(_mk({kb.bind(out_layout)}, ({inner})))")

    body = kb.lines
    used = [
        i
        for i in range(len(layout.names))
        if any(f"_c{i}_" in line for line in body)
    ]
    prelude = ["    _out = []", "    _append = _out.append"]
    prelude += [f"    {var} = 0" for var in counters]
    prelude += [f"    _l{i} = [_r._values[{i}] for _r in rows]" for i in used]
    if not used:
        loop = "    for _ in range(len(rows)):"
    elif len(used) == 1:
        loop = f"    for _c{used[0]}_ in _l{used[0]}:"
    else:
        loop_vars = ", ".join(f"_c{i}_" for i in used)
        lists = ", ".join(f"_l{i}" for i in used)
        loop = f"    for {loop_vars} in zip({lists}):"
    ret = "    return _out, (" + ", ".join(counters) + ("," if counters else "") + ")"
    source = "\n".join(["def _kernel(rows):"] + prelude + [loop] + body + [ret]) + "\n"
    namespace = dict(kb.globals)
    exec(compile(source, "<repro-kernel>", "exec"), namespace)
    return CompiledKernel(
        namespace["_kernel"],
        source,
        tuple(op.kernel_changes_cardinality for op in ops),
        changer_idxs[-1] if changer_idxs else -1,
    )


def kernel_source(ops: "Sequence[Any]", layout: Layout, ctx) -> str:
    """The generated source for a chain (golden-snapshot tests, debugging)."""
    return build_kernel(ops, layout, ctx).source


_MISSING = object()

#: Global kernel cache: semantic chain key → CompiledKernel or None (a
#: negative entry: the chain is known not to lower, skip codegen retries).
_KERNEL_CACHE: "dict[Any, Optional[CompiledKernel]]" = {}


def kernel_cache_clear() -> None:
    """Drop every cached kernel (tests; never needed in production)."""
    _KERNEL_CACHE.clear()


def chain_kernel(
    ops: "Sequence[Any]", layout: Layout, ctx, info: dict
) -> Optional[CompiledKernel]:
    """The cached kernel for ``(chain semantics, input layout)`` or ``None``.

    *info* accumulates the observability counters (``hits``/``misses``/
    ``codegen_seconds``) that the executor surfaces through
    ``ExecutionMetrics.kernels``.  ``None`` means "row path, please": the
    chain contains an unsupported operator, a hook declined, or the key is
    unhashable (e.g. a constant holding an unhashable value).
    """
    try:
        key = (tuple(op.kernel_key(ctx) for op in ops), layout.names)
        hash(key)
    except Exception:
        info["misses"] += 1
        return None
    cached = _KERNEL_CACHE.get(key, _MISSING)
    if cached is not _MISSING:
        info["hits"] += 1
        return cached
    info["misses"] += 1
    started = time.perf_counter()
    try:
        kernel: Optional[CompiledKernel] = build_kernel(ops, layout, ctx)
    except Exception:
        kernel = None
    info["codegen_seconds"] += time.perf_counter() - started
    _KERNEL_CACHE[key] = kernel
    return kernel
