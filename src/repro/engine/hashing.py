"""Process-stable hashing for shuffle partitioning.

Python salts ``hash()`` for ``str``/``bytes`` per process (PYTHONHASHSEED),
so partition assignment — and with it the ``shuffled_rows`` metrics and any
partition-order-dependent observation — would differ between runs.
:func:`stable_hash` is a drop-in replacement for partitioning purposes:

* deterministic across processes and hash seeds,
* equality-compatible on the values the engine uses as keys
  (``x == y`` ⇒ ``stable_hash(x) == stable_hash(y)``, including the numeric
  tower: ``2 == 2.0`` hash alike because CPython's numeric hashing is
  unsalted),
* defined over the nested value model (``Tup``, ``Bag``, ``NULL``, tuples,
  frozensets and primitives).

It is *not* a cryptographic hash and is not used for equality decisions —
only to pick shuffle targets, where collisions merely co-locate rows.
"""

from __future__ import annotations

import datetime
import zlib
from typing import Any

from repro.nested.values import Bag, Tup, is_null

_NULL_HASH = 0x9E3779B9
#: Fixed hash for every NaN.  CPython ≥ 3.10 hashes NaN by object identity
#: (NaN != NaN defeats the usual equal-hash contract), which would route
#: "the same" NaN to different partitions across processes and runs —
#: found by the differential fuzzer (seed 4) as diverging shuffle metrics
#: and NaN-keyed groups between backends.
_NAN_HASH = 0x7FF80000
_LAYOUT_HASHES: dict[int, int] = {}


def layout_hash(layout) -> int:
    """The memoised :func:`stable_hash` of a layout's attribute-name tuple.

    ``Tup`` keys hash as ``hash((layout_hash(t.layout), *value hashes))``;
    exposing the layout component lets the columnar shuffle pre-hash key
    columns without rebuilding it per row.
    """
    names_hash = _LAYOUT_HASHES.get(id(layout))
    if names_hash is None:
        names_hash = hash(tuple(stable_hash(n) for n in layout.names))
        _LAYOUT_HASHES[id(layout)] = names_hash
    return names_hash


def column_hashes(values: "list[Any]") -> "list[int]":
    """``stable_hash`` of every element of one key column, in order.

    Semantically ``[stable_hash(v) for v in values]``; the common primitive
    key types are dispatched on exact type inside the loop so a whole shuffle
    column is hashed without re-entering the generic chain per row.
    """
    out: "list[int]" = []
    append = out.append
    crc32 = zlib.crc32
    for v in values:
        tv = type(v)
        if tv is str:
            append(crc32(v.encode("utf-8", "surrogatepass")))
        elif tv is int:
            append(hash(v))
        elif tv is float:
            append(_NAN_HASH if v != v else hash(v))
        else:
            append(stable_hash(v))
    return out


def stable_hash(value: Any) -> int:
    """A deterministic, seed-independent hash of a nested value.

    Raises ``TypeError`` for types outside the nested value model (str, bytes,
    bool/int/float, date/datetime, ⊥, ``Tup``, ``Bag``, tuples and
    frozensets): an unknown type would silently fall back to the built-in
    ``hash``, which is process-salted for anything hashing via its contents
    (the exact quiet failure this function exists to prevent).

    Shuffle partitioning hashes every key of every shuffled row, so the
    common cases (primitives, key tuples of primitives, flat ``Tup`` keys)
    are dispatched on exact type before the general ``isinstance`` chain;
    subclasses still resolve through the latter.
    """
    tv = type(value)
    if tv is str:
        return zlib.crc32(value.encode("utf-8", "surrogatepass"))
    if tv is int:
        return hash(value)
    if tv is float:
        return _NAN_HASH if value != value else hash(value)
    if tv is tuple:
        return hash(tuple([stable_hash(v) for v in value]))
    if tv is Tup:
        return hash(
            (layout_hash(value._layout),)
            + tuple([stable_hash(v) for v in value._values])
        )
    if isinstance(value, str):
        return zlib.crc32(value.encode("utf-8", "surrogatepass"))
    if isinstance(value, (bool, int, float)):
        # CPython's numeric hash is unsalted and equality-compatible
        # across int/float/bool — except NaN, which hashes by identity.
        if value != value:
            return _NAN_HASH
        return hash(value)
    if is_null(value):
        return _NULL_HASH
    if isinstance(value, Tup):
        return hash(
            (layout_hash(value.layout),)
            + tuple(stable_hash(v) for v in value.values())
        )
    if isinstance(value, Bag):
        return hash(
            ("bag", frozenset((stable_hash(e), c) for e, c in value.items()))
        )
    if isinstance(value, tuple):
        return hash(tuple(stable_hash(v) for v in value))
    if isinstance(value, (frozenset, set)):
        return hash(("set", frozenset(stable_hash(v) for v in value)))
    if isinstance(value, bytes):
        return zlib.crc32(value)
    if isinstance(value, (datetime.date, datetime.datetime)):
        # datetime hashing goes through the salted bytes hash internally;
        # the ISO form is canonical and unambiguous per concrete type.
        return zlib.crc32(value.isoformat().encode("ascii"))
    raise TypeError(
        f"stable_hash: unsupported type {type(value).__name__!r} for "
        f"{value!r}; the built-in hash() is process-salted for arbitrary "
        "types, which would make partition assignment seed-dependent — "
        "extend repro.engine.hashing.stable_hash with a deterministic "
        "encoding for this type instead"
    )
