"""Partition-aware NRAB plan executor (the Spark stand-in).

The executor evaluates a :class:`~repro.algebra.operators.Query` with
simulated distributed execution: relations are hash-partitioned, *narrow*
operators (selection, projection, flatten, ...) run per partition, and *wide*
operators (joins, grouping, deduplication) shuffle rows by key first, exactly
like Spark's stages.  Per-operator metrics (rows in/out, shuffled rows, wall
time) feed the runtime benchmarks of Figures 8–11.

Shuffles use :func:`repro.engine.hashing.stable_hash`, so partition
assignment (and every metric derived from it) is identical across processes
regardless of ``PYTHONHASHSEED``.  Keys are computed once by the operator's
compiled key function during the shuffle and handed to the per-partition
``eval_keyed`` evaluation — never recomputed inside the partition.

Correctness does not depend on partitioning: for every plan and every
partition count the executor's result equals ``Query.evaluate`` (tested
property-style and over all registered scenario queries in
``tests/engine/test_executor.py``).
"""

from __future__ import annotations

import time
from typing import Any, Callable, Optional

from repro.algebra.operators import (
    BagDestroy,
    CartesianProduct,
    Deduplication,
    Difference,
    EvalContext,
    GroupAggregation,
    Join,
    Map,
    NestedAggregation,
    Operator,
    Projection,
    Query,
    RelationFlatten,
    RelationNesting,
    Renaming,
    Selection,
    TableAccess,
    TupleFlatten,
    TupleNesting,
    Union,
)
from repro.engine.database import Database
from repro.engine.hashing import stable_hash
from repro.engine.metrics import ExecutionMetrics, OperatorMetrics
from repro.nested.values import Bag, Tup

Partitions = list[list[Tup]]
KeyedPartitions = list[list[tuple[Any, Tup]]]

_NARROW_OPS = (
    Projection,
    Renaming,
    Selection,
    TupleFlatten,
    RelationFlatten,
    TupleNesting,
    NestedAggregation,
    Map,
    BagDestroy,
)


class Executor:
    """Evaluates query plans with simulated partitioned execution."""

    def __init__(self, num_partitions: int = 4):
        if num_partitions < 1:
            raise ValueError("need at least one partition")
        self.num_partitions = num_partitions
        self.last_metrics: Optional[ExecutionMetrics] = None

    def execute(self, query: Query, db: Database) -> Bag:
        """Run *query* over *db*; metrics are stored in ``last_metrics``."""
        started = time.perf_counter()
        ctx = EvalContext(db, query.infer_schemas(db))
        metrics = ExecutionMetrics()
        cache: dict[int, Partitions] = {}
        for op in query.ops:
            child_parts = [cache[c.op_id] for c in op.children]
            op_metrics = OperatorMetrics(op.op_id, op.label, partitions=self.num_partitions)
            op_started = time.perf_counter()
            cache[op.op_id] = self._run_op(op, child_parts, ctx, op_metrics)
            op_metrics.wall_seconds = time.perf_counter() - op_started
            op_metrics.rows_in = sum(len(p) for parts in child_parts for p in parts)
            op_metrics.rows_out = sum(len(p) for p in cache[op.op_id])
            metrics.operators[op.op_id] = op_metrics
        metrics.wall_seconds = time.perf_counter() - started
        self.last_metrics = metrics
        rows = [t for part in cache[query.root.op_id] for t in part]
        return Bag(rows)

    # -- partitioning helpers ------------------------------------------------

    def _partition_round_robin(self, rows: list[Tup]) -> Partitions:
        parts: Partitions = [[] for _ in range(self.num_partitions)]
        for i, row in enumerate(rows):
            parts[i % self.num_partitions].append(row)
        return parts

    def _shuffle_by_key(
        self, parts: Partitions, key_fn, metrics: OperatorMetrics
    ) -> Partitions:
        """Repartition rows by ``stable_hash(key_fn(row))`` (rows only)."""
        out: Partitions = [[] for _ in range(self.num_partitions)]
        for part in parts:
            for row in part:
                target = stable_hash(key_fn(row)) % self.num_partitions
                out[target].append(row)
                metrics.shuffled_rows += 1
        return out

    def _shuffle_keyed(
        self,
        parts: Partitions,
        key_fn: Callable[[Tup], Any],
        metrics: OperatorMetrics,
    ) -> KeyedPartitions:
        """Repartition rows by key, keeping the computed key with each row.

        ``None`` keys (⊥-valued join keys) go to partition 0 so outer joins
        can still emit their padded rows exactly once.
        """
        out: KeyedPartitions = [[] for _ in range(self.num_partitions)]
        shuffled = 0
        nparts = self.num_partitions
        for part in parts:
            for row in part:
                key = key_fn(row)
                target = 0 if key is None else stable_hash(key) % nparts
                out[target].append((key, row))
                shuffled += 1
        metrics.shuffled_rows += shuffled
        return out

    def _gather(self, parts: Partitions, metrics: OperatorMetrics) -> list[Tup]:
        metrics.shuffled_rows += sum(len(p) for p in parts)
        return [t for p in parts for t in p]

    # -- operator dispatch ---------------------------------------------------

    def _run_op(
        self,
        op: Operator,
        child_parts: list[Partitions],
        ctx: EvalContext,
        metrics: OperatorMetrics,
    ) -> Partitions:
        if isinstance(op, TableAccess):
            return self._partition_round_robin(op.eval_rows([], ctx))
        if isinstance(op, _NARROW_OPS):
            return [op.eval_rows([part], ctx) for part in child_parts[0]]
        if isinstance(op, Union):
            left, right = child_parts
            return [left_p + right_p for left_p, right_p in zip(left, right)]
        if isinstance(op, Join):
            return self._run_join(op, child_parts, ctx, metrics)
        if isinstance(op, (GroupAggregation, RelationNesting)):
            return self._run_grouping(op, child_parts, ctx, metrics)
        if isinstance(op, (Deduplication, Difference)):
            shuffled = [
                self._shuffle_by_key(parts, lambda t: t, metrics) for parts in child_parts
            ]
            return [
                op.eval_rows([shuffled_child[i] for shuffled_child in shuffled], ctx)
                for i in range(self.num_partitions)
            ]
        if isinstance(op, CartesianProduct):
            left = self._gather(child_parts[0], metrics)
            right = self._gather(child_parts[1], metrics)
            rows = op.eval_rows([left, right], ctx)
            return self._partition_round_robin(rows)
        # Fallback: gather and evaluate globally (covers future operators).
        gathered = [self._gather(parts, metrics) for parts in child_parts]
        return self._partition_round_robin(op.eval_rows(gathered, ctx))

    def _run_join(
        self,
        op: Join,
        child_parts: list[Partitions],
        ctx: EvalContext,
        metrics: OperatorMetrics,
    ) -> Partitions:
        left_key, right_key = op.key_fns()
        left = self._shuffle_keyed(child_parts[0], left_key, metrics)
        right = self._shuffle_keyed(child_parts[1], right_key, metrics)
        return [
            op.eval_keyed(left[i], right[i], ctx) for i in range(self.num_partitions)
        ]

    def _run_grouping(
        self,
        op: "GroupAggregation | RelationNesting",
        child_parts: list[Partitions],
        ctx: EvalContext,
        metrics: OperatorMetrics,
    ) -> Partitions:
        if isinstance(op, GroupAggregation) and not op.key_specs:
            gathered = self._gather(child_parts[0], metrics)
            return [op.eval_rows([gathered], ctx)] + [
                [] for _ in range(self.num_partitions - 1)
            ]
        shuffled = self._shuffle_keyed(child_parts[0], op.key_fn(), metrics)
        return [op.eval_keyed(part, ctx) for part in shuffled]
