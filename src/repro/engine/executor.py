"""Partition-aware NRAB plan executor (the Spark stand-in).

The executor evaluates a :class:`~repro.algebra.operators.Query` with
distributed-style execution: relations are hash-partitioned, *narrow*
operators (selection, projection, flatten, ...) are fused into per-partition
task chains, and *wide* operators (joins, grouping, deduplication) shuffle
rows by key first, exactly like Spark's stages.  Tasks are dispatched through
a pluggable :mod:`~repro.engine.backends` backend — ``serial`` runs them
inline, ``process`` fans them out across CPU cores — and per-operator metrics
(rows in/out, shuffled rows, wall/cpu time) are merged back from whichever
workers ran them; they feed the runtime benchmarks of Figures 8–11.

Shuffles use :func:`repro.engine.hashing.stable_hash`, so partition
assignment (and every metric derived from it) is identical across processes
regardless of ``PYTHONHASHSEED``.  Keys are computed once by the operator's
compiled key function during the shuffle and handed to the per-partition
``eval_keyed`` evaluation — never recomputed inside the partition.  Shuffles
always happen in the driver; only the per-partition evaluation moves to
workers.

Correctness does not depend on partitioning *or* on the backend: for every
plan, every partition count and every worker count the executor's result
equals ``Query.evaluate`` (tested property-style, over all registered
scenario queries, and cross-backend in ``tests/engine/test_executor.py`` and
``tests/engine/test_backends.py``).
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Any, Callable, Optional

from repro.algebra.operators import (
    BagDestroy,
    CartesianProduct,
    Deduplication,
    Difference,
    EvalContext,
    GroupAggregation,
    Join,
    Map,
    NestedAggregation,
    Operator,
    Projection,
    Query,
    RelationFlatten,
    RelationNesting,
    Renaming,
    Selection,
    TableAccess,
    TupleFlatten,
    TupleNesting,
    Union,
)
from repro.engine.backends import ExecutionBackend, TaskContext, get_backend
from repro.engine.columnar import (
    group_key_scatter,
    join_key_scatter,
    merge_kernel_info,
    new_kernel_info,
    resolve_engine,
)
from repro.engine.database import Database
from repro.engine.hashing import stable_hash
from repro.engine.metrics import ExecutionMetrics, OperatorMetrics
from repro.engine.optimizer import OptimizationReport, optimize_query, resolve_optimize
from repro.nested.values import Bag, Tup

Partitions = list[list[Tup]]
KeyedPartitions = list[list[tuple[Any, Tup]]]

_NARROW_OPS = (
    Projection,
    Renaming,
    Selection,
    TupleFlatten,
    RelationFlatten,
    TupleNesting,
    NestedAggregation,
    Map,
    BagDestroy,
)


@dataclass
class _Segment:
    """One unit of the stage plan.

    ``chain`` segments hold a maximal run of narrow operators fused into one
    per-partition task; every other kind holds a single operator.
    """

    kind: str  # "source" | "chain" | "wide" | "union" | "driver"
    ops: list[Operator]


def build_segments(query: Query) -> list[_Segment]:
    """Group the plan's operators into fused execution segments.

    A narrow operator joins its child's chain when the child is itself part
    of a narrow chain whose output no other operator consumes — the fused
    chain then runs as a single per-partition task without materializing the
    intermediate partitions (Spark's stage/pipelining rule).
    """
    consumers: dict[int, int] = {op.op_id: 0 for op in query.ops}
    for op in query.ops:
        for child in op.children:
            consumers[child.op_id] += 1
    consumers[query.root.op_id] += 1  # the final result is a consumer too

    segments: list[_Segment] = []
    segment_of: dict[int, _Segment] = {}
    for op in query.ops:
        if isinstance(op, TableAccess):
            segment = _Segment("source", [op])
        elif isinstance(op, _NARROW_OPS):
            child = op.children[0]
            tail = segment_of.get(child.op_id)
            if tail is not None and tail.kind == "chain" and consumers[child.op_id] == 1:
                tail.ops.append(op)
                segment_of[op.op_id] = tail
                continue
            segment = _Segment("chain", [op])
        elif isinstance(
            op, (Join, GroupAggregation, RelationNesting, Deduplication, Difference)
        ):
            segment = _Segment("wide", [op])
        elif isinstance(op, Union):
            segment = _Segment("union", [op])
        else:  # CartesianProduct and future operators: gather + driver eval
            segment = _Segment("driver", [op])
        segments.append(segment)
        segment_of[op.op_id] = segment
    return segments


class Executor:
    """Evaluates query plans with partitioned, backend-pluggable execution.

    ``optimize`` runs the logical plan optimizer
    (:mod:`repro.engine.optimizer`) before execution; ``None`` defers to the
    ``REPRO_OPTIMIZE`` environment variable.  Results are identical either
    way — the optimizer's equivalence suite enforces it for every scenario —
    and ``last_report`` keeps the rewrite provenance of the last run.

    ``engine`` selects the chain-evaluation engine: ``"row"`` evaluates
    fused chains row-at-a-time through compiled closures (the oracle path),
    ``"columnar"`` lowers each chain to a cached generated kernel with
    vectorized shuffle-key extraction for wide operators
    (:mod:`repro.engine.columnar`); ``None`` defers to ``REPRO_ENGINE``.
    Result bags are bit-identical across engines for every plan.
    """

    def __init__(
        self,
        num_partitions: int = 4,
        backend: "str | ExecutionBackend | None" = None,
        workers: Optional[int] = None,
        optimize: Optional[bool] = None,
        engine: Optional[str] = None,
    ):
        if num_partitions < 1:
            raise ValueError("need at least one partition")
        self.num_partitions = num_partitions
        self.backend = get_backend(backend, workers)
        self.optimize = resolve_optimize(optimize)
        self.engine = resolve_engine(engine)
        self.last_metrics: Optional[ExecutionMetrics] = None
        self.last_report: Optional[OptimizationReport] = None

    def execute(self, query: Query, db: Database) -> Bag:
        """Run *query* over *db*; metrics are stored in ``last_metrics``."""
        started = time.perf_counter()
        report: Optional[OptimizationReport] = None
        if self.optimize:
            report = optimize_query(query, db)
            query = report.optimized
        self.last_report = report
        ctx = EvalContext(db, query.infer_schemas(db))
        context = TaskContext(query, db)
        metrics = ExecutionMetrics(
            backend=self.backend.name,
            workers=self.backend.workers,
            engine=self.engine,
        )
        if self.engine == "columnar":
            metrics.kernels = new_kernel_info()
        cache: dict[int, Partitions] = {}
        for segment in build_segments(query):
            self._run_segment(segment, cache, ctx, context, metrics)
        metrics.wall_seconds = time.perf_counter() - started
        if report is not None:
            metrics.optimizer = report.summary()
            metrics.optimizer["rewrite_seconds"] = report.rewrite_seconds
            for op_id, m in metrics.operators.items():
                origins = report.origin_of.get(op_id, ())
                if origins != (op_id,):
                    m.origins = origins
        self.last_metrics = metrics
        rows = [t for part in cache[query.root.op_id] for t in part]
        return Bag(rows)

    # -- partitioning helpers ------------------------------------------------

    def _partition_round_robin(self, rows: list[Tup]) -> Partitions:
        # Stride slicing assigns row i to partition i % n, like the obvious
        # append loop, but each partition is materialized in one C-level slice.
        return [rows[i :: self.num_partitions] for i in range(self.num_partitions)]

    def _shuffle_by_key(
        self, parts: Partitions, key_fn, metrics: OperatorMetrics
    ) -> Partitions:
        """Repartition rows by ``stable_hash(key_fn(row))`` (rows only)."""
        out: Partitions = [[] for _ in range(self.num_partitions)]
        for part in parts:
            for row in part:
                target = stable_hash(key_fn(row)) % self.num_partitions
                out[target].append(row)
                metrics.shuffled_rows += 1
        return out

    def _shuffle_keyed(
        self,
        parts: Partitions,
        key_fn: Callable[[Tup], Any],
        metrics: OperatorMetrics,
        scatter: "Callable[[list, int, list], int] | None" = None,
    ) -> KeyedPartitions:
        """Repartition rows by key, keeping the computed key with each row.

        ``None`` keys (⊥-valued join keys) go to partition 0 so outer joins
        can still emit their padded rows exactly once.  With the columnar
        engine, *scatter* replaces the per-row *key_fn* + hash loop with a
        one-pass column extraction over the shared layout that hashes the
        key column in a single sweep and places rows directly.
        """
        out: KeyedPartitions = [[] for _ in range(self.num_partitions)]
        shuffled = 0
        nparts = self.num_partitions
        for part in parts:
            if scatter is not None:
                shuffled += scatter(part, nparts, out)
                continue
            for row in part:
                key = key_fn(row)
                target = 0 if key is None else stable_hash(key) % nparts
                out[target].append((key, row))
                shuffled += 1
        metrics.shuffled_rows += shuffled
        return out

    def _gather(self, parts: Partitions, metrics: OperatorMetrics) -> list[Tup]:
        metrics.shuffled_rows += sum(len(p) for p in parts)
        return [t for p in parts for t in p]

    # -- segment execution ---------------------------------------------------

    def _op_metrics(self, metrics: ExecutionMetrics, op: Operator) -> OperatorMetrics:
        m = metrics.operators.get(op.op_id)
        if m is None:
            m = OperatorMetrics(op.op_id, op.label, partitions=self.num_partitions)
            metrics.operators[op.op_id] = m
        return m

    def _run_segment(
        self,
        segment: _Segment,
        cache: dict[int, Partitions],
        ctx: EvalContext,
        context: TaskContext,
        metrics: ExecutionMetrics,
    ) -> None:
        started = time.perf_counter()
        if segment.kind == "source":
            op = segment.ops[0]
            m = self._op_metrics(metrics, op)
            rows = op.eval_rows([], ctx)
            cache[op.op_id] = self._partition_round_robin(rows)
            m.rows_out = len(rows)
            m.wall_seconds += time.perf_counter() - started
            m.cpu_seconds = m.wall_seconds
            return
        if segment.kind == "chain":
            self._run_chain(segment, cache, context, metrics, started)
            return
        if segment.kind == "union":
            op = segment.ops[0]
            m = self._op_metrics(metrics, op)
            left, right = (cache[c.op_id] for c in op.children)
            cache[op.op_id] = [l_part + r_part for l_part, r_part in zip(left, right)]
            m.rows_in = sum(len(p) for parts in (left, right) for p in parts)
            m.rows_out = m.rows_in
            m.wall_seconds += time.perf_counter() - started
            m.cpu_seconds = m.wall_seconds
            return
        if segment.kind == "wide":
            self._run_wide(segment.ops[0], cache, context, metrics, started)
            return
        # "driver": gather everything and evaluate globally (cartesian
        # product and any future operator without a partitioning rule).
        op = segment.ops[0]
        m = self._op_metrics(metrics, op)
        child_parts = [cache[c.op_id] for c in op.children]
        m.rows_in = sum(len(p) for parts in child_parts for p in parts)
        gathered = [self._gather(parts, m) for parts in child_parts]
        rows = op.eval_rows(gathered, ctx)
        cache[op.op_id] = self._partition_round_robin(rows)
        m.rows_out = len(rows)
        m.wall_seconds += time.perf_counter() - started
        m.cpu_seconds = m.wall_seconds

    def _run_chain(
        self,
        segment: _Segment,
        cache: dict[int, Partitions],
        context: TaskContext,
        metrics: ExecutionMetrics,
        started: float,
    ) -> None:
        ops = segment.ops
        child_parts = cache[ops[0].children[0].op_id]
        op_ids = tuple(op.op_id for op in ops)
        # Register metrics in plan order before merging task stats.
        per_op = {op.op_id: self._op_metrics(metrics, op) for op in ops}
        kind = "kchain" if self.engine == "columnar" else "chain"
        results = self.backend.run(
            context, [(kind, op_ids, part) for part in child_parts]
        )
        cache[op_ids[-1]] = [result[0] for result in results]
        for result in results:
            for op_id, n_in, n_out, seconds in result[1]:
                per_op[op_id].absorb_task(n_in, n_out, seconds)
            if len(result) > 2 and metrics.kernels is not None:
                merge_kernel_info(metrics.kernels, result[2])
        elapsed = time.perf_counter() - started
        for op in ops:
            # Driver-observed elapsed time is attributed to the whole fused
            # stage; per-operator compute lives in ``cpu_seconds``.
            per_op[op.op_id].wall_seconds += elapsed

    def _run_wide(
        self,
        op: Operator,
        cache: dict[int, Partitions],
        context: TaskContext,
        metrics: ExecutionMetrics,
        started: float,
    ) -> None:
        m = self._op_metrics(metrics, op)
        child_parts = [cache[c.op_id] for c in op.children]
        m.rows_in = sum(len(p) for parts in child_parts for p in parts)
        nparts = self.num_partitions
        pad_empty = False
        columnar = self.engine == "columnar"
        if isinstance(op, Join):
            left_key, right_key = op.key_fns()
            left_scatter = right_scatter = None
            if columnar:
                left_scatter = join_key_scatter(tuple(l for l, _ in op.on), left_key)
                right_scatter = join_key_scatter(tuple(r for _, r in op.on), right_key)
            left = self._shuffle_keyed(child_parts[0], left_key, m, left_scatter)
            right = self._shuffle_keyed(child_parts[1], right_key, m, right_scatter)
            tasks = [
                ("join_keyed", op.op_id, left[i], right[i]) for i in range(nparts)
            ]
        elif isinstance(op, GroupAggregation) and not op.key_specs:
            gathered = self._gather(child_parts[0], m)
            tasks = [("rows", op.op_id, [gathered])]
            pad_empty = True
        elif isinstance(op, (GroupAggregation, RelationNesting)):
            scatter = group_key_scatter(op) if columnar else None
            shuffled = self._shuffle_keyed(child_parts[0], op.key_fn(), m, scatter)
            tasks = [("group_keyed", op.op_id, part) for part in shuffled]
        else:  # Deduplication, Difference: shuffle whole rows by value
            shuffled = [
                self._shuffle_by_key(parts, lambda t: t, m) for parts in child_parts
            ]
            tasks = [
                ("rows", op.op_id, [child[i] for child in shuffled])
                for i in range(nparts)
            ]
        results = self.backend.run(context, tasks)
        parts = [rows for rows, _ in results]
        if pad_empty:
            parts = parts + [[] for _ in range(nparts - 1)]
        cache[op.op_id] = parts
        m.rows_out = sum(len(p) for p in parts)
        for _, stats in results:
            for _, _, _, seconds in stats:
                m.cpu_seconds += seconds
                m.tasks += 1
        m.wall_seconds += time.perf_counter() - started
