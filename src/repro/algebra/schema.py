"""Expression and plan schema inference (the ``type(·)`` column of Table 1).

Schema inference serves three purposes in the reproduction:

1. null padding for outer joins / outer flattens needs the field names of the
   missing side;
2. schema alternatives (paper §5.2) are pruned when they would change the
   query's output schema;
3. attribute alternatives must be type-compatible (Table 2).
"""

from __future__ import annotations

from repro.algebra.expressions import (
    And,
    Arith,
    Attr,
    Cmp,
    Const,
    Contains,
    Expr,
    IsNull,
    Not,
    Or,
)
from repro.nested.types import (
    ANY_TYPE,
    BOOL,
    FLOAT,
    INT,
    AnyType,
    NestedType,
    PrimitiveType,
    TupleType,
    type_of,
    unify,
)


def expr_type(expr: Expr, schema: TupleType) -> NestedType:
    """Infer the type of *expr* over rows of *schema*."""
    if isinstance(expr, Attr):
        current: NestedType = schema
        for step in expr.path:
            if isinstance(current, AnyType):
                return ANY_TYPE
            if not isinstance(current, TupleType):
                raise KeyError(f"attribute path {expr.path} enters non-tuple type {current!r}")
            if not current.has_field(step):
                raise KeyError(f"attribute {step!r} not in schema fields {current.names}")
            current = current.field(step)
        return current
    if isinstance(expr, Const):
        return type_of(expr.value)
    if isinstance(expr, (Cmp, And, Or, Not, Contains, IsNull)):
        return BOOL
    if isinstance(expr, Arith):
        left = expr_type(expr.left, schema)
        right = expr_type(expr.right, schema)
        if isinstance(left, AnyType) and isinstance(right, AnyType):
            return FLOAT
        try:
            merged = unify(left, right)
        except TypeError:
            return FLOAT
        if isinstance(merged, PrimitiveType) and merged.name in ("int", "float"):
            return merged if expr.op != "/" else FLOAT
        return FLOAT
    raise TypeError(f"cannot infer type of expression {expr!r}")


def validate_expr(expr: Expr, schema: TupleType) -> bool:
    """True when every attribute reference in *expr* resolves in *schema*."""
    try:
        for node in expr.walk():
            if isinstance(node, Attr):
                expr_type(node, schema)
        return True
    except KeyError:
        return False


def schema_names(schema: TupleType) -> tuple[str, ...]:
    """The top-level attribute names of a row schema."""
    return schema.names


__all__ = ["expr_type", "validate_expr", "schema_names", "INT", "FLOAT", "BOOL"]
