"""Expression language for selection/join conditions and computed columns.

Conditions θ (paper Table 2) consist of attribute references, comparison
operators ``{=, ≠, <, ≤, >, ≥}``, constants, and logical connectives.
Computed projection columns additionally use arithmetic.  The Twitter and
TPC-H scenarios also use substring containment (``"BTS" ∈ text``).

Null semantics follow SQL's pragmatic reading: any comparison involving ⊥
evaluates to False (so selections filter null-valued tuples), while grouping
and deduplication elsewhere use plain value equality.

Compilation
-----------

:meth:`Expr.compile` lowers an expression tree into a plain Python closure
(row → value) built once and reused for every row: attribute references
become interned path getters (:func:`repro.nested.paths.compile_path`),
comparisons bind their operator function directly, and connectives close over
their children's compiled forms — no tree walking, no ``isinstance`` dispatch
per row.  The compiled closure is cached on the expression instance;
expressions are immutable after construction, so the cache never goes stale.
``Expr.eval`` remains the reference (interpreted) semantics; ``compile`` must
always agree with it.
"""

from __future__ import annotations

from typing import Any, Callable, Iterator

from repro.nested.paths import Path, compile_path, parse_path, path_str
from repro.nested.values import NAN, NULL, Bag, Tup, is_null

CompiledExpr = Callable[[Tup], Any]


class KernelUnsupported(Exception):
    """Raised by a codegen hook when a node cannot be lowered to kernel code.

    The kernel builder (:mod:`repro.engine.kernels`) treats this as "fall
    back to the row-at-a-time path for the whole chain" — never as an error,
    so hooks are free to decline any shape they cannot reproduce exactly.
    """


COMPARISON_OPS = ("=", "!=", "<", "<=", ">", ">=")

#: Python source operator per comparison token (for kernel codegen); the
#: inline operators agree with :data:`_CMP_FUNCS` exactly.
_CMP_SOURCE = {"=": "==", "!=": "!=", "<": "<", "<=": "<=", ">": ">", ">=": ">="}

_CMP_FUNCS: dict[str, Callable[[Any, Any], bool]] = {
    "=": lambda a, b: a == b,
    "!=": lambda a, b: a != b,
    "<": lambda a, b: a < b,
    "<=": lambda a, b: a <= b,
    ">": lambda a, b: a > b,
    ">=": lambda a, b: a >= b,
}

_ARITH_FUNCS: dict[str, Callable[[Any, Any], Any]] = {
    "+": lambda a, b: a + b,
    "-": lambda a, b: a - b,
    "*": lambda a, b: a * b,
    "/": lambda a, b: a / b,
}


class Expr:
    """Base class for expressions evaluated against a single tuple."""

    def eval(self, tup: Tup) -> Any:
        """Evaluate this expression against one tuple (reference semantics)."""
        raise NotImplementedError

    def compile(self) -> CompiledExpr:
        """The compiled row→value closure, cached on this expression.

        Safe because expressions are immutable after construction; the
        closure agrees with :meth:`eval` on every input.
        """
        fn = getattr(self, "_compiled", None)
        if fn is None:
            fn = self._compile()
            self._compiled = fn
        return fn

    def _compile(self) -> CompiledExpr:
        raise NotImplementedError

    def emit_kernel(self, kb) -> str:
        """Lower this node into kernel source (see ``docs/KERNELS.md``).

        *kb* is the :class:`repro.engine.kernels.KernelBuilder` for the chain
        being compiled.  The hook may append statements through the builder
        and must return a Python expression string yielding the node's value
        for the current row; it must agree with :meth:`eval` /
        :meth:`compile` exactly (⊥ propagation, canonical NaN, comparison
        ``TypeError`` → ``False``).  Raise :class:`KernelUnsupported` when
        the node cannot be lowered — the whole chain then runs on the row
        path.
        """
        raise KernelUnsupported(type(self).__name__)

    def __getstate__(self):
        """Pickle without the compiled closure (workers re-compile lazily).

        Subclasses keep their parameters in ``__slots__`` while the compiled
        cache lives in the instance ``__dict__`` (inherited from this
        slot-less base), so the state is the standard ``(dict, slots)`` pair
        with ``_compiled`` filtered out of the dict part.
        """
        d = {k: v for k, v in self.__dict__.items() if k != "_compiled"}
        slots = {}
        for cls in type(self).__mro__:
            for name in getattr(cls, "__slots__", ()):
                if hasattr(self, name):
                    slots[name] = getattr(self, name)
        return (d or None, slots)

    def attr_paths(self) -> list[Path]:
        """All attribute paths referenced by this expression (with duplicates,
        one entry per reference — Table 2 treats repeated references to the
        same attribute as distinct reparameterization slots)."""
        return [node.path for node in self.walk() if isinstance(node, Attr)]

    def walk(self) -> Iterator["Expr"]:
        """Yield this node and every descendant in deterministic pre-order."""
        yield self
        for child in self.children():
            yield from child.walk()

    def children(self) -> tuple["Expr", ...]:
        """The direct child expressions (empty for leaves)."""
        return ()

    def map_attrs(self, fn: Callable[[Path], Path]) -> "Expr":
        """Rebuild the expression with every attribute path rewritten by *fn*."""
        raise NotImplementedError

    # Builder helpers (explicit methods instead of overloading ``==`` so that
    # structural equality keeps working for sets and tests).
    def eq(self, other: "Expr | Any") -> "Cmp":
        """Comparison builder: ``self = other``."""
        return Cmp("=", self, _wrap(other))

    def ne(self, other: "Expr | Any") -> "Cmp":
        """Comparison builder: ``self != other``."""
        return Cmp("!=", self, _wrap(other))

    def lt(self, other: "Expr | Any") -> "Cmp":
        """Comparison builder: ``self < other``."""
        return Cmp("<", self, _wrap(other))

    def le(self, other: "Expr | Any") -> "Cmp":
        """Comparison builder: ``self <= other``."""
        return Cmp("<=", self, _wrap(other))

    def gt(self, other: "Expr | Any") -> "Cmp":
        """Comparison builder: ``self > other``."""
        return Cmp(">", self, _wrap(other))

    def ge(self, other: "Expr | Any") -> "Cmp":
        """Comparison builder: ``self >= other``."""
        return Cmp(">=", self, _wrap(other))

    def between(self, low: Any, high: Any) -> "And":
        """Range builder: ``low <= self <= high`` (inclusive on both ends)."""
        return And(self.ge(low), self.le(high))

    def contains(self, needle: "Expr | Any") -> "Contains":
        """Containment builder: ``needle in self`` (substring or bag membership)."""
        return Contains(self, _wrap(needle))

    def is_null(self) -> "IsNull":
        """Null-test builder: true when this expression evaluates to ⊥."""
        return IsNull(self)

    def __add__(self, other: "Expr | Any") -> "Arith":
        return Arith("+", self, _wrap(other))

    def __sub__(self, other: "Expr | Any") -> "Arith":
        return Arith("-", self, _wrap(other))

    def __rsub__(self, other: "Expr | Any") -> "Arith":
        return Arith("-", _wrap(other), self)

    def __mul__(self, other: "Expr | Any") -> "Arith":
        return Arith("*", self, _wrap(other))

    def __rmul__(self, other: "Expr | Any") -> "Arith":
        return Arith("*", _wrap(other), self)

    def __truediv__(self, other: "Expr | Any") -> "Arith":
        return Arith("/", self, _wrap(other))

    def __and__(self, other: "Expr") -> "And":
        return And(self, other)

    def __or__(self, other: "Expr") -> "Or":
        return Or(self, other)

    def __invert__(self) -> "Not":
        return Not(self)


def _wrap(value: "Expr | Any") -> Expr:
    return value if isinstance(value, Expr) else Const(value)


class Attr(Expr):
    """A reference to an attribute (possibly a dotted path through tuples)."""

    __slots__ = ("path",)

    def __init__(self, path: "str | Path"):
        self.path = parse_path(path)

    def eval(self, tup: Tup) -> Any:
        return tup.get_path(self.path)

    def _compile(self) -> CompiledExpr:
        return compile_path(self.path)

    def emit_kernel(self, kb) -> str:
        return kb.path_value(self.path)

    def map_attrs(self, fn: Callable[[Path], Path]) -> "Attr":
        return Attr(fn(self.path))

    def __eq__(self, other: object) -> bool:
        return isinstance(other, Attr) and self.path == other.path

    def __hash__(self) -> int:
        return hash(("attr", self.path))

    def __repr__(self) -> str:
        return path_str(self.path)


class Const(Expr):
    """A constant value."""

    __slots__ = ("value",)

    def __init__(self, value: Any):
        self.value = value

    def eval(self, tup: Tup) -> Any:
        return self.value

    def _compile(self) -> CompiledExpr:
        value = self.value
        return lambda t: value

    def emit_kernel(self, kb) -> str:
        # int/bool/str literals inline verbatim; anything else (floats with
        # NaN, tuples, bags, ⊥) is bound as a kernel global so the kernel
        # yields the *same object* the row path would.
        if type(self.value) in (int, bool, str):
            return repr(self.value)
        return kb.bind(self.value)

    def map_attrs(self, fn: Callable[[Path], Path]) -> "Const":
        return self

    def __eq__(self, other: object) -> bool:
        return isinstance(other, Const) and self.value == other.value

    def __hash__(self) -> int:
        return hash(("const", self.value))

    def __repr__(self) -> str:
        return repr(self.value)


class Cmp(Expr):
    """A comparison ``left op right`` with op ∈ {=, !=, <, <=, >, >=}."""

    __slots__ = ("op", "left", "right")

    def __init__(self, op: str, left: Expr, right: Expr):
        if op not in COMPARISON_OPS:
            raise ValueError(f"unknown comparison operator {op!r}")
        self.op = op
        self.left = left
        self.right = right

    def eval(self, tup: Tup) -> bool:
        lhs = self.left.eval(tup)
        rhs = self.right.eval(tup)
        if is_null(lhs) or is_null(rhs):
            return False
        try:
            return _CMP_FUNCS[self.op](lhs, rhs)
        except TypeError:
            return False

    def _compile(self) -> CompiledExpr:
        left = self.left.compile()
        right = self.right.compile()
        cmp_fn = _CMP_FUNCS[self.op]

        def run(t: Tup) -> bool:
            lhs = left(t)
            rhs = right(t)
            if is_null(lhs) or is_null(rhs):
                return False
            try:
                return cmp_fn(lhs, rhs)
            except TypeError:
                return False

        return run

    def emit_kernel(self, kb) -> str:
        lhs = kb.capture(self.left.emit_kernel(kb))
        rhs = kb.capture(self.right.emit_kernel(kb))
        out = kb.tmp()
        kb.emit(f"if {kb.null_test(lhs)} or {kb.null_test(rhs)}:")
        kb.emit(f"    {out} = False")
        kb.emit("else:")
        kb.emit("    try:")
        kb.emit(f"        {out} = {lhs} {_CMP_SOURCE[self.op]} {rhs}")
        kb.emit("    except TypeError:")
        kb.emit(f"        {out} = False")
        return out

    def children(self) -> tuple[Expr, ...]:
        return (self.left, self.right)

    def map_attrs(self, fn: Callable[[Path], Path]) -> "Cmp":
        return Cmp(self.op, self.left.map_attrs(fn), self.right.map_attrs(fn))

    def with_op(self, op: str) -> "Cmp":
        """A copy of this comparison with the operator replaced (Table 2)."""
        return Cmp(op, self.left, self.right)

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, Cmp)
            and self.op == other.op
            and self.left == other.left
            and self.right == other.right
        )

    def __hash__(self) -> int:
        return hash(("cmp", self.op, self.left, self.right))

    def __repr__(self) -> str:
        return f"({self.left!r} {self.op} {self.right!r})"


class Arith(Expr):
    """Arithmetic ``left op right`` with op ∈ {+, -, *, /}; ⊥ is absorbing.

    A NaN result is returned as the canonical
    :data:`~repro.nested.values.NAN` object, so computed columns feeding
    group/join keys obey the engine-wide single-NaN invariant (NaN produced
    per row in a worker process must equal NaN produced by the reference
    evaluation in the driver).
    """

    __slots__ = ("op", "left", "right")

    def __init__(self, op: str, left: Expr, right: Expr):
        if op not in _ARITH_FUNCS:
            raise ValueError(f"unknown arithmetic operator {op!r}")
        self.op = op
        self.left = left
        self.right = right

    def eval(self, tup: Tup) -> Any:
        lhs = self.left.eval(tup)
        rhs = self.right.eval(tup)
        if is_null(lhs) or is_null(rhs):
            return NULL
        out = _ARITH_FUNCS[self.op](lhs, rhs)
        if type(out) is float and out != out:
            return NAN
        return out

    def _compile(self) -> CompiledExpr:
        left = self.left.compile()
        right = self.right.compile()
        arith_fn = _ARITH_FUNCS[self.op]

        def run(t: Tup) -> Any:
            lhs = left(t)
            rhs = right(t)
            if is_null(lhs) or is_null(rhs):
                return NULL
            out = arith_fn(lhs, rhs)
            if type(out) is float and out != out:
                return NAN
            return out

        return run

    def emit_kernel(self, kb) -> str:
        lhs = kb.capture(self.left.emit_kernel(kb))
        rhs = kb.capture(self.right.emit_kernel(kb))
        out = kb.tmp()
        kb.emit(f"if {kb.null_test(lhs)} or {kb.null_test(rhs)}:")
        kb.emit(f"    {out} = _NULL")
        kb.emit("else:")
        kb.emit(f"    {out} = {lhs} {self.op} {rhs}")
        kb.emit(f"    if type({out}) is float and {out} != {out}:")
        kb.emit(f"        {out} = _NAN")
        return out

    def children(self) -> tuple[Expr, ...]:
        return (self.left, self.right)

    def map_attrs(self, fn: Callable[[Path], Path]) -> "Arith":
        return Arith(self.op, self.left.map_attrs(fn), self.right.map_attrs(fn))

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, Arith)
            and self.op == other.op
            and self.left == other.left
            and self.right == other.right
        )

    def __hash__(self) -> int:
        return hash(("arith", self.op, self.left, self.right))

    def __repr__(self) -> str:
        return f"({self.left!r} {self.op} {self.right!r})"


class And(Expr):
    """Conjunction of one or more boolean expressions."""

    __slots__ = ("terms",)

    def __init__(self, *terms: Expr):
        flattened: list[Expr] = []
        for term in terms:
            if isinstance(term, And):
                flattened.extend(term.terms)
            else:
                flattened.append(term)
        self.terms = tuple(flattened)

    def eval(self, tup: Tup) -> bool:
        return all(term.eval(tup) for term in self.terms)

    def _compile(self) -> CompiledExpr:
        fns = tuple(term.compile() for term in self.terms)

        def run(t: Tup) -> bool:
            for fn in fns:
                if not fn(t):
                    return False
            return True

        return run

    def emit_kernel(self, kb) -> str:
        # Nested ifs preserve short-circuit evaluation: term i+1's statements
        # only run when term i was truthy, exactly like the compiled closure.
        out = kb.tmp()
        kb.emit(f"{out} = False")
        opened = 0
        for term in self.terms:
            kb.emit(f"if {term.emit_kernel(kb)}:")
            kb.indent += 1
            opened += 1
        kb.emit(f"{out} = True")
        kb.indent -= opened
        return out

    def children(self) -> tuple[Expr, ...]:
        return self.terms

    def map_attrs(self, fn: Callable[[Path], Path]) -> "And":
        return And(*(term.map_attrs(fn) for term in self.terms))

    def __eq__(self, other: object) -> bool:
        return isinstance(other, And) and self.terms == other.terms

    def __hash__(self) -> int:
        return hash(("and", self.terms))

    def __repr__(self) -> str:
        return " ∧ ".join(repr(term) for term in self.terms)


class Or(Expr):
    """Disjunction of one or more boolean expressions."""

    __slots__ = ("terms",)

    def __init__(self, *terms: Expr):
        flattened: list[Expr] = []
        for term in terms:
            if isinstance(term, Or):
                flattened.extend(term.terms)
            else:
                flattened.append(term)
        self.terms = tuple(flattened)

    def eval(self, tup: Tup) -> bool:
        return any(term.eval(tup) for term in self.terms)

    def _compile(self) -> CompiledExpr:
        fns = tuple(term.compile() for term in self.terms)

        def run(t: Tup) -> bool:
            for fn in fns:
                if fn(t):
                    return True
            return False

        return run

    def emit_kernel(self, kb) -> str:
        out = kb.tmp()
        kb.emit(f"{out} = True")
        opened = 0
        for term in self.terms:
            kb.emit(f"if not ({term.emit_kernel(kb)}):")
            kb.indent += 1
            opened += 1
        kb.emit(f"{out} = False")
        kb.indent -= opened
        return out

    def children(self) -> tuple[Expr, ...]:
        return self.terms

    def map_attrs(self, fn: Callable[[Path], Path]) -> "Or":
        return Or(*(term.map_attrs(fn) for term in self.terms))

    def __eq__(self, other: object) -> bool:
        return isinstance(other, Or) and self.terms == other.terms

    def __hash__(self) -> int:
        return hash(("or", self.terms))

    def __repr__(self) -> str:
        return "(" + " ∨ ".join(repr(term) for term in self.terms) + ")"


class Not(Expr):
    """Negation."""

    __slots__ = ("term",)

    def __init__(self, term: Expr):
        self.term = term

    def eval(self, tup: Tup) -> bool:
        return not self.term.eval(tup)

    def _compile(self) -> CompiledExpr:
        fn = self.term.compile()
        return lambda t: not fn(t)

    def emit_kernel(self, kb) -> str:
        return f"(not ({self.term.emit_kernel(kb)}))"

    def children(self) -> tuple[Expr, ...]:
        return (self.term,)

    def map_attrs(self, fn: Callable[[Path], Path]) -> "Not":
        return Not(self.term.map_attrs(fn))

    def __eq__(self, other: object) -> bool:
        return isinstance(other, Not) and self.term == other.term

    def __hash__(self) -> int:
        return hash(("not", self.term))

    def __repr__(self) -> str:
        return f"¬{self.term!r}"


class Contains(Expr):
    """Containment: substring test on strings, membership test on bags.

    Used by the Twitter scenarios (``"BTS" ∈ text``) and TPC-H Q13
    (``"special" ∉ o_comment`` via ``Not(Contains(...))``).
    """

    __slots__ = ("haystack", "needle")

    def __init__(self, haystack: Expr, needle: Expr):
        self.haystack = haystack
        self.needle = needle

    def eval(self, tup: Tup) -> bool:
        haystack = self.haystack.eval(tup)
        needle = self.needle.eval(tup)
        if is_null(haystack) or is_null(needle):
            return False
        if isinstance(haystack, str):
            return str(needle) in haystack
        if isinstance(haystack, Bag):
            return needle in haystack
        return False

    def _compile(self) -> CompiledExpr:
        hay_fn = self.haystack.compile()
        needle_fn = self.needle.compile()

        def run(t: Tup) -> bool:
            haystack = hay_fn(t)
            needle = needle_fn(t)
            if is_null(haystack) or is_null(needle):
                return False
            if isinstance(haystack, str):
                return str(needle) in haystack
            if isinstance(haystack, Bag):
                return needle in haystack
            return False

        return run

    def emit_kernel(self, kb) -> str:
        hay = kb.capture(self.haystack.emit_kernel(kb))
        needle = kb.capture(self.needle.emit_kernel(kb))
        out = kb.tmp()
        kb.emit(f"if {kb.null_test(hay)} or {kb.null_test(needle)}:")
        kb.emit(f"    {out} = False")
        kb.emit(f"elif isinstance({hay}, str):")
        kb.emit(f"    {out} = str({needle}) in {hay}")
        kb.emit(f"elif isinstance({hay}, _Bag):")
        kb.emit(f"    {out} = {needle} in {hay}")
        kb.emit("else:")
        kb.emit(f"    {out} = False")
        return out

    def children(self) -> tuple[Expr, ...]:
        return (self.haystack, self.needle)

    def map_attrs(self, fn: Callable[[Path], Path]) -> "Contains":
        return Contains(self.haystack.map_attrs(fn), self.needle.map_attrs(fn))

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, Contains)
            and self.haystack == other.haystack
            and self.needle == other.needle
        )

    def __hash__(self) -> int:
        return hash(("contains", self.haystack, self.needle))

    def __repr__(self) -> str:
        return f"({self.needle!r} ∈ {self.haystack!r})"


class IsNull(Expr):
    """True when the operand evaluates to ⊥."""

    __slots__ = ("term",)

    def __init__(self, term: Expr):
        self.term = term

    def eval(self, tup: Tup) -> bool:
        return is_null(self.term.eval(tup))

    def _compile(self) -> CompiledExpr:
        fn = self.term.compile()
        return lambda t: is_null(fn(t))

    def emit_kernel(self, kb) -> str:
        value = kb.capture(self.term.emit_kernel(kb))
        return f"({kb.null_test(value)})"

    def children(self) -> tuple[Expr, ...]:
        return (self.term,)

    def map_attrs(self, fn: Callable[[Path], Path]) -> "IsNull":
        return IsNull(self.term.map_attrs(fn))

    def __eq__(self, other: object) -> bool:
        return isinstance(other, IsNull) and self.term == other.term

    def __hash__(self) -> int:
        return hash(("isnull", self.term))

    def __repr__(self) -> str:
        return f"isnull({self.term!r})"


def col(path: "str | Path") -> Attr:
    """Shorthand attribute reference: ``col("address2.city")``."""
    return Attr(path)


def lit(value: Any) -> Const:
    """Shorthand constant: ``lit(2019)``."""
    return Const(value)
