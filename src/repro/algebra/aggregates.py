"""Standard SQL aggregate functions (the PTIME restriction of Theorem 1).

The paper restricts the heuristic algorithm to the standard SQL aggregation
functions, which keeps explanation computation in PTIME.  ⊥ values are
skipped, ``count`` counts non-null inputs, and ``count(*)`` counts rows.

Float sums use ``math.fsum`` (exact, correctly-rounded), so aggregate results
are independent of input order — a requirement for the partitioned executor,
whose shuffles feed groups in partition order rather than plan order.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Any, Iterable, Optional

from repro.algebra.expressions import Expr
from repro.nested.values import NAN, NULL, is_null


def _exact_sum(values: list) -> Any:
    """Order-independent sum: exact fsum for floats, plain sum otherwise.

    A NaN result is returned as the canonical :data:`~repro.nested.values.NAN`
    object so aggregate outputs obey the engine-wide single-NaN invariant.
    """
    if any(isinstance(v, float) for v in values):
        total = math.fsum(values)
        return NAN if total != total else total
    return sum(values)


def _is_nan(value: Any) -> bool:
    return type(value) is float and value != value


AGGREGATE_FUNCTIONS = ("sum", "count", "avg", "min", "max")


def apply_aggregate(func: str, values: Iterable[Any], distinct: bool = False) -> Any:
    """Apply aggregate *func* to an iterable of raw values.

    Returns ⊥ for value aggregates over an empty (or all-null) input and 0 for
    ``count``, matching SQL.  Results are independent of input order, which
    the partitioned executor relies on: float sums are exact (``fsum``) and
    NaN sorts *above* every other value for ``min``/``max`` (the
    Postgres/Spark convention) — Python's own ``min``/``max`` return whichever
    operand happens to come first once a NaN comparison is involved, which
    made group results depend on the partitioning (fuzzer find, seed 4).
    """
    if func not in AGGREGATE_FUNCTIONS:
        raise ValueError(f"unknown aggregate {func!r}; expected one of {AGGREGATE_FUNCTIONS}")
    kept = [value for value in values if not is_null(value)]
    if distinct:
        seen: dict[Any, None] = {}
        for value in kept:
            seen.setdefault(value, None)
        kept = list(seen)
    if func == "count":
        return len(kept)
    if not kept:
        return NULL
    if func == "sum":
        return _exact_sum(kept)
    if func == "avg":
        total = _exact_sum(kept)
        if _is_nan(total):
            return NAN
        return total / len(kept)
    if func in ("min", "max"):
        ordered = [v for v in kept if not _is_nan(v)]
        if func == "min":
            # NaN is the largest value: it wins min only when nothing else is left.
            return min(ordered) if ordered else NAN
        return NAN if len(ordered) != len(kept) else max(ordered)
    raise AssertionError("unreachable")


@dataclass(frozen=True)
class AggSpec:
    """One aggregate column of a group-by aggregation ``γ``.

    ``expr`` is the input expression (``None`` means ``count(*)``), ``out``
    the output attribute name ``B``, and ``distinct`` adds SQL ``DISTINCT``.
    """

    func: str
    expr: Optional[Expr]
    out: str
    distinct: bool = False

    def __post_init__(self) -> None:
        if self.func not in AGGREGATE_FUNCTIONS:
            raise ValueError(f"unknown aggregate {self.func!r}")
        if self.expr is None and self.func != "count":
            raise ValueError(f"aggregate {self.func!r} requires an input expression")

    def label(self) -> str:
        """Short display form, e.g. ``sum(l_tax)→revenue``."""
        inner = "*" if self.expr is None else repr(self.expr)
        distinct = "distinct " if self.distinct else ""
        return f"{self.func}({distinct}{inner})→{self.out}"

    def __repr__(self) -> str:
        return self.label()
