"""NRAB operators (paper Table 1) and query plans.

Every operator of the paper's nested relational algebra for bags is
implemented with exact bag semantics:

* table access, projection (with computed columns), renaming, selection,
* inner / left outer / right outer / full outer join (``Join`` with ``how``),
* tuple flatten ``F^T``, relation inner/outer flatten ``F^I``/``F^O``
  (``RelationFlatten`` with an ``outer`` flag),
* tuple nesting ``N^T`` and relation nesting ``N^R``,
* per-tuple aggregation over a nested relation (``NestedAggregation``, the
  Table-1 ``γ``) and the derived group-by aggregation (``GroupAggregation``),
* additive union, difference, deduplication, cartesian product, restructuring
  ``map``, and bag-destroy.

A :class:`Query` wraps an operator tree, assigns stable operator identifiers
(Def. 7 requires operators to retain identity across reparameterizations), and
evaluates against a :class:`~repro.engine.database.Database`.

Evaluation works on Python lists of :class:`~repro.nested.values.Tup` (lists
carry multiplicities naturally); the final result is wrapped into a
:class:`~repro.nested.values.Bag`.
"""

from __future__ import annotations

from typing import Any, Callable, Iterable, Mapping, Optional, Sequence

from repro.algebra.aggregates import AggSpec, apply_aggregate
from repro.algebra.expressions import Attr, Expr
from repro.nested.paths import Path, parse_path, path_str
from repro.nested.types import AnyType, BagType, TupleType
from repro.nested.values import NULL, Bag, Tup, is_null


class EvalContext:
    """Evaluation context: database plus per-operator row schemas."""

    def __init__(self, db, schemas: Mapping[int, TupleType]):
        self.db = db
        self.schemas = schemas

    def schema_of(self, op: "Operator") -> TupleType:
        return self.schemas[op.op_id]


class Operator:
    """Base class for all NRAB operators.

    Operators are nodes of a query tree.  ``op_id`` is assigned by
    :class:`Query` in deterministic topological order; reparameterizations
    preserve the tree structure, so identifiers persist (paper Def. 7).
    Operator instances must not be shared between structurally different
    queries.
    """

    symbol = "?"

    def __init__(self, children: Sequence["Operator"], label: Optional[str] = None):
        self.children: tuple[Operator, ...] = tuple(children)
        self.op_id: int = -1
        self._label = label

    @property
    def label(self) -> str:
        return self._label if self._label is not None else f"{self.symbol}{self.op_id}"

    def params(self) -> dict[str, Any]:
        """The operator's parameters ``param(Q, op)`` for Δ comparison."""
        raise NotImplementedError

    def with_params(self, **changes: Any) -> "Operator":
        """A copy of this operator with some parameters replaced."""
        params = self.params()
        unknown = set(changes) - set(params)
        if unknown:
            raise ValueError(f"{type(self).__name__} has no parameters {sorted(unknown)}")
        params.update(changes)
        return self._rebuild(self.children, params)

    def clone(self, children: Sequence["Operator"]) -> "Operator":
        """A copy with new children and identical parameters."""
        return self._rebuild(children, self.params())

    def _rebuild(self, children: Sequence["Operator"], params: dict[str, Any]) -> "Operator":
        op = type(self)(*children, **params, label=self._label)
        return op

    def eval_rows(self, child_rows: list[list[Tup]], ctx: EvalContext) -> list[Tup]:
        raise NotImplementedError

    def output_schema(self, child_schemas: list[TupleType], db) -> TupleType:
        raise NotImplementedError

    def describe(self) -> str:
        """One-line human-readable description for explanation output."""
        return f"{self.label}"

    def __repr__(self) -> str:
        return self.describe()


def _strict_resolve(schema: TupleType, path: Path) -> Any:
    """Resolve a value path (tuples only, no bag crossing) to a type."""
    current: Any = schema
    for step in path:
        if isinstance(current, AnyType):
            return current
        if not isinstance(current, TupleType):
            raise KeyError(f"path step {step!r} cannot enter type {current!r}")
        current = current.field(step)
    return current


class TableAccess(Operator):
    """Table access: reads a named relation from the database."""

    symbol = "R"

    def __init__(self, table: str, label: Optional[str] = None):
        super().__init__((), label=label)
        self.table = table

    def params(self) -> dict[str, Any]:
        return {"table": self.table}

    def _rebuild(self, children, params):
        return TableAccess(params["table"], label=self._label)

    def eval_rows(self, child_rows, ctx) -> list[Tup]:
        return list(ctx.db.relation(self.table))

    def output_schema(self, child_schemas, db) -> TupleType:
        return db.schema(self.table)

    def describe(self) -> str:
        return f"{self.label}[{self.table}]"


class Projection(Operator):
    """Projection ``π`` with optional computed columns.

    ``cols`` is a sequence of output column specs; each spec is either a plain
    attribute name/path (projected and named after its last step) or a pair
    ``(out_name, expr)``.
    """

    symbol = "π"

    def __init__(self, child: Operator, cols: Sequence, label: Optional[str] = None):
        super().__init__((child,), label=label)
        normalized: list[tuple[str, Expr]] = []
        for spec in cols:
            if isinstance(spec, str):
                path = parse_path(spec)
                normalized.append((path[-1], Attr(path)))
            elif isinstance(spec, tuple) and len(spec) == 2:
                name, expr = spec
                if isinstance(expr, str):
                    expr = Attr(expr)
                normalized.append((name, expr))
            else:
                raise ValueError(f"bad projection column spec {spec!r}")
        names = [name for name, _ in normalized]
        if len(set(names)) != len(names):
            raise ValueError(f"duplicate projection output names: {names}")
        self.cols: tuple[tuple[str, Expr], ...] = tuple(normalized)

    def params(self) -> dict[str, Any]:
        return {"cols": self.cols}

    def _rebuild(self, children, params):
        return Projection(children[0], params["cols"], label=self._label)

    def eval_rows(self, child_rows, ctx) -> list[Tup]:
        return [Tup((name, expr.eval(t)) for name, expr in self.cols) for t in child_rows[0]]

    def output_schema(self, child_schemas, db) -> TupleType:
        from repro.algebra.schema import expr_type

        return TupleType((name, expr_type(expr, child_schemas[0])) for name, expr in self.cols)

    def describe(self) -> str:
        parts = []
        for name, expr in self.cols:
            if isinstance(expr, Attr) and expr.path[-1] == name and len(expr.path) == 1:
                parts.append(name)
            else:
                parts.append(f"{name}←{expr!r}")
        return f"{self.label}[{', '.join(parts)}]"


class Renaming(Operator):
    """Attribute renaming ``ρ``; ``pairs`` maps new ← old (partial allowed)."""

    symbol = "ρ"

    def __init__(
        self, child: Operator, pairs: Sequence[tuple[str, str]], label: Optional[str] = None
    ):
        super().__init__((child,), label=label)
        self.pairs: tuple[tuple[str, str], ...] = tuple(pairs)

    def params(self) -> dict[str, Any]:
        return {"pairs": self.pairs}

    def _rebuild(self, children, params):
        return Renaming(children[0], params["pairs"], label=self._label)

    def _mapping(self) -> dict[str, str]:
        return {old: new for new, old in self.pairs}

    def eval_rows(self, child_rows, ctx) -> list[Tup]:
        mapping = self._mapping()
        return [t.rename(mapping) for t in child_rows[0]]

    def output_schema(self, child_schemas, db) -> TupleType:
        mapping = self._mapping()
        return TupleType(
            (mapping.get(name, name), field_type)
            for name, field_type in child_schemas[0].fields
        )

    def describe(self) -> str:
        inner = ", ".join(f"{new}←{old}" for new, old in self.pairs)
        return f"{self.label}[{inner}]"


class Selection(Operator):
    """Selection ``σ_θ``: keeps tuples satisfying the condition."""

    symbol = "σ"

    def __init__(self, child: Operator, pred: Expr, label: Optional[str] = None):
        super().__init__((child,), label=label)
        self.pred = pred

    def params(self) -> dict[str, Any]:
        return {"pred": self.pred}

    def _rebuild(self, children, params):
        return Selection(children[0], params["pred"], label=self._label)

    def eval_rows(self, child_rows, ctx) -> list[Tup]:
        return [t for t in child_rows[0] if self.pred.eval(t)]

    def output_schema(self, child_schemas, db) -> TupleType:
        return child_schemas[0]

    def describe(self) -> str:
        return f"{self.label}[{self.pred!r}]"


JOIN_TYPES = ("inner", "left", "right", "full")


class Join(Operator):
    """Equi-join variants ``⋈ / ⟕ / ⟖ / ⟗`` (``how`` selects the variant).

    ``on`` is a list of ``(left_path, right_path)`` pairs; ⊥ keys never match.
    ``extra`` is an optional residual predicate over the concatenated tuple.
    ``drop_right_keys`` removes the right-side key columns from the output
    (used when both sides share key attribute names).
    """

    symbol = "⋈"

    def __init__(
        self,
        left: Operator,
        right: Operator,
        on: Sequence[tuple],
        how: str = "inner",
        extra: Optional[Expr] = None,
        drop_right_keys: bool = False,
        label: Optional[str] = None,
    ):
        super().__init__((left, right), label=label)
        if how not in JOIN_TYPES:
            raise ValueError(f"unknown join type {how!r}; expected one of {JOIN_TYPES}")
        self.on: tuple[tuple[Path, Path], ...] = tuple(
            (parse_path(l), parse_path(r)) for l, r in on
        )
        self.how = how
        self.extra = extra
        self.drop_right_keys = drop_right_keys

    def params(self) -> dict[str, Any]:
        return {
            "on": self.on,
            "how": self.how,
            "extra": self.extra,
            "drop_right_keys": self.drop_right_keys,
        }

    def _rebuild(self, children, params):
        return Join(
            children[0],
            children[1],
            params["on"],
            how=params["how"],
            extra=params["extra"],
            drop_right_keys=params["drop_right_keys"],
            label=self._label,
        )

    def _key(self, t: Tup, paths: Sequence[Path]) -> Optional[tuple]:
        key = tuple(t.get_path(p) for p in paths)
        if any(is_null(v) for v in key):
            return None
        return key

    def _pad(self, schema: TupleType, drop: Iterable[str] = ()) -> Tup:
        dropped = set(drop)
        return Tup((name, NULL) for name, _ in schema.fields if name not in dropped)

    def _right_drop(self) -> set[str]:
        if not self.drop_right_keys:
            return set()
        return {path[0] for _, path in self.on if len(path) == 1}

    def _combine(self, left_t: Tup, right_t: Tup) -> Tup:
        drop = self._right_drop()
        if drop:
            right_t = right_t.drop(drop)
        return left_t.concat(right_t)

    def eval_rows(self, child_rows, ctx) -> list[Tup]:
        left_rows, right_rows = child_rows
        left_paths = [l for l, _ in self.on]
        right_paths = [r for _, r in self.on]
        index: dict[tuple, list[int]] = {}
        for j, r in enumerate(right_rows):
            key = self._key(r, right_paths)
            if key is not None:
                index.setdefault(key, []).append(j)
        left_schema = ctx.schema_of(self.children[0])
        right_schema = ctx.schema_of(self.children[1])
        out: list[Tup] = []
        matched_right: set[int] = set()
        for l in left_rows:
            key = self._key(l, left_paths)
            any_match = False
            for j in index.get(key, ()) if key is not None else ():
                combined = self._combine(l, right_rows[j])
                if self.extra is not None and not self.extra.eval(combined):
                    continue
                out.append(combined)
                matched_right.add(j)
                any_match = True
            if not any_match and self.how in ("left", "full"):
                out.append(self._combine(l, self._pad(right_schema)))
        if self.how in ("right", "full"):
            left_pad = self._pad(left_schema)
            for j, r in enumerate(right_rows):
                if j not in matched_right:
                    out.append(self._combine(left_pad, r))
        return out

    def output_schema(self, child_schemas, db) -> TupleType:
        left_schema, right_schema = child_schemas
        drop = self._right_drop()
        right_fields = [(n, t) for n, t in right_schema.fields if n not in drop]
        return left_schema.concat(TupleType(right_fields))

    def describe(self) -> str:
        cond = " ∧ ".join(f"{path_str(l)}={path_str(r)}" for l, r in self.on)
        how = {"inner": "⋈", "left": "⟕", "right": "⟖", "full": "⟗"}[self.how]
        return f"{self.label}[{how} {cond}]"


class TupleFlatten(Operator):
    """Tuple flatten ``F^T``: pulls a nested tuple (or one of its fields) up.

    With ``alias`` the value at *path* becomes a single new column (replacing
    an existing column of the same name, like Spark's ``withColumn``);
    without, the nested tuple's fields are concatenated onto the row.
    """

    symbol = "Fᵀ"

    def __init__(
        self,
        child: Operator,
        path: "str | Path",
        alias: Optional[str] = None,
        label: Optional[str] = None,
    ):
        super().__init__((child,), label=label)
        self.path = parse_path(path)
        self.alias = alias

    def params(self) -> dict[str, Any]:
        return {"path": self.path, "alias": self.alias}

    def _rebuild(self, children, params):
        return TupleFlatten(children[0], params["path"], params["alias"], label=self._label)

    def eval_rows(self, child_rows, ctx) -> list[Tup]:
        out = []
        if self.alias is not None:
            for t in child_rows[0]:
                out.append(t.with_attr(self.alias, t.get_path(self.path)))
            return out
        schema = ctx.schema_of(self.children[0])
        nested = _strict_resolve(schema, self.path)
        field_names = nested.names if isinstance(nested, TupleType) else ()
        for t in child_rows[0]:
            value = t.get_path(self.path)
            if is_null(value):
                out.append(t.concat(Tup((n, NULL) for n in field_names)))
            elif isinstance(value, Tup):
                out.append(t.concat(value))
            else:
                raise TypeError(f"tuple flatten of non-tuple value {value!r} at {self.path}")
        return out

    def output_schema(self, child_schemas, db) -> TupleType:
        schema = child_schemas[0]
        nested = _strict_resolve(schema, self.path)
        if self.alias is not None:
            if schema.has_field(self.alias):
                return TupleType(
                    (n, nested if n == self.alias else t) for n, t in schema.fields
                )
            return schema.concat(TupleType([(self.alias, nested)]))
        if not isinstance(nested, TupleType):
            raise TypeError(f"tuple flatten target {path_str(self.path)} is not tuple-typed")
        return schema.concat(nested)

    def describe(self) -> str:
        target = f"{self.alias}←" if self.alias else ""
        return f"{self.label}[{target}{path_str(self.path)}]"


class RelationFlatten(Operator):
    """Relation flatten ``F^I`` (inner) / ``F^O`` (outer) of a bag attribute.

    Each element of the bag at *path* is either concatenated onto the row
    (``alias=None``; element must be a tuple) or placed into a single new
    column *alias*.  The outer variant pads rows whose bag is empty or ⊥ with
    nulls; the inner variant drops them (the D2/T1 failure mode in the paper).
    """

    symbol = "F"

    def __init__(
        self,
        child: Operator,
        path: "str | Path",
        alias: Optional[str] = None,
        outer: bool = False,
        label: Optional[str] = None,
    ):
        super().__init__((child,), label=label)
        self.path = parse_path(path)
        self.alias = alias
        self.outer = outer

    @property
    def symbol_typed(self) -> str:
        return "Fᴼ" if self.outer else "Fᴵ"

    def params(self) -> dict[str, Any]:
        return {"path": self.path, "alias": self.alias, "outer": self.outer}

    def _rebuild(self, children, params):
        return RelationFlatten(
            children[0],
            params["path"],
            alias=params["alias"],
            outer=params["outer"],
            label=self._label,
        )

    def _element_fields(self, ctx: EvalContext) -> tuple[str, ...]:
        schema = ctx.schema_of(self.children[0])
        bag_type = _strict_resolve(schema, self.path)
        if isinstance(bag_type, BagType) and isinstance(bag_type.element, TupleType):
            return bag_type.element.names
        return ()

    def _pad(self, ctx: EvalContext) -> Tup:
        if self.alias is not None:
            return Tup([(self.alias, NULL)])
        return Tup((name, NULL) for name in self._element_fields(ctx))

    def expand(self, t: Tup, ctx: EvalContext) -> tuple[list[Tup], bool]:
        """All flattened successors of *t* plus whether padding was used.

        Shared with the tracing module, which always runs the outer variant.
        """
        value = t.get_path(self.path)
        if is_null(value) or (isinstance(value, Bag) and value.is_empty()):
            return [t.concat(self._pad(ctx))], True
        if not isinstance(value, Bag):
            raise TypeError(
                f"relation flatten of non-bag value {value!r} at {path_str(self.path)}"
            )
        out = []
        for element in value:
            if self.alias is not None:
                out.append(t.concat(Tup([(self.alias, element)])))
            elif isinstance(element, Tup):
                out.append(t.concat(element))
            else:
                raise TypeError(
                    "relation flatten without alias requires tuple elements; "
                    f"got {element!r}"
                )
        return out, False

    def eval_rows(self, child_rows, ctx) -> list[Tup]:
        out: list[Tup] = []
        for t in child_rows[0]:
            expanded, padded = self.expand(t, ctx)
            if padded and not self.outer:
                continue
            out.extend(expanded)
        return out

    def output_schema(self, child_schemas, db) -> TupleType:
        schema = child_schemas[0]
        bag_type = _strict_resolve(schema, self.path)
        if self.alias is not None:
            element = bag_type.element if isinstance(bag_type, BagType) else AnyType()
            return schema.concat(TupleType([(self.alias, element)]))
        if isinstance(bag_type, BagType) and isinstance(bag_type.element, TupleType):
            return schema.concat(bag_type.element)
        raise TypeError(
            f"relation flatten target {path_str(self.path)} is not a bag of tuples"
        )

    def describe(self) -> str:
        target = f"{self.alias}←" if self.alias else ""
        return f"{self.label}[{self.symbol_typed} {target}{path_str(self.path)}]"


def InnerFlatten(
    child: Operator, path: "str | Path", alias: Optional[str] = None, label: Optional[str] = None
) -> RelationFlatten:
    """Relation inner flatten ``F^I_A`` (Table 1)."""
    return RelationFlatten(child, path, alias=alias, outer=False, label=label)


def OuterFlatten(
    child: Operator, path: "str | Path", alias: Optional[str] = None, label: Optional[str] = None
) -> RelationFlatten:
    """Relation outer flatten ``F^O_A`` (Table 1)."""
    return RelationFlatten(child, path, alias=alias, outer=True, label=label)


class TupleNesting(Operator):
    """Tuple nesting ``N^T_{A→C}``: packs attributes A into a tuple column C."""

    symbol = "Nᵀ"

    def __init__(
        self,
        child: Operator,
        attrs: Sequence[str],
        target: str,
        label: Optional[str] = None,
    ):
        super().__init__((child,), label=label)
        self.attrs = tuple(attrs)
        self.target = target

    def params(self) -> dict[str, Any]:
        return {"attrs": self.attrs, "target": self.target}

    def _rebuild(self, children, params):
        return TupleNesting(children[0], params["attrs"], params["target"], label=self._label)

    def eval_rows(self, child_rows, ctx) -> list[Tup]:
        return [
            t.drop(self.attrs).concat(Tup([(self.target, t.project(self.attrs))]))
            for t in child_rows[0]
        ]

    def output_schema(self, child_schemas, db) -> TupleType:
        schema = child_schemas[0]
        nested = schema.project(self.attrs)
        return schema.drop(self.attrs).concat(TupleType([(self.target, nested)]))

    def describe(self) -> str:
        return f"{self.label}[{','.join(self.attrs)}→{self.target}]"


class RelationNesting(Operator):
    """Relation nesting ``N^R_{A→C}``: groups on the remaining attributes M and
    nests the projections on A into a bag column C (Table 1)."""

    symbol = "Nᴿ"

    def __init__(
        self,
        child: Operator,
        attrs: Sequence[str],
        target: str,
        label: Optional[str] = None,
    ):
        super().__init__((child,), label=label)
        self.attrs = tuple(attrs)
        self.target = target

    def params(self) -> dict[str, Any]:
        return {"attrs": self.attrs, "target": self.target}

    def _rebuild(self, children, params):
        return RelationNesting(
            children[0], params["attrs"], params["target"], label=self._label
        )

    def group_key(self, t: Tup) -> Tup:
        return t.drop(self.attrs)

    def eval_rows(self, child_rows, ctx) -> list[Tup]:
        groups: dict[Tup, list[Tup]] = {}
        for t in child_rows[0]:
            groups.setdefault(self.group_key(t), []).append(t.project(self.attrs))
        return [
            key.concat(Tup([(self.target, Bag(members))]))
            for key, members in groups.items()
        ]

    def output_schema(self, child_schemas, db) -> TupleType:
        schema = child_schemas[0]
        nested = BagType(schema.project(self.attrs))
        return schema.drop(self.attrs).concat(TupleType([(self.target, nested)]))

    def describe(self) -> str:
        return f"{self.label}[{','.join(self.attrs)}→{self.target}]"


class NestedAggregation(Operator):
    """Per-tuple aggregation ``γ_{f(A)→B}`` over a nested relation attribute
    (the Table-1 form, e.g. D2's ``count(ctitle)→cnt``).

    *field* selects a field of the nested tuples; when omitted, unary nested
    tuples are unwrapped automatically and ``count`` counts elements.
    """

    symbol = "γ"

    def __init__(
        self,
        child: Operator,
        func: str,
        attr: "str | Path",
        out: str,
        field: Optional[str] = None,
        label: Optional[str] = None,
    ):
        super().__init__((child,), label=label)
        self.func = func
        self.attr = parse_path(attr)
        self.out = out
        self.field = field

    def params(self) -> dict[str, Any]:
        return {"func": self.func, "attr": self.attr, "out": self.out, "field": self.field}

    def _rebuild(self, children, params):
        return NestedAggregation(
            children[0],
            params["func"],
            params["attr"],
            params["out"],
            field=params["field"],
            label=self._label,
        )

    def aggregate_value(self, t: Tup) -> Any:
        bag = t.get_path(self.attr)
        if is_null(bag):
            elements: list[Any] = []
        elif isinstance(bag, Bag):
            elements = list(bag)
        else:
            raise TypeError(f"nested aggregation over non-bag value {bag!r}")
        values = []
        for element in elements:
            if self.field is not None and isinstance(element, Tup):
                values.append(element.get(self.field, NULL))
            elif self.func != "count" and isinstance(element, Tup) and len(element) == 1:
                values.append(element.values()[0])
            else:
                values.append(element)
        return apply_aggregate(self.func, values)

    def eval_rows(self, child_rows, ctx) -> list[Tup]:
        return [t.with_attr(self.out, self.aggregate_value(t)) for t in child_rows[0]]

    def output_schema(self, child_schemas, db) -> TupleType:
        from repro.nested.types import FLOAT, INT

        schema = child_schemas[0]
        out_type = INT if self.func == "count" else FLOAT
        if schema.has_field(self.out):
            return TupleType((n, out_type if n == self.out else t) for n, t in schema.fields)
        return schema.concat(TupleType([(self.out, out_type)]))

    def describe(self) -> str:
        field = f".{self.field}" if self.field else ""
        return f"{self.label}[{self.func}({path_str(self.attr)}{field})→{self.out}]"


class GroupAggregation(Operator):
    """Group-by aggregation (derived operator used by the TPC-H scenarios).

    ``keys`` lists grouping attributes — either plain names or
    ``(out_name, source_path)`` pairs.  The pair form lets a
    reparameterization change the grouped-on attribute (Table 2's nesting
    rule) while the output attribute name — fixed by definition — stays put.
    ``aggs`` are :class:`AggSpec` columns.  An empty key list yields a single
    global row (also on empty input, with SQL semantics: counts 0, value
    aggregates ⊥).
    """

    symbol = "γ"

    def __init__(
        self,
        child: Operator,
        keys: Sequence,
        aggs: Sequence[AggSpec],
        label: Optional[str] = None,
    ):
        super().__init__((child,), label=label)
        specs: list[tuple[str, Path]] = []
        for key in keys:
            if isinstance(key, str):
                specs.append((key, (key,)))
            else:
                out, src = key
                specs.append((out, parse_path(src)))
        self.key_specs: tuple[tuple[str, Path], ...] = tuple(specs)
        self.aggs = tuple(aggs)

    @property
    def keys(self) -> tuple[str, ...]:
        """Output names of the grouping attributes."""
        return tuple(out for out, _ in self.key_specs)

    def key_tuple(self, t: Tup) -> Tup:
        """The group key of one row (output names, source values)."""
        return Tup((out, t.get_path(src)) for out, src in self.key_specs)

    def params(self) -> dict[str, Any]:
        return {"keys": self.key_specs, "aggs": self.aggs}

    def _rebuild(self, children, params):
        return GroupAggregation(children[0], params["keys"], params["aggs"], label=self._label)

    def aggregate_group(self, rows: list[Tup]) -> list[tuple[str, Any]]:
        out = []
        for spec in self.aggs:
            if spec.expr is None:
                out.append((spec.out, len(rows)))
            else:
                values = [spec.expr.eval(t) for t in rows]
                out.append((spec.out, apply_aggregate(spec.func, values, spec.distinct)))
        return out

    def eval_rows(self, child_rows, ctx) -> list[Tup]:
        rows = child_rows[0]
        if not self.key_specs:
            return [Tup(self.aggregate_group(rows))]
        groups: dict[Tup, list[Tup]] = {}
        for t in rows:
            groups.setdefault(self.key_tuple(t), []).append(t)
        return [
            key.concat(Tup(self.aggregate_group(members)))
            for key, members in groups.items()
        ]

    def output_schema(self, child_schemas, db) -> TupleType:
        from repro.algebra.schema import expr_type
        from repro.nested.types import FLOAT, INT

        schema = child_schemas[0]
        fields: list[tuple[str, Any]] = [
            (out, expr_type(Attr(src), schema)) for out, src in self.key_specs
        ]
        for spec in self.aggs:
            if spec.func == "count":
                fields.append((spec.out, INT))
            elif spec.expr is not None:
                fields.append((spec.out, expr_type(spec.expr, schema)))
            else:
                fields.append((spec.out, FLOAT))
        return TupleType(fields)

    def describe(self) -> str:
        keys = ",".join(
            out if (out,) == src else f"{out}←{path_str(src)}"
            for out, src in self.key_specs
        )
        aggs = ",".join(spec.label() for spec in self.aggs)
        prefix = f"{keys}; " if keys else ""
        return f"{self.label}[{prefix}{aggs}]"


class Union(Operator):
    """Additive union ``R ∪ S`` (multiplicities add)."""

    symbol = "∪"

    def __init__(self, left: Operator, right: Operator, label: Optional[str] = None):
        super().__init__((left, right), label=label)

    def params(self) -> dict[str, Any]:
        return {}

    def _rebuild(self, children, params):
        return Union(children[0], children[1], label=self._label)

    def eval_rows(self, child_rows, ctx) -> list[Tup]:
        return list(child_rows[0]) + list(child_rows[1])

    def output_schema(self, child_schemas, db) -> TupleType:
        return child_schemas[0]


class Difference(Operator):
    """Bag difference ``R − S`` (multiplicities subtract, floored at 0)."""

    symbol = "−"

    def __init__(self, left: Operator, right: Operator, label: Optional[str] = None):
        super().__init__((left, right), label=label)

    def params(self) -> dict[str, Any]:
        return {}

    def _rebuild(self, children, params):
        return Difference(children[0], children[1], label=self._label)

    def eval_rows(self, child_rows, ctx) -> list[Tup]:
        remaining = Bag(child_rows[1])
        counts: dict[Tup, int] = {}
        out: list[Tup] = []
        for t in child_rows[0]:
            counts[t] = counts.get(t, 0) + 1
            if counts[t] > remaining.mult(t):
                out.append(t)
        return out

    def output_schema(self, child_schemas, db) -> TupleType:
        return child_schemas[0]


class Deduplication(Operator):
    """Duplicate elimination: every multiplicity becomes 1."""

    symbol = "δ"

    def __init__(self, child: Operator, label: Optional[str] = None):
        super().__init__((child,), label=label)

    def params(self) -> dict[str, Any]:
        return {}

    def _rebuild(self, children, params):
        return Deduplication(children[0], label=self._label)

    def eval_rows(self, child_rows, ctx) -> list[Tup]:
        seen: dict[Tup, None] = {}
        for t in child_rows[0]:
            seen.setdefault(t, None)
        return list(seen)

    def output_schema(self, child_schemas, db) -> TupleType:
        return child_schemas[0]


class CartesianProduct(Operator):
    """Cartesian product ``R × S``."""

    symbol = "×"

    def __init__(self, left: Operator, right: Operator, label: Optional[str] = None):
        super().__init__((left, right), label=label)

    def params(self) -> dict[str, Any]:
        return {}

    def _rebuild(self, children, params):
        return CartesianProduct(children[0], children[1], label=self._label)

    def eval_rows(self, child_rows, ctx) -> list[Tup]:
        return [l.concat(r) for l in child_rows[0] for r in child_rows[1]]

    def output_schema(self, child_schemas, db) -> TupleType:
        return child_schemas[0].concat(child_schemas[1])


class Map(Operator):
    """Restructuring ``map_f``: applies an arbitrary tuple→tuple function.

    Part of NRAB₀; kept for completeness and for the hardness discussion
    (Thm. 1).  The heuristic algorithm does not trace through map.
    ``out_schema`` must be provided for schema inference.
    """

    symbol = "map"

    def __init__(
        self,
        child: Operator,
        fn: Callable[[Tup], Tup],
        out_schema: Optional[TupleType] = None,
        label: Optional[str] = None,
    ):
        super().__init__((child,), label=label)
        self.fn = fn
        self.out_schema = out_schema

    def params(self) -> dict[str, Any]:
        return {"fn": self.fn, "out_schema": self.out_schema}

    def _rebuild(self, children, params):
        return Map(children[0], params["fn"], params["out_schema"], label=self._label)

    def eval_rows(self, child_rows, ctx) -> list[Tup]:
        return [self.fn(t) for t in child_rows[0]]

    def output_schema(self, child_schemas, db) -> TupleType:
        return self.out_schema if self.out_schema is not None else child_schemas[0]


class BagDestroy(Operator):
    """Bag-destroy ``δ`` of NRAB₀: unions the bags held by a single bag-typed
    attribute (one nesting level removed)."""

    symbol = "bd"

    def __init__(self, child: Operator, attr: str, label: Optional[str] = None):
        super().__init__((child,), label=label)
        self.attr = attr

    def params(self) -> dict[str, Any]:
        return {"attr": self.attr}

    def _rebuild(self, children, params):
        return BagDestroy(children[0], params["attr"], label=self._label)

    def eval_rows(self, child_rows, ctx) -> list[Tup]:
        out: list[Tup] = []
        for t in child_rows[0]:
            bag = t[self.attr]
            if is_null(bag):
                continue
            for element in bag:
                if not isinstance(element, Tup):
                    element = Tup([(self.attr, element)])
                out.append(element)
        return out

    def output_schema(self, child_schemas, db) -> TupleType:
        bag_type = child_schemas[0].field(self.attr)
        if isinstance(bag_type, BagType) and isinstance(bag_type.element, TupleType):
            return bag_type.element
        return TupleType([(self.attr, AnyType())])


class Query:
    """A query plan: an operator tree with stable operator identifiers.

    Identifiers are assigned in deterministic post-order (children first,
    leftmost first), so a reparameterized query — same structure, different
    parameters — keeps every operator's identity (paper Def. 7).
    """

    def __init__(self, root: Operator, name: str = ""):
        self.root = root
        self.name = name
        self.ops: list[Operator] = []
        self._collect(root)
        for i, op in enumerate(self.ops):
            op.op_id = i + 1

    def _collect(self, op: Operator) -> None:
        for child in op.children:
            self._collect(child)
        self.ops.append(op)

    def op(self, op_id: int) -> Operator:
        return self.ops[op_id - 1]

    def op_by_label(self, label: str) -> Operator:
        for op in self.ops:
            if op.label == label:
                return op
        raise KeyError(f"no operator labelled {label!r}")

    def infer_schemas(self, db) -> dict[int, TupleType]:
        """Row schema (TupleType) of every operator's output."""
        schemas: dict[int, TupleType] = {}
        for op in self.ops:
            child_schemas = [schemas[c.op_id] for c in op.children]
            schemas[op.op_id] = op.output_schema(child_schemas, db)
        return schemas

    def evaluate(self, db) -> Bag:
        """Evaluate the plan over *db*, returning the result bag."""
        ctx = EvalContext(db, self.infer_schemas(db))
        cache: dict[int, list[Tup]] = {}
        for op in self.ops:
            child_rows = [cache[c.op_id] for c in op.children]
            cache[op.op_id] = op.eval_rows(child_rows, ctx)
        return Bag(cache[self.root.op_id])

    def evaluate_rows(self, db) -> list[Tup]:
        """Like :meth:`evaluate` but returns the raw row list."""
        return list(self.evaluate(db))

    def reparameterize(self, changes: Mapping[int, Mapping[str, Any]]) -> "Query":
        """A structurally identical query with parameters changed per op id."""

        def rebuild(op: Operator) -> Operator:
            children = [rebuild(c) for c in op.children]
            if op.op_id in changes:
                params = op.params()
                params.update(changes[op.op_id])
                return op._rebuild(children, params)
            return op.clone(children)

        return Query(rebuild(self.root), name=self.name)

    def delta(self, other: "Query") -> frozenset[int]:
        """Δ(Q, Q′): ids of operators whose parameters differ (Def. 9)."""
        if len(self.ops) != len(other.ops):
            raise ValueError("queries are not structurally identical")
        changed = set()
        for mine, theirs in zip(self.ops, other.ops):
            if type(mine) is not type(theirs):
                raise ValueError("queries are not structurally identical")
            if mine.params() != theirs.params():
                changed.add(mine.op_id)
        return frozenset(changed)

    def describe(self) -> str:
        lines = [f"Query {self.name or '(unnamed)'}"]
        for op in self.ops:
            child_ids = ",".join(str(c.op_id) for c in op.children)
            lines.append(f"  #{op.op_id} {op.describe()}" + (f" ← [{child_ids}]" if child_ids else ""))
        return "\n".join(lines)

    def __repr__(self) -> str:
        return f"Query({self.root.describe()}, ops={len(self.ops)})"
