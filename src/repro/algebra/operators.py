"""NRAB operators (paper Table 1) and query plans.

Every operator of the paper's nested relational algebra for bags is
implemented with exact bag semantics:

* table access, projection (with computed columns), renaming, selection,
* inner / left outer / right outer / full outer join (``Join`` with ``how``),
* tuple flatten ``F^T``, relation inner/outer flatten ``F^I``/``F^O``
  (``RelationFlatten`` with an ``outer`` flag),
* tuple nesting ``N^T`` and relation nesting ``N^R``,
* per-tuple aggregation over a nested relation (``NestedAggregation``, the
  Table-1 ``γ``) and the derived group-by aggregation (``GroupAggregation``),
* additive union, difference, deduplication, cartesian product, restructuring
  ``map``, and bag-destroy.

A :class:`Query` wraps an operator tree, assigns stable operator identifiers
(Def. 7 requires operators to retain identity across reparameterizations), and
evaluates against a :class:`~repro.engine.database.Database`.

Evaluation works on Python lists of :class:`~repro.nested.values.Tup` (lists
carry multiplicities naturally); the final result is wrapped into a
:class:`~repro.nested.values.Bag`.

Compiled evaluation
-------------------

Operators compile their hot-path machinery once and reuse it for every row:
expressions lower to closures (:meth:`Expr.compile`), dotted paths to interned
getters (:func:`compile_path`), and output shapes to interned
:class:`~repro.nested.values.Layout` objects.  Compiled state is cached
lazily on the operator instance (``_compiled_*`` attributes); it never goes
stale because reparameterization always builds fresh operator instances
(:meth:`Operator.with_params` / :meth:`Query.reparameterize`).  Key-based
operators (``Join``, ``GroupAggregation``, ``RelationNesting``) additionally
expose ``eval_keyed`` so the partitioned executor can reuse the shuffle keys
instead of recomputing them per partition.
"""

from __future__ import annotations

from typing import Any, Callable, Iterable, Mapping, Optional, Sequence

from repro.algebra.aggregates import AggSpec, apply_aggregate
from repro.algebra.expressions import Attr, Expr, KernelUnsupported
from repro.nested.paths import Path, compile_path, parse_path, path_str
from repro.nested.types import AnyType, BagType, TupleType
from repro.nested.values import NULL, Bag, Layout, Tup, is_null

#: ⊥'s concrete type, for inlined null tests in aggregation hot loops
#: (identity against ``NULL`` is not enough: unpickling creates new ⊥s).
_NULL_TYPE = type(NULL)


class EvalContext:
    """Evaluation context: database plus per-operator row schemas."""

    def __init__(self, db, schemas: Mapping[int, TupleType]):
        self.db = db
        self.schemas = schemas

    def schema_of(self, op: "Operator") -> TupleType:
        """The inferred output row schema of *op* in the current plan."""
        return self.schemas[op.op_id]


class Operator:
    """Base class for all NRAB operators.

    Operators are nodes of a query tree.  ``op_id`` is assigned by
    :class:`Query` in deterministic topological order; reparameterizations
    preserve the tree structure, so identifiers persist (paper Def. 7).
    Operator instances must not be shared between structurally different
    queries.
    """

    symbol = "?"

    #: True when the operator may change row cardinality (filtering or
    #: flattening).  The kernel builder (:mod:`repro.engine.kernels`) emits
    #: per-operator row counters only after these operators; every other
    #: chain operator is 1:1 and inherits its input count.
    kernel_changes_cardinality = False

    def __init__(self, children: Sequence["Operator"], label: Optional[str] = None):
        self.children: tuple[Operator, ...] = tuple(children)
        self.op_id: int = -1
        self._label = label

    @property
    def label(self) -> str:
        """Display name: the explicit label, or symbol + operator id."""
        return self._label if self._label is not None else f"{self.symbol}{self.op_id}"

    @property
    def origins(self) -> "tuple[int, ...]":
        """User-plan operator ids this operator derives from.

        Stamped by the logical optimizer (:mod:`repro.engine.optimizer`) on
        every rewritten operator; an empty tuple marks an operator the
        optimizer synthesized (e.g. a pruning projection).  Operators of a
        plan that never went through the optimizer report themselves.
        """
        return getattr(self, "_origins", (self.op_id,) if self.op_id > 0 else ())

    def params(self) -> dict[str, Any]:
        """The operator's parameters ``param(Q, op)`` for Δ comparison."""
        raise NotImplementedError

    def with_params(self, **changes: Any) -> "Operator":
        """A copy of this operator with some parameters replaced."""
        params = self.params()
        unknown = set(changes) - set(params)
        if unknown:
            raise ValueError(f"{type(self).__name__} has no parameters {sorted(unknown)}")
        params.update(changes)
        return self._rebuild(self.children, params)

    def clone(self, children: Sequence["Operator"]) -> "Operator":
        """A copy with new children and identical parameters."""
        return self._rebuild(children, self.params())

    def _rebuild(self, children: Sequence["Operator"], params: dict[str, Any]) -> "Operator":
        op = type(self)(*children, **params, label=self._label)
        return op

    def eval_rows(self, child_rows: list[list[Tup]], ctx: EvalContext) -> list[Tup]:
        """Evaluate this operator over its children's row lists (bag semantics)."""
        raise NotImplementedError

    def kernel_key(self, ctx: EvalContext) -> tuple:
        """Hashable semantic identity of this operator for the kernel cache.

        Two operators with equal keys must emit byte-identical kernel code
        for the same input layout, so the key covers every parameter the
        emission reads — including schema-derived facts such as the field
        names a flatten pads with.  Operators without a codegen hook raise
        :class:`~repro.algebra.expressions.KernelUnsupported`, which the
        kernel builder treats as "run the whole chain on the row path".
        """
        raise KernelUnsupported(type(self).__name__)

    def emit_kernel(self, kb, ctx: EvalContext) -> None:
        """Emit this operator's per-row kernel statements into builder *kb*.

        Called inside the generated per-partition loop with the current row
        held as named column variables (``kb.columns()``).  The hook mutates
        the builder's column map to reflect its output row and may emit
        ``continue`` (filtering), open ``for`` loops by raising ``kb.indent``
        (flattening — subsequent operators then run once per element), or
        ``raise _Bailout`` for value shapes the kernel cannot reproduce
        bit-identically; a bailout makes the caller rerun the partition on
        the row-at-a-time path, which also recreates exact error messages.
        Semantics must mirror :meth:`eval_rows` exactly — same outputs, same
        ⊥/NaN handling, same exceptions on malformed data (via bailout).
        Operators that cannot be lowered raise
        :class:`~repro.algebra.expressions.KernelUnsupported`.
        """
        raise KernelUnsupported(type(self).__name__)

    def output_schema(self, child_schemas: list[TupleType], db) -> TupleType:
        """Infer the output row schema from the children's schemas (Table 1)."""
        raise NotImplementedError

    def describe(self) -> str:
        """One-line human-readable description for explanation output."""
        return f"{self.label}"

    def __repr__(self) -> str:
        return self.describe()

    def __getstate__(self) -> dict:
        """Pickle without the lazily compiled closures.

        ``_compiled_*`` caches hold plain Python closures, which do not
        pickle; the parallel process backend ships operators to workers and
        lets each worker re-compile on first use (the caches are pure
        derivations of the immutable parameters).
        """
        return {
            k: v for k, v in self.__dict__.items() if not k.startswith("_compiled")
        }


def _compile_key(paths: "tuple[Path, ...]") -> "Callable[[Tup], Optional[tuple]]":
    """Compile join/group key paths into one row→key closure.

    Returns None for keys containing ⊥ (they never match, per Table 1).
    """
    getters = tuple(compile_path(p) for p in paths)
    if len(getters) == 1:
        getter = getters[0]

        def key_one(t: Tup) -> Optional[tuple]:
            v = getter(t)
            return None if is_null(v) else (v,)

        return key_one

    def key_many(t: Tup) -> Optional[tuple]:
        key = tuple(g(t) for g in getters)
        for v in key:
            if is_null(v):
                return None
        return key

    return key_many


def _strict_resolve(schema: TupleType, path: Path) -> Any:
    """Resolve a value path (tuples only, no bag crossing) to a type."""
    current: Any = schema
    for step in path:
        if isinstance(current, AnyType):
            return current
        if not isinstance(current, TupleType):
            raise KeyError(f"path step {step!r} cannot enter type {current!r}")
        current = current.field(step)
    return current


class TableAccess(Operator):
    """Table access: reads a named relation from the database."""

    symbol = "R"

    def __init__(self, table: str, label: Optional[str] = None):
        super().__init__((), label=label)
        self.table = table

    def params(self) -> dict[str, Any]:
        return {"table": self.table}

    def _rebuild(self, children, params):
        return TableAccess(params["table"], label=self._label)

    def eval_rows(self, child_rows, ctx) -> list[Tup]:
        return list(ctx.db.relation(self.table))

    def output_schema(self, child_schemas, db) -> TupleType:
        return db.schema(self.table)

    def describe(self) -> str:
        return f"{self.label}[{self.table}]"


class Projection(Operator):
    """Projection ``π`` with optional computed columns.

    ``cols`` is a sequence of output column specs; each spec is either a plain
    attribute name/path (projected and named after its last step) or a pair
    ``(out_name, expr)``.
    """

    symbol = "π"

    def __init__(self, child: Operator, cols: Sequence, label: Optional[str] = None):
        super().__init__((child,), label=label)
        normalized: list[tuple[str, Expr]] = []
        for spec in cols:
            if isinstance(spec, str):
                path = parse_path(spec)
                normalized.append((path[-1], Attr(path)))
            elif isinstance(spec, tuple) and len(spec) == 2:
                name, expr = spec
                if isinstance(expr, str):
                    expr = Attr(expr)
                normalized.append((name, expr))
            else:
                raise ValueError(f"bad projection column spec {spec!r}")
        names = [name for name, _ in normalized]
        if len(set(names)) != len(names):
            raise ValueError(f"duplicate projection output names: {names}")
        self.cols: tuple[tuple[str, Expr], ...] = tuple(normalized)

    def params(self) -> dict[str, Any]:
        return {"cols": self.cols}

    def _rebuild(self, children, params):
        return Projection(children[0], params["cols"], label=self._label)

    def eval_rows(self, child_rows, ctx) -> list[Tup]:
        plan = getattr(self, "_compiled_cols", None)
        if plan is None:
            plan = (
                Layout.of(name for name, _ in self.cols),
                tuple(expr.compile() for _, expr in self.cols),
            )
            self._compiled_cols = plan
        layout, fns = plan
        from_layout = Tup.from_layout
        return [from_layout(layout, tuple(fn(t) for fn in fns)) for t in child_rows[0]]

    def kernel_key(self, ctx):
        return ("pi", self.cols)

    def emit_kernel(self, kb, ctx):
        new_cols = []
        for name, expr in self.cols:
            new_cols.append((name, kb.capture(expr.emit_kernel(kb))))
        kb.set_cols(new_cols)

    def output_schema(self, child_schemas, db) -> TupleType:
        from repro.algebra.schema import expr_type

        return TupleType((name, expr_type(expr, child_schemas[0])) for name, expr in self.cols)

    def describe(self) -> str:
        parts = []
        for name, expr in self.cols:
            if isinstance(expr, Attr) and expr.path[-1] == name and len(expr.path) == 1:
                parts.append(name)
            else:
                parts.append(f"{name}←{expr!r}")
        return f"{self.label}[{', '.join(parts)}]"


class Renaming(Operator):
    """Attribute renaming ``ρ``; ``pairs`` maps new ← old (partial allowed)."""

    symbol = "ρ"

    def __init__(
        self, child: Operator, pairs: Sequence[tuple[str, str]], label: Optional[str] = None
    ):
        super().__init__((child,), label=label)
        self.pairs: tuple[tuple[str, str], ...] = tuple(pairs)

    def params(self) -> dict[str, Any]:
        return {"pairs": self.pairs}

    def _rebuild(self, children, params):
        return Renaming(children[0], params["pairs"], label=self._label)

    def _mapping(self) -> dict[str, str]:
        return {old: new for new, old in self.pairs}

    def eval_rows(self, child_rows, ctx) -> list[Tup]:
        pairs = tuple(self._mapping().items())
        from_layout = Tup.from_layout
        return [from_layout(t.layout.rename(pairs), t.values()) for t in child_rows[0]]

    def kernel_key(self, ctx):
        return ("rho", self.pairs)

    def emit_kernel(self, kb, ctx):
        mapping = self._mapping()
        kb.set_cols(
            [(mapping.get(name, name), var) for name, var in kb.columns()]
        )

    def output_schema(self, child_schemas, db) -> TupleType:
        mapping = self._mapping()
        return TupleType(
            (mapping.get(name, name), field_type)
            for name, field_type in child_schemas[0].fields
        )

    def describe(self) -> str:
        inner = ", ".join(f"{new}←{old}" for new, old in self.pairs)
        return f"{self.label}[{inner}]"


class Selection(Operator):
    """Selection ``σ_θ``: keeps tuples satisfying the condition."""

    symbol = "σ"

    def __init__(self, child: Operator, pred: Expr, label: Optional[str] = None):
        super().__init__((child,), label=label)
        self.pred = pred

    def params(self) -> dict[str, Any]:
        return {"pred": self.pred}

    def _rebuild(self, children, params):
        return Selection(children[0], params["pred"], label=self._label)

    def eval_rows(self, child_rows, ctx) -> list[Tup]:
        pred = self.pred.compile()
        return [t for t in child_rows[0] if pred(t)]

    kernel_changes_cardinality = True

    def kernel_key(self, ctx):
        return ("sigma", self.pred)

    def emit_kernel(self, kb, ctx):
        cond = self.pred.emit_kernel(kb)
        kb.emit(f"if not ({cond}):")
        kb.emit("    continue")

    def output_schema(self, child_schemas, db) -> TupleType:
        return child_schemas[0]

    def describe(self) -> str:
        return f"{self.label}[{self.pred!r}]"


JOIN_TYPES = ("inner", "left", "right", "full")


class Join(Operator):
    """Equi-join variants ``⋈ / ⟕ / ⟖ / ⟗`` (``how`` selects the variant).

    ``on`` is a list of ``(left_path, right_path)`` pairs; ⊥ keys never match.
    ``extra`` is an optional residual predicate over the concatenated tuple.
    ``drop_right_keys`` removes the right-side key columns from the output
    (used when both sides share key attribute names).
    """

    symbol = "⋈"

    def __init__(
        self,
        left: Operator,
        right: Operator,
        on: Sequence[tuple],
        how: str = "inner",
        extra: Optional[Expr] = None,
        drop_right_keys: bool = False,
        label: Optional[str] = None,
    ):
        super().__init__((left, right), label=label)
        if how not in JOIN_TYPES:
            raise ValueError(f"unknown join type {how!r}; expected one of {JOIN_TYPES}")
        self.on: tuple[tuple[Path, Path], ...] = tuple(
            (parse_path(l), parse_path(r)) for l, r in on
        )
        self.how = how
        self.extra = extra
        self.drop_right_keys = drop_right_keys

    def params(self) -> dict[str, Any]:
        return {
            "on": self.on,
            "how": self.how,
            "extra": self.extra,
            "drop_right_keys": self.drop_right_keys,
        }

    def _rebuild(self, children, params):
        return Join(
            children[0],
            children[1],
            params["on"],
            how=params["how"],
            extra=params["extra"],
            drop_right_keys=params["drop_right_keys"],
            label=self._label,
        )

    def _key(self, t: Tup, paths: Sequence[Path]) -> Optional[tuple]:
        key = tuple(t.get_path(p) for p in paths)
        if any(is_null(v) for v in key):
            return None
        return key

    def key_fns(self) -> "tuple[Callable[[Tup], Optional[tuple]], Callable[[Tup], Optional[tuple]]]":
        """Compiled (left, right) key functions; ⊥-containing keys map to None."""
        fns = getattr(self, "_compiled_keys", None)
        if fns is None:
            fns = (
                _compile_key(tuple(l for l, _ in self.on)),
                _compile_key(tuple(r for _, r in self.on)),
            )
            self._compiled_keys = fns
        return fns

    def _pad(self, schema: TupleType, drop: Iterable[str] = ()) -> Tup:
        dropped = set(drop)
        return Tup((name, NULL) for name, _ in schema.fields if name not in dropped)

    def _cached_pad(self, schema: TupleType) -> Tup:
        """The (drop-free) ⊥ pad row for *schema*, memoised per schema object.

        Outer joins need the pad once per :meth:`eval_keyed` call; schemas are
        stable across an execution, so a one-entry identity-checked cache
        avoids rebuilding the row per partition.
        """
        memo = getattr(self, "_compiled_pads", None)
        if memo is None:
            memo = {}
            self._compiled_pads = memo
        cached = memo.get(id(schema))
        if cached is not None and cached[0] is schema:
            return cached[1]
        pad = self._pad(schema)
        memo[id(schema)] = (schema, pad)  # holding schema keeps its id valid
        return pad

    def _right_drop(self) -> "frozenset[str]":
        drop = getattr(self, "_compiled_drop", None)
        if drop is None:
            if self.drop_right_keys:
                drop = frozenset(path[0] for _, path in self.on if len(path) == 1)
            else:
                drop = frozenset()
            self._compiled_drop = drop
        return drop

    def _combine(self, left_t: Tup, right_t: Tup) -> Tup:
        drop = self._right_drop()
        if drop:
            right_t = right_t.drop(drop)
        return left_t.concat(right_t)

    def _combiner(self, left_layout, right_layout):
        """A fused ``(left, right) → combined`` row builder for a layout pair.

        Equivalent to :meth:`_combine` but materializes one output ``Tup``
        per pair instead of an intermediate dropped right tuple; the combined
        layout and the kept right positions are resolved once per
        ``(left layout, right layout)`` pair and memoised (joins emit one
        output row per match, which makes this the hot constructor of the
        whole wide path).
        """
        memo = getattr(self, "_compiled_combiners", None)
        if memo is None:
            memo = {}
            self._compiled_combiners = memo
        fn = memo.get((left_layout, right_layout))
        if fn is None:
            drop = self._right_drop()
            if drop:
                kept, _, gather = right_layout.drop(tuple(sorted(drop)))
            else:
                kept, gather = right_layout, None
            combined = left_layout.concat(kept)
            mk = Tup.from_layout
            if gather is None:
                def fn(l, r):
                    return mk(combined, l._values + r._values)
            else:
                def fn(l, r):
                    return mk(combined, l._values + gather(r._values))
            memo[(left_layout, right_layout)] = fn
        return fn

    def eval_rows(self, child_rows, ctx) -> list[Tup]:
        left_key, right_key = self.key_fns()
        left_pairs = [(left_key(t), t) for t in child_rows[0]]
        right_pairs = [(right_key(t), t) for t in child_rows[1]]
        return self.eval_keyed(left_pairs, right_pairs, ctx)

    def eval_keyed(
        self,
        left_pairs: "list[tuple[Optional[tuple], Tup]]",
        right_pairs: "list[tuple[Optional[tuple], Tup]]",
        ctx,
    ) -> list[Tup]:
        """Hash join over rows with precomputed keys (None = ⊥, never matches).

        Used directly by the executor so shuffle keys are not recomputed
        inside each partition.
        """
        extra = self.extra.compile() if self.extra is not None else None
        combiner = self._combiner
        combiners: dict = {}
        out: list[Tup] = []
        if self.how == "inner":
            # Inner joins need no matched-side bookkeeping: index rows (not
            # positions) and emit straight off the probe loop.
            row_index: dict[tuple, list[Tup]] = {}
            for key, r in right_pairs:
                if key is not None:
                    members = row_index.get(key)
                    if members is None:
                        row_index[key] = [r]
                    else:
                        members.append(r)
            append = out.append
            cl = cr = fn = None
            for key, l in left_pairs:
                if key is None:
                    continue
                members = row_index.get(key)
                if members is None:
                    continue
                for r in members:
                    if l._layout is not cl or r._layout is not cr:
                        cl, cr = l._layout, r._layout
                        fn = combiners.get((cl, cr))
                        if fn is None:
                            fn = combiners[(cl, cr)] = combiner(cl, cr)
                    combined = fn(l, r)
                    if extra is not None and not extra(combined):
                        continue
                    append(combined)
            return out
        index: dict[tuple, list[int]] = {}
        for j, (key, _) in enumerate(right_pairs):
            if key is not None:
                positions = index.get(key)
                if positions is None:
                    index[key] = [j]
                else:
                    positions.append(j)
        matched_right: set[int] = set()
        right_pad = (
            self._cached_pad(ctx.schema_of(self.children[1]))
            if self.how in ("left", "full")
            else None
        )
        empty: tuple[int, ...] = ()
        cl = cr = fn = None  # one-entry layout-pair combiner cache (identity)
        pad_cl = pad_fn = None  # same, for the ⊥-padded rows
        for key, l in left_pairs:
            any_match = False
            for j in index.get(key, empty) if key is not None else empty:
                r = right_pairs[j][1]
                if l._layout is not cl or r._layout is not cr:
                    cl, cr = l._layout, r._layout
                    fn = combiners.get((cl, cr))
                    if fn is None:
                        fn = combiners[(cl, cr)] = combiner(cl, cr)
                combined = fn(l, r)
                if extra is not None and not extra(combined):
                    continue
                out.append(combined)
                matched_right.add(j)
                any_match = True
            if not any_match and right_pad is not None:
                if l._layout is not pad_cl:
                    pad_cl = l._layout
                    pad_fn = combiner(pad_cl, right_pad._layout)
                out.append(pad_fn(l, right_pad))
        if self.how in ("right", "full"):
            left_pad = self._cached_pad(ctx.schema_of(self.children[0]))
            pad_cr = pad_rfn = None
            for j, (_, r) in enumerate(right_pairs):
                if j not in matched_right:
                    if r._layout is not pad_cr:
                        pad_cr = r._layout
                        pad_rfn = combiner(left_pad._layout, pad_cr)
                    out.append(pad_rfn(left_pad, r))
        return out

    def output_schema(self, child_schemas, db) -> TupleType:
        left_schema, right_schema = child_schemas
        drop = self._right_drop()
        right_fields = [(n, t) for n, t in right_schema.fields if n not in drop]
        return left_schema.concat(TupleType(right_fields))

    def describe(self) -> str:
        cond = " ∧ ".join(f"{path_str(l)}={path_str(r)}" for l, r in self.on)
        how = {"inner": "⋈", "left": "⟕", "right": "⟖", "full": "⟗"}[self.how]
        return f"{self.label}[{how} {cond}]"


class TupleFlatten(Operator):
    """Tuple flatten ``F^T``: pulls a nested tuple (or one of its fields) up.

    With ``alias`` the value at *path* becomes a single new column (replacing
    an existing column of the same name, like Spark's ``withColumn``);
    without, the nested tuple's fields are concatenated onto the row.
    """

    symbol = "Fᵀ"

    def __init__(
        self,
        child: Operator,
        path: "str | Path",
        alias: Optional[str] = None,
        label: Optional[str] = None,
    ):
        super().__init__((child,), label=label)
        self.path = parse_path(path)
        self.alias = alias

    def params(self) -> dict[str, Any]:
        return {"path": self.path, "alias": self.alias}

    def _rebuild(self, children, params):
        return TupleFlatten(children[0], params["path"], params["alias"], label=self._label)

    def eval_rows(self, child_rows, ctx) -> list[Tup]:
        get_value = compile_path(self.path)
        out = []
        if self.alias is not None:
            alias = self.alias
            for t in child_rows[0]:
                out.append(t.with_attr(alias, get_value(t)))
            return out
        schema = ctx.schema_of(self.children[0])
        nested = _strict_resolve(schema, self.path)
        field_names = nested.names if isinstance(nested, TupleType) else ()
        null_pad = Tup((n, NULL) for n in field_names)
        for t in child_rows[0]:
            value = get_value(t)
            if is_null(value):
                out.append(t.concat(null_pad))
            elif isinstance(value, Tup):
                out.append(t.concat(value))
            else:
                raise TypeError(f"tuple flatten of non-tuple value {value!r} at {self.path}")
        return out

    def _kernel_field_names(self, ctx) -> tuple[str, ...]:
        nested = _strict_resolve(ctx.schema_of(self.children[0]), self.path)
        return nested.names if isinstance(nested, TupleType) else ()

    def kernel_key(self, ctx):
        if self.alias is not None:
            return ("ftup", self.path, self.alias)
        return ("ftup", self.path, None, self._kernel_field_names(ctx))

    def emit_kernel(self, kb, ctx):
        value = kb.capture(kb.path_value(self.path))
        if self.alias is not None:
            kb.replace_or_append(self.alias, value)
            return
        field_names = self._kernel_field_names(ctx)
        field_vars = [kb.tmp() for _ in field_names]
        layout_var = kb.bind(Layout.of(field_names))
        kb.emit(f"if {kb.null_test(value)}:")
        kb.indent += 1
        kb.emit(" = ".join(field_vars + ["_NULL"]) if field_vars else "pass")
        kb.indent -= 1
        kb.emit(f"elif isinstance({value}, _Tup) and {value}._layout is {layout_var}:")
        kb.indent += 1
        kb.emit(f"{', '.join(field_vars)}, = {value}._values" if field_vars else "pass")
        kb.indent -= 1
        kb.emit("else:")
        kb.indent += 1
        kb.emit("raise _Bailout")
        kb.indent -= 1
        for name, var in zip(field_names, field_vars):
            kb.append_col(name, var)

    def output_schema(self, child_schemas, db) -> TupleType:
        schema = child_schemas[0]
        nested = _strict_resolve(schema, self.path)
        if self.alias is not None:
            if schema.has_field(self.alias):
                return TupleType(
                    (n, nested if n == self.alias else t) for n, t in schema.fields
                )
            return schema.concat(TupleType([(self.alias, nested)]))
        if not isinstance(nested, TupleType):
            raise TypeError(f"tuple flatten target {path_str(self.path)} is not tuple-typed")
        return schema.concat(nested)

    def describe(self) -> str:
        target = f"{self.alias}←" if self.alias else ""
        return f"{self.label}[{target}{path_str(self.path)}]"


class RelationFlatten(Operator):
    """Relation flatten ``F^I`` (inner) / ``F^O`` (outer) of a bag attribute.

    Each element of the bag at *path* is either concatenated onto the row
    (``alias=None``; element must be a tuple) or placed into a single new
    column *alias*.  The outer variant pads rows whose bag is empty or ⊥ with
    nulls; the inner variant drops them (the D2/T1 failure mode in the paper).
    """

    symbol = "F"

    def __init__(
        self,
        child: Operator,
        path: "str | Path",
        alias: Optional[str] = None,
        outer: bool = False,
        label: Optional[str] = None,
    ):
        super().__init__((child,), label=label)
        self.path = parse_path(path)
        self.alias = alias
        self.outer = outer

    @property
    def symbol_typed(self) -> str:
        """Display symbol with the inner/outer variant made explicit."""
        return "Fᴼ" if self.outer else "Fᴵ"

    def params(self) -> dict[str, Any]:
        return {"path": self.path, "alias": self.alias, "outer": self.outer}

    def _rebuild(self, children, params):
        return RelationFlatten(
            children[0],
            params["path"],
            alias=params["alias"],
            outer=params["outer"],
            label=self._label,
        )

    def _element_fields(self, ctx: EvalContext) -> tuple[str, ...]:
        schema = ctx.schema_of(self.children[0])
        bag_type = _strict_resolve(schema, self.path)
        if isinstance(bag_type, BagType) and isinstance(bag_type.element, TupleType):
            return bag_type.element.names
        return ()

    def _pad(self, ctx: EvalContext) -> Tup:
        pads = getattr(self, "_compiled_pads", None)
        if pads is None:
            pads = self._compiled_pads = {}
        if self.alias is not None:
            names: tuple[str, ...] = (self.alias,)
        else:
            names = self._element_fields(ctx)
        pad = pads.get(names)
        if pad is None:
            pad = pads[names] = Tup.from_layout(Layout.of(names), (NULL,) * len(names))
        return pad

    def _alias_layout(self) -> Layout:
        layout = getattr(self, "_compiled_alias_layout", None)
        if layout is None:
            layout = self._compiled_alias_layout = Layout.of((self.alias,))
        return layout

    def expand(self, t: Tup, ctx: EvalContext) -> tuple[list[Tup], bool]:
        """All flattened successors of *t* plus whether padding was used.

        Shared with the tracing module, which always runs the outer variant.
        """
        value = compile_path(self.path)(t)
        if is_null(value) or (isinstance(value, Bag) and value.is_empty()):
            return [t.concat(self._pad(ctx))], True
        if not isinstance(value, Bag):
            raise TypeError(
                f"relation flatten of non-bag value {value!r} at {path_str(self.path)}"
            )
        out = []
        if self.alias is not None:
            alias_layout = self._alias_layout()
            from_layout = Tup.from_layout
            for element in value:
                out.append(t.concat(from_layout(alias_layout, (element,))))
            return out, False
        for element in value:
            if isinstance(element, Tup):
                out.append(t.concat(element))
            else:
                raise TypeError(
                    "relation flatten without alias requires tuple elements; "
                    f"got {element!r}"
                )
        return out, False

    def eval_rows(self, child_rows, ctx) -> list[Tup]:
        get_value = compile_path(self.path)
        outer = self.outer
        alias_layout = self._alias_layout() if self.alias is not None else None
        from_layout = Tup.from_layout
        pad = None
        out: list[Tup] = []
        for t in child_rows[0]:
            value = get_value(t)
            if is_null(value) or (isinstance(value, Bag) and value.is_empty()):
                if outer:
                    if pad is None:
                        pad = self._pad(ctx)
                    out.append(t.concat(pad))
                continue
            if not isinstance(value, Bag):
                raise TypeError(
                    f"relation flatten of non-bag value {value!r} at {path_str(self.path)}"
                )
            if alias_layout is not None:
                for element in value:
                    out.append(t.concat(from_layout(alias_layout, (element,))))
            else:
                for element in value:
                    if not isinstance(element, Tup):
                        raise TypeError(
                            "relation flatten without alias requires tuple elements; "
                            f"got {element!r}"
                        )
                    out.append(t.concat(element))
        return out

    kernel_changes_cardinality = True

    def kernel_key(self, ctx):
        names = (self.alias,) if self.alias is not None else self._element_fields(ctx)
        return ("frel", self.path, self.alias, self.outer, names)

    def emit_kernel(self, kb, ctx):
        value = kb.capture(kb.path_value(self.path))
        seq = kb.tmp()
        if self.alias is not None:
            pad_element: Any = NULL
        else:
            pad_names = self._element_fields(ctx)
            pad_element = Tup.from_layout(
                Layout.of(pad_names), (NULL,) * len(pad_names)
            )
        kb.emit(
            f"if {kb.null_test(value)}"
            f" or (isinstance({value}, _Bag) and {value}.is_empty()):"
        )
        kb.indent += 1
        if self.outer:
            kb.emit(f"{seq} = {kb.bind((pad_element,))}")
        else:
            kb.emit("continue")
        kb.indent -= 1
        kb.emit(f"elif isinstance({value}, _Bag):")
        kb.indent += 1
        kb.emit(f"{seq} = {value}")
        kb.indent -= 1
        kb.emit("else:")
        kb.indent += 1
        kb.emit("raise _Bailout")
        kb.indent -= 1
        elem = kb.tmp()
        kb.emit(f"for {elem} in {seq}:")
        kb.indent += 1  # stays raised: the rest of the chain runs per element
        if self.alias is not None:
            kb.append_col(self.alias, elem)
            return
        names = self._element_fields(ctx)
        layout_var = kb.bind(Layout.of(names))
        kb.emit(
            f"if not (isinstance({elem}, _Tup) and {elem}._layout is {layout_var}):"
        )
        kb.indent += 1
        kb.emit("raise _Bailout")
        kb.indent -= 1
        field_vars = [kb.tmp() for _ in names]
        if field_vars:
            kb.emit(f"{', '.join(field_vars)}, = {elem}._values")
        for name, var in zip(names, field_vars):
            kb.append_col(name, var)

    def output_schema(self, child_schemas, db) -> TupleType:
        schema = child_schemas[0]
        bag_type = _strict_resolve(schema, self.path)
        if self.alias is not None:
            element = bag_type.element if isinstance(bag_type, BagType) else AnyType()
            return schema.concat(TupleType([(self.alias, element)]))
        if isinstance(bag_type, BagType) and isinstance(bag_type.element, TupleType):
            return schema.concat(bag_type.element)
        raise TypeError(
            f"relation flatten target {path_str(self.path)} is not a bag of tuples"
        )

    def describe(self) -> str:
        target = f"{self.alias}←" if self.alias else ""
        return f"{self.label}[{self.symbol_typed} {target}{path_str(self.path)}]"


def InnerFlatten(
    child: Operator, path: "str | Path", alias: Optional[str] = None, label: Optional[str] = None
) -> RelationFlatten:
    """Relation inner flatten ``F^I_A`` (Table 1)."""
    return RelationFlatten(child, path, alias=alias, outer=False, label=label)


def OuterFlatten(
    child: Operator, path: "str | Path", alias: Optional[str] = None, label: Optional[str] = None
) -> RelationFlatten:
    """Relation outer flatten ``F^O_A`` (Table 1)."""
    return RelationFlatten(child, path, alias=alias, outer=True, label=label)


class TupleNesting(Operator):
    """Tuple nesting ``N^T_{A→C}``: packs attributes A into a tuple column C."""

    symbol = "Nᵀ"

    def __init__(
        self,
        child: Operator,
        attrs: Sequence[str],
        target: str,
        label: Optional[str] = None,
    ):
        super().__init__((child,), label=label)
        self.attrs = tuple(attrs)
        self.target = target

    def params(self) -> dict[str, Any]:
        return {"attrs": self.attrs, "target": self.target}

    def _rebuild(self, children, params):
        return TupleNesting(children[0], params["attrs"], params["target"], label=self._label)

    def eval_rows(self, child_rows, ctx) -> list[Tup]:
        attrs = self.attrs
        target_layout = Layout.of((self.target,))
        from_layout = Tup.from_layout
        return [
            t.drop(attrs).concat(from_layout(target_layout, (t.project(attrs),)))
            for t in child_rows[0]
        ]

    def kernel_key(self, ctx):
        return ("ntup", self.attrs, self.target)

    def emit_kernel(self, kb, ctx):
        proj_layout = kb.bind(Layout.of(self.attrs))
        vars_ = [kb.col(name) for name in self.attrs]
        inner = ", ".join(vars_) + ("," if vars_ else "")
        nested = kb.capture(f"_mk({proj_layout}, ({inner}))")
        kb.drop_cols(self.attrs)
        kb.append_col(self.target, nested)

    def output_schema(self, child_schemas, db) -> TupleType:
        schema = child_schemas[0]
        nested = schema.project(self.attrs)
        return schema.drop(self.attrs).concat(TupleType([(self.target, nested)]))

    def describe(self) -> str:
        return f"{self.label}[{','.join(self.attrs)}→{self.target}]"


class RelationNesting(Operator):
    """Relation nesting ``N^R_{A→C}``: groups on the remaining attributes M and
    nests the projections on A into a bag column C (Table 1)."""

    symbol = "Nᴿ"

    def __init__(
        self,
        child: Operator,
        attrs: Sequence[str],
        target: str,
        label: Optional[str] = None,
    ):
        super().__init__((child,), label=label)
        self.attrs = tuple(attrs)
        self.target = target

    def params(self) -> dict[str, Any]:
        return {"attrs": self.attrs, "target": self.target}

    def _rebuild(self, children, params):
        return RelationNesting(
            children[0], params["attrs"], params["target"], label=self._label
        )

    def group_key(self, t: Tup) -> Tup:
        """The group key of one row: the tuple without the nested attributes."""
        return t.drop(self.attrs)

    def key_fn(self) -> Callable[[Tup], Tup]:
        """The (already layout-cached) shuffle/group key function."""
        return self.group_key

    def eval_rows(self, child_rows, ctx) -> list[Tup]:
        attrs = self.attrs
        return self.eval_keyed([(t.drop(attrs), t) for t in child_rows[0]], ctx)

    def eval_keyed(self, pairs: "list[tuple[Tup, Tup]]", ctx) -> list[Tup]:
        """Group rows by precomputed keys and nest the projections on A."""
        attrs = self.attrs
        # Same C-level ``(layout, values)`` grouping as GroupAggregation:
        # interned layouts make it exactly ``Tup`` equality without the
        # per-row Python ``__hash__`` call.
        groups: "dict[tuple, tuple[Tup, list[Tup]]]" = {}
        for key, t in pairs:
            entry = groups.get((key._layout, key._values))
            if entry is None:
                groups[(key._layout, key._values)] = (key, [t.project(attrs)])
            else:
                entry[1].append(t.project(attrs))
        target_layout = Layout.of((self.target,))
        from_layout = Tup.from_layout
        return [
            key.concat(from_layout(target_layout, (Bag(members),)))
            for key, members in groups.values()
        ]

    def output_schema(self, child_schemas, db) -> TupleType:
        schema = child_schemas[0]
        nested = BagType(schema.project(self.attrs))
        return schema.drop(self.attrs).concat(TupleType([(self.target, nested)]))

    def describe(self) -> str:
        return f"{self.label}[{','.join(self.attrs)}→{self.target}]"


class NestedAggregation(Operator):
    """Per-tuple aggregation ``γ_{f(A)→B}`` over a nested relation attribute
    (the Table-1 form, e.g. D2's ``count(ctitle)→cnt``).

    *field* selects a field of the nested tuples; when omitted, unary nested
    tuples are unwrapped automatically and ``count`` counts elements.
    """

    symbol = "γ"

    def __init__(
        self,
        child: Operator,
        func: str,
        attr: "str | Path",
        out: str,
        field: Optional[str] = None,
        label: Optional[str] = None,
    ):
        super().__init__((child,), label=label)
        self.func = func
        self.attr = parse_path(attr)
        self.out = out
        self.field = field

    def params(self) -> dict[str, Any]:
        return {"func": self.func, "attr": self.attr, "out": self.out, "field": self.field}

    def _rebuild(self, children, params):
        return NestedAggregation(
            children[0],
            params["func"],
            params["attr"],
            params["out"],
            field=params["field"],
            label=self._label,
        )

    def aggregate_value(self, t: Tup) -> Any:
        """The aggregate over one row's nested relation (shared with tracing)."""
        return self.aggregate_bag(compile_path(self.attr)(t))

    def aggregate_bag(self, bag: Any) -> Any:
        """The aggregate over one nested-relation value (⊥ counts as empty)."""
        if is_null(bag):
            elements: list[Any] = []
        elif isinstance(bag, Bag):
            elements = list(bag)
        else:
            raise TypeError(f"nested aggregation over non-bag value {bag!r}")
        values = []
        for element in elements:
            if self.field is not None and isinstance(element, Tup):
                values.append(element.get(self.field, NULL))
            elif self.func != "count" and isinstance(element, Tup) and len(element) == 1:
                values.append(element.values()[0])
            else:
                values.append(element)
        return apply_aggregate(self.func, values)

    def eval_rows(self, child_rows, ctx) -> list[Tup]:
        return [t.with_attr(self.out, self.aggregate_value(t)) for t in child_rows[0]]

    def kernel_key(self, ctx):
        return ("gamma_nest", self.func, self.attr, self.out, self.field)

    def emit_kernel(self, kb, ctx):
        agg = kb.bind(self.aggregate_bag)
        value = kb.capture(f"{agg}({kb.path_value(self.attr)})")
        kb.replace_or_append(self.out, value)

    def output_schema(self, child_schemas, db) -> TupleType:
        from repro.nested.types import FLOAT, INT

        schema = child_schemas[0]
        out_type = INT if self.func == "count" else FLOAT
        if schema.has_field(self.out):
            return TupleType((n, out_type if n == self.out else t) for n, t in schema.fields)
        return schema.concat(TupleType([(self.out, out_type)]))

    def describe(self) -> str:
        field = f".{self.field}" if self.field else ""
        return f"{self.label}[{self.func}({path_str(self.attr)}{field})→{self.out}]"


class GroupAggregation(Operator):
    """Group-by aggregation (derived operator used by the TPC-H scenarios).

    ``keys`` lists grouping attributes — either plain names or
    ``(out_name, source_path)`` pairs.  The pair form lets a
    reparameterization change the grouped-on attribute (Table 2's nesting
    rule) while the output attribute name — fixed by definition — stays put.
    ``aggs`` are :class:`AggSpec` columns.  An empty key list yields a single
    global row (also on empty input, with SQL semantics: counts 0, value
    aggregates ⊥).
    """

    symbol = "γ"

    def __init__(
        self,
        child: Operator,
        keys: Sequence,
        aggs: Sequence[AggSpec],
        label: Optional[str] = None,
    ):
        super().__init__((child,), label=label)
        specs: list[tuple[str, Path]] = []
        for key in keys:
            if isinstance(key, str):
                specs.append((key, (key,)))
            else:
                out, src = key
                specs.append((out, parse_path(src)))
        self.key_specs: tuple[tuple[str, Path], ...] = tuple(specs)
        self.aggs = tuple(aggs)

    @property
    def keys(self) -> tuple[str, ...]:
        """Output names of the grouping attributes."""
        return tuple(out for out, _ in self.key_specs)

    def key_fn(self) -> Callable[[Tup], Tup]:
        """Compiled group-key function (interned key layout, path getters)."""
        fn = getattr(self, "_compiled_key", None)
        if fn is None:
            layout = Layout.of(out for out, _ in self.key_specs)
            getters = tuple(compile_path(src) for _, src in self.key_specs)
            from_layout = Tup.from_layout

            def fn(t: Tup) -> Tup:
                return from_layout(layout, tuple(g(t) for g in getters))

            self._compiled_key = fn
        return fn

    def key_tuple(self, t: Tup) -> Tup:
        """The group key of one row (output names, source values)."""
        return self.key_fn()(t)

    def params(self) -> dict[str, Any]:
        return {"keys": self.key_specs, "aggs": self.aggs}

    def _rebuild(self, children, params):
        return GroupAggregation(children[0], params["keys"], params["aggs"], label=self._label)

    def _agg_plan(self) -> "tuple[tuple[str, str, bool, Optional[Callable]], ...]":
        plan = getattr(self, "_compiled_aggs", None)
        if plan is None:
            plan = tuple(
                (
                    spec.out,
                    spec.func,
                    spec.distinct,
                    None if spec.expr is None else spec.expr.compile(),
                )
                for spec in self.aggs
            )
            self._compiled_aggs = plan
        return plan

    def aggregate_group(self, rows: list[Tup]) -> list[tuple[str, Any]]:
        """``(name, value)`` aggregate columns for one group's rows."""
        out = []
        for name, func, distinct, fn in self._agg_plan():
            if fn is None:
                out.append((name, len(rows)))
            else:
                out.append((name, apply_aggregate(func, [fn(t) for t in rows], distinct)))
        return out

    def aggregate_tuple(self, rows: list[Tup]) -> Tup:
        """Like :meth:`aggregate_group` but returns an interned-layout row."""
        layout = getattr(self, "_compiled_agg_layout", None)
        if layout is None:
            layout = self._compiled_agg_layout = Layout.of(
                spec.out for spec in self.aggs
            )
        values = []
        for _, func, distinct, fn in self._agg_plan():
            if fn is None:
                values.append(len(rows))
            else:
                values.append(apply_aggregate(func, [fn(t) for t in rows], distinct))
        return Tup.from_layout(layout, tuple(values))

    def eval_rows(self, child_rows, ctx) -> list[Tup]:
        rows = child_rows[0]
        if not self.key_specs:
            return [self.aggregate_tuple(rows)]
        key_fn = self.key_fn()
        return self.eval_keyed([(key_fn(t), t) for t in rows], ctx)

    def eval_keyed(self, pairs: "list[tuple[Tup, Tup]]", ctx) -> list[Tup]:
        """Group rows by precomputed keys and aggregate each group."""
        # Group on ``(layout, values)`` instead of the key ``Tup``: layouts
        # are interned, so this is exactly ``Tup`` equality/hashing but stays
        # in C-level tuple hashing instead of calling ``Tup.__hash__`` per
        # row.  The first-seen key tuple represents its group, as before.
        groups: "dict[tuple, tuple[Tup, list[Tup]]]" = {}
        for key, t in pairs:
            entry = groups.get((key._layout, key._values))
            if entry is None:
                groups[(key._layout, key._values)] = (key, [t])
            else:
                entry[1].append(t)
        # Fused output construction: equivalent to
        # ``key.concat(self.aggregate_tuple(members))`` without the
        # intermediate aggregate tuple (one output row per group is the hot
        # constructor of the aggregation path).
        agg_layout = getattr(self, "_compiled_agg_layout", None)
        if agg_layout is None:
            agg_layout = self._compiled_agg_layout = Layout.of(
                spec.out for spec in self.aggs
            )
        plan = self._agg_plan()
        mk = Tup.from_layout
        out: list[Tup] = []
        ckl = cout = None  # one-entry key-layout → output-layout cache
        for key, members in groups.values():
            values = []
            for _, func, distinct, fn in plan:
                if fn is None:
                    values.append(len(members))
                elif func == "count" and not distinct:
                    # len([v if not null]) without the intermediate list; the
                    # null test is inlined (one Python call per row saved).
                    n = 0
                    for t in members:
                        v = fn(t)
                        if v is not None and type(v) is not _NULL_TYPE:
                            n += 1
                    values.append(n)
                else:
                    values.append(
                        apply_aggregate(func, [fn(t) for t in members], distinct)
                    )
            if key._layout is not ckl:
                ckl = key._layout
                cout = ckl.concat(agg_layout)
            out.append(mk(cout, key._values + tuple(values)))
        return out

    def output_schema(self, child_schemas, db) -> TupleType:
        from repro.algebra.schema import expr_type
        from repro.nested.types import FLOAT, INT

        schema = child_schemas[0]
        fields: list[tuple[str, Any]] = [
            (out, expr_type(Attr(src), schema)) for out, src in self.key_specs
        ]
        for spec in self.aggs:
            if spec.func == "count":
                fields.append((spec.out, INT))
            elif spec.expr is not None:
                fields.append((spec.out, expr_type(spec.expr, schema)))
            else:
                fields.append((spec.out, FLOAT))
        return TupleType(fields)

    def describe(self) -> str:
        keys = ",".join(
            out if (out,) == src else f"{out}←{path_str(src)}"
            for out, src in self.key_specs
        )
        aggs = ",".join(spec.label() for spec in self.aggs)
        prefix = f"{keys}; " if keys else ""
        return f"{self.label}[{prefix}{aggs}]"


class Union(Operator):
    """Additive union ``R ∪ S`` (multiplicities add)."""

    symbol = "∪"

    def __init__(self, left: Operator, right: Operator, label: Optional[str] = None):
        super().__init__((left, right), label=label)

    def params(self) -> dict[str, Any]:
        return {}

    def _rebuild(self, children, params):
        return Union(children[0], children[1], label=self._label)

    def eval_rows(self, child_rows, ctx) -> list[Tup]:
        return list(child_rows[0]) + list(child_rows[1])

    def output_schema(self, child_schemas, db) -> TupleType:
        return child_schemas[0]


class Difference(Operator):
    """Bag difference ``R − S`` (multiplicities subtract, floored at 0)."""

    symbol = "−"

    def __init__(self, left: Operator, right: Operator, label: Optional[str] = None):
        super().__init__((left, right), label=label)

    def params(self) -> dict[str, Any]:
        return {}

    def _rebuild(self, children, params):
        return Difference(children[0], children[1], label=self._label)

    def eval_rows(self, child_rows, ctx) -> list[Tup]:
        remaining = Bag(child_rows[1])
        counts: dict[Tup, int] = {}
        out: list[Tup] = []
        for t in child_rows[0]:
            counts[t] = counts.get(t, 0) + 1
            if counts[t] > remaining.mult(t):
                out.append(t)
        return out

    def output_schema(self, child_schemas, db) -> TupleType:
        return child_schemas[0]


class Deduplication(Operator):
    """Duplicate elimination: every multiplicity becomes 1."""

    symbol = "δ"

    def __init__(self, child: Operator, label: Optional[str] = None):
        super().__init__((child,), label=label)

    def params(self) -> dict[str, Any]:
        return {}

    def _rebuild(self, children, params):
        return Deduplication(children[0], label=self._label)

    def eval_rows(self, child_rows, ctx) -> list[Tup]:
        seen: dict[Tup, None] = {}
        for t in child_rows[0]:
            seen.setdefault(t, None)
        return list(seen)

    def output_schema(self, child_schemas, db) -> TupleType:
        return child_schemas[0]


class CartesianProduct(Operator):
    """Cartesian product ``R × S``."""

    symbol = "×"

    def __init__(self, left: Operator, right: Operator, label: Optional[str] = None):
        super().__init__((left, right), label=label)

    def params(self) -> dict[str, Any]:
        return {}

    def _rebuild(self, children, params):
        return CartesianProduct(children[0], children[1], label=self._label)

    def eval_rows(self, child_rows, ctx) -> list[Tup]:
        return [l.concat(r) for l in child_rows[0] for r in child_rows[1]]

    def output_schema(self, child_schemas, db) -> TupleType:
        return child_schemas[0].concat(child_schemas[1])


class Map(Operator):
    """Restructuring ``map_f``: applies an arbitrary tuple→tuple function.

    Part of NRAB₀; kept for completeness and for the hardness discussion
    (Thm. 1).  The heuristic algorithm does not trace through map.
    ``out_schema`` must be provided for schema inference.
    """

    symbol = "map"

    def __init__(
        self,
        child: Operator,
        fn: Callable[[Tup], Tup],
        out_schema: Optional[TupleType] = None,
        label: Optional[str] = None,
    ):
        super().__init__((child,), label=label)
        self.fn = fn
        self.out_schema = out_schema

    def params(self) -> dict[str, Any]:
        return {"fn": self.fn, "out_schema": self.out_schema}

    def _rebuild(self, children, params):
        return Map(children[0], params["fn"], params["out_schema"], label=self._label)

    def eval_rows(self, child_rows, ctx) -> list[Tup]:
        return [self.fn(t) for t in child_rows[0]]

    def output_schema(self, child_schemas, db) -> TupleType:
        return self.out_schema if self.out_schema is not None else child_schemas[0]


class BagDestroy(Operator):
    """Bag-destroy ``δ`` of NRAB₀: unions the bags held by a single bag-typed
    attribute (one nesting level removed)."""

    symbol = "bd"

    def __init__(self, child: Operator, attr: str, label: Optional[str] = None):
        super().__init__((child,), label=label)
        self.attr = attr

    def params(self) -> dict[str, Any]:
        return {"attr": self.attr}

    def _rebuild(self, children, params):
        return BagDestroy(children[0], params["attr"], label=self._label)

    def eval_rows(self, child_rows, ctx) -> list[Tup]:
        out: list[Tup] = []
        for t in child_rows[0]:
            bag = t[self.attr]
            if is_null(bag):
                continue
            for element in bag:
                if not isinstance(element, Tup):
                    element = Tup([(self.attr, element)])
                out.append(element)
        return out

    def output_schema(self, child_schemas, db) -> TupleType:
        bag_type = child_schemas[0].field(self.attr)
        if isinstance(bag_type, BagType) and isinstance(bag_type.element, TupleType):
            return bag_type.element
        return TupleType([(self.attr, AnyType())])


class Query:
    """A query plan: an operator tree with stable operator identifiers.

    Identifiers are assigned in deterministic post-order (children first,
    leftmost first), so a reparameterized query — same structure, different
    parameters — keeps every operator's identity (paper Def. 7).
    """

    def __init__(self, root: Operator, name: str = ""):
        self.root = root
        self.name = name
        self.ops: list[Operator] = []
        self._collect(root)
        for i, op in enumerate(self.ops):
            op.op_id = i + 1

    def _collect(self, op: Operator) -> None:
        for child in op.children:
            self._collect(child)
        self.ops.append(op)

    def op(self, op_id: int) -> Operator:
        """The operator with the given (1-based, plan-order) id."""
        return self.ops[op_id - 1]

    def op_by_label(self, label: str) -> Operator:
        """The operator carrying the given display label (KeyError: none)."""
        for op in self.ops:
            if op.label == label:
                return op
        raise KeyError(f"no operator labelled {label!r}")

    def infer_schemas(self, db) -> dict[int, TupleType]:
        """Row schema (TupleType) of every operator's output.

        Cached for the most recent database (single entry, so a long-lived
        query doesn't pin every database it was ever evaluated against):
        schema inference is pure in the query parameters (immutable once
        built) and the database's table schemas, whose staleness the
        database's ``version`` counter tracks.
        """
        version = getattr(db, "version", None)
        entry = getattr(self, "_schema_cache", None)
        if entry is not None and entry[0] is db and entry[1] == version:
            return entry[2]
        schemas: dict[int, TupleType] = {}
        for op in self.ops:
            child_schemas = [schemas[c.op_id] for c in op.children]
            schemas[op.op_id] = op.output_schema(child_schemas, db)
        self._schema_cache = (db, version, schemas)
        return schemas

    def evaluate(self, db) -> Bag:
        """Evaluate the plan over *db*, returning the result bag."""
        ctx = EvalContext(db, self.infer_schemas(db))
        cache: dict[int, list[Tup]] = {}
        for op in self.ops:
            child_rows = [cache[c.op_id] for c in op.children]
            cache[op.op_id] = op.eval_rows(child_rows, ctx)
        return Bag(cache[self.root.op_id])

    def evaluate_rows(self, db) -> list[Tup]:
        """Like :meth:`evaluate` but returns the raw row list."""
        return list(self.evaluate(db))

    def reparameterize(self, changes: Mapping[int, Mapping[str, Any]]) -> "Query":
        """A structurally identical query with parameters changed per op id."""

        def rebuild(op: Operator) -> Operator:
            children = [rebuild(c) for c in op.children]
            if op.op_id in changes:
                params = op.params()
                params.update(changes[op.op_id])
                return op._rebuild(children, params)
            return op.clone(children)

        return Query(rebuild(self.root), name=self.name)

    def delta(self, other: "Query") -> frozenset[int]:
        """Δ(Q, Q′): ids of operators whose parameters differ (Def. 9)."""
        if len(self.ops) != len(other.ops):
            raise ValueError("queries are not structurally identical")
        changed = set()
        for mine, theirs in zip(self.ops, other.ops):
            if type(mine) is not type(theirs):
                raise ValueError("queries are not structurally identical")
            if mine.params() != theirs.params():
                changed.add(mine.op_id)
        return frozenset(changed)

    def describe(self) -> str:
        """One line per operator (plan order) with child-id references."""
        lines = [f"Query {self.name or '(unnamed)'}"]
        for op in self.ops:
            child_ids = ",".join(str(c.op_id) for c in op.children)
            lines.append(f"  #{op.op_id} {op.describe()}" + (f" ← [{child_ids}]" if child_ids else ""))
        return "\n".join(lines)

    def explain_plan(self, annotate: bool = False) -> str:
        """Render the operator tree as an indented plan (root at the top).

        With ``annotate=True``, operators rewritten by the logical optimizer
        (:mod:`repro.engine.optimizer`) show the rules that touched them and
        the user-plan operator ids they derive from (``⟵ #i``); synthesized
        operators are marked ``⟵ new``.  The output is deterministic, so the
        renderings quoted in ``docs/OPTIMIZER.md`` are verified verbatim by
        ``tests/test_docs.py``.
        """
        lines = [f"Query {self.name or '(unnamed)'}"]

        def annotation(op: Operator) -> str:
            rules = getattr(op, "_rules", ())
            if not annotate or (not rules and op.origins == (op.op_id,)):
                return ""
            source = (
                " ".join(f"#{i}" for i in op.origins) if op.origins else "new"
            )
            inner = f"⟵ {source}"
            if rules:
                inner += f"; {', '.join(rules)}"
            return f"   [{inner}]"

        def walk(op: Operator, prefix: str, tail: bool, top: bool) -> None:
            if top:
                connector, child_prefix = "", ""
            else:
                connector = "└─ " if tail else "├─ "
                child_prefix = prefix + ("   " if tail else "│  ")
            lines.append(f"{prefix}{connector}#{op.op_id} {op.describe()}{annotation(op)}")
            for i, child in enumerate(op.children):
                walk(child, child_prefix, i == len(op.children) - 1, False)

        walk(self.root, "", True, True)
        return "\n".join(lines)

    def __getstate__(self) -> dict:
        """Pickle without the schema/plan caches (they pin database references)."""
        return {
            k: v
            for k, v in self.__dict__.items()
            if k not in ("_schema_cache", "_optimize_cache")
        }

    def __repr__(self) -> str:
        return f"Query({self.root.describe()}, ops={len(self.ops)})"
