"""WN++ — the lineage-based Why-Not baseline (paper §6.2, from [9]).

The paper extends Chapman & Jagadish's Why-Not to scale and to handle nested
data, keeping its lineage-based semantics:

* *compatibles* are input tuples matching the backtraced table NIPs of the
  original schema only (no schema alternatives);
* successors are traced blindly (no re-validation — a successor stays
  "compatible" even when flattening reveals it no longer matches);
* tracing stops at aggregation/nesting boundaries (Why-Not supports SPJU);
* the explanation is the *frontier picky operator*: the furthest point in the
  pipeline where a compatible's last successors were filtered;
* when a constrained table contains no compatible tuple at all, the join that
  would have consumed the missing data is blamed (the crime-scenario C3
  behaviour reported in §6.4).

Known deviation (documented in EXPERIMENTS.md): on crime scenario C2 the
original evaluation reports the selection σ4 found via partner-side analysis;
our faithful frontier semantics reports the join where the traced person
loses its partner.  The qualitative claim — lineage-based tools return a
single, often incomplete operator — is unchanged.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.algebra.operators import Operator, Query, TableAccess
from repro.whynot.matching import matches
from repro.whynot.question import WhyNotQuestion
from repro.baselines.common import (
    S1Trace,
    build_s1_trace,
    constrained_tables,
    consumer_of,
    is_grouping,
    nearest_ancestor_join,
)


@dataclass
class BaselineExplanation:
    """A baseline explanation: a set of operators (singleton for WN++)."""

    ops: frozenset[int]
    labels: tuple[str, ...]

    def __repr__(self) -> str:
        return "{" + ", ".join(self.labels) + "}"


def wnpp_explain(question: WhyNotQuestion, s1: "S1Trace | None" = None) -> list[BaselineExplanation]:
    """Run the WN++ baseline; returns zero or more singleton explanations."""
    if s1 is None:
        s1 = build_s1_trace(question)
    query = question.query
    explanations: list[BaselineExplanation] = []

    compatibles, missing_tables = _find_compatibles(s1)

    # Unsatisfiable table NIP: blame the consuming join (missing-data case).
    # Only meaningful when compatibles elsewhere witness the question (C3);
    # with no compatibles at all, Why-Not stays silent (Q4).
    if compatibles:
        for table_op_id in missing_tables:
            join = nearest_ancestor_join(query, table_op_id)
            if join is not None:
                explanations.append(
                    BaselineExplanation(frozenset([join.op_id]), (join.label,))
                )

    death = _furthest_death(s1, compatibles)
    if death is not None:
        explanations.append(BaselineExplanation(frozenset([death.op_id]), (death.label,)))

    # Deduplicate, preserve order.
    seen: set[frozenset[int]] = set()
    unique = []
    for e in explanations:
        if e.ops not in seen:
            seen.add(e.ops)
            unique.append(e)
    return unique


def _find_compatibles(s1: S1Trace) -> tuple[set[int], list[int]]:
    """Compatible source rows (rids) and table ops with unsatisfiable NIPs."""
    constrained = constrained_tables(s1.backtrace)
    compatibles: set[int] = set()
    missing: list[int] = []
    if constrained:
        for op_id in constrained:
            rows = s1.trace.traces[op_id].rows
            found = [r.rid for r in rows if r.consistent_at(0)]
            if found:
                compatibles.update(found)
            else:
                missing.append(op_id)
    else:
        # No table is constrained (e.g. why-not over a global aggregate):
        # Why-Not considers every input tuple compatible.
        for op in s1.query().ops:
            if isinstance(op, TableAccess):
                compatibles.update(r.rid for r in s1.trace.traces[op.op_id].rows)
    return compatibles, missing


def _wnpp_alive(s1: S1Trace) -> set[int]:
    """Strictly-alive rows under WN++'s nested-data extension.

    Whole input tuples are flagged compatible, but tracing through a relation
    flatten follows only the successors stemming from nested elements that
    match the why-not pattern (Example 2 traces ``(NY, 2018)`` — not Sue's
    other address — through the flatten).  Apart from this element-level
    step, successors are tracked blindly (no re-validation elsewhere)."""
    from repro.algebra.operators import RelationFlatten

    trace = s1.trace
    query = s1.query()
    flatten_ops = {
        op.op_id for op in query.ops if isinstance(op, RelationFlatten)
    }
    constrained_flattens = set()
    from repro.whynot.backtrace import is_trivial

    for op in query.ops:
        if op.op_id in flatten_ops:
            pattern = s1.backtrace.nip_at[op.op_id]
            if not is_trivial(pattern):
                constrained_flattens.add(op.op_id)
    alive: set[int] = set()
    for rid, row in trace.rows_by_rid.items():
        if row.retained_at(0) is False:
            continue
        if any(p not in alive for p in row.parents):
            continue
        op_id = trace.op_of_rid[rid]
        if op_id in constrained_flattens and not row.consistent_at(0):
            continue
        alive.add(rid)
    return alive


def _furthest_death(s1: S1Trace, compatibles: set[int]) -> "Operator | None":
    """The frontier picky operator: the furthest pipeline position at which
    some compatible's last strictly-alive successor was filtered."""
    if not compatibles:
        return None
    query = s1.query()
    trace = s1.trace
    alive = _wnpp_alive(s1)
    position = {op.op_id: i for i, op in enumerate(query.ops)}

    # Alive consumer index: rid -> alive child rows in the consuming operator.
    alive_children: dict[int, list[int]] = {}
    for rid, row in trace.rows_by_rid.items():
        if rid not in alive:
            continue
        for parent in row.parents:
            alive_children.setdefault(parent, []).append(rid)

    # Survivors: alive rows at the root, or alive rows absorbed by a grouping
    # operator (Why-Not does not trace through aggregation).
    survivor_seeds: list[int] = []
    root_id = query.root.op_id
    for rid, row in trace.rows_by_rid.items():
        if rid not in alive:
            continue
        op_id = trace.op_of_rid[rid]
        if op_id == root_id:
            survivor_seeds.append(rid)
            continue
        consumer = consumer_of(query, op_id)
        if consumer is not None and is_grouping(consumer):
            survivor_seeds.append(rid)
    surviving_ancestry = trace.ancestors(survivor_seeds) if survivor_seeds else set()

    # Terminal rows: alive, not absorbed, with no alive successor.
    deaths_per_compatible: dict[int, int] = {}
    for rid, row in trace.rows_by_rid.items():
        if rid not in alive or rid in surviving_ancestry:
            continue
        op_id = trace.op_of_rid[rid]
        if op_id == root_id:
            continue
        consumer = consumer_of(query, op_id)
        if consumer is None or is_grouping(consumer):
            continue
        if alive_children.get(rid):
            continue
        death_pos = position[consumer.op_id]
        for ancestor in trace.ancestors([rid]):
            if ancestor in compatibles and ancestor not in surviving_ancestry:
                current = deaths_per_compatible.get(ancestor, -1)
                if death_pos > current:
                    deaths_per_compatible[ancestor] = death_pos
    if not deaths_per_compatible:
        return None
    furthest = max(deaths_per_compatible.values())
    return query.ops[furthest]
