"""Shared machinery for the lineage-based baselines.

Both baselines work on the *original* query only (schema alternative S1) and
do not re-validate successor compatibility — the two limitations the paper's
algorithm lifts.  They reuse the tracer of Step 3 restricted to S1: a traced
row is *strictly alive* when its entire ancestry carries no ``retained=False``
flag, which is exactly the data flow of the unmodified query.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.algebra.operators import (
    GroupAggregation,
    Join,
    Operator,
    Query,
    RelationNesting,
    TableAccess,
)
from repro.whynot.alternatives import SchemaAlternative, enumerate_schema_alternatives
from repro.whynot.backtrace import BacktraceResult, backtrace, is_trivial
from repro.whynot.question import WhyNotQuestion
from repro.whynot.tracing import TraceResult, trace


@dataclass
class S1Trace:
    """S1-only tracing of a question, plus derived strict-flow facts."""

    question: WhyNotQuestion
    backtrace: BacktraceResult
    trace: TraceResult
    sa: SchemaAlternative
    alive: set[int]

    def query(self) -> Query:
        return self.question.query


def build_s1_trace(question: WhyNotQuestion) -> S1Trace:
    base = backtrace(question.query, question.db, question.nip)
    sas = enumerate_schema_alternatives(
        question.query, question.db, question.nip, base, groups=()
    )
    traced = trace(question.query, question.db, sas)
    alive = _strictly_alive(traced)
    return S1Trace(question, base, traced, sas[0], alive)


def _strictly_alive(traced: TraceResult) -> set[int]:
    """Rows whose full ancestry carries no retained=False flag under S1."""
    alive: set[int] = set()
    # rows_by_rid is insertion-ordered: parents precede children.
    for rid, row in traced.rows_by_rid.items():
        if row.retained_at(0) is False:
            continue
        if all(p in alive for p in row.parents):
            alive.add(rid)
    return alive


def consumer_of(query: Query, op_id: int) -> "Operator | None":
    """The operator consuming *op_id*'s output (None for the root)."""
    for op in query.ops:
        for child in op.children:
            if child.op_id == op_id:
                return op
    return None


def nearest_ancestor_join(query: Query, op_id: int) -> "Operator | None":
    """The first join above the given operator (the op that would consume the
    'missing data' of an unsatisfiable table NIP)."""
    current = op_id
    while True:
        consumer = consumer_of(query, current)
        if consumer is None:
            return None
        if isinstance(consumer, Join):
            return consumer
        current = consumer.op_id


def is_grouping(op: Operator) -> bool:
    return isinstance(op, (RelationNesting, GroupAggregation))


def constrained_tables(base: BacktraceResult) -> dict[int, str]:
    """Table-access ops whose backtraced NIP actually constrains something."""
    return {
        op_id: table
        for op_id, (table, pattern) in base.table_nips.items()
        if not is_trivial(pattern)
    }
