"""Conseil — the hybrid why-not baseline (paper §6.4, from [19]).

Conseil goes beyond frontier-picky tracing: it *virtually passes* compatibles
through filtering operators and reports the combined set of operators that
block a full derivation of the missing answer.  In our reproduction this is
the S1 relaxed trace: every final traced row whose tuple matches the why-not
NIP corresponds to one virtual derivation, and the operators carrying a
``retained=False`` flag in its ancestry are exactly the blockers.

Explanations are the subset-minimal blocker sets.  Like WN++, Conseil knows
neither schema alternatives nor re-validation, so derivations whose content
was invalidated midway (e.g. crime scenario C3's wrong ``hair`` description)
never match the NIP — in that case the consuming join of the unsatisfiable
table NIP is blamed, as in the original evaluation.
"""

from __future__ import annotations

from repro.baselines.common import (
    S1Trace,
    build_s1_trace,
    constrained_tables,
    nearest_ancestor_join,
)
from repro.baselines.wnpp import BaselineExplanation
from repro.whynot.question import WhyNotQuestion


def conseil_explain(
    question: WhyNotQuestion, s1: "S1Trace | None" = None
) -> list[BaselineExplanation]:
    """Run the Conseil baseline; returns subset-minimal blocker sets."""
    if s1 is None:
        s1 = build_s1_trace(question)
    query = question.query
    trace = s1.trace

    blocked_sets: set[frozenset[int]] = set()
    for row in trace.final_rows():
        if not row.consistent_at(0):
            continue
        blockers: set[int] = set()
        for rid in trace.ancestors([row.rid]):
            ancestor = trace.rows_by_rid[rid]
            if ancestor.retained_at(0) is False:
                blockers.add(trace.op_of_rid[rid])
        if blockers:
            blocked_sets.add(frozenset(blockers))

    if not blocked_sets:
        # No virtual derivation matches: missing data — blame the join that
        # would consume the unsatisfiable table's tuples.
        explanations = []
        for op_id, (table, pattern) in s1.backtrace.table_nips.items():
            if op_id in constrained_tables(s1.backtrace):
                rows = s1.trace.traces[op_id].rows
                if not any(r.consistent_at(0) for r in rows):
                    join = nearest_ancestor_join(query, op_id)
                    if join is not None:
                        explanations.append(
                            BaselineExplanation(frozenset([join.op_id]), (join.label,))
                        )
        return explanations

    minimal = [
        s for s in blocked_sets if not any(other < s for other in blocked_sets)
    ]
    minimal.sort(key=lambda s: (len(s), sorted(s)))
    return [
        BaselineExplanation(s, tuple(query.op(op_id).label for op_id in sorted(s)))
        for s in minimal
    ]
