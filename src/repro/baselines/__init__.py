"""Baseline why-not approaches the paper compares against (§6.3–6.4)."""

from repro.baselines.wnpp import wnpp_explain
from repro.baselines.conseil import conseil_explain

__all__ = ["wnpp_explain", "conseil_explain"]
