"""Immutable nested values: the null value, tuples, and bags.

The paper (Def. 2) models instances as primitives, tuples
``⟨A1: v1, ..., An: vn⟩`` and homogeneous bags ``{{v1, ..., vn}}`` with an
explicit null ``⊥`` valid for every type.  ``Tup`` and ``Bag`` here are
immutable and hashable so that bags of tuples (and bags nested inside tuples)
can be counted, grouped, and compared with multiplicity-aware semantics.
"""

from __future__ import annotations

from typing import Any, Callable, Iterable, Iterator, Mapping


class _Null:
    """Singleton for the paper's ⊥ value (valid for every nested type)."""

    _instance = None

    def __new__(cls):
        if cls._instance is None:
            cls._instance = super().__new__(cls)
        return cls._instance

    def __repr__(self) -> str:
        return "NULL"

    def __bool__(self) -> bool:
        return False

    def __hash__(self) -> int:
        return hash("⊥-null")

    def __eq__(self, other: object) -> bool:
        return isinstance(other, _Null)

    def __reduce__(self):
        return (_Null, ())


NULL = _Null()


def is_null(value: Any) -> bool:
    """Return True if *value* is the nested-model null (⊥) or Python None."""
    return value is None or isinstance(value, _Null)


class Tup:
    """An immutable named tuple ``⟨A1: v1, ..., An: vn⟩``.

    Attribute order is preserved (it matters for display and for the schema
    concatenation operator ``◦``) but equality and hashing are order
    *sensitive* on purpose: the algebra keeps schemas aligned, so two equal
    tuples always list attributes in the same order.
    """

    __slots__ = ("_names", "_values", "_index", "_hash")

    def __init__(
        self, items: Mapping[str, Any] | Iterable[tuple[str, Any]] = (), /, **kwargs: Any
    ):
        if isinstance(items, Mapping):
            pairs = list(items.items())
        else:
            pairs = list(items)
        pairs.extend(kwargs.items())
        names = tuple(name for name, _ in pairs)
        if len(set(names)) != len(names):
            raise ValueError(f"duplicate attribute names in tuple: {names}")
        object.__setattr__(self, "_names", names)
        object.__setattr__(self, "_values", tuple(value for _, value in pairs))
        object.__setattr__(self, "_index", {name: i for i, name in enumerate(names)})
        object.__setattr__(self, "_hash", None)

    def __setattr__(self, name: str, value: Any) -> None:
        raise AttributeError("Tup is immutable")

    @property
    def attrs(self) -> tuple[str, ...]:
        """Attribute names, in schema order (the paper's ``sch``)."""
        return self._names

    def values(self) -> tuple[Any, ...]:
        return self._values

    def items(self) -> Iterator[tuple[str, Any]]:
        return zip(self._names, self._values)

    def __contains__(self, name: str) -> bool:
        return name in self._index

    def __getitem__(self, name: str) -> Any:
        try:
            return self._values[self._index[name]]
        except KeyError:
            raise KeyError(f"tuple has no attribute {name!r}; attrs={self._names}") from None

    def get(self, name: str, default: Any = None) -> Any:
        i = self._index.get(name)
        return self._values[i] if i is not None else default

    def get_path(self, path: "tuple[str, ...] | str") -> Any:
        """Navigate a dotted path through nested tuples.

        Navigating through NULL yields NULL (never raises), mirroring how big
        data systems treat missing struct fields.  Paths may not traverse
        bags; flatten the bag first.
        """
        if isinstance(path, str):
            path = tuple(path.split("."))
        current: Any = self
        for step in path:
            if is_null(current):
                return NULL
            if isinstance(current, Tup):
                if step not in current:
                    raise KeyError(f"path step {step!r} not in tuple attrs {current.attrs}")
                current = current[step]
            elif isinstance(current, Bag):
                raise TypeError(f"cannot navigate path step {step!r} through a bag; flatten first")
            else:
                raise TypeError(f"cannot navigate path step {step!r} through primitive {current!r}")
        return current

    def project(self, names: Iterable[str]) -> "Tup":
        """Projection ``t.L`` on a list of attribute names."""
        return Tup((name, self[name]) for name in names)

    def drop(self, names: Iterable[str]) -> "Tup":
        dropped = set(names)
        return Tup((name, value) for name, value in self.items() if name not in dropped)

    def concat(self, other: "Tup") -> "Tup":
        """Tuple concatenation (the paper's ``◦``); names must not clash."""
        return Tup(list(self.items()) + list(other.items()))

    def replace(self, **changes: Any) -> "Tup":
        return Tup((name, changes.get(name, value)) for name, value in self.items())

    def with_attr(self, name: str, value: Any) -> "Tup":
        """Return a copy with attribute *name* appended (or replaced in place)."""
        if name in self:
            return self.replace(**{name: value})
        return Tup(list(self.items()) + [(name, value)])

    def rename(self, mapping: Mapping[str, str]) -> "Tup":
        """Rename attributes; *mapping* maps old names to new names."""
        return Tup((mapping.get(name, name), value) for name, value in self.items())

    def reorder(self, names: Iterable[str]) -> "Tup":
        return Tup((name, self[name]) for name in names)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Tup):
            return NotImplemented
        return self._names == other._names and self._values == other._values

    def __hash__(self) -> int:
        if self._hash is None:
            object.__setattr__(self, "_hash", hash((self._names, self._values)))
        return self._hash

    def __len__(self) -> int:
        return len(self._names)

    def __repr__(self) -> str:
        inner = ", ".join(f"{name}: {value!r}" for name, value in self.items())
        return f"⟨{inner}⟩"


class Bag:
    """An immutable bag (multiset) ``{{...}}`` of nested values.

    Elements are stored as a mapping element → multiplicity with insertion
    order preserved for deterministic iteration.  ``iter`` yields elements
    *with* repetition; use :meth:`items` for (element, count) pairs.
    """

    __slots__ = ("_counts", "_total", "_hash")

    def __init__(self, elements: Iterable[Any] = ()):
        counts: dict[Any, int] = {}
        total = 0
        for element in elements:
            counts[element] = counts.get(element, 0) + 1
            total += 1
        object.__setattr__(self, "_counts", counts)
        object.__setattr__(self, "_total", total)
        object.__setattr__(self, "_hash", None)

    @classmethod
    def from_counts(cls, pairs: Iterable[tuple[Any, int]]) -> "Bag":
        bag = cls()
        counts: dict[Any, int] = {}
        total = 0
        for element, count in pairs:
            if count < 0:
                raise ValueError("negative multiplicity")
            if count == 0:
                continue
            counts[element] = counts.get(element, 0) + count
            total += count
        object.__setattr__(bag, "_counts", counts)
        object.__setattr__(bag, "_total", total)
        return bag

    def __setattr__(self, name: str, value: Any) -> None:
        raise AttributeError("Bag is immutable")

    def items(self) -> Iterator[tuple[Any, int]]:
        """Distinct elements with their multiplicities."""
        return iter(self._counts.items())

    def distinct(self) -> Iterator[Any]:
        return iter(self._counts)

    def mult(self, element: Any) -> int:
        """The paper's ``mult(R, t)``: multiplicity of *element* (0 if absent)."""
        return self._counts.get(element, 0)

    def __iter__(self) -> Iterator[Any]:
        for element, count in self._counts.items():
            for _ in range(count):
                yield element

    def __len__(self) -> int:
        return self._total

    def __contains__(self, element: Any) -> bool:
        return element in self._counts

    def is_empty(self) -> bool:
        return self._total == 0

    def union(self, other: "Bag") -> "Bag":
        """Additive union ``R ∪ S`` (multiplicities add)."""
        return Bag.from_counts(list(self.items()) + list(other.items()))

    def difference(self, other: "Bag") -> "Bag":
        """Bag difference ``R − S`` (multiplicities subtract, floored at 0)."""
        return Bag.from_counts(
            (element, max(count - other.mult(element), 0))
            for element, count in self.items()
        )

    def dedup(self) -> "Bag":
        """Duplicate elimination: every multiplicity becomes 1."""
        return Bag.from_counts((element, 1) for element in self._counts)

    def map(self, fn: Callable[[Any], Any]) -> "Bag":
        return Bag.from_counts((fn(element), count) for element, count in self.items())

    def filter(self, pred: Callable[[Any], bool]) -> "Bag":
        return Bag.from_counts(
            (element, count) for element, count in self.items() if pred(element)
        )

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Bag):
            return NotImplemented
        return self._counts == other._counts

    def __hash__(self) -> int:
        if self._hash is None:
            object.__setattr__(
                self, "_hash", hash(frozenset((hash(e), c) for e, c in self._counts.items()))
            )
        return self._hash

    def __repr__(self) -> str:
        parts = []
        for element, count in self._counts.items():
            suffix = f"^{count}" if count > 1 else ""
            parts.append(f"{element!r}{suffix}")
        return "{{" + ", ".join(parts) + "}}"


EMPTY_BAG = Bag()
