"""Immutable nested values: the null value, tuples, and bags.

The paper (Def. 2) models instances as primitives, tuples
``⟨A1: v1, ..., An: vn⟩`` and homogeneous bags ``{{v1, ..., vn}}`` with an
explicit null ``⊥`` valid for every type.  ``Tup`` and ``Bag`` here are
immutable and hashable so that bags of tuples (and bags nested inside tuples)
can be counted, grouped, and compared with multiplicity-aware semantics.

Layout interning
----------------

Tuple shapes repeat millions of times during evaluation (every row of an
operator's output shares one attribute list), so the per-tuple metadata is
interned: a :class:`Layout` holds the attribute-name tuple and the shared
name→position index, keyed globally by the name tuple.  ``Tup`` instances
only carry a reference to their layout plus the value tuple, and
:meth:`Tup.from_layout` constructs a row without re-validating names or
rebuilding an index dict.  Derived shapes (``concat``, ``project``, ``drop``,
``rename``, ``with_attr``) are cached *on the layout*, so structural tuple
operations inside joins, flattens and projections cost one dict lookup plus
one value-tuple build per row.

Contract: a ``Layout`` is immutable and interned — two ``Tup`` values with
equal attribute tuples always share the same ``Layout`` object, so layouts
may be compared and keyed by identity.
"""

from __future__ import annotations

from operator import itemgetter
from typing import Any, Callable, Iterable, Iterator, Mapping

# Bound once: ``Tup``/``Bag`` construction bypasses the immutability guard
# via ``object.__setattr__`` on every row the engine materializes, and the
# repeated ``object`` global + attribute lookups are measurable there.
_obj_new = object.__new__
_obj_set = object.__setattr__


def _gatherer(positions: "tuple[int, ...]") -> "Callable[[tuple], tuple]":
    """A C-level gather ``values -> tuple(values[i] for i in positions)``.

    ``operator.itemgetter`` returns the bare element for a single index, so
    the 0- and 1-position shapes are wrapped to keep the tuple contract.
    """
    if not positions:
        return lambda values: ()
    if len(positions) == 1:
        get = itemgetter(positions[0])
        return lambda values: (get(values),)
    return itemgetter(*positions)


class _Null:
    """Singleton for the paper's ⊥ value (valid for every nested type)."""

    _instance = None

    def __new__(cls):
        if cls._instance is None:
            cls._instance = super().__new__(cls)
        return cls._instance

    def __repr__(self) -> str:
        return "NULL"

    def __bool__(self) -> bool:
        return False

    def __hash__(self) -> int:
        return hash("⊥-null")

    def __eq__(self, other: object) -> bool:
        return isinstance(other, _Null)

    def __reduce__(self):
        return (_Null, ())


NULL = _Null()


def is_null(value: Any) -> bool:
    """Return True if *value* is the nested-model null (⊥) or Python None."""
    return value is None or isinstance(value, _Null)


#: The canonical NaN object of the value model.
#:
#: IEEE NaN compares unequal to itself, so CPython hashes every NaN float by
#: object identity (Python ≥ 3.10) and ``pickle`` does not memoize floats —
#: two "equal-position" NaNs stop being one value the moment a row crosses a
#: process boundary or is produced by two evaluation paths.  That would make
#: grouping, joining, deduplication and partition routing depend on object
#: identity and therefore on the execution strategy.  Instead the engine
#: maintains the invariant that **every NaN inside the value model is this
#: single object**: ingestion (:meth:`repro.engine.database.Database.add`),
#: arithmetic (:class:`repro.algebra.expressions.Arith`), aggregation
#: (:func:`repro.algebra.aggregates.apply_aggregate`) and unpickling
#: (:meth:`Tup._unpickle` / :meth:`Bag._unpickle`) all canonicalize.  NaN
#: thus behaves as one value — SQL's reading for GROUP BY / DISTINCT — and
#: every backend/partitioning produces identical results.
NAN = float("nan")


def _is_nan(value: Any) -> bool:
    # ``type is float`` first: ``!=`` on containers would do real work.
    return type(value) is float and value != value


def canonicalize_value(value: Any) -> Any:
    """Map every NaN inside *value* to the canonical :data:`NAN` object.

    Returns *value* itself (no rebuild) when nothing needs replacing — the
    overwhelmingly common case — so ingestion-time canonicalization is cheap.
    """
    if type(value) is float:
        return NAN if value != value else value
    if isinstance(value, Tup):
        values = value.values()
        canon = tuple(canonicalize_value(v) for v in values)
        if all(a is b for a, b in zip(canon, values)):
            return value
        return Tup.from_layout(value.layout, canon)
    if isinstance(value, Bag):
        changed = False
        pairs = []
        for element, count in value.items():
            canon = canonicalize_value(element)
            changed = changed or canon is not element
            pairs.append((canon, count))
        return Bag.from_counts(pairs) if changed else value
    return value


class Layout:
    """An interned tuple shape: attribute names plus the name→position index.

    Layouts are created through :meth:`Layout.of` only, which validates the
    name tuple (no duplicates) once and returns the shared instance for it.
    Structural derivations — concatenation, projection, dropping, renaming,
    appending — are memoised in ``_derived`` so per-row tuple restructuring
    never rebuilds name tuples or index dicts.
    """

    __slots__ = ("names", "index", "_derived")

    _interned: "dict[tuple[str, ...], Layout]" = {}

    def __init__(self, names: tuple[str, ...], index: dict):
        # Internal: use Layout.of().
        self.names = names
        self.index = index
        self._derived: dict = {}

    @classmethod
    def of(cls, names: Iterable[str]) -> "Layout":
        names = tuple(names)
        layout = cls._interned.get(names)
        if layout is None:
            if len(set(names)) != len(names):
                raise ValueError(f"duplicate attribute names in tuple: {names}")
            layout = cls(names, {name: i for i, name in enumerate(names)})
            cls._interned[names] = layout
        return layout

    def __len__(self) -> int:
        return len(self.names)

    def __repr__(self) -> str:
        return f"Layout{self.names!r}"

    def __reduce__(self):
        # Layouts are interned per process: unpickling re-interns by name
        # tuple so identity comparisons keep working across process
        # boundaries (the parallel execution backends ship rows to workers).
        return (Layout.of, (self.names,))

    # -- derived-shape caches (keyed by identity of interned inputs) ---------

    def concat(self, other: "Layout") -> "Layout":
        key = ("concat", other)
        combined = self._derived.get(key)
        if combined is None:
            combined = Layout.of(self.names + other.names)
            self._derived[key] = combined
        return combined

    def project(
        self, names: tuple[str, ...]
    ) -> "tuple[Layout, tuple[int, ...], Callable[[tuple], tuple]]":
        key = ("project", names)
        plan = self._derived.get(key)
        if plan is None:
            index = self.index
            try:
                positions = tuple(index[name] for name in names)
            except KeyError as exc:
                raise KeyError(
                    f"tuple has no attribute {exc.args[0]!r}; attrs={self.names}"
                ) from None
            plan = (Layout.of(names), positions, _gatherer(positions))
            self._derived[key] = plan
        return plan

    def drop(
        self, names: tuple[str, ...]
    ) -> "tuple[Layout, tuple[int, ...], Callable[[tuple], tuple]]":
        key = ("drop", names)
        plan = self._derived.get(key)
        if plan is None:
            dropped = set(names)
            kept = tuple(name for name in self.names if name not in dropped)
            positions = tuple(self.index[name] for name in kept)
            plan = (Layout.of(kept), positions, _gatherer(positions))
            self._derived[key] = plan
        return plan

    def rename(self, pairs: tuple[tuple[str, str], ...]) -> "Layout":
        """Renamed layout; *pairs* maps old name → new name (partial)."""
        key = ("rename", pairs)
        renamed = self._derived.get(key)
        if renamed is None:
            mapping = dict(pairs)
            renamed = Layout.of(mapping.get(name, name) for name in self.names)
            self._derived[key] = renamed
        return renamed

    def with_name(self, name: str) -> "Layout":
        key = ("with", name)
        appended = self._derived.get(key)
        if appended is None:
            appended = Layout.of(self.names + (name,))
            self._derived[key] = appended
        return appended


class Tup:
    """An immutable named tuple ``⟨A1: v1, ..., An: vn⟩``.

    Attribute order is preserved (it matters for display and for the schema
    concatenation operator ``◦``) but equality and hashing are order
    *sensitive* on purpose: the algebra keeps schemas aligned, so two equal
    tuples always list attributes in the same order.
    """

    __slots__ = ("_layout", "_values", "_index", "_hash")

    def __init__(
        self, items: Mapping[str, Any] | Iterable[tuple[str, Any]] = (), /, **kwargs: Any
    ):
        if isinstance(items, Mapping):
            pairs = list(items.items())
        else:
            pairs = list(items)
        pairs.extend(kwargs.items())
        layout = Layout.of(name for name, _ in pairs)
        object.__setattr__(self, "_layout", layout)
        object.__setattr__(self, "_values", tuple(value for _, value in pairs))
        object.__setattr__(self, "_index", layout.index)

    @classmethod
    def from_layout(cls, layout: Layout, values: tuple) -> "Tup":
        """Fast constructor: trusted *values* matching an interned *layout*.

        Skips name validation and index building; ``len(values)`` must equal
        ``len(layout.names)`` (callers derive both from the same layout).
        The ``_hash`` slot stays unset until first use — tuple construction
        is the hottest allocation in the engine and most rows are never
        hashed.
        """
        t = _obj_new(cls)
        _obj_set(t, "_layout", layout)
        _obj_set(t, "_values", values)
        _obj_set(t, "_index", layout.index)
        return t

    def __setattr__(self, name: str, value: Any) -> None:
        raise AttributeError("Tup is immutable")

    @property
    def layout(self) -> Layout:
        """The interned :class:`Layout` of this tuple."""
        return self._layout

    @property
    def attrs(self) -> tuple[str, ...]:
        """Attribute names, in schema order (the paper's ``sch``)."""
        return self._layout.names

    def values(self) -> tuple[Any, ...]:
        return self._values

    def items(self) -> Iterator[tuple[str, Any]]:
        return zip(self._layout.names, self._values)

    def __contains__(self, name: str) -> bool:
        return name in self._index

    def __getitem__(self, name: str) -> Any:
        try:
            return self._values[self._index[name]]
        except KeyError:
            raise KeyError(
                f"tuple has no attribute {name!r}; attrs={self._layout.names}"
            ) from None

    def get(self, name: str, default: Any = None) -> Any:
        i = self._index.get(name)
        return self._values[i] if i is not None else default

    def get_path(self, path: "tuple[str, ...] | str") -> Any:
        """Navigate a dotted path through nested tuples.

        Navigating through NULL yields NULL (never raises), mirroring how big
        data systems treat missing struct fields.  Paths may not traverse
        bags; flatten the bag first.
        """
        if isinstance(path, str):
            path = tuple(path.split("."))
        current: Any = self
        for step in path:
            if is_null(current):
                return NULL
            if isinstance(current, Tup):
                if step not in current:
                    raise KeyError(f"path step {step!r} not in tuple attrs {current.attrs}")
                current = current[step]
            elif isinstance(current, Bag):
                raise TypeError(f"cannot navigate path step {step!r} through a bag; flatten first")
            else:
                raise TypeError(f"cannot navigate path step {step!r} through primitive {current!r}")
        return current

    def project(self, names: Iterable[str]) -> "Tup":
        """Projection ``t.L`` on a list of attribute names."""
        layout, _, gather = self._layout.project(tuple(names))
        return Tup.from_layout(layout, gather(self._values))

    def drop(self, names: Iterable[str]) -> "Tup":
        layout, _, gather = self._layout.drop(tuple(names))
        return Tup.from_layout(layout, gather(self._values))

    def concat(self, other: "Tup") -> "Tup":
        """Tuple concatenation (the paper's ``◦``); names must not clash."""
        return Tup.from_layout(
            self._layout.concat(other._layout), self._values + other._values
        )

    def replace(self, **changes: Any) -> "Tup":
        """A copy with the given attributes changed; unknown names raise."""
        index = self._index
        values = list(self._values)
        for name, value in changes.items():
            i = index.get(name)
            if i is None:
                raise KeyError(
                    f"cannot replace unknown attribute {name!r}; "
                    f"attrs={self._layout.names}"
                )
            values[i] = value
        return Tup.from_layout(self._layout, tuple(values))

    def with_attr(self, name: str, value: Any) -> "Tup":
        """Return a copy with attribute *name* appended (or replaced in place)."""
        i = self._index.get(name)
        if i is not None:
            values = list(self._values)
            values[i] = value
            return Tup.from_layout(self._layout, tuple(values))
        return Tup.from_layout(self._layout.with_name(name), self._values + (value,))

    def rename(self, mapping: Mapping[str, str]) -> "Tup":
        """Rename attributes; *mapping* maps old names to new names."""
        return Tup.from_layout(self._layout.rename(tuple(mapping.items())), self._values)

    def reorder(self, names: Iterable[str]) -> "Tup":
        return self.project(names)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Tup):
            return NotImplemented
        if self._layout is not other._layout:
            # Layouts are interned, so distinct objects imply distinct name
            # tuples within a process; compare names anyway for robustness.
            if self._layout.names != other._layout.names:
                return False
        return self._values == other._values

    def __hash__(self) -> int:
        h = getattr(self, "_hash", None)
        if h is None:
            h = hash((self._layout.names, self._values))
            object.__setattr__(self, "_hash", h)
        return h

    def __len__(self) -> int:
        return len(self._values)

    def __repr__(self) -> str:
        inner = ", ".join(f"{name}: {value!r}" for name, value in self.items())
        return f"⟨{inner}⟩"

    @classmethod
    def _unpickle(cls, names: tuple, values: tuple) -> "Tup":
        # ``pickle`` does not memoize floats, so NaNs must be re-canonicalized
        # on arrival or grouping/joining in worker processes would depend on
        # object identity (see :data:`NAN`).  Nested Tup/Bag values arrive
        # through their own ``_unpickle`` and are already canonical.
        for v in values:
            if type(v) is float and v != v and v is not NAN:
                values = tuple(
                    NAN if (type(u) is float and u != u) else u for u in values
                )
                break
        return cls.from_layout(Layout.of(names), values)

    def __reduce__(self):
        # The default slots protocol would call the blocked ``__setattr__``;
        # instead rebuild through the interning constructor so the layout is
        # shared with every same-shaped tuple in the receiving process.
        return (Tup._unpickle, (self._layout.names, self._values))


class Bag:
    """An immutable bag (multiset) ``{{...}}`` of nested values.

    Elements are stored as a mapping element → multiplicity with insertion
    order preserved for deterministic iteration.  ``iter`` yields elements
    *with* repetition; use :meth:`items` for (element, count) pairs.
    """

    __slots__ = ("_counts", "_total", "_hash")

    def __init__(self, elements: Iterable[Any] = ()):
        counts: dict[Any, int] = {}
        total = 0
        for element in elements:
            counts[element] = counts.get(element, 0) + 1
            total += 1
        _obj_set(self, "_counts", counts)
        _obj_set(self, "_total", total)
        _obj_set(self, "_hash", None)

    @classmethod
    def from_counts(cls, pairs: Iterable[tuple[Any, int]]) -> "Bag":
        bag = cls()
        counts: dict[Any, int] = {}
        total = 0
        for element, count in pairs:
            if count < 0:
                raise ValueError("negative multiplicity")
            if count == 0:
                continue
            counts[element] = counts.get(element, 0) + count
            total += count
        _obj_set(bag, "_counts", counts)
        _obj_set(bag, "_total", total)
        return bag

    def __setattr__(self, name: str, value: Any) -> None:
        raise AttributeError("Bag is immutable")

    def items(self) -> Iterator[tuple[Any, int]]:
        """Distinct elements with their multiplicities."""
        return iter(self._counts.items())

    def distinct(self) -> Iterator[Any]:
        return iter(self._counts)

    def mult(self, element: Any) -> int:
        """The paper's ``mult(R, t)``: multiplicity of *element* (0 if absent)."""
        return self._counts.get(element, 0)

    def __iter__(self) -> Iterator[Any]:
        counts = self._counts
        if self._total == len(counts):
            # No duplicates: iterate the dict keys directly instead of
            # resuming a generator per row (source-table scans iterate bags
            # on every execution, and most relations are duplicate-free).
            return iter(counts)
        out: list[Any] = []
        append = out.append
        for element, count in counts.items():
            if count == 1:
                append(element)
            else:
                out.extend([element] * count)
        return iter(out)

    def __len__(self) -> int:
        return self._total

    def __contains__(self, element: Any) -> bool:
        return element in self._counts

    def is_empty(self) -> bool:
        return self._total == 0

    def union(self, other: "Bag") -> "Bag":
        """Additive union ``R ∪ S`` (multiplicities add)."""
        return Bag.from_counts(list(self.items()) + list(other.items()))

    def difference(self, other: "Bag") -> "Bag":
        """Bag difference ``R − S`` (multiplicities subtract, floored at 0)."""
        return Bag.from_counts(
            (element, max(count - other.mult(element), 0))
            for element, count in self.items()
        )

    def dedup(self) -> "Bag":
        """Duplicate elimination: every multiplicity becomes 1."""
        return Bag.from_counts((element, 1) for element in self._counts)

    def map(self, fn: Callable[[Any], Any]) -> "Bag":
        return Bag.from_counts((fn(element), count) for element, count in self.items())

    def filter(self, pred: Callable[[Any], bool]) -> "Bag":
        return Bag.from_counts(
            (element, count) for element, count in self.items() if pred(element)
        )

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Bag):
            return NotImplemented
        return self._counts == other._counts

    def __hash__(self) -> int:
        if self._hash is None:
            object.__setattr__(
                self, "_hash", hash(frozenset((hash(e), c) for e, c in self._counts.items()))
            )
        return self._hash

    def __repr__(self) -> str:
        parts = []
        for element, count in self._counts.items():
            suffix = f"^{count}" if count > 1 else ""
            parts.append(f"{element!r}{suffix}")
        return "{{" + ", ".join(parts) + "}}"

    @classmethod
    def _unpickle(cls, pairs: tuple) -> "Bag":
        # Same NaN re-canonicalization as ``Tup._unpickle`` for bags whose
        # elements are raw floats; counts of NaN elements that were distinct
        # objects on the sending side merge into the canonical one here.
        return cls.from_counts(
            (NAN if (type(e) is float and e != e) else e, c) for e, c in pairs
        )

    def __reduce__(self):
        # Same reason as ``Tup``: immutable slots need an explicit pickle
        # path.  Counts round-trip exactly (insertion order included).
        return (Bag._unpickle, (tuple(self._counts.items()),))


EMPTY_BAG = Bag()
