"""Human-readable rendering of nested relations (ASCII tables).

Used by the examples and the benchmark harness to print results the way the
paper's figures display them: top-level attributes as columns, nested bags
rendered inline.
"""

from __future__ import annotations

from typing import Any, Iterable

from repro.nested.values import Bag, Tup, is_null


def render_value(value: Any, max_width: int = 60) -> str:
    """Render a nested value compactly for table cells."""
    text = _render(value)
    if len(text) > max_width:
        text = text[: max_width - 1] + "…"
    return text


def _render(value: Any) -> str:
    if is_null(value):
        return "⊥"
    if isinstance(value, Tup):
        return "⟨" + ", ".join(f"{k}: {_render(v)}" for k, v in value.items()) + "⟩"
    if isinstance(value, Bag):
        parts = []
        for element, count in value.items():
            rendered = _render(element)
            parts.append(f"{rendered}^{count}" if count > 1 else rendered)
        return "{" + ", ".join(parts) + "}"
    return str(value)


def render_relation(relation: Bag, max_rows: int = 20) -> str:
    """Render a bag of tuples as an aligned ASCII table."""
    rows = list(relation)
    if not rows:
        return "(empty relation)"
    if not isinstance(rows[0], Tup):
        lines = [render_value(row) for row in rows[:max_rows]]
        if len(rows) > max_rows:
            lines.append(f"... ({len(rows) - max_rows} more)")
        return "\n".join(lines)
    headers = list(rows[0].attrs)
    table = [[render_value(row.get(h)) for h in headers] for row in rows[:max_rows]]
    widths = [
        max(len(headers[i]), *(len(r[i]) for r in table)) if table else len(headers[i])
        for i in range(len(headers))
    ]
    sep = "-+-".join("-" * w for w in widths)
    out = [" | ".join(h.ljust(w) for h, w in zip(headers, widths)), sep]
    for row in table:
        out.append(" | ".join(cell.ljust(w) for cell, w in zip(row, widths)))
    if len(rows) > max_rows:
        out.append(f"... ({len(rows) - max_rows} more rows)")
    return "\n".join(out)


def print_relation(relation: Bag, title: str = "", max_rows: int = 20) -> None:
    if title:
        print(f"== {title} ==")
    print(render_relation(relation, max_rows=max_rows))
