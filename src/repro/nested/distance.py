"""Distance functions between nested relations (the metric ``d`` of Def. 9).

Two metrics are provided:

* :func:`bag_distance` — a PTIME distance: the size of the symmetric bag
  difference of top-level tuples.  This is the default used by the heuristic
  algorithm's side-effect bounds (which, per §5.4, reason about top-level
  tuples added to / removed from the result).

* :func:`tree_edit_distance` — edit distance between the unordered trees of
  Figure 2.  Exact unordered TED is NP-hard (Zhang/Statman/Shasha), so the
  implementation recursively computes an *assignment-based* distance: children
  of matched nodes are aligned with an optimal bipartite assignment (Hungarian
  algorithm).  This is exact on trees where an optimal mapping never maps a
  node to a non-sibling (which covers the regular relation trees produced by
  queries) and an upper-bound approximation otherwise.
"""

from __future__ import annotations

from functools import lru_cache
from typing import Callable

from repro.nested.tree import Tree, relation_tree, to_tree
from repro.nested.values import Bag


def bag_distance(left: Bag, right: Bag) -> int:
    """Symmetric difference size on top-level tuples (PTIME metric)."""
    total = 0
    for element in set(left.distinct()) | set(right.distinct()):
        total += abs(left.mult(element) - right.mult(element))
    return total


def _assignment_cost(costs: list[list[float]]) -> float:
    """Minimum-cost perfect assignment on a square cost matrix.

    Uses scipy's Hungarian implementation when available, falling back to an
    exhaustive search for tiny matrices (so the core library has no hard
    scipy dependency).
    """
    n = len(costs)
    if n == 0:
        return 0.0
    try:
        import numpy as np
        from scipy.optimize import linear_sum_assignment

        matrix = np.asarray(costs, dtype=float)
        rows, cols = linear_sum_assignment(matrix)
        return float(matrix[rows, cols].sum())
    except ImportError:  # pragma: no cover - scipy is installed in CI
        best = [float("inf")]

        def search(row: int, used: int, acc: float) -> None:
            if acc >= best[0]:
                return
            if row == n:
                best[0] = acc
                return
            for col in range(n):
                if not used & (1 << col):
                    search(row + 1, used | (1 << col), acc + costs[row][col])

        search(0, 0, 0.0)
        return best[0]


def tree_edit_distance(left: Tree, right: Tree) -> float:
    """Assignment-based edit distance between two unordered trees.

    Edit operations: relabel a node (cost 1), delete a subtree node (cost 1
    per node), insert a subtree node (cost 1 per node).
    """

    @lru_cache(maxsize=None)
    def dist(a: Tree, b: Tree) -> float:
        relabel = 0.0 if a.label == b.label else 1.0
        n, m = len(a.children), len(b.children)
        size = max(n, m)
        if size == 0:
            return relabel
        # Pad the cost matrix with delete/insert costs for unmatched children.
        costs: list[list[float]] = []
        for i in range(size):
            row: list[float] = []
            for j in range(size):
                if i < n and j < m:
                    row.append(dist(a.children[i], b.children[j]))
                elif i < n:
                    row.append(float(a.children[i].size()))
                elif j < m:
                    row.append(float(b.children[j].size()))
                else:
                    row.append(0.0)
            costs.append(row)
        return relabel + _assignment_cost(costs)

    return dist(left, right)


def relation_tree_distance(left: Bag, right: Bag) -> float:
    """Tree edit distance between the Figure-2 trees of two relations."""
    return tree_edit_distance(relation_tree(left), relation_tree(right))


def value_tree_distance(left, right) -> float:
    """Tree edit distance between two arbitrary nested values."""
    return tree_edit_distance(to_tree(left), to_tree(right))


DistanceFn = Callable[[Bag, Bag], float]

DISTANCES: dict[str, DistanceFn] = {
    "bag": bag_distance,
    "tree": relation_tree_distance,
}


def get_distance(name: "str | DistanceFn") -> DistanceFn:
    """Look up a distance function by name (``"bag"`` or ``"tree"``)."""
    if callable(name):
        return name
    try:
        return DISTANCES[name]
    except KeyError:
        raise ValueError(f"unknown distance {name!r}; expected one of {sorted(DISTANCES)}")
