"""Tree representation of nested instances (paper Figure 2).

Nested relations are rendered as unordered, labelled trees: a bag becomes a
``{{}}`` node with one child per element occurrence, a tuple becomes a ``⟨⟩``
node with one child per attribute, and a primitive attribute ``A: v`` becomes
a leaf labelled ``"A: v"``.  These trees are the domain of the tree edit
distance used as the side-effect metric ``d`` (Def. 9).
"""

from __future__ import annotations

from typing import Any, Iterable

from repro.nested.values import Bag, Tup, is_null


class Tree:
    """An unordered labelled tree node."""

    __slots__ = ("label", "children", "_size")

    def __init__(self, label: str, children: Iterable["Tree"] = ()):
        self.label = label
        self.children = tuple(children)
        self._size: int | None = None

    def size(self) -> int:
        """Number of nodes in the subtree rooted here."""
        if self._size is None:
            self._size = 1 + sum(child.size() for child in self.children)
        return self._size

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Tree):
            return NotImplemented
        if self.label != other.label or len(self.children) != len(other.children):
            return False
        # Unordered comparison: match children as multisets.
        remaining = list(other.children)
        for child in self.children:
            for i, candidate in enumerate(remaining):
                if child == candidate:
                    del remaining[i]
                    break
            else:
                return False
        return True

    def __hash__(self) -> int:
        return hash((self.label, frozenset((hash(c), 1) for c in self.children)))

    def __repr__(self) -> str:
        if not self.children:
            return self.label
        inner = ", ".join(repr(child) for child in self.children)
        return f"{self.label}({inner})"


def to_tree(value: Any, label: str = "") -> Tree:
    """Convert a nested value into its Figure-2 style tree.

    *label* carries the attribute name when descending into tuple attributes,
    so a primitive attribute renders as ``"name: Sue"``.
    """
    prefix = f"{label}: " if label else ""
    if is_null(value):
        return Tree(f"{prefix}⊥")
    if isinstance(value, Tup):
        node_label = f"{label}⟨⟩" if label else "⟨⟩"
        return Tree(node_label, (to_tree(v, k) for k, v in value.items()))
    if isinstance(value, Bag):
        node_label = f"{label}{{{{}}}}" if label else "{{}}"
        children = []
        for element, count in value.items():
            for _ in range(count):
                children.append(to_tree(element))
        return Tree(node_label, children)
    return Tree(f"{prefix}{value!r}")


def relation_tree(relation: Bag) -> Tree:
    """The whole-result tree: a root ``{{}}`` with one child per tuple."""
    return to_tree(relation)
