"""Nested relational types (paper Definition 1) and type inference.

The grammar is::

    P ::= int | str | bool | float | date
    R ::= {{ T }}
    T ::= ⟨A1: A, ..., An: A⟩
    A ::= P | T | R

``AnyType`` is the bottom type used for NULL values and empty bags, which are
valid instances of every type (Def. 2).
"""

from __future__ import annotations

from typing import Any, Iterable

from repro.nested.values import Bag, Tup, is_null


class NestedType:
    """Base class for all nested relational types."""

    def __eq__(self, other: object) -> bool:  # pragma: no cover - overridden
        raise NotImplementedError

    def __hash__(self) -> int:  # pragma: no cover - overridden
        raise NotImplementedError

    def is_primitive(self) -> bool:
        return isinstance(self, PrimitiveType)

    def is_tuple(self) -> bool:
        return isinstance(self, TupleType)

    def is_bag(self) -> bool:
        return isinstance(self, BagType)


class AnyType(NestedType):
    """The unconstrained type of NULL and of elements of empty bags."""

    def __eq__(self, other: object) -> bool:
        return isinstance(other, AnyType)

    def __hash__(self) -> int:
        return hash("any-type")

    def __repr__(self) -> str:
        return "any"


ANY_TYPE = AnyType()

_PRIMITIVES = ("int", "str", "bool", "float", "date")


class PrimitiveType(NestedType):
    """A primitive type: one of int, str, bool, float, date."""

    __slots__ = ("name",)

    def __init__(self, name: str):
        if name not in _PRIMITIVES:
            raise ValueError(f"unknown primitive type {name!r}; expected one of {_PRIMITIVES}")
        self.name = name

    def __eq__(self, other: object) -> bool:
        return isinstance(other, PrimitiveType) and self.name == other.name

    def __hash__(self) -> int:
        return hash(("prim", self.name))

    def __repr__(self) -> str:
        return self.name


INT = PrimitiveType("int")
STR = PrimitiveType("str")
BOOL = PrimitiveType("bool")
FLOAT = PrimitiveType("float")
DATE = PrimitiveType("date")


class TupleType(NestedType):
    """A tuple type ``⟨A1: τ1, ..., An: τn⟩``."""

    __slots__ = ("fields",)

    def __init__(self, fields: Iterable[tuple[str, NestedType]]):
        self.fields = tuple(fields)
        names = [name for name, _ in self.fields]
        if len(set(names)) != len(names):
            raise ValueError(f"duplicate field names in tuple type: {names}")

    @property
    def names(self) -> tuple[str, ...]:
        return tuple(name for name, _ in self.fields)

    def field(self, name: str) -> NestedType:
        for field_name, field_type in self.fields:
            if field_name == name:
                return field_type
        raise KeyError(f"tuple type has no field {name!r}; fields={self.names}")

    def has_field(self, name: str) -> bool:
        return any(field_name == name for field_name, _ in self.fields)

    def concat(self, other: "TupleType") -> "TupleType":
        """Schema concatenation ``◦`` on tuple types."""
        return TupleType(self.fields + other.fields)

    def drop(self, names: Iterable[str]) -> "TupleType":
        dropped = set(names)
        return TupleType((n, t) for n, t in self.fields if n not in dropped)

    def project(self, names: Iterable[str]) -> "TupleType":
        return TupleType((n, self.field(n)) for n in names)

    def __eq__(self, other: object) -> bool:
        return isinstance(other, TupleType) and self.fields == other.fields

    def __hash__(self) -> int:
        return hash(("tuple", self.fields))

    def __repr__(self) -> str:
        inner = ", ".join(f"{n}: {t!r}" for n, t in self.fields)
        return f"⟨{inner}⟩"


class BagType(NestedType):
    """A bag (nested relation) type ``{{τ}}``."""

    __slots__ = ("element",)

    def __init__(self, element: NestedType):
        self.element = element

    def __eq__(self, other: object) -> bool:
        return isinstance(other, BagType) and self.element == other.element

    def __hash__(self) -> int:
        return hash(("bag", self.element))

    def __repr__(self) -> str:
        return f"{{{{{self.element!r}}}}}"


def type_of(value: Any) -> NestedType:
    """Infer the nested type of a value (``type(I)`` in the paper).

    NULL and empty bags get ``AnyType`` components; :func:`unify` merges such
    partial types when inferring the type of a heterogeneous-looking bag whose
    members only differ in nulls.
    """
    if is_null(value):
        return ANY_TYPE
    if isinstance(value, bool):
        return BOOL
    if isinstance(value, int):
        return INT
    if isinstance(value, float):
        return FLOAT
    if isinstance(value, str):
        return STR
    if isinstance(value, Tup):
        return TupleType((name, type_of(field)) for name, field in value.items())
    if isinstance(value, Bag):
        element: NestedType = ANY_TYPE
        for member in value.distinct():
            element = unify(element, type_of(member))
        return BagType(element)
    raise TypeError(f"value {value!r} is not a nested relational value")


def unify(left: NestedType, right: NestedType) -> NestedType:
    """Least upper bound of two types where AnyType is the bottom element.

    Raises ``TypeError`` on genuinely incompatible types (e.g. int vs a tuple
    type), which signals a malformed (non-homogeneous) bag.
    """
    if isinstance(left, AnyType):
        return right
    if isinstance(right, AnyType):
        return left
    if isinstance(left, PrimitiveType) and isinstance(right, PrimitiveType):
        if left == right:
            return left
        numeric = {"int", "float"}
        if {left.name, right.name} <= numeric:
            return FLOAT
        raise TypeError(f"cannot unify primitive types {left!r} and {right!r}")
    if isinstance(left, TupleType) and isinstance(right, TupleType):
        if left.names != right.names:
            raise TypeError(f"cannot unify tuple types with fields {left.names} vs {right.names}")
        return TupleType(
            (name, unify(ltype, right.field(name))) for name, ltype in left.fields
        )
    if isinstance(left, BagType) and isinstance(right, BagType):
        return BagType(unify(left.element, right.element))
    raise TypeError(f"cannot unify {left!r} with {right!r}")


def conforms(value: Any, expected: NestedType) -> bool:
    """Check that *value* is an instance of *expected* (Def. 2 rules)."""
    if isinstance(expected, AnyType) or is_null(value):
        return True
    if isinstance(expected, PrimitiveType):
        inferred = type_of(value) if not isinstance(value, (Tup, Bag)) else None
        if inferred is None:
            return False
        try:
            unify(inferred, expected)
            return True
        except TypeError:
            return False
    if isinstance(expected, TupleType):
        if not isinstance(value, Tup) or value.attrs != expected.names:
            return False
        return all(conforms(value[name], expected.field(name)) for name in expected.names)
    if isinstance(expected, BagType):
        if not isinstance(value, Bag):
            return False
        return all(conforms(member, expected.element) for member in value.distinct())
    return False


def same_kind(left: NestedType, right: NestedType) -> bool:
    """Loose compatibility used for attribute alternatives (Table 2).

    Two types are of the same kind if unification succeeds, i.e. one can stand
    in for the other in an operator parameter without a type error.
    """
    try:
        unify(left, right)
        return True
    except TypeError:
        return False
