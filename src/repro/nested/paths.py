"""Attribute paths: dotted navigation through nested tuples and bags.

Paths identify *source attributes* for schema backtracing and schema
alternatives (paper §5.1–5.2).  A path like ``address2.city`` names the
``city`` field of the tuples nested in the bag attribute ``address2``.
Navigation through a bag is only meaningful at the schema level (a value-level
``get_path`` must stop at bags; flattening is what crosses them at runtime).
"""

from __future__ import annotations

from typing import Iterable, Optional

from repro.nested.types import AnyType, BagType, NestedType, TupleType


Path = tuple[str, ...]


def parse_path(path: "str | Path") -> Path:
    """Normalize a dotted string or tuple into a ``Path`` tuple."""
    if isinstance(path, tuple):
        return path
    if isinstance(path, str):
        if not path:
            raise ValueError("empty path")
        return tuple(path.split("."))
    raise TypeError(f"cannot parse path from {path!r}")


def path_str(path: "str | Path") -> str:
    return ".".join(parse_path(path))


def head(path: "str | Path") -> str:
    return parse_path(path)[0]


def starts_with(path: "str | Path", prefix: "str | Path") -> bool:
    path = parse_path(path)
    prefix = parse_path(prefix)
    return path[: len(prefix)] == prefix


def replace_prefix(path: "str | Path", old: "str | Path", new: "str | Path") -> Path:
    """Rewrite *path* replacing prefix *old* with *new* (used when a structural
    operator such as flatten switches its source attribute)."""
    path = parse_path(path)
    old = parse_path(old)
    new = parse_path(new)
    if path[: len(old)] != old:
        return path
    return new + path[len(old):]


def resolve_type(schema: NestedType, path: "str | Path") -> NestedType:
    """Resolve the type reached by *path* inside tuple type *schema*.

    Navigation steps enter tuple fields directly and *transparently* cross one
    bag boundary per step when the field is a bag of tuples (the schema-level
    reading used by attribute alternatives, e.g. ``address2.year``).
    """
    current = schema
    for step in parse_path(path):
        if isinstance(current, BagType):
            current = current.element
        if isinstance(current, AnyType):
            return current
        if not isinstance(current, TupleType):
            raise KeyError(f"path step {step!r} cannot enter type {current!r}")
        if not current.has_field(step):
            raise KeyError(f"path step {step!r} not found in {current.names}")
        current = current.field(step)
    return current


def path_exists(schema: NestedType, path: "str | Path") -> bool:
    try:
        resolve_type(schema, path)
        return True
    except KeyError:
        return False


def common_prefix(paths: Iterable["str | Path"]) -> Optional[Path]:
    """Longest common prefix of a collection of paths (None when empty)."""
    parsed = [parse_path(p) for p in paths]
    if not parsed:
        return None
    prefix = parsed[0]
    for p in parsed[1:]:
        limit = 0
        for a, b in zip(prefix, p):
            if a != b:
                break
            limit += 1
        prefix = prefix[:limit]
    return prefix
