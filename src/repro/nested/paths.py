"""Attribute paths: dotted navigation through nested tuples and bags.

Paths identify *source attributes* for schema backtracing and schema
alternatives (paper §5.1–5.2).  A path like ``address2.city`` names the
``city`` field of the tuples nested in the bag attribute ``address2``.
Navigation through a bag is only meaningful at the schema level (a value-level
``get_path`` must stop at bags; flattening is what crosses them at runtime).

Compiled paths
--------------

:func:`compile_path` turns a path into a plain Python closure evaluated once
per row with no string splitting and no per-step ``isinstance`` dispatch for
the common single-step case.  Compiled getters are interned per path tuple, so
operators can fetch them freely in their hot loops; semantics are identical to
:meth:`repro.nested.values.Tup.get_path` (navigating *through* ⊥ yields ⊥,
missing attributes raise ``KeyError``, bags/primitives raise ``TypeError``).
"""

from __future__ import annotations

from typing import Any, Callable, Iterable, Optional

from repro.nested.types import AnyType, BagType, NestedType, TupleType
from repro.nested.values import NULL, Bag, Tup, is_null


Path = tuple[str, ...]

PathGetter = Callable[[Tup], Any]


def parse_path(path: "str | Path") -> Path:
    """Normalize a dotted string or tuple into a ``Path`` tuple."""
    if isinstance(path, tuple):
        return path
    if isinstance(path, str):
        if not path:
            raise ValueError("empty path")
        return tuple(path.split("."))
    raise TypeError(f"cannot parse path from {path!r}")


def path_str(path: "str | Path") -> str:
    return ".".join(parse_path(path))


_COMPILED_PATHS: dict[Path, PathGetter] = {}


def compile_path(path: "str | Path") -> PathGetter:
    """Compile a path into an interned row→value closure.

    The single-step form resolves through the tuple's shared layout index in
    one dict lookup; multi-step paths walk pre-parsed steps.  Equivalent to
    ``Tup.get_path`` for tuple-rooted navigation.
    """
    steps = parse_path(path)
    getter = _COMPILED_PATHS.get(steps)
    if getter is None:
        getter = _compile_steps(steps)
        _COMPILED_PATHS[steps] = getter
    return getter


def _compile_steps(steps: Path) -> PathGetter:
    if len(steps) == 1:
        name = steps[0]

        def get_one(t: Tup, _name: str = name) -> Any:
            try:
                return t._values[t._index[_name]]
            except KeyError:
                raise KeyError(
                    f"path step {_name!r} not in tuple attrs {t.attrs}"
                ) from None

        return get_one

    def get_chain(t: Tup, _steps: Path = steps) -> Any:
        current: Any = t
        for step in _steps:
            if is_null(current):
                return NULL
            if isinstance(current, Tup):
                i = current._index.get(step)
                if i is None:
                    raise KeyError(
                        f"path step {step!r} not in tuple attrs {current.attrs}"
                    )
                current = current._values[i]
            elif isinstance(current, Bag):
                raise TypeError(
                    f"cannot navigate path step {step!r} through a bag; flatten first"
                )
            else:
                raise TypeError(
                    f"cannot navigate path step {step!r} through primitive {current!r}"
                )
        return current

    return get_chain


def head(path: "str | Path") -> str:
    return parse_path(path)[0]


def starts_with(path: "str | Path", prefix: "str | Path") -> bool:
    path = parse_path(path)
    prefix = parse_path(prefix)
    return path[: len(prefix)] == prefix


def replace_prefix(path: "str | Path", old: "str | Path", new: "str | Path") -> Path:
    """Rewrite *path* replacing prefix *old* with *new* (used when a structural
    operator such as flatten switches its source attribute)."""
    path = parse_path(path)
    old = parse_path(old)
    new = parse_path(new)
    if path[: len(old)] != old:
        return path
    return new + path[len(old):]


def resolve_type(schema: NestedType, path: "str | Path") -> NestedType:
    """Resolve the type reached by *path* inside tuple type *schema*.

    Navigation steps enter tuple fields directly and *transparently* cross one
    bag boundary per step when the field is a bag of tuples (the schema-level
    reading used by attribute alternatives, e.g. ``address2.year``).
    """
    current = schema
    for step in parse_path(path):
        if isinstance(current, BagType):
            current = current.element
        if isinstance(current, AnyType):
            return current
        if not isinstance(current, TupleType):
            raise KeyError(f"path step {step!r} cannot enter type {current!r}")
        if not current.has_field(step):
            raise KeyError(f"path step {step!r} not found in {current.names}")
        current = current.field(step)
    return current


def path_exists(schema: NestedType, path: "str | Path") -> bool:
    try:
        resolve_type(schema, path)
        return True
    except KeyError:
        return False


def common_prefix(paths: Iterable["str | Path"]) -> Optional[Path]:
    """Longest common prefix of a collection of paths (None when empty)."""
    parsed = [parse_path(p) for p in paths]
    if not parsed:
        return None
    prefix = parsed[0]
    for p in parsed[1:]:
        limit = 0
        for a, b in zip(prefix, p):
            if a != b:
                break
            limit += 1
        prefix = prefix[:limit]
    return prefix
