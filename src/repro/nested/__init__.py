"""Nested relational data model: values, types, paths, trees, distances.

This subpackage implements the preliminaries of Section 3.1 of the paper:
nested relations are bags of tuples whose attributes are primitives, tuples,
or nested relations, with an explicit null value ``NULL`` (the paper's ⊥).
"""

from repro.nested.values import NULL, Bag, Tup, is_null
from repro.nested.types import (
    AnyType,
    BagType,
    NestedType,
    PrimitiveType,
    TupleType,
    conforms,
    type_of,
)
from repro.nested.paths import Path, parse_path

__all__ = [
    "NULL",
    "Bag",
    "Tup",
    "is_null",
    "AnyType",
    "BagType",
    "NestedType",
    "PrimitiveType",
    "TupleType",
    "conforms",
    "type_of",
    "Path",
    "parse_path",
]
