"""Crime scenarios C1–C3: the Why-Not / Conseil comparison (paper §6.4, Table 6)."""

from __future__ import annotations

from repro.algebra.expressions import col
from repro.algebra.operators import Join, Projection, Query, Selection, TableAccess
from repro.datasets.crime import CRIME_FACTS, crime_database
from repro.nested.values import Tup
from repro.scenarios.base import Scenario, register
from repro.whynot.placeholders import ANY


def _c1_query() -> Query:
    """Who was sighted at a crime scene? (blue-hair filter misapplied)."""
    persons = Selection(TableAccess("P"), col("hair").eq("blue"), label="σ1")
    sighted = Join(
        TableAccess("S"),
        persons,
        [("hair", "hair"), ("clothes", "clothes")],
        drop_right_keys=True,
        label="ZS",
    )
    witnessed = Join(sighted, TableAccess("W"), [("witness", "w_name")], label="Z2")
    at_crime = Join(witnessed, TableAccess("C"), [("sector", "c_sector")], label="ZC")
    return Query(Projection(at_crime, ["name", "type"], label="π"), name="C1")


register(
    Scenario(
        name="C1",
        description="Crime C1: person filtered by hair colour, witness unregistered",
        make_db=lambda scale: crime_database(scale),
        make_query=_c1_query,
        make_nip=lambda: Tup(name=CRIME_FACTS["c1_person"], type=ANY),
        alternatives=[],
        gold=frozenset({"σ1", "Z2"}),
        default_scale=30,
        notes=(
            "Roger's hair is brown (σ1 filters blue) and his sighting's "
            "witness is not registered — both must change."
        ),
    )
)


def _c2_query() -> Query:
    """Which persons match sightings by a specific witness? (name mis-set)."""
    witnesses = Selection(TableAccess("W"), col("w_sector").gt(90), label="σ3")
    witnesses = Selection(witnesses, col("w_name").eq("Susan"), label="σ4")
    crimes = Join(TableAccess("C"), witnesses, [("c_sector", "w_sector")], label="ZC")
    sighted = Join(TableAccess("S"), crimes, [("witness", "w_name")], label="Z5")
    persons = Join(
        TableAccess("P"),
        sighted,
        [("hair", "hair"), ("clothes", "clothes")],
        drop_right_keys=True,
        label="ZP",
    )
    return Query(Projection(persons, ["name"], label="π"), name="C2")


register(
    Scenario(
        name="C2",
        description="Crime C2: witness name filter blocks the derivation",
        make_db=lambda scale: crime_database(scale),
        make_query=_c2_query,
        make_nip=lambda: Tup(name=CRIME_FACTS["c2_person"]),
        alternatives=[],
        gold=frozenset({"σ4"}),
        default_scale=30,
        notes=(
            "Conedera's sightings were reported by Amit (fails σ4) and Bo "
            "(fails σ3); relaxing σ4 alone suffices."
        ),
    )
)


def _c3_query() -> Query:
    """Witness reports with the sighted person's description (wrong column)."""
    witnessed = Join(
        TableAccess("W"), TableAccess("C"), [("w_sector", "c_sector")], label="ZC"
    )
    sighted = Join(TableAccess("S"), witnessed, [("witness", "w_name")], label="Z5")
    return Query(
        Projection(
            sighted, [("name", col("witness")), ("desc", col("hair"))], label="π6"
        ),
        name="C3",
    )


register(
    Scenario(
        name="C3",
        description="Crime C3: the description is in `clothes`, not `hair`",
        make_db=lambda scale: crime_database(scale),
        make_query=_c3_query,
        make_nip=lambda: Tup(name=CRIME_FACTS["c3_witness"], desc="snow"),
        alternatives=[("S.hair", ["S.clothes"])],
        gold=frozenset({"π6"}),
        default_scale=30,
        notes=(
            "Why-Not and Conseil blame the join Z5; only the reparameterized "
            "projection π6 (hair → clothes) yields the expected description."
        ),
    )
)
