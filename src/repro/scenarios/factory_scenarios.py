"""Factory-generated scenarios (GenTPCH, GenSocial).

Registers one scenario per :mod:`repro.factory` generator family.  For these
scenarios the *scale* argument is the generator's **scale factor** (default
1), so ``run_scenario("GenTPCH", scale=10)`` evaluates the planted why-not
story over an SF-10 corpus; the paper-default ``scale=60`` of the hand-built
scenarios does not apply.  Both are flagged ``generated=True`` and excluded
from the Table 7 reproduction.
"""

from __future__ import annotations

from repro.factory.social import (
    SOCIAL_ALTERNATIVES,
    SOCIAL_GOLD,
    generate_social,
    social_nip,
    social_query,
)
from repro.factory.tpch_sf import (
    TPCH_ALTERNATIVES,
    TPCH_GOLD,
    generate_tpch,
    tpch_nip,
    tpch_query,
)
from repro.scenarios.base import Scenario, register

register(
    Scenario(
        name="GenTPCH",
        description=(
            "Generated relational family: Q3-shaped revenue query over "
            "SF-scaled nested TPC-H with a typo'd date bound and wrong "
            "market segment (scale = scale factor)"
        ),
        make_db=generate_tpch,
        make_query=tpch_query,
        make_nip=tpch_nip,
        alternatives=TPCH_ALTERNATIVES,
        gold=TPCH_GOLD,
        default_scale=1,
        notes="repro.factory.tpch_sf; planted order 9300001 of a BUILDING customer",
        generated=True,
    )
)

register(
    Scenario(
        name="GenSocial",
        description=(
            "Generated nested social-graph family: T2-shaped concert query "
            "flattening place.country while the fan's country lives in "
            "user.location (scale = scale factor)"
        ),
        make_db=generate_social,
        make_query=social_query,
        make_nip=social_nip,
        alternatives=SOCIAL_ALTERNATIVES,
        gold=SOCIAL_GOLD,
        default_scale=1,
        notes="repro.factory.social; planted fan 'gen_fan', tweets 9901/9902",
        generated=True,
    )
)
