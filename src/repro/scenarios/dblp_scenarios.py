"""DBLP scenarios D1–D5 (paper Tables 4, 8, 10).

Each scenario builds the query of Table 10 (operator labels match the
paper's superscripts), the why-not question of Table 4, and the attribute
alternative of Table 4's last column.
"""

from __future__ import annotations

from repro.algebra.expressions import Not, col
from repro.algebra.operators import (
    InnerFlatten,
    Join,
    NestedAggregation,
    Projection,
    Query,
    RelationNesting,
    Selection,
    TableAccess,
    TupleFlatten,
    TupleNesting,
)
from repro.datasets.dblp import DBLP_FACTS, dblp_database
from repro.nested.values import Tup
from repro.scenarios.base import Scenario, register
from repro.whynot.placeholders import ANY, HasValue, ge


def _d1_query() -> Query:
    """All authors and titles of papers published in SIGMOD proceedings."""
    i_side = InnerFlatten(TableAccess("I"), "crossref", alias="crf")
    i_side = InnerFlatten(i_side, "author", alias="iauthor")
    i_side = TupleFlatten(i_side, "title._VALUE", alias="ititle")
    i_side = TupleFlatten(i_side, "iauthor._VALUE", alias="author")
    i_side = Projection(i_side, ["crf", "author", "ititle"])
    p_side = Projection(
        TableAccess("P"), ["_key", ("ptitle", col("title"))], label="π1"
    )
    joined = Join(i_side, p_side, [("crf", "_key")], label="⋈")
    projected = Projection(joined, ["author", "ititle", "ptitle"])
    return Query(
        Selection(projected, col("ptitle").eq("SIGMOD"), label="σ2"), name="D1"
    )


register(
    Scenario(
        name="D1",
        description="All authors and titles of papers published at SIGMOD",
        make_db=lambda scale: dblp_database(scale),
        make_query=_d1_query,
        make_nip=lambda: Tup(
            author=ANY, ititle=DBLP_FACTS["d1_paper_title"], ptitle=ANY
        ),
        alternatives=[["P.title", "P.booktitle"]],
        notes=(
            "σ2 compares against P.title, which holds the written-out "
            "proceedings name; P.booktitle holds the string 'SIGMOD'."
        ),
    )
)


def _d2_query() -> Query:
    """Number of articles for authors who do not have 'Dey' in their name."""
    plan = InnerFlatten(TableAccess("A"), "author", alias="aauthor")
    plan = TupleFlatten(plan, "title._bibtex", alias="title", label="F3")
    plan = TupleFlatten(plan, "aauthor._VALUE", alias="author")
    plan = Projection(plan, ["author", "title"])
    plan = Selection(plan, Not(col("author").contains("Dey")), label="σ")
    plan = RelationNesting(plan, ["title"], "ctitle", label="N")
    plan = NestedAggregation(plan, "count", "ctitle", "cnt", field="title", label="γ")
    return Query(plan, name="D2")


register(
    Scenario(
        name="D2",
        description="Number of articles for authors without 'Dey' in their name",
        make_db=lambda scale: dblp_database(scale),
        make_query=_d2_query,
        make_nip=lambda: Tup(author=DBLP_FACTS["d2_author"], ctitle=ANY, cnt=ge(5)),
        alternatives=[["A.title._bibtex", "A.title._VALUE"]],
        gold=frozenset({"F3"}),
        notes=(
            "title._bibtex is ⊥ for >99% of records, so the nested title "
            "count is 0; only flattening title._VALUE (the SA) explains "
            "the missing count."
        ),
    )
)


def _d3_query() -> Query:
    """All author-paper pairs per booktitle and year."""
    plan = TupleNesting(TableAccess("I"), ["author", "title"], "authorPaper", label="N4")
    plan = Projection(plan, ["booktitle", "year", "authorPaper"])
    plan = RelationNesting(plan, ["authorPaper"], "aplist", label="N")
    return Query(plan, name="D3")


register(
    Scenario(
        name="D3",
        description="Author-paper pairs per booktitle and year",
        make_db=lambda scale: dblp_database(scale),
        make_query=_d3_query,
        make_nip=lambda: Tup(
            booktitle=DBLP_FACTS["d3_booktitle"],
            year=DBLP_FACTS["d3_year"],
            aplist=HasValue(DBLP_FACTS["d3_editor"]),
        ),
        alternatives=[["I.author", "I.editor"]],
        gold=frozenset({"N4"}),
        notes="The expected person appears as editor, not author.",
    )
)


def _d4_query() -> Query:
    """Collection of papers per author published through ACM after 2010."""
    p_side = TupleFlatten(TableAccess("P"), "publisher._VALUE", alias="ppublisher", label="F5")
    p_side = Projection(p_side, ["_key", "year", "ppublisher"])
    i_side = InnerFlatten(TableAccess("I"), "crossref", alias="crf")
    i_side = InnerFlatten(i_side, "author", alias="iauthor")
    i_side = Projection(
        i_side,
        [("crf", col("crf")), ("author", col("iauthor._VALUE")), ("title", col("title._VALUE"))],
    )
    joined = Join(p_side, i_side, [("_key", "crf")], label="⋈")
    plan = Selection(joined, col("ppublisher").eq("ACM"), label="σ6")
    plan = Selection(plan, col("year").eq(2015), label="σ7")
    plan = Projection(plan, ["author", "title"])
    plan = RelationNesting(plan, ["title"], "tlist", label="N")
    plan = NestedAggregation(plan, "count", "tlist", "cnt", field="title", label="γ")
    return Query(plan, name="D4")


register(
    Scenario(
        name="D4",
        description="Papers per author published through ACM (year filter mis-set)",
        make_db=lambda scale: dblp_database(scale),
        make_query=_d4_query,
        make_nip=lambda: Tup(author=DBLP_FACTS["d4_author"], tlist=ANY, cnt=ANY),
        alternatives=[["P.publisher._VALUE", "P.series._VALUE"]],
        gold=frozenset({"F5", "σ7"}),
        notes=(
            "The author's ACM publication is recorded in `series` (2010); σ7 "
            "filters year = 2015 instead of 2010."
        ),
    )
)


def _d5_query() -> Query:
    """A list of (homepage) urls for each author."""
    plan = Projection(TableAccess("U"), ["author", "url"], label="π8")
    plan = InnerFlatten(plan, "author", alias="auth")
    plan = InnerFlatten(plan, "url", alias="u1", label="F9")
    plan = TupleFlatten(plan, "auth._VALUE", alias="name")
    plan = TupleFlatten(plan, "u1._VALUE", alias="homepage")
    plan = Projection(plan, ["name", "homepage"])
    plan = RelationNesting(plan, ["homepage"], "lurl", label="N")
    return Query(plan, name="D5")


register(
    Scenario(
        name="D5",
        description="List of homepage urls per author",
        make_db=lambda scale: dblp_database(scale),
        make_query=_d5_query,
        make_nip=lambda: Tup(name=DBLP_FACTS["d5_author"], lurl=ANY),
        alternatives=[["U.url", "U.note"]],
        gold=frozenset({"π8"}),
        notes=(
            "The homepage is stored in `note`; the author's `url` bag is "
            "empty, so the inner flatten F9 also drops the author entirely."
        ),
    )
)
