"""Twitter scenarios T1–T4 and T_ASD (paper Tables 5, 8, 10)."""

from __future__ import annotations

from repro.algebra.expressions import col
from repro.algebra.operators import (
    InnerFlatten,
    Join,
    NestedAggregation,
    Projection,
    Query,
    RelationNesting,
    Selection,
    TableAccess,
    TupleFlatten,
)
from repro.datasets.twitter import TWITTER_FACTS, twitter_database
from repro.nested.values import Tup
from repro.scenarios.base import Scenario, register
from repro.whynot.placeholders import ANY


def _t1_query() -> Query:
    """Tweets providing media urls about a basketball player."""
    plan = TupleFlatten(TableAccess("T"), "entities.media", alias="media", label="F10")
    plan = Projection(plan, ["text", "id", "media"])
    plan = InnerFlatten(plan, "media", alias="medias", label="F11")
    plan = Selection(plan, col("text").contains("Michael Jordan"), label="σ12")
    return Query(plan, name="T1")


register(
    Scenario(
        name="T1",
        description="Tweets with media urls about a basketball player",
        make_db=lambda scale: twitter_database(scale),
        make_query=_t1_query,
        make_nip=lambda: Tup(
            text=ANY, id=TWITTER_FACTS["t1_tweet_id"], media=ANY, medias=ANY
        ),
        alternatives=[("T.entities.media", ["T.entities.urls"])],
        gold=frozenset({"F10", "σ12"}),
        notes=(
            "The tweet is about LeBron James (σ12 filters Michael Jordan) and "
            "its link sits in entities.urls while entities.media is empty."
        ),
    )
)


def _t2_query() -> Query:
    """All users who tweeted about BTS in the US."""
    plan = TupleFlatten(TableAccess("T"), "place.country", alias="country", label="F13")
    plan = TupleFlatten(plan, "user.location", alias="uLoc")
    plan = TupleFlatten(plan, "user.name", alias="uName")
    plan = TupleFlatten(plan, "user.followers_count", alias="fCnt")
    plan = Projection(plan, ["text", "country", "uLoc", "uName", "fCnt"])
    plan = Selection(plan, col("text").contains("BTS"), label="σ14")
    plan = Selection(plan, col("country").contains("United States"), label="σ15")
    return Query(plan, name="T2")


register(
    Scenario(
        name="T2",
        description="Users who tweeted about BTS in the US",
        make_db=lambda scale: twitter_database(scale),
        make_query=_t2_query,
        make_nip=lambda: Tup(
            text=ANY, country=ANY, uLoc=ANY, uName=TWITTER_FACTS["t2_fan"], fCnt=ANY
        ),
        alternatives=[("T.place.country", ["T.user.location"])],
        gold=frozenset({"F13"}),
        notes=(
            "The fan's tweets carry the country in user.location only; "
            "place.country is ⊥."
        ),
    )
)


def _t3_query() -> Query:
    """Hashtags and media for users mentioned in other tweets."""
    users = TupleFlatten(TableAccess("T"), "user.name", alias="uName")
    users = TupleFlatten(users, "user.followers_count", alias="fCnt")
    users = Projection(users, [("uid", col("id")), "uName", "fCnt"])
    users = Selection(users, col("fCnt").ge(0), label="σ")
    mentions = TupleFlatten(TableAccess("T"), "entities.media", alias="media", label="F16")
    mentions = InnerFlatten(mentions, "entities.mentioned_user", alias="men")
    mentions = TupleFlatten(mentions, "men.muser.id", alias="mid")
    mentions = Projection(mentions, ["mid", "media"])
    mentions = InnerFlatten(mentions, "media", alias="medias", label="F17")
    joined = Join(users, mentions, [("uid", "mid")], label="⋈")
    return Query(Projection(joined, ["uName", "medias"]), name="T3")


register(
    Scenario(
        name="T3",
        description="Media for users mentioned in other tweets",
        make_db=lambda scale: twitter_database(scale),
        make_query=_t3_query,
        make_nip=lambda: Tup(uName=TWITTER_FACTS["t3_user"], medias=ANY),
        alternatives=[("T.entities.media", ["T.entities.urls"])],
        gold=frozenset({"F16"}),
        notes=(
            "The mentioning tweet's entities.media is empty; the clips are in "
            "entities.urls."
        ),
    )
)


def _t4_query() -> Query:
    """Nested list of countries per hashtag for tweets about UEFA."""
    plan = TupleFlatten(TableAccess("T"), "place.country", alias="country", label="F18")
    plan = InnerFlatten(plan, "entities.hashtags", alias="fht")
    plan = TupleFlatten(plan, "fht.text", alias="htText")
    plan = Selection(plan, col("text").contains("UEFA"), label="σ19")
    plan = Projection(plan, ["country", "htText"])
    plan = RelationNesting(plan, ["country"], "lcountry", label="N")
    plan = NestedAggregation(plan, "count", "lcountry", "cnt", field="country", label="γ")
    plan = Selection(plan, col("cnt").gt(0), label="σ20")
    return Query(plan, name="T4")


register(
    Scenario(
        name="T4",
        description="Countries per hashtag for UEFA tweets",
        make_db=lambda scale: twitter_database(scale),
        make_query=_t4_query,
        make_nip=lambda: Tup(htText=TWITTER_FACTS["t4_hashtag"], lcountry=ANY, cnt=ANY),
        alternatives=[("T.place.country", ["T.user.location"])],
        gold=frozenset({"F18"}),
        notes=(
            "#MUFC tweets have ⊥ place.country (location in user.location), "
            "so the per-hashtag country count is 0 and σ20 removes the group."
        ),
    )
)


def _tasd_query() -> Query:
    """ASD example: extract a flat relation of retweeted tweets."""
    plan = TupleFlatten(TableAccess("T"), "quoted_status", alias="qt", label="F21")
    plan = Selection(plan, col("quote_count").gt(0), label="σ22")
    plan = Projection(plan, [("rid", col("qt.id")), ("rtext", col("qt.text"))])
    return Query(plan, name="T_ASD")


register(
    Scenario(
        name="T_ASD",
        description="ASD example: flatten, filter, project quoted tweets",
        make_db=lambda scale: twitter_database(scale),
        make_query=_tasd_query,
        make_nip=lambda: Tup(rid=TWITTER_FACTS["asd_famous_id"], rtext=ANY),
        alternatives=[("T.quoted_status", ["T.retweeted_status"])],
        gold=frozenset({"F21", "σ22"}),
        notes=(
            "The famous tweet was retweeted, not quoted: the flatten must "
            "target retweeted_status and the filter retweet_count."
        ),
    )
)
