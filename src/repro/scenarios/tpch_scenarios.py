"""TPC-H scenarios Q1–Q13 on nested data plus flat variants (Table 9).

The nested scenarios run over ``nestedOrders`` (lineitems nested in orders);
the flat variants (suffix F) run the same logical queries over ``orders`` /
``lineitem`` with joins instead of flattens.  Q13N reruns Q13 on the deeply
nested ``customerNested`` shape.

Attribute-alternative groups follow the paper: (i) ``{l_discount, l_tax}``,
(ii) ``{l_shipdate, l_commitdate, l_receiptdate}``, and (iii)
``{o_orderpriority, o_shippriority}`` — mutual sets, so two references in the
same group swap together (Q6's π31/σ33 linkage).
"""

from __future__ import annotations

from repro.algebra.aggregates import AggSpec
from repro.algebra.expressions import Not, col, lit
from repro.algebra.operators import (
    GroupAggregation,
    InnerFlatten,
    Join,
    Projection,
    Query,
    Selection,
    TableAccess,
)
from repro.datasets.tpch import TPCH_FACTS, tpch_database
from repro.nested.values import Tup
from repro.scenarios.base import Scenario, register
from repro.whynot.placeholders import ANY, gt, lt


def _groups(table_lineitem: str, prefix: str, table_orders: str):
    """The paper's three alternative groups, for a given physical layout."""
    return {
        "disc_tax": [
            f"{table_lineitem}.{prefix}l_discount",
            f"{table_lineitem}.{prefix}l_tax",
        ],
        "dates": [
            f"{table_lineitem}.{prefix}l_shipdate",
            f"{table_lineitem}.{prefix}l_commitdate",
            f"{table_lineitem}.{prefix}l_receiptdate",
        ],
        "priorities": [
            f"{table_orders}.o_orderpriority",
            f"{table_orders}.o_shippriority",
        ],
    }


NESTED = _groups("nestedOrders", "o_lineitems.", "nestedOrders")
FLAT = _groups("lineitem", "", "orders")


def _lineitems_nested():
    return InnerFlatten(TableAccess("nestedOrders"), "o_lineitems", label="F")


def _lineitems_flat():
    return TableAccess("lineitem")


# ---------------------------------------------------------------------------
# Q1 — pricing summary (modified aggregation)
# ---------------------------------------------------------------------------


def _q1_query(lineitems) -> Query:
    plan = Selection(lineitems, col("l_shipdate").le("1998-09-02"), label="σ24")
    plan = GroupAggregation(
        plan, [], [AggSpec("avg", col("l_tax"), "avgDisc")], label="γ23"
    )
    return Query(plan, name="Q1")


for _suffix, _make_items, _g in (
    ("", _lineitems_nested, NESTED),
    ("F", _lineitems_flat, FLAT),
):
    register(
        Scenario(
            name=f"Q1{_suffix}",
            description="TPC-H Q1 with one modified aggregation",
            make_db=lambda scale: tpch_database(scale),
            make_query=(lambda make=_make_items: _q1_query(make())),
            make_nip=lambda: Tup(avgDisc=lt(TPCH_FACTS["q1_avg_disc_bound"])),
            alternatives=[_g["disc_tax"], _g["dates"]],
            gold=frozenset({"γ23"}),
            notes=(
                "The aggregation averages l_tax instead of l_discount; the "
                "expected average discount is below 0.05 while taxes of "
                "on-time shipments average ~0.075."
            ),
        )
    )


# ---------------------------------------------------------------------------
# Q3 — unshipped orders (two modified selections)
# ---------------------------------------------------------------------------


def _q3_query(nested: bool) -> Query:
    if nested:
        joined = Join(
            TableAccess("customer"),
            _lineitems_nested(),
            [("c_custkey", "o_custkey")],
            label="⋈",
        )
    else:
        flat = Join(
            TableAccess("orders"),
            TableAccess("lineitem"),
            [("o_orderkey", "l_orderkey")],
            label="⋈l",
        )
        joined = Join(
            flat, TableAccess("customer"), [("o_custkey", "c_custkey")], label="⋈"
        )
    plan = Selection(joined, col("l_commitdate").gt("1995-03-25"), label="σ27")
    plan = Selection(plan, col("o_orderdate").lt("1995-03-15"), label="σod")
    plan = Selection(plan, col("c_mktsegment").eq("HOUSEHOLD"), label="σ26")
    revenue = col("l_extendedprice") * (lit(1) - col("l_discount"))
    plan = GroupAggregation(
        plan,
        ["o_orderkey", "o_orderdate", "o_shippriority"],
        [AggSpec("sum", revenue, "revenue")],
        label="γ25",
    )
    return Query(plan, name="Q3")


for _suffix, _nested, _g in (("", True, NESTED), ("F", False, FLAT)):
    register(
        Scenario(
            name=f"Q3{_suffix}",
            description="TPC-H Q3 with two modified selections",
            make_db=lambda scale: tpch_database(scale),
            make_query=(lambda n=_nested: _q3_query(n)),
            make_nip=lambda: Tup(
                o_orderkey=TPCH_FACTS["q3_orderkey"],
                o_orderdate=ANY,
                o_shippriority=ANY,
                revenue=ANY,
            ),
            alternatives=[_g["disc_tax"], _g["dates"]],
            gold=frozenset({"σ26", "σ27"}),
            notes=(
                "σ26 filters HOUSEHOLD instead of BUILDING; σ27 carries a "
                "typo'd commitdate constant (03-25 for 03-15)."
            ),
        )
    )


# ---------------------------------------------------------------------------
# Q4 — order priority checking (modified selection + aggregation)
# ---------------------------------------------------------------------------


def _q4_query(nested: bool) -> Query:
    items = _lineitems_nested() if nested else _lineitems_flat()
    dist = Selection(items, col("l_shipdate").lt(col("l_receiptdate")), label="σ28")
    dist = GroupAggregation(
        dist, ["l_orderkey"], [AggSpec("count", None, "cnt")], label="γd"
    )
    filtered = Selection(
        TableAccess("nestedOrders" if nested else "orders"),
        col("o_orderdate").between("1993-07-01", "1993-09-30"),
        label="σ29",
    )
    joined = Join(filtered, dist, [("o_orderkey", "l_orderkey")], label="⋈")
    plan = GroupAggregation(
        joined,
        ["o_shippriority"],
        [AggSpec("count", col("o_orderkey"), "order_count")],
        label="γ30",
    )
    return Query(plan, name="Q4")


for _suffix, _nested, _g in (("", True, NESTED), ("F", False, FLAT)):
    register(
        Scenario(
            name=f"Q4{_suffix}",
            description="TPC-H Q4 with a modified selection and aggregation",
            make_db=lambda scale: tpch_database(scale),
            make_query=(lambda n=_nested: _q4_query(n)),
            make_nip=lambda: Tup(o_shippriority="3-MEDIUM", order_count=lt(11000)),
            alternatives=[_g["dates"], _g["priorities"]],
            gold=frozenset({"γ30", "σ28"}),
            notes=(
                "γ30 groups on o_shippriority (always '0') instead of "
                "o_orderpriority; σ28 compares l_shipdate instead of "
                "l_commitdate with the receipt date."
            ),
        )
    )


# ---------------------------------------------------------------------------
# Q6 — forecasting revenue change (one modified selection)
# ---------------------------------------------------------------------------


def _q6_query(nested: bool) -> Query:
    items = _lineitems_nested() if nested else _lineitems_flat()
    plan = Selection(items, col("l_quantity").lt(24), label="σ34")
    plan = Selection(plan, col("l_tax").between(0.05, 0.07), label="σ33")
    plan = Selection(
        plan, col("l_shipdate").between("1994-01-01", "1994-12-31"), label="σ32"
    )
    plan = Projection(
        plan,
        [("disc_price", col("l_extendedprice") * col("l_discount"))],
        label="π31",
    )
    plan = GroupAggregation(
        plan, [], [AggSpec("sum", col("disc_price"), "revenue")], label="γ"
    )
    return Query(plan, name="Q6")


for _suffix, _nested, _g in (("", True, NESTED), ("F", False, FLAT)):
    register(
        Scenario(
            name=f"Q6{_suffix}",
            description="TPC-H Q6 with one modified selection",
            make_db=lambda scale: tpch_database(scale),
            make_query=(lambda n=_nested: _q6_query(n)),
            make_nip=lambda: Tup(revenue=lt(1.0)),
            alternatives=[_g["disc_tax"], _g["dates"]],
            gold=frozenset({"σ33"}),
            notes=(
                "σ33 filters l_tax instead of l_discount; the swap SA links "
                "π31's discount reference and σ33's tax reference."
            ),
        )
    )


# ---------------------------------------------------------------------------
# Q10 — returned item reporting (two selections + projection modified)
# ---------------------------------------------------------------------------

_Q10_KEYS = [
    "c_custkey",
    "c_name",
    "c_acctbal",
    "c_phone",
    "n_name",
    "c_address",
    "c_comment",
]


def _q10_query(nested: bool) -> Query:
    if nested:
        items = _lineitems_nested()
    else:
        items = Join(
            TableAccess("orders"),
            TableAccess("lineitem"),
            [("o_orderkey", "l_orderkey")],
            label="⋈l",
        )
    flat_ord = Selection(
        items, col("o_orderdate").between("1997-10-01", "1997-12-31"), label="σ36"
    )
    flat_ord = Selection(flat_ord, col("l_returnflag").eq("A"), label="σ35")
    joined = Join(
        TableAccess("customer"), flat_ord, [("c_custkey", "o_custkey")], label="Z38"
    )
    joined = Join(
        joined, TableAccess("nation"), [("c_nationkey", "n_nationkey")], label="⋈n"
    )
    plan = Projection(
        joined,
        _Q10_KEYS + [("disc_price", col("l_extendedprice") * (lit(1) - col("l_tax")))],
        label="π37",
    )
    plan = GroupAggregation(
        plan, _Q10_KEYS, [AggSpec("sum", col("disc_price"), "revenue")], label="γ"
    )
    return Query(plan, name="Q10")


def _q10_nip() -> Tup:
    fields = {key: ANY for key in _Q10_KEYS}
    fields["c_custkey"] = TPCH_FACTS["q10_custkey"]
    fields["revenue"] = gt(0)
    return Tup(fields)


for _suffix, _nested, _g in (("", True, NESTED), ("F", False, FLAT)):
    register(
        Scenario(
            name=f"Q10{_suffix}",
            description="TPC-H Q10 with two selections and a projection modified",
            make_db=lambda scale: tpch_database(scale),
            make_query=(lambda n=_nested: _q10_query(n)),
            make_nip=_q10_nip,
            alternatives=[_g["disc_tax"], _g["dates"]],
            gold=frozenset({"σ35", "σ36", "π37"}),
            notes=(
                "σ35 filters returnflag 'A' instead of 'R', σ36 the wrong "
                "orderdate window, π37 computes the revenue from l_tax."
            ),
        )
    )


# ---------------------------------------------------------------------------
# Q13 — customer distribution (modified join / flatten)
# ---------------------------------------------------------------------------


def _q13_comment_filter(plan) -> Selection:
    pred = Not(col("o_comment").contains("special")) & Not(
        col("o_comment").contains("requests")
    )
    return Selection(plan, pred, label="σc")


def _q13_aggregations(plan) -> Query:
    plan = GroupAggregation(
        plan, ["c_custkey"], [AggSpec("count", col("o_orderkey"), "c_count")], label="γ1"
    )
    plan = GroupAggregation(
        plan, ["c_count"], [AggSpec("count", col("c_custkey"), "custdist")], label="γ2"
    )
    return Query(plan, name="Q13")


def _q13_query(nested: bool) -> Query:
    right = TableAccess("nestedOrders" if nested else "orders")
    joined = Join(
        TableAccess("customer"), right, [("c_custkey", "o_custkey")], label="Z39"
    )
    return _q13_aggregations(_q13_comment_filter(joined))


def _q13n_query() -> Query:
    plan = InnerFlatten(TableAccess("customerNested"), "c_orders", label="F39")
    return _q13_aggregations(_q13_comment_filter(plan))


for _suffix, _nested in (("", True), ("F", False)):
    register(
        Scenario(
            name=f"Q13{_suffix}",
            description="TPC-H Q13 with a modified join",
            make_db=lambda scale: tpch_database(scale),
            make_query=(lambda n=_nested: _q13_query(n)),
            make_nip=lambda: Tup(c_count=0, custdist=ANY),
            alternatives=[],
            gold=frozenset({"Z39"}),
            notes="The join should be a left outer join (customers without orders).",
        )
    )

register(
    Scenario(
        name="Q13N",
        description="TPC-H Q13 on orders nested into customers (inner flatten)",
        make_db=lambda scale: tpch_database(scale),
        make_query=_q13n_query,
        make_nip=lambda: Tup(c_count=0, custdist=ANY),
        alternatives=[],
        gold=frozenset({"F39"}),
        notes="The inner flatten plays the join's role on the deeper nesting.",
    )
)
