"""Scenario framework: declarative descriptions of the evaluation queries.

A :class:`Scenario` bundles a dataset builder, the (deliberately erroneous)
query, the why-not question, the attribute-alternative groups, and — where
the paper defines one — the gold-standard explanation.  ``run_scenario``
executes the three competing approaches (WN++, RPnoSA, RP) and reports their
explanations as label sets, the format of the paper's Table 8.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Any, Callable, Optional, Sequence

from repro.algebra.operators import Query
from repro.baselines import conseil_explain, wnpp_explain
from repro.baselines.common import build_s1_trace
from repro.engine.database import Database
from repro.whynot.explain import WhyNotResult, explain
from repro.whynot.question import WhyNotQuestion


@dataclass
class Scenario:
    """One evaluation scenario (query + question + alternatives + gold)."""

    name: str
    description: str
    make_db: Callable[[int], Database]
    make_query: Callable[[], Query]
    make_nip: Callable[[], Any]
    alternatives: Sequence[Sequence[str]] = ()
    gold: Optional[frozenset[str]] = None
    default_scale: int = 60
    notes: str = ""
    #: True for factory-generated scenarios (:mod:`repro.factory`), whose
    #: *scale* means the generator's scale factor; excluded from the paper's
    #: Table 7 reproduction, which covers the hand-built corpus only.
    generated: bool = False

    def question(self, scale: Optional[int] = None) -> WhyNotQuestion:
        db = self.make_db(scale if scale is not None else self.default_scale)
        return WhyNotQuestion(self.make_query(), db, self.make_nip(), name=self.name)


@dataclass
class ScenarioRun:
    """Explanations of all approaches for one scenario, as label sets."""

    scenario: Scenario
    wnpp: list[frozenset[str]]
    conseil: list[frozenset[str]]
    rp_nosa: list[frozenset[str]]
    rp: list[frozenset[str]]
    n_sas: int
    rp_result: WhyNotResult = field(repr=False, default=None)
    timings: dict[str, float] = field(default_factory=dict)

    def gold_position(self) -> Optional[int]:
        """1-based rank of the gold explanation in RP's output (None: absent)."""
        if self.scenario.gold is None:
            return None
        for i, labels in enumerate(self.rp, start=1):
            if labels == self.scenario.gold:
                return i
        return None

    def counts(self) -> tuple[int, int, int]:
        """(#WN++, #RPnoSA, #RP) — the three Table 7 columns."""
        return (len(self.wnpp), len(self.rp_nosa), len(self.rp))


SCENARIOS: dict[str, Scenario] = {}


def register(scenario: Scenario) -> Scenario:
    if scenario.name in SCENARIOS:
        raise ValueError(f"duplicate scenario {scenario.name!r}")
    SCENARIOS[scenario.name] = scenario
    return scenario


def get_scenario(name: str) -> Scenario:
    try:
        return SCENARIOS[name]
    except KeyError:
        raise KeyError(f"unknown scenario {name!r}; have {sorted(SCENARIOS)}")


def run_scenario(
    scenario: "Scenario | str",
    scale: Optional[int] = None,
    with_baselines: bool = True,
    backend=None,
    workers=None,
    optimize: Optional[bool] = None,
    engine: Optional[str] = None,
) -> ScenarioRun:
    """Run all approaches on *scenario* and collect their explanations.

    ``backend``/``workers`` select the execution backend for the RP variants
    (see :mod:`repro.engine.backends`); the explanations do not depend on it.
    ``optimize`` enables the answer-path plan optimizer
    (:mod:`repro.engine.optimizer`) and ``engine`` selects the chain
    evaluation engine (:mod:`repro.engine.columnar`); explanations do not
    depend on either — the optimizer is explanation-preserving and the
    engines are result-equivalent.
    """
    if isinstance(scenario, str):
        scenario = get_scenario(scenario)
    from repro.engine.backends import get_backend
    from repro.engine.columnar import resolve_engine
    from repro.engine.executor import Executor
    from repro.engine.optimizer import optimize_query, resolve_optimize

    backend = get_backend(backend, workers)
    engine = resolve_engine(engine)
    question = scenario.question(scale)
    if resolve_optimize(optimize):
        # Seed Q(D) through the optimized plan *before* validation caches the
        # unoptimized evaluation — this is the scenario runner's answer path.
        answer_query = optimize_query(question.query, question.db).optimized
        if engine == "columnar":
            question._result_cache = Executor(
                num_partitions=4, backend=backend, optimize=False, engine=engine
            ).execute(answer_query, question.db)
        else:
            question._result_cache = answer_query.evaluate(question.db)
    elif engine == "columnar":
        question._result_cache = Executor(
            num_partitions=4, backend=backend, optimize=False, engine=engine
        ).execute(question.query, question.db)
    question.validate()
    timings: dict[str, float] = {}

    started = time.perf_counter()
    wnpp = []
    conseil = []
    if with_baselines:
        s1 = build_s1_trace(question)
        wnpp = [frozenset(e.labels) for e in wnpp_explain(question, s1)]
        conseil = [frozenset(e.labels) for e in conseil_explain(question, s1)]
    timings["baselines"] = time.perf_counter() - started

    started = time.perf_counter()
    nosa = explain(
        question,
        use_schema_alternatives=False,
        validate=False,
        backend=backend,
        optimize=optimize,
        engine=engine,
    )
    timings["rp_nosa"] = time.perf_counter() - started

    started = time.perf_counter()
    rp = explain(
        question,
        alternatives=scenario.alternatives,
        validate=False,
        backend=backend,
        optimize=optimize,
        engine=engine,
    )
    timings["rp"] = time.perf_counter() - started

    return ScenarioRun(
        scenario=scenario,
        wnpp=wnpp,
        conseil=conseil,
        rp_nosa=[frozenset(e.labels) for e in nosa.explanations],
        rp=[frozenset(e.labels) for e in rp.explanations],
        n_sas=rp.n_sas,
        rp_result=rp,
        timings=timings,
    )
