"""Evaluation scenarios (paper §6.2, Tables 4–10).

Every scenario of the paper's evaluation is registered here:

* D1–D5 on DBLP,
* T1–T4 and T_ASD on Twitter,
* Q1, Q3, Q4, Q6, Q10, Q13 on nested TPC-H (plus the flat variants Q1F…Q13F
  and the deeply nested Q13N),
* C1–C3 on the crime dataset,
* plus the factory-generated families GenTPCH and GenSocial
  (:mod:`repro.factory`), whose scale argument is the generator's scale
  factor.
"""

from repro.scenarios.base import SCENARIOS, Scenario, ScenarioRun, get_scenario, run_scenario

# Importing the modules registers the scenarios.
from repro.scenarios import crime_scenarios  # noqa: F401
from repro.scenarios import dblp_scenarios  # noqa: F401
from repro.scenarios import factory_scenarios  # noqa: F401
from repro.scenarios import tpch_scenarios  # noqa: F401
from repro.scenarios import twitter_scenarios  # noqa: F401

__all__ = ["SCENARIOS", "Scenario", "ScenarioRun", "get_scenario", "run_scenario"]
